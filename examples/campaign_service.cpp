// Campaign service: the handle-based, geo-sharded API (DESIGN.md §11).
//
// `campaign.cpp` drives the blocking `Platform::run_campaign` compat surface.
// This example drives the layer underneath it directly: a long-running
// `service::CampaignService` that accepts rounds through a bounded queue
// (`submit_round`), partitions each round's users and tasks by geo cell into
// per-shard mechanism runs, merges the shard outcomes, and delivers them via
// `wait_outcome` / `poll_outcome` while a `stream_telemetry` sink watches
// every round go by. Users whose task sets span shards are restricted to
// their owner shard by the straddler protocol — the per-round straddler
// column shows how often the protocol fires on this workload.
//
// Usage: example_campaign_service [--shards N] [--rounds K]
//                                 [--telemetry out.json]
// With --telemetry, each round's telemetry is appended to the file as a
// one-line JSON object (service::to_json), written from the sink.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "service/service.hpp"

namespace {

/// A synthetic sensing round on an 8x8 grid: 48 tasks in random cells, 600
/// users each bidding a bundle of nearby tasks. Task sets are NOT confined
/// to one shard, so some users straddle and the protocol visibly engages.
mcs::service::GeoRound make_round(std::uint64_t seed) {
  using namespace mcs;
  constexpr std::size_t kTasks = 48;
  constexpr std::size_t kUsers = 600;
  service::GeoRound round;
  common::Rng rng(seed);
  round.instance.requirement_pos.assign(kTasks, 0.6);
  for (std::size_t j = 0; j < kTasks; ++j) {
    round.task_cells.push_back(static_cast<geo::CellId>(rng.uniform_int(0, 63)));
  }
  for (std::size_t i = 0; i < kUsers; ++i) {
    auction::MultiTaskUserBid bid;
    bid.cost = rng.uniform(2.0, 12.0);
    const auto anchor = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kTasks) - 1));
    for (std::size_t j = anchor; j < std::min(anchor + 4, kTasks); ++j) {
      bid.tasks.push_back(static_cast<auction::TaskIndex>(j));
      bid.pos.push_back(rng.uniform(0.1, 0.6));
    }
    round.instance.users.push_back(std::move(bid));
  }
  return round;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcs;

  std::size_t shards = 4;
  std::size_t rounds = 8;
  std::string telemetry_path;
  for (int k = 1; k + 1 < argc; k += 2) {
    const std::string flag = argv[k];
    const std::string value = argv[k + 1];
    if (flag == "--shards") {
      shards = static_cast<std::size_t>(std::stoull(value));
    } else if (flag == "--rounds") {
      rounds = static_cast<std::size_t>(std::stoull(value));
    } else if (flag == "--telemetry") {
      telemetry_path = value;
    } else {
      std::cerr << "usage: example_campaign_service [--shards N] [--rounds K]"
                   " [--telemetry out.json]\n";
      return 2;
    }
  }

  service::ServiceConfig config;
  config.shards = service::ShardMap(shards);
  config.mechanism.alpha = 5.0;

  service::CampaignService service(config);

  // The push-based view: the sink runs on the dispatcher thread after every
  // round, in order, before the outcome becomes pollable.
  std::ofstream telemetry_out;
  if (!telemetry_path.empty()) {
    telemetry_out.open(telemetry_path);
  }
  std::size_t streamed = 0;
  service.stream_telemetry([&](const service::RoundTelemetry& telemetry) {
    ++streamed;
    if (telemetry_out.is_open()) {
      telemetry_out << service::to_json(telemetry) << "\n";
    }
  });

  // Submit the whole campaign up front — the bounded queue applies
  // backpressure if we outrun the dispatcher — then collect in-order.
  for (std::size_t r = 0; r < rounds; ++r) {
    service.submit_round(make_round(4000 + r));
  }

  common::TextTable table(
      "campaign service: " + std::to_string(rounds) + " rounds over " +
          std::to_string(shards) + " shard(s)",
      {"round", "status", "feasible", "shards", "straddlers", "winners", "total cost",
       "latency ms"});
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto outcome = service.wait_outcome(r);
    // An infeasible round keeps the paper's all-or-nothing semantics: no
    // winners, no payments (shard.hpp's merge contract).
    table.add_row({std::to_string(outcome.round), auction::to_string(outcome.status),
                   outcome.outcome.allocation.feasible ? "yes" : "no",
                   std::to_string(outcome.shards_run), std::to_string(outcome.straddlers),
                   std::to_string(outcome.outcome.allocation.winners.size()),
                   common::TextTable::num(outcome.outcome.allocation.total_cost, 1),
                   common::TextTable::num(outcome.latency_seconds * 1e3, 2)});
  }
  table.print(std::cout);

  const auto stats = service.stats();
  std::cout << "service stats: " << stats.submitted << " submitted, " << stats.completed
            << " completed, " << stats.degraded << " degraded, " << stats.failed
            << " failed; telemetry sink saw " << streamed << " rounds";
  if (!telemetry_path.empty()) {
    std::cout << " (streamed to " << telemetry_path << ")";
  }
  std::cout << "\n";
  return 0;
}
