// Trace pipeline: working with trace data as files.
//
// Real deployments ingest GPS logs, not in-memory objects. This example
// exercises the data path end to end: generate a synthetic month of traces,
// persist it as CSV (the paper's dataset schema: taxi id, timestamp,
// location, pickup/dropoff), reload it, learn per-taxi mobility models from
// the reloaded copy, and print dataset + model statistics. The reloaded
// pipeline must agree exactly with the in-memory one — a consistency check a
// downstream user can rerun against their own data files.
//
// It then converts the CSV-loaded dataset once into the streaming column
// format (DESIGN.md §9) and re-learns the models straight from the
// mmap-backed file — the ingestion recipe for traces too large to hold as
// events in memory: parse CSV once, write columns once, train from the
// mapping forever after.
#include <filesystem>
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "mobility/predictor.hpp"
#include "trace/columnfile.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"

int main() {
  using namespace mcs;

  trace::CityConfig config;
  config.num_taxis = 40;
  config.num_days = 10;
  config.trips_per_day = 20;
  const trace::CityModel city(config);

  // 1. Generate and persist.
  const auto dataset = trace::generate_trace(city);
  const auto path = std::filesystem::temp_directory_path() / "mcs_trace_pipeline.csv";
  trace::save_csv(path, dataset);
  std::cout << "wrote " << dataset.size() << " events to " << path << " ("
            << std::filesystem::file_size(path) / 1024 << " KiB)\n";

  // 2. Reload and verify integrity.
  const auto reloaded = trace::load_csv(path);
  std::cout << "reloaded " << reloaded.size() << " events, "
            << reloaded.taxi_ids().size() << " taxis — "
            << (reloaded.size() == dataset.size() ? "size OK" : "SIZE MISMATCH") << "\n";

  // 3. Learn mobility models from the reloaded copy.
  const mobility::FleetModel fleet(reloaded, city.grid(), mobility::MarkovLearner(1.0), 0.8);
  const auto accuracy = mobility::evaluate_topk_accuracy(fleet, {1, 3, 9});

  // 4. Dataset statistics a data engineer would sanity-check.
  common::RunningStats events_per_taxi;
  common::RunningStats territory_size;
  for (trace::TaxiId taxi : reloaded.taxi_ids()) {
    events_per_taxi.add(static_cast<double>(reloaded.events_of(taxi).size()));
    territory_size.add(static_cast<double>(fleet.model(taxi).locations().size()));
  }

  common::TextTable table("trace pipeline statistics", {"metric", "value"});
  table.add_row({"events per taxi (mean)", common::TextTable::num(events_per_taxi.mean(), 1)});
  table.add_row({"distinct cells per taxi (mean)",
                 common::TextTable::num(territory_size.mean(), 1)});
  table.add_row({"top-1 next-cell accuracy", common::TextTable::num(accuracy[0].accuracy(), 3)});
  table.add_row({"top-3 next-cell accuracy", common::TextTable::num(accuracy[1].accuracy(), 3)});
  table.add_row({"top-9 next-cell accuracy", common::TextTable::num(accuracy[2].accuracy(), 3)});
  table.print(std::cout);

  // 5. Convert to the streaming column format and train from the mapping.
  const auto col_path = std::filesystem::temp_directory_path() / "mcs_trace_pipeline.cols";
  trace::write_trace_columns(reloaded, col_path.string());
  const trace::MappedTraceDataset mapped(col_path.string());
  std::cout << "converted to column format: " << col_path << " ("
            << std::filesystem::file_size(col_path) / 1024 << " KiB, "
            << (mapped.is_mapped() ? "mmap" : "heap fallback") << ")\n";
  const mobility::FleetModel streamed(mapped, city.grid(), mobility::MarkovLearner(1.0), 0.8);
  bool identical = streamed.taxis() == fleet.taxis();
  for (trace::TaxiId taxi : fleet.taxis()) {
    identical = identical && streamed.holdout(taxi) == fleet.holdout(taxi);
  }
  std::cout << "streamed training "
            << (identical ? "matches the in-memory models" : "DIVERGED — file a bug") << "\n";

  std::filesystem::remove(path);
  std::filesystem::remove(col_path);
  std::cout << "cleaned up " << path << " and " << col_path << "\n";
  return 0;
}
