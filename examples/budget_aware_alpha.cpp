// Budget-aware reward scaling: putting a number on the paper's α knob.
//
// The paper says α "can be adjusted according to the budget constraint of
// the platform" but leaves the adjustment open. Since a winner's expected
// payment is her cost plus rent (p − p̄)·α, the platform's expected payout is
// affine in α; mcs::sim::estimate_payout decomposes it and alpha_for_budget
// inverts it. This example runs one multi-task auction, prints the
// decomposition, solves α for several budgets (expected and worst-case
// variants), and Monte-Carlo-verifies the chosen α against settled
// executions.
#include <iostream>

#include "auction/multi_task/mechanism.hpp"
#include "common/table.hpp"
#include "sim/budget.hpp"
#include "sim/execution.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace mcs;

  sim::WorkloadConfig workload_config = sim::default_bench_workload();
  workload_config.city.num_taxis = 150;
  const sim::Workload workload(workload_config);

  sim::ScenarioParams params;
  params.pos_requirement = 0.6;
  common::Rng rng(505);
  const auto scenario =
      sim::build_feasible_multi_task(workload.users(), 10, 60, params, rng, 50);
  if (!scenario.has_value()) {
    std::cout << "no feasible campaign sampled; rerun with more users\n";
    return 1;
  }

  // α scales rewards without touching the allocation or critical bids, so
  // one mechanism run (at α = 1) prices every budget.
  const auto outcome =
      auction::multi_task::run_mechanism(scenario->instance, {.alpha = 1.0});
  const auto estimate = sim::estimate_payout(scenario->instance, outcome);

  std::cout << "winners: " << outcome.allocation.winners.size()
            << ", social cost: " << common::TextTable::num(estimate.total_cost, 2)
            << ", rent per unit alpha: "
            << common::TextTable::num(estimate.rent_per_alpha, 3)
            << ", worst-case per unit alpha: "
            << common::TextTable::num(estimate.worst_case_per_alpha, 3) << "\n";

  common::TextTable table("alpha for budget (expected vs worst-case sizing)",
                          {"budget", "alpha (expected)", "E[payout] check",
                           "alpha (worst case)", "worst payout check"});
  for (double factor : {1.05, 1.25, 1.5, 2.0, 3.0}) {
    const double budget = factor * estimate.total_cost;
    const double alpha = sim::alpha_for_budget(estimate, budget);
    const double alpha_wc = sim::alpha_for_budget_worst_case(estimate, budget);
    table.add_row({common::TextTable::num(budget, 1), common::TextTable::num(alpha, 3),
                   common::TextTable::num(estimate.expected_payout(alpha), 1),
                   common::TextTable::num(alpha_wc, 3),
                   common::TextTable::num(estimate.worst_case_payout(alpha_wc), 1)});
  }
  table.print(std::cout);

  // Monte-Carlo check at the 1.5x budget.
  const double budget = 1.5 * estimate.total_cost;
  const double alpha = sim::alpha_for_budget(estimate, budget);
  auction::MechanismOutcome scaled = outcome;
  for (auto& reward : scaled.rewards) {
    reward.reward.alpha = alpha;
  }
  common::Rng sim_rng(506);
  double total = 0.0;
  constexpr int kRuns = 20000;
  for (int run = 0; run < kRuns; ++run) {
    const auto execution =
        sim::simulate(scenario->instance, scaled.allocation.winners, sim_rng);
    total += sim::settle_payout(scaled, execution.winner_any_success);
  }
  std::cout << "Monte-Carlo mean payout at the 1.5x budget: "
            << common::TextTable::num(total / kRuns, 1) << " (budget "
            << common::TextTable::num(budget, 1) << ")\n"
            << "(expected sizing spends the budget exactly under truthful play; the\n"
            << " worst-case column guards against the maximum possible settlement)\n";
  return 0;
}
