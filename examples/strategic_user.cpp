// Strategic user: why the execution-contingent reward matters.
//
// Reproduces the paper's Section III-A counter-example. Four users bid on a
// task requiring PoS 0.9. Under our mechanism, user 2 (cost 1, true PoS 0.5)
// cannot profit from any misreport: inflating her PoS gets her selected but
// the execution-contingent reward turns her expected utility negative.
// Under a naive VCG-like payment (which ignores the PoS dimension), the same
// inflation is strictly profitable — VCG is not strategy-proof here.
#include <iostream>

#include "auction/single_task/exact.hpp"
#include "auction/single_task/mechanism.hpp"
#include "common/table.hpp"
#include "sim/strategy.hpp"

namespace {

using namespace mcs;

/// Expected utility of `user` under a naive VCG payment when she declares
/// `declared_pos`: allocation minimizes declared cost subject to declared
/// PoS; a winner is paid her VCG externality and bears her true cost. The
/// payment ignores execution, so utility = payment - cost regardless of her
/// true PoS.
double vcg_utility(const auction::SingleTaskInstance& truth, auction::UserId user,
                   double declared_pos) {
  const auto declared = truth.with_declared_pos(user, declared_pos);
  const auto with = auction::single_task::solve_exact(declared).allocation;
  if (!with.feasible || !with.contains(user)) {
    return 0.0;
  }
  const auto without = auction::single_task::solve_exact(declared.without_user(user)).allocation;
  if (!without.feasible) {
    return 0.0;  // no externality price exists; treat as no trade
  }
  const double others_cost =
      with.total_cost - truth.bids[static_cast<std::size_t>(user)].cost;
  const double payment = without.total_cost - others_cost;
  return payment - truth.bids[static_cast<std::size_t>(user)].cost;
}

}  // namespace

int main() {
  // The paper's example: types (cost, PoS).
  auction::SingleTaskInstance instance;
  instance.requirement_pos = 0.9;
  instance.bids = {{3.0, 0.7}, {2.0, 0.7}, {1.0, 0.5}, {4.0, 0.8}};
  const auction::MechanismConfig config{.alpha = 10.0, .single_task = {.epsilon = 0.1}};
  const auction::UserId strategic = 2;

  std::cout << "Task requires PoS 0.9; users (cost, PoS): (3,0.7) (2,0.7) (1,0.5) (4,0.8)\n"
            << "Truthful optimum selects users 0 and 1 (combined PoS 0.91, cost 5).\n\n";

  std::vector<double> grid;
  for (double p = 0.1; p <= 0.95 + 1e-9; p += 0.1) {
    grid.push_back(p);
  }
  const auto sweep = sim::sweep_declared_pos(instance, strategic, grid, config);

  common::TextTable table("user 2 (cost 1, true PoS 0.5) sweeps her declared PoS",
                          {"declared PoS", "our mechanism: utility", "naive VCG: utility"});
  for (const auto& point : sweep) {
    table.add_row({common::TextTable::num(point.declared, 2),
                   common::TextTable::num(point.expected_utility, 4),
                   common::TextTable::num(vcg_utility(instance, strategic, point.declared), 4)});
  }
  table.print(std::cout);

  std::cout << "\nOur mechanism: every misreport yields utility <= 0 — lying never pays\n"
            << "(Theorem 1). Naive VCG: declaring PoS ~0.9 displaces the efficient pair\n"
            << "and earns user 2 a strictly positive utility — the Section III-A failure.\n";
  return 0;
}
