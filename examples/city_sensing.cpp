// City sensing: the full pipeline of the paper on one page.
//
//   synthetic city → taxi trace → per-taxi Markov models → mobile users with
//   predicted PoS → multi-task reverse auction → execution → settlement.
//
// A platform wants fresh photos of the 12 busiest locations in town, each
// with 70% assurance. It recruits from a fleet of taxis whose mobility (and
// hence per-location PoS) is learned from their own GPS history, runs the
// strategy-proof multi-task mechanism, then simulates the sensing round and
// settles the execution-contingent rewards.
#include <iostream>

#include "auction/multi_task/mechanism.hpp"
#include "common/table.hpp"
#include "sim/execution.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace mcs;

  // 1. Build the city, generate a month of traces, learn mobility models.
  sim::WorkloadConfig config = sim::default_bench_workload();
  config.city.num_taxis = 150;  // a small fleet keeps this example instant
  const sim::Workload workload(config);
  std::cout << "fleet: " << workload.users().size() << " users derived from "
            << workload.dataset().size() << " trace events over a "
            << workload.city().grid().cell_count() << "-cell grid\n";

  // 2. Pose the sensing campaign: 12 tasks, 60 bidders, 70% assurance.
  sim::ScenarioParams params;
  params.pos_requirement = 0.7;
  common::Rng rng(2013);
  const auto scenario =
      sim::build_feasible_multi_task(workload.users(), 12, 60, params, rng, 50);
  if (!scenario.has_value()) {
    std::cout << "could not sample a feasible campaign; rerun with more users\n";
    return 1;
  }

  // 3. Run the strategy-proof mechanism.
  const auction::MechanismConfig mechanism{.alpha = 10.0};
  const auto outcome = auction::multi_task::run_mechanism(scenario->instance, mechanism);
  std::cout << "recruited " << outcome.allocation.winners.size() << " of "
            << scenario->instance.num_users() << " bidders, social cost "
            << common::TextTable::num(outcome.allocation.total_cost, 2) << "\n";

  common::TextTable tasks("campaign tasks", {"task", "cell", "required PoS", "achieved PoS"});
  const auto achieved = sim::achieved_pos(scenario->instance, outcome.allocation.winners);
  for (std::size_t j = 0; j < scenario->instance.num_tasks(); ++j) {
    tasks.add_row({std::to_string(j), std::to_string(scenario->task_cells[j]),
                   common::TextTable::num(scenario->instance.requirement_pos[j], 2),
                   common::TextTable::num(achieved[j], 3)});
  }
  tasks.print(std::cout);

  // 4. Simulate the sensing round and settle rewards.
  common::Rng execution_rng(4096);
  const auto run = sim::simulate(scenario->instance, outcome.allocation.winners, execution_rng);
  std::size_t completed = 0;
  for (bool done : run.task_completed) {
    completed += done ? 1 : 0;
  }
  std::cout << "execution: " << completed << "/" << run.task_completed.size()
            << " tasks completed this round; platform payout "
            << common::TextTable::num(sim::settle_payout(outcome, run.winner_any_success), 2)
            << "\n";

  // 5. Individual rationality: every recruited user expects to profit.
  const auto utilities = sim::expected_utilities(scenario->instance, outcome);
  std::cout << "all winners individually rational: "
            << (sim::individually_rational(utilities) ? "yes" : "NO") << "\n";
  return 0;
}
