// Capacity planning: how assurance levels drive recruitment and budget.
//
// A platform operator wants to know what raising the per-task assurance
// (PoS requirement) costs. Using the public API end to end, this example
// sweeps the requirement for one location-pinned task over a fixed bidder
// population and reports winners, social cost, achieved PoS, and the
// platform's expected payout under the execution-contingent rewards —
// the operational counterpart of the paper's Figs 8 and 9.
#include <iostream>

#include "auction/single_task/budgeted.hpp"
#include "auction/single_task/mechanism.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace mcs;

  sim::WorkloadConfig config = sim::default_bench_workload();
  config.city.num_taxis = 150;
  const sim::Workload workload(config);

  // One fixed population of 60 bidders on the busiest cell.
  sim::ScenarioParams params;
  common::Rng rng(77);
  const auto cells = sim::popular_cells(workload.users());
  const auto scenario = sim::build_single_task(workload.users(), cells.front(), 60, params, rng);
  if (!scenario.has_value()) {
    std::cout << "not enough bidders for this cell; rerun with more taxis\n";
    return 1;
  }

  const auction::MechanismConfig mechanism{
      .alpha = 10.0, .single_task = {.epsilon = 0.5, .binary_search_iterations = 32}};
  common::TextTable table("capacity planning: one task, 60 bidders",
                          {"required PoS", "#winners", "social cost", "achieved PoS",
                           "expected payout"});
  for (double requirement = 0.5; requirement <= 0.95 + 1e-9; requirement += 0.05) {
    auto instance = scenario->instance;
    instance.requirement_pos = requirement;
    const auto outcome = auction::single_task::run_mechanism(instance, mechanism);
    if (!outcome.allocation.feasible) {
      table.add_row({common::TextTable::num(requirement, 2), "-", "infeasible", "-", "-"});
      continue;
    }
    // Expected payout: each winner is paid the success branch w.p. her true
    // PoS and the failure branch otherwise.
    double expected_payout = 0.0;
    for (const auto& winner : outcome.rewards) {
      const double p = instance.bids[static_cast<std::size_t>(winner.user)].pos;
      expected_payout += p * winner.reward.on_success() + (1.0 - p) * winner.reward.on_failure();
    }
    table.add_row({common::TextTable::num(requirement, 2),
                   std::to_string(outcome.allocation.winners.size()),
                   common::TextTable::num(outcome.allocation.total_cost, 2),
                   common::TextTable::num(sim::achieved_pos(instance, outcome.allocation.winners), 3),
                   common::TextTable::num(expected_payout, 2)});
  }
  table.print(std::cout);
  std::cout << "(raising assurance recruits more users and raises both cost and payout;\n"
            << " the payout premium over social cost is the winners' information rent)\n\n";

  // The dual question: if the budget is the hard constraint, what assurance
  // can it buy? (max-knapsack form of Algorithm 1.)
  common::TextTable dual("budgeted coverage: best achievable PoS per recruitment budget",
                         {"budget", "#recruited", "spent", "achieved PoS"});
  for (double budget : {10.0, 20.0, 40.0, 80.0, 160.0, 320.0}) {
    const auto coverage =
        auction::single_task::max_coverage_for_budget(scenario->instance, budget);
    dual.add_row({common::TextTable::num(budget, 0),
                  std::to_string(coverage.allocation.winners.size()),
                  common::TextTable::num(coverage.allocation.total_cost, 2),
                  common::TextTable::num(coverage.achieved_pos, 3)});
  }
  dual.print(std::cout);
  std::cout << "(coverage saturates once every useful bidder is recruited)\n";
  return 0;
}
