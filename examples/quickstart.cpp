// Quickstart: the smallest end-to-end use of the public API.
//
// A platform has ONE sensing task that must be completed with probability at
// least 0.9. Five mobile users bid with (cost, PoS). We run the strategy-
// proof single-task mechanism, print who wins, what the task's achieved PoS
// is, and what each winner is paid for success/failure — then simulate one
// execution round and settle the rewards.
#include <iostream>

#include "auction/single_task/mechanism.hpp"
#include "common/rng.hpp"
#include "sim/execution.hpp"
#include "sim/metrics.hpp"

int main() {
  using namespace mcs;

  auction::SingleTaskInstance instance;
  instance.requirement_pos = 0.9;  // the task must succeed w.p. >= 0.9
  instance.bids = {
      {3.0, 0.7},  // user 0: cost 3, PoS 0.7
      {2.0, 0.7},  // user 1
      {1.0, 0.5},  // user 2
      {4.0, 0.8},  // user 3
      {2.5, 0.6},  // user 4
  };

  const auction::MechanismConfig config{.alpha = 10.0, .single_task = {.epsilon = 0.1}};
  const auto outcome = auction::single_task::run_mechanism(instance, config);
  if (!outcome.allocation.feasible) {
    std::cout << "No user set can reach the required PoS.\n";
    return 0;
  }

  std::cout << "Winners (social cost " << outcome.allocation.total_cost << "):\n";
  for (const auto& winner : outcome.rewards) {
    std::cout << "  user " << winner.user
              << "  critical PoS " << winner.reward.critical_pos
              << "  pay-on-success " << winner.reward.on_success()
              << "  pay-on-failure " << winner.reward.on_failure() << "\n";
  }
  std::cout << "Achieved task PoS: " << sim::achieved_pos(instance, outcome.allocation.winners)
            << " (required " << instance.requirement_pos << ")\n";

  // One execution round: winners attempt the task, rewards settle on the
  // observed outcomes.
  common::Rng rng(42);
  const auto run = sim::simulate(instance, outcome.allocation.winners, rng);
  std::cout << "Execution: task " << (run.task_completed ? "COMPLETED" : "FAILED")
            << ", platform payout " << sim::settle_payout(outcome, run.winner_success) << "\n";
  return 0;
}
