// auction_cli: run the strategy-proof mechanisms on instance files.
//
// Usage:
//   example_auction_cli <instance-file> [alpha] [epsilon]
//   example_auction_cli            (no args: writes demo files, runs both)
//
// Instance files use the plain-text format of auction/io.hpp (header
// mcs-single-task-v1 or mcs-multi-task-v1; '#' comments allowed), so a
// downstream user can run the mechanisms on their own marketplace data
// without writing any C++.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "auction/io.hpp"
#include "auction/single_task/mechanism.hpp"
#include "auction/multi_task/mechanism.hpp"
#include "common/table.hpp"
#include "sim/metrics.hpp"

namespace {

using namespace mcs;

void report_single(const auction::SingleTaskInstance& instance, double alpha, double epsilon) {
  const auto outcome = auction::single_task::run_mechanism(
      instance, {.epsilon = epsilon, .alpha = alpha});
  if (!outcome.allocation.feasible) {
    std::cout << "INFEASIBLE: no user set reaches the required PoS "
              << instance.requirement_pos << "\n";
    return;
  }
  common::TextTable table("single-task outcome (social cost " +
                              common::TextTable::num(outcome.allocation.total_cost, 2) + ")",
                          {"winner", "cost", "declared PoS", "critical PoS",
                           "pay on success", "pay on failure"});
  for (const auto& winner : outcome.rewards) {
    const auto& bid = instance.bids[static_cast<std::size_t>(winner.user)];
    table.add_row({std::to_string(winner.user), common::TextTable::num(bid.cost, 3),
                   common::TextTable::num(bid.pos, 3),
                   common::TextTable::num(winner.reward.critical_pos, 4),
                   common::TextTable::num(winner.reward.on_success(), 3),
                   common::TextTable::num(winner.reward.on_failure(), 3)});
  }
  table.print(std::cout);
  std::cout << "achieved PoS " << common::TextTable::num(
                   sim::achieved_pos(instance, outcome.allocation.winners), 4)
            << " (required " << instance.requirement_pos << ")\n";
}

void report_multi(const auction::MultiTaskInstance& instance, double alpha) {
  const auto outcome = auction::multi_task::run_mechanism(instance, {.alpha = alpha});
  if (!outcome.allocation.feasible) {
    std::cout << "INFEASIBLE: the users cannot cover every task requirement\n";
    return;
  }
  common::TextTable table("multi-task outcome (social cost " +
                              common::TextTable::num(outcome.allocation.total_cost, 2) + ")",
                          {"winner", "cost", "tasks", "critical PoS", "pay on success",
                           "pay on failure"});
  for (const auto& winner : outcome.rewards) {
    const auto& bid = instance.users[static_cast<std::size_t>(winner.user)];
    table.add_row({std::to_string(winner.user), common::TextTable::num(bid.cost, 3),
                   std::to_string(bid.tasks.size()),
                   common::TextTable::num(winner.reward.critical_pos, 4),
                   common::TextTable::num(winner.reward.on_success(), 3),
                   common::TextTable::num(winner.reward.on_failure(), 3)});
  }
  table.print(std::cout);
  const auto achieved = sim::achieved_pos(instance, outcome.allocation.winners);
  for (std::size_t j = 0; j < achieved.size(); ++j) {
    std::cout << "task " << j << ": achieved " << common::TextTable::num(achieved[j], 4)
              << " (required " << instance.requirement_pos[j] << ")\n";
  }
}

int run_file(const std::filesystem::path& path, double alpha, double epsilon) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto kind = auction::detect_instance_kind(buffer.str());
  std::cout << "== " << path << " (" << (kind.empty() ? "unknown" : kind) << ") ==\n";
  if (kind == "single") {
    report_single(auction::single_task_from_text(buffer.str()), alpha, epsilon);
  } else if (kind == "multi") {
    report_multi(auction::multi_task_from_text(buffer.str()), alpha);
  } else {
    std::cerr << "unrecognized instance header in " << path << "\n";
    return 1;
  }
  return 0;
}

int demo() {
  const auto dir = std::filesystem::temp_directory_path();
  const auto single_path = dir / "mcs_demo_single.txt";
  const auto multi_path = dir / "mcs_demo_multi.txt";

  auction::SingleTaskInstance single;
  single.requirement_pos = 0.9;
  single.bids = {{3.0, 0.7}, {2.0, 0.7}, {1.0, 0.5}, {4.0, 0.8}};
  auction::save_single_task(single_path, single);

  auction::MultiTaskInstance multi;
  multi.requirement_pos = {0.6, 0.5};
  multi.users = {
      {{0}, {0.5}, 2.0},
      {{1}, {0.4}, 1.5},
      {{0, 1}, {0.4, 0.3}, 3.0},
      {{0, 1}, {0.3, 0.4}, 2.5},
  };
  auction::save_multi_task(multi_path, multi);

  std::cout << "no arguments: wrote demo instances to " << single_path << " and "
            << multi_path << "\n\n";
  int status = run_file(single_path, 10.0, 0.1);
  std::cout << "\n";
  status |= run_file(multi_path, 10.0, 0.1);
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return demo();
  }
  const double alpha = argc > 2 ? std::atof(argv[2]) : 10.0;
  const double epsilon = argc > 3 ? std::atof(argv[3]) : 0.1;
  return run_file(argv[1], alpha, epsilon);
}
