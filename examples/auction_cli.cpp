// auction_cli: run the strategy-proof mechanisms on instance files through
// the batched auction::Engine — the unified entry point that takes any mix
// of single- and multi-task instances plus one shared MechanismConfig.
//
// Usage:
//   example_auction_cli <instance-file>... [alpha] [epsilon] [--telemetry out.json]
//   example_auction_cli            (no args: writes demo files, runs all)
//
// Every argument naming an existing file is loaded as an instance; the first
// non-file numeric argument is alpha, the second epsilon. All instances run
// as ONE engine batch, so auctions execute concurrently and outcomes come
// back in submission order. Instance files use the plain-text format of
// auction/io.hpp (header mcs-single-task-v1 or mcs-multi-task-v1; '#'
// comments allowed), so a downstream user can run the mechanisms on their
// own marketplace data without writing any C++.
//
// --telemetry <path> enables mcs::obs for the run and writes a JSON report:
// one mechanism record per auction (phase split, probe/degradation counts)
// plus the merged process-wide registry (engine status tallies, pool queue
// depth / utilization). Telemetry never changes outcomes — the same batch
// with the flag off is bit-identical.
//
// The batch is fault-isolated: a file that fails to parse, or an auction
// that throws or exceeds its wall-clock budget, reports its own error while
// every other slot completes normally (Engine::run_isolated). The no-args
// demo shows this by poisoning one of its three instance files.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "auction/engine.hpp"
#include "auction/io.hpp"
#include "common/table.hpp"
#include "obs/telemetry.hpp"
#include "sim/metrics.hpp"

namespace {

using namespace mcs;

void report_single(const auction::SingleTaskInstance& instance,
                   const auction::MechanismOutcome& outcome) {
  if (!outcome.allocation.feasible) {
    std::cout << "INFEASIBLE: no user set reaches the required PoS "
              << instance.requirement_pos << "\n";
    return;
  }
  common::TextTable table("single-task outcome (social cost " +
                              common::TextTable::num(outcome.allocation.total_cost, 2) + ")",
                          {"winner", "cost", "declared PoS", "critical PoS",
                           "pay on success", "pay on failure"});
  for (const auto& winner : outcome.rewards) {
    const auto& bid = instance.bids[static_cast<std::size_t>(winner.user)];
    table.add_row({std::to_string(winner.user), common::TextTable::num(bid.cost, 3),
                   common::TextTable::num(bid.pos, 3),
                   common::TextTable::num(winner.reward.critical_pos, 4),
                   common::TextTable::num(winner.reward.on_success(), 3),
                   common::TextTable::num(winner.reward.on_failure(), 3)});
  }
  table.print(std::cout);
  std::cout << "achieved PoS " << common::TextTable::num(
                   sim::achieved_pos(instance, outcome.allocation.winners), 4)
            << " (required " << instance.requirement_pos << ")\n";
}

void report_multi(const auction::MultiTaskInstance& instance,
                  const auction::MechanismOutcome& outcome) {
  if (!outcome.allocation.feasible) {
    std::cout << "INFEASIBLE: the users cannot cover every task requirement\n";
    return;
  }
  common::TextTable table("multi-task outcome (social cost " +
                              common::TextTable::num(outcome.allocation.total_cost, 2) + ")",
                          {"winner", "cost", "tasks", "critical PoS", "pay on success",
                           "pay on failure"});
  for (const auto& winner : outcome.rewards) {
    const auto& bid = instance.users[static_cast<std::size_t>(winner.user)];
    table.add_row({std::to_string(winner.user), common::TextTable::num(bid.cost, 3),
                   std::to_string(bid.tasks.size()),
                   common::TextTable::num(winner.reward.critical_pos, 4),
                   common::TextTable::num(winner.reward.on_success(), 3),
                   common::TextTable::num(winner.reward.on_failure(), 3)});
  }
  table.print(std::cout);
  const auto achieved = sim::achieved_pos(instance, outcome.allocation.winners);
  for (std::size_t j = 0; j < achieved.size(); ++j) {
    std::cout << "task " << j << ": achieved " << common::TextTable::num(achieved[j], 4)
              << " (required " << instance.requirement_pos[j] << ")\n";
  }
}

void report(const auction::AuctionInstance& instance,
            const auction::MechanismOutcome& outcome) {
  if (const auto* single = std::get_if<auction::SingleTaskInstance>(&instance)) {
    report_single(*single, outcome);
  } else {
    report_multi(std::get<auction::MultiTaskInstance>(instance), outcome);
  }
}

/// One instance per file. A file that cannot be opened or parsed becomes a
/// load error instead of aborting the run — the io parsers name the file and
/// line, and the rest of the batch still executes.
struct LoadedFile {
  std::filesystem::path path;
  std::optional<auction::AuctionInstance> instance;
  std::string load_error;
};

LoadedFile load_file(const std::filesystem::path& path) {
  LoadedFile loaded{path, std::nullopt, {}};
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      loaded.load_error = "cannot open " + path.string();
      return loaded;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto kind = auction::detect_instance_kind(buffer.str());
    // load_* (rather than *_from_text) so parse errors name the file.
    if (kind == "single") {
      loaded.instance = auction::load_single_task(path);
    } else if (kind == "multi") {
      loaded.instance = auction::load_multi_task(path);
    } else {
      loaded.load_error = "unrecognized instance header in " + path.string();
    }
  } catch (const std::exception& error) {
    loaded.load_error = error.what();
  }
  return loaded;
}

/// Writes the run's telemetry JSON: per-auction mechanism records keyed by
/// file plus the merged registry snapshot.
void write_telemetry_json(const std::filesystem::path& out_path,
                          const std::vector<LoadedFile>& files,
                          const std::vector<std::size_t>& slot_of_file,
                          const std::vector<auction::AuctionOutcome>& slots) {
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open telemetry sink " << out_path << " for writing\n";
    return;
  }
  out << "{\n  \"telemetry_version\": 1,\n  \"auctions\": [\n";
  bool first = true;
  for (std::size_t k = 0; k < files.size(); ++k) {
    if (slot_of_file[k] == SIZE_MAX) {
      continue;  // unreadable file: never reached the engine
    }
    const auto& slot = slots[slot_of_file[k]];
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << "    {\"file\": \"" << files[k].path.generic_string() << "\", \"status\": \""
        << auction::to_string(slot.status) << "\", \"mechanism\": "
        << obs::to_json(slot.outcome.telemetry) << "}";
  }
  out << "\n  ],\n  \"registry\": " << obs::Registry::global().snapshot().to_json() << "\n}\n";
  std::cout << "telemetry written to " << out_path << "\n";
}

int run_files(const std::vector<std::filesystem::path>& paths, double alpha, double epsilon,
              const std::filesystem::path& telemetry_path = {}) {
  std::vector<LoadedFile> files;
  files.reserve(paths.size());
  std::vector<auction::AuctionInstance> batch;
  std::vector<std::size_t> slot_of_file(paths.size(), SIZE_MAX);
  for (const auto& path : paths) {
    files.push_back(load_file(path));
    if (files.back().instance) {
      slot_of_file[files.size() - 1] = batch.size();
      batch.push_back(*files.back().instance);
    }
  }

  // One config serves both families: shared fields at the top level,
  // family-only knobs nested (the other family's sub-struct is ignored).
  const auction::MechanismConfig config{.alpha = alpha, .single_task = {.epsilon = epsilon}};
  if (!telemetry_path.empty()) {
    obs::set_enabled(true);
  }
  const auction::Engine engine;  // process-wide shared thread pool
  const auto slots = engine.run_isolated(batch, config);
  if (!telemetry_path.empty()) {
    write_telemetry_json(telemetry_path, files, slot_of_file, slots);
  }

  std::size_t healthy = 0;
  for (std::size_t k = 0; k < files.size(); ++k) {
    const auto& file = files[k];
    const bool single =
        file.instance && std::holds_alternative<auction::SingleTaskInstance>(*file.instance);
    std::cout << "== " << file.path << " ("
              << (file.instance ? (single ? "single" : "multi") : "unreadable") << ") ==\n";
    if (!file.instance) {
      std::cout << "SKIPPED: " << file.load_error << "\n";
    } else {
      const auto& slot = slots[slot_of_file[k]];
      if (slot.status == auction::AuctionStatus::kDegraded) {
        std::cout << "[degraded: fell back to the 2-approximation or partial coverage]\n";
      }
      if (!slot.ok()) {
        std::cout << "AUCTION " << auction::to_string(slot.status) << ": " << slot.error << "\n";
      } else {
        ++healthy;
        report(*file.instance, slot.outcome);
      }
    }
    if (k + 1 < files.size()) {
      std::cout << "\n";
    }
  }
  std::cout << "\n" << healthy << "/" << files.size() << " auctions completed\n";
  // The batch as a whole succeeds if anything ran; per-slot failures are in
  // the report above.
  return healthy > 0 ? 0 : 1;
}

int demo() {
  const auto dir = std::filesystem::temp_directory_path();
  const auto single_path = dir / "mcs_demo_single.txt";
  const auto multi_path = dir / "mcs_demo_multi.txt";
  const auto poisoned_path = dir / "mcs_demo_poisoned.txt";

  auction::SingleTaskInstance single;
  single.requirement_pos = 0.9;
  single.bids = {{3.0, 0.7}, {2.0, 0.7}, {1.0, 0.5}, {4.0, 0.8}};
  auction::save_single_task(single_path, single);

  auction::MultiTaskInstance multi;
  multi.requirement_pos = {0.6, 0.5};
  multi.users = {
      {{0}, {0.5}, 2.0},
      {{1}, {0.4}, 1.5},
      {{0, 1}, {0.4, 0.3}, 3.0},
      {{0, 1}, {0.3, 0.4}, 2.5},
  };
  auction::save_multi_task(multi_path, multi);

  // A hostile file — negative cost — that the hardened parser rejects with
  // the file and line; the other two auctions are unaffected.
  std::ofstream(poisoned_path) << "mcs-single-task-v1\nrequirement 0.9\nuser -3.0 0.7\n";

  std::cout << "no arguments: wrote demo instances to " << single_path << ", " << multi_path
            << ", and (deliberately poisoned) " << poisoned_path
            << "\nrunning all three as one fault-isolated engine batch\n\n";
  return run_files({single_path, poisoned_path, multi_path}, 10.0, 0.1);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return demo();
  }
  std::vector<std::filesystem::path> paths;
  std::vector<double> numbers;
  std::filesystem::path telemetry_path;
  for (int k = 1; k < argc; ++k) {
    // Flags are claimed before the file-or-number classification: the sink
    // path usually does not exist yet, so it must never be mistaken for a
    // malformed number.
    if (std::string(argv[k]) == "--telemetry") {
      if (k + 1 >= argc) {
        std::cerr << "--telemetry requires an output path\n";
        return 1;
      }
      telemetry_path = argv[++k];
      continue;
    }
    const std::filesystem::path candidate(argv[k]);
    if (std::filesystem::exists(candidate)) {
      paths.push_back(candidate);
    } else {
      char* end = nullptr;
      const double value = std::strtod(argv[k], &end);
      if (end == argv[k] || *end != '\0') {
        std::cerr << "argument is neither an existing file nor a number: " << argv[k] << "\n";
        return 1;
      }
      numbers.push_back(value);
    }
  }
  if (paths.empty()) {
    std::cerr << "no instance files given\n";
    return 1;
  }
  const double alpha = numbers.size() > 0 ? numbers[0] : 10.0;
  const double epsilon = numbers.size() > 1 ? numbers[1] : 0.1;
  return run_files(paths, alpha, epsilon, telemetry_path);
}
