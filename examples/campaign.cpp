// Campaign: operating the platform over many time slots.
//
// The paper evaluates one auction at a time; a deployed platform (its Fig 1)
// runs continuously. This example drives the `mcs::platform` layer: taxis
// move through the city round by round, each round the platform posts the 10
// most-covered locations as tasks, runs the strategy-proof multi-task
// auction among 50 bidders, winners execute under GROUND-TRUTH mobility (a
// task completes only if the taxi's actual move lands on the task cell), and
// execution-contingent rewards settle against a campaign budget.
#include <iostream>

#include "common/table.hpp"
#include "platform/platform.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace mcs;

  sim::WorkloadConfig workload_config = sim::default_bench_workload();
  workload_config.city.num_taxis = 120;
  const sim::Workload workload(workload_config);

  platform::CampaignConfig config;
  config.rounds = 12;
  config.num_tasks = 10;
  config.num_bidders = 50;
  config.pos_requirement = 0.7;
  config.budget = 6000.0;
  config.execution = platform::ExecutionModel::kGroundTruthMobility;
  config.seed = 2017;

  platform::Platform platform(workload.city(), workload.fleet(), config);
  const auto report = platform.run_campaign();

  common::TextTable table("campaign: 12 rounds, 10 tasks/round, budget 6000",
                          {"round", "held", "winners", "social cost", "payout", "completed",
                           "req PoS", "achieved PoS"});
  for (const auto& round : report.rounds) {
    table.add_row({std::to_string(round.round), round.held ? "yes" : "no",
                   std::to_string(round.winners),
                   common::TextTable::num(round.social_cost, 1),
                   common::TextTable::num(round.payout, 1),
                   std::to_string(round.tasks_completed) + "/" +
                       std::to_string(round.tasks_posted),
                   common::TextTable::num(round.mean_required_pos, 2),
                   common::TextTable::num(round.mean_achieved_pos, 2)});
  }
  table.print(std::cout);
  std::cout << "campaign totals: payout " << common::TextTable::num(report.total_payout, 1)
            << " (budget " << config.budget << "), social cost "
            << common::TextTable::num(report.total_social_cost, 1) << ", completion rate "
            << common::TextTable::num(report.completion_rate(), 3) << "\n"
            << "participation: " << report.wins_by_taxi.size() << " distinct taxis won "
            << report.total_wins() << " recruitments (concentration HHI "
            << common::TextTable::num(report.win_concentration(), 3) << ", top winner "
            << common::TextTable::num(100.0 * report.top_winner_share(), 1) << "%)\n"
            << "reputation: " << platform.reputation().tracked_users()
            << " users observed, "
            << platform.reputation().flagged_overclaimers(2.0, 5).size()
            << " flagged as over-claimers at 2 sigma (ground-truth execution exposes\n"
            << " mobility-model over-prediction as systematic under-delivery)\n"
            << "note: under ground-truth execution the achieved column is the analytic\n"
            << "PoS implied by DECLARED (learned) probabilities — the realized completion\n"
            << "rate also absorbs the mobility model's prediction error.\n";
  return 0;
}
