#!/usr/bin/env bash
# Cache-miss harness for the Algorithm 1 DP kernels (DESIGN.md §8): runs the
# frontier-DP-dominated single-task mechanism under `perf stat` once per
# kernel (columns vs scalar oracle) on the same instance, so the wall-clock
# speedup recorded in bench/results/memory_scaling.json can be read next to
# the LLC-miss reduction that produces it.
#
# Usage: scripts/perf_cachemiss.sh [BUILD_DIR] [N] [REPS]
#   BUILD_DIR  cmake build tree holding bench/memory_scaling (default: build)
#   N          instance size (default: 400 — the largest committed sweep)
#   REPS       best-of repetitions per kernel (default: 3)
#
# Degrades gracefully: on hosts without perf(1) (or without permission to
# read the hardware counters) it explains what is missing and exits 0, so CI
# and containers can run it unconditionally.
set -u

build_dir="${1:-build}"
n="${2:-400}"
reps="${3:-3}"
bin="${build_dir}/bench/memory_scaling"

if [ ! -x "${bin}" ]; then
  echo "perf_cachemiss: ${bin} not found — build it first:"
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} --target memory_scaling"
  exit 0
fi

if ! command -v perf >/dev/null 2>&1; then
  echo "perf_cachemiss: perf(1) is not installed on this host — skipping the"
  echo "cache-miss measurement. The wall-clock comparison is still available:"
  echo "  ${bin} --dp-only columns ${n} ${reps}"
  echo "  ${bin} --dp-only oracle ${n} ${reps}"
  "${bin}" --dp-only columns "${n}" "${reps}"
  "${bin}" --dp-only oracle "${n}" "${reps}"
  exit 0
fi

events="cache-misses,cache-references,LLC-load-misses,LLC-loads,instructions,cycles"

# Some kernels/containers forbid hardware counters (perf_event_paranoid,
# missing PMU). Probe once and fall back to a clear message instead of a
# half-failed run.
if ! perf stat -e "${events}" -- true >/dev/null 2>&1; then
  echo "perf_cachemiss: perf cannot read hardware counters here (restricted"
  echo "perf_event_paranoid or no PMU in this container) — skipping. Re-run on"
  echo "a host with PMU access, e.g.: sudo sysctl kernel.perf_event_paranoid=1"
  exit 0
fi

for kernel in columns oracle; do
  echo "=== dp kernel: ${kernel} (n=${n}, best of ${reps}) ==="
  perf stat -e "${events}" -- "${bin}" --dp-only "${kernel}" "${n}" "${reps}"
done

echo "Compare LLC-load-misses between the two runs: the columns kernel's"
echo "contiguous (cost, contribution) lanes replace the oracle's pooled-state"
echo "indirection, which is where the wall-clock speedup comes from."
