// Trace records mirroring the paper's dataset schema: each entry carries the
// taxi id, a timestamp, the location, and whether the event is a passenger
// pickup or dropoff (Section IV-A).
#pragma once

#include <cstdint>

#include "geo/grid.hpp"

namespace mcs::trace {

using TaxiId = std::int32_t;
/// Seconds since the Unix epoch.
using Timestamp = std::int64_t;

enum class EventKind : std::uint8_t { kPickup, kDropoff };

struct TraceEvent {
  TaxiId taxi_id = 0;
  Timestamp timestamp = 0;
  geo::LatLon location;
  EventKind kind = EventKind::kPickup;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

}  // namespace mcs::trace
