#include "trace/import.hpp"

#include <charconv>
#include <optional>

#include "common/check.hpp"
#include "common/csv.hpp"

namespace mcs::trace {

namespace {

template <typename T>
std::optional<T> parse_number(const std::string& text) {
  T value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

ImportResult import_trace_csv(const std::string& text, const ImportSpec& spec) {
  const auto table = common::parse_csv(text);
  ImportResult result;
  if (table.header.empty()) {
    return result;
  }
  const auto taxi_col = table.column(spec.taxi_column);
  const auto time_col = table.column(spec.time_column);
  const auto lat_col = table.column(spec.lat_column);
  const auto lon_col = table.column(spec.lon_column);
  const bool has_kind = !spec.kind_column.empty();
  const std::size_t kind_col = has_kind ? table.column(spec.kind_column) : 0;

  std::vector<TraceEvent> events;
  events.reserve(table.rows.size());
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    const auto reject = [&](const std::string& reason) {
      if (!spec.skip_malformed) {
        throw common::PreconditionError("trace import, data row " + std::to_string(r + 1) +
                                        ": " + reason);
      }
      result.skipped.push_back({r + 1, reason});
    };

    const auto taxi = parse_number<TaxiId>(row[taxi_col]);
    const auto time = parse_number<Timestamp>(row[time_col]);
    const auto lat = parse_number<double>(row[lat_col]);
    const auto lon = parse_number<double>(row[lon_col]);
    if (!taxi || !time || !lat || !lon) {
      reject("malformed number");
      continue;
    }
    if (*lat < -90.0 || *lat > 90.0 || *lon < -180.0 || *lon > 180.0) {
      reject("coordinates out of range");
      continue;
    }
    EventKind kind = EventKind::kPickup;
    if (has_kind) {
      const auto& label = row[kind_col];
      if (label == spec.pickup_label) {
        kind = EventKind::kPickup;
      } else if (label == spec.dropoff_label) {
        kind = EventKind::kDropoff;
      } else {
        reject("unknown event kind '" + label + "'");
        continue;
      }
    }
    events.push_back({*taxi, *time, {*lat, *lon}, kind});
  }
  result.dataset = TraceDataset(std::move(events));
  return result;
}

}  // namespace mcs::trace
