// Synthetic Shanghai-taxi trace generator.
//
// The paper evaluates on a proprietary GPS dataset (1692 taxis, Jan 2013).
// We substitute a generative city model whose statistics are calibrated to
// the paper's reported mobility characteristics (see DESIGN.md §4):
//   * each taxi operates inside a personal *territory*: the neighborhood of
//     her home cell plus a personal subset of the city's hotspot cells
//     (real taxis revisit a small recurrent set of locations);
//   * within the territory she follows a ground-truth Markov kernel mixing
//     locality (mass decays exponentially with distance from the current
//     cell), a pull back toward home, hotspot popularity (Zipf), and a
//     deterministic per-taxi preference;
//   * a first-order Markov model learned from the generated events reaches
//     high top-9 next-cell accuracy (Fig 3) and yields predicted PoS mass
//     concentrated in [0, 0.2] (Fig 4).
//
// The ground-truth kernel is exposed so tests can compare learned models
// against the truth.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "trace/dataset.hpp"

namespace mcs::trace {

/// Tunables of the synthetic city. Defaults are the calibrated values used by
/// the benches; tests shrink the counts.
struct CityConfig {
  // -- map ----------------------------------------------------------------
  double cell_side_m = 2000.0;  ///< paper: 2 km x 2 km grid
  // -- fleet and horizon ----------------------------------------------------
  std::int32_t num_taxis = 300;     ///< paper: 1692 (scaled for runtime; configurable)
  std::int32_t num_days = 30;       ///< paper: January 2013
  std::int32_t trips_per_day = 25;  ///< average trips per taxi per day
  // -- mobility kernel ------------------------------------------------------
  std::int32_t locality_radius = 1;   ///< Chebyshev radius of the home district
  double locality_decay = 3.0;        ///< exp(-decay * distance) locality weight
  double home_weight = 0.3;           ///< pull back toward the home district
  std::int32_t num_hotspots = 32;     ///< city-wide hotspot pool
  std::int32_t personal_hotspots = 12;  ///< hotspots in one taxi's territory
  double hotspot_weight = 1.2;        ///< total weight of the hotspot mixture term
  double hotspot_zipf_exponent = 1.6;
  double taxi_preference_spread = 1.2;  ///< per-taxi multiplicative preference in
                                        ///< [1/(1+s), 1+s]
  // -- timing ---------------------------------------------------------------
  Timestamp start_time = 1356998400;  ///< 2013-01-01T00:00:00Z
  std::int32_t min_trip_gap_s = 600;
  std::int32_t max_trip_gap_s = 3600;

  std::uint64_t seed = 20170605;  ///< ICDCS 2017 started June 5th
};

/// A candidate next cell and its ground-truth transition probability.
struct CellProbability {
  geo::CellId cell = geo::kInvalidCell;
  double probability = 0.0;
};

/// Generative model of the city; owns the grid, the hotspot layout, and the
/// per-taxi ground-truth kernels. Deterministic given the config (including
/// its seed).
class CityModel {
 public:
  explicit CityModel(const CityConfig& config);

  const CityConfig& config() const { return config_; }
  const geo::GridMap& grid() const { return grid_; }
  const std::vector<geo::CellId>& hotspots() const { return hotspots_; }

  /// Deterministic home cell of a taxi (where its trace starts).
  geo::CellId home_cell(TaxiId taxi) const;

  /// The taxi's personal hotspots: a deterministic Zipf-biased subset of the
  /// city pool, paired with the taxi-specific popularity weight of each.
  std::vector<std::pair<geo::CellId, double>> personal_hotspots(TaxiId taxi) const;

  /// The taxi's territory: home district plus personal hotspots, ascending,
  /// deduplicated. Every trace cell of the taxi lies in her territory.
  std::vector<geo::CellId> territory(TaxiId taxi) const;

  /// Ground-truth next-cell distribution for `taxi` standing at `cell`,
  /// sorted by descending probability. Probabilities sum to 1. `cell` should
  /// be in the taxi's territory (any valid cell is accepted; the kernel then
  /// describes her return behaviour).
  std::vector<CellProbability> ground_truth_distribution(TaxiId taxi, geo::CellId cell) const;

  /// Samples the next cell for `taxi` at `cell` from the ground truth.
  geo::CellId sample_next_cell(TaxiId taxi, geo::CellId cell, common::Rng& rng) const;

 private:
  double preference(TaxiId taxi, geo::CellId cell) const;

  CityConfig config_;
  geo::GridMap grid_;
  std::vector<geo::CellId> hotspots_;
  std::vector<double> hotspot_popularity_;  ///< aligned with hotspots_
};

/// Generates the full pickup/dropoff event log for the configured fleet and
/// horizon. Deterministic given the config.
TraceDataset generate_trace(const CityModel& city);

}  // namespace mcs::trace
