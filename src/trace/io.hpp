// CSV persistence of trace datasets, mirroring the paper's dataset schema:
// taxi id, timestamp, longitude, latitude, and event kind.
#pragma once

#include <filesystem>
#include <string>

#include "trace/dataset.hpp"

namespace mcs::trace {

/// Serializes a dataset to CSV (columns: taxi_id,timestamp,lat,lon,kind).
std::string to_csv(const TraceDataset& dataset);

/// Parses a dataset from CSV produced by to_csv. Throws PreconditionError on
/// malformed rows (bad numbers, unknown kind).
TraceDataset from_csv(const std::string& text);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_csv(const std::filesystem::path& path, const TraceDataset& dataset);
TraceDataset load_csv(const std::filesystem::path& path);

}  // namespace mcs::trace
