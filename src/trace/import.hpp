// Flexible trace import: real GPS logs rarely match our canonical schema.
// ImportSpec maps arbitrary column names onto the fields we need, accepts
// configurable pickup/dropoff labels, and (optionally) skips malformed rows
// instead of aborting — the usual posture when ingesting a month of
// third-party data with a few bad lines. The strict canonical path stays in
// trace/io.hpp.
#pragma once

#include <string>
#include <vector>

#include "trace/dataset.hpp"

namespace mcs::trace {

/// Column mapping and row policy for importing a foreign CSV.
struct ImportSpec {
  std::string taxi_column = "taxi_id";
  std::string time_column = "timestamp";
  std::string lat_column = "lat";
  std::string lon_column = "lon";
  /// Optional event-kind column; empty = every row is a pickup (some logs
  /// only record position fixes).
  std::string kind_column = "kind";
  std::string pickup_label = "pickup";
  std::string dropoff_label = "dropoff";
  /// true: collect malformed rows in ImportResult::skipped and continue.
  /// false: throw PreconditionError on the first malformed row.
  bool skip_malformed = true;
};

/// One rejected row and why.
struct SkippedRow {
  std::size_t row = 0;  ///< 1-based data-row number (header excluded)
  std::string reason;
};

struct ImportResult {
  TraceDataset dataset;
  std::vector<SkippedRow> skipped;
};

/// Imports CSV text under the given mapping. Missing mapped columns always
/// throw (that is a spec error, not a data error).
ImportResult import_trace_csv(const std::string& text, const ImportSpec& spec = {});

}  // namespace mcs::trace
