// Streaming (mmap-backed) trace storage: a binary columnar snapshot of a
// TraceDataset plus a zero-copy reader (DESIGN.md §9). The text importer
// still parses CSV into an in-memory TraceDataset; write_trace_columns
// writes that dataset once into the column format, and MappedTraceDataset
// then serves any number of later runs directly from the page cache — the
// mobility learner touches only the taxi/timestamp/location lanes it needs,
// the kernel pages them in on demand, and private RSS stays near the index
// size instead of the full event payload.
//
// On-disk format "MCSTRCOL" version 1 (all fields little-endian; the header
// carries an explicit endianness tag and the reader rejects foreign files
// rather than byte-swapping):
//
//   offset 0   char     magic[8]   = "MCSTRCOL"
//          8   u32      version    = 1
//         12   u32      endian_tag = 0x01020304 (written in native order;
//                                    reads back as 0x04030201 on a
//                                    foreign-endian host)
//         16   u64      num_events = n
//         24   u64      num_taxis  = t
//         32   i64      timestamp[n]
//              f64      lat[n]
//              f64      lon[n]
//              i32      taxi_id[n]      (padded to 8 bytes)
//              u8       kind[n]         (padded to 8 bytes)
//              i32      index_taxi[t]   (distinct ids, ascending; padded)
//              u64      index_begin[t+1] (row ranges; entry t equals n)
//
// Rows are sorted exactly like TraceDataset::all_events() — by (taxi id,
// timestamp, pickup-before-dropoff) — so per-taxi rows are one contiguous
// [index_begin[k], index_begin[k+1]) slice per taxi and every column span
// returned by the reader aliases the mapping directly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "trace/dataset.hpp"
#include "trace/record.hpp"

namespace mcs::trace {

/// Magic/version constants of the column format.
inline constexpr char kColumnFileMagic[8] = {'M', 'C', 'S', 'T', 'R', 'C', 'O', 'L'};
inline constexpr std::uint32_t kColumnFileVersion = 1;
inline constexpr std::uint32_t kColumnFileEndianTag = 0x01020304;

/// Writes `dataset` (sorted, indexed) into the column format at `path`,
/// replacing any existing file. Throws common::PreconditionError on I/O
/// failure.
void write_trace_columns(const TraceDataset& dataset, const std::string& path);

/// Read-only, mmap-backed view of a column file. Column accessors return
/// spans that alias the mapping (valid for the lifetime of this object);
/// nothing is deserialized up front, so opening a multi-gigabyte trace costs
/// one page of I/O. Falls back to a heap read of the whole file on platforms
/// without mmap. Move-only.
class MappedTraceDataset {
 public:
  /// Opens and validates `path`. Throws common::PreconditionError when the
  /// file is missing, truncated, or carries a foreign magic / version /
  /// endianness.
  explicit MappedTraceDataset(const std::string& path);
  ~MappedTraceDataset();

  MappedTraceDataset(MappedTraceDataset&& other) noexcept;
  MappedTraceDataset& operator=(MappedTraceDataset&& other) noexcept;
  MappedTraceDataset(const MappedTraceDataset&) = delete;
  MappedTraceDataset& operator=(const MappedTraceDataset&) = delete;

  std::size_t size() const { return num_events_; }
  bool empty() const { return num_events_ == 0; }
  std::size_t num_taxis() const { return num_taxis_; }

  /// Whether the file is served by mmap (false on the heap-read fallback).
  bool is_mapped() const { return mapped_; }

  /// Column lanes, aliasing the mapping; rows sorted by (taxi, time).
  std::span<const Timestamp> timestamps() const { return {timestamps_, num_events_}; }
  std::span<const double> latitudes() const { return {lats_, num_events_}; }
  std::span<const double> longitudes() const { return {lons_, num_events_}; }
  std::span<const TaxiId> taxi_column() const { return {taxis_, num_events_}; }
  std::span<const std::uint8_t> kinds() const { return {kinds_, num_events_}; }

  /// Distinct taxi ids, ascending (copied out of the mapped index — the
  /// same shape TraceDataset::taxi_ids() returns).
  std::vector<TaxiId> taxi_ids() const;

  /// Row range [begin, end) of one taxi; (0, 0) when the taxi is unknown.
  std::pair<std::size_t, std::size_t> range_of(TaxiId taxi) const;

  /// Materializes one row as a TraceEvent (transposes the four lanes back).
  TraceEvent event_at(std::size_t row) const;

  /// Grid-cell visit sequence of one taxi, time order — the reader-side
  /// twin of TraceDataset::cell_sequence, streaming only the two location
  /// lanes of that taxi's row slice.
  std::vector<geo::CellId> cell_sequence(TaxiId taxi, const geo::GridMap& grid) const;

  /// Materializes the whole file back into an in-memory dataset (tests and
  /// tools; defeats the streaming purpose on large files).
  TraceDataset to_dataset() const;

 private:
  void release() noexcept;

  const std::byte* base_ = nullptr;  ///< mapping (or heap fallback buffer)
  std::size_t bytes_ = 0;
  bool mapped_ = false;

  std::size_t num_events_ = 0;
  std::size_t num_taxis_ = 0;
  const Timestamp* timestamps_ = nullptr;
  const double* lats_ = nullptr;
  const double* lons_ = nullptr;
  const TaxiId* taxis_ = nullptr;
  const std::uint8_t* kinds_ = nullptr;
  const TaxiId* index_taxi_ = nullptr;
  const std::uint64_t* index_begin_ = nullptr;  ///< num_taxis_ + 1 entries
};

}  // namespace mcs::trace
