#include "trace/columnfile.hpp"

#include <algorithm>
#include <cstdio>
#include <cerrno>
#include <cstring>
#include <new>

#include "common/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MCS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MCS_HAVE_MMAP 0
#endif

namespace mcs::trace {

namespace {

/// Pads a byte offset up to the 8-byte alignment every column starts on.
std::size_t pad8(std::size_t offset) { return (offset + 7) & ~std::size_t{7}; }

constexpr std::size_t kHeaderBytes = 32;

/// Column offsets for n events and t taxis; `total` is the file size.
struct Layout {
  std::size_t timestamps = 0;
  std::size_t lats = 0;
  std::size_t lons = 0;
  std::size_t taxis = 0;
  std::size_t kinds = 0;
  std::size_t index_taxi = 0;
  std::size_t index_begin = 0;
  std::size_t total = 0;
};

Layout layout_for(std::size_t n, std::size_t t) {
  Layout layout;
  std::size_t offset = kHeaderBytes;
  layout.timestamps = offset;
  offset += n * sizeof(Timestamp);
  layout.lats = offset;
  offset += n * sizeof(double);
  layout.lons = offset;
  offset += n * sizeof(double);
  layout.taxis = offset;
  offset = pad8(offset + n * sizeof(TaxiId));
  layout.kinds = offset;
  offset = pad8(offset + n * sizeof(std::uint8_t));
  layout.index_taxi = offset;
  offset = pad8(offset + t * sizeof(TaxiId));
  layout.index_begin = offset;
  offset += (t + 1) * sizeof(std::uint64_t);
  layout.total = offset;
  return layout;
}

/// RAII stdio handle; good enough for one sequential write pass.
struct File {
  std::FILE* handle = nullptr;
  ~File() {
    if (handle != nullptr) {
      std::fclose(handle);
    }
  }
};

void write_bytes(std::FILE* out, const void* data, std::size_t bytes, const char* what) {
  if (bytes == 0) {
    return;  // empty column: fwrite(nullptr, ...) would be UB
  }
  MCS_EXPECTS(std::fwrite(data, 1, bytes, out) == bytes, what);
}

void pad_to(std::FILE* out, std::size_t& written, std::size_t target) {
  static constexpr char kZeros[8] = {};
  MCS_EXPECTS(target >= written && target - written < sizeof(kZeros), "bad column padding");
  if (target > written) {
    write_bytes(out, kZeros, target - written, "failed to write column padding");
    written = target;
  }
}

}  // namespace

void write_trace_columns(const TraceDataset& dataset, const std::string& path) {
  const auto events = dataset.all_events();  // sorted by (taxi, time)
  const auto ids = dataset.taxi_ids();
  const std::size_t n = events.size();
  const std::size_t t = ids.size();
  const Layout layout = layout_for(n, t);

  File out;
  out.handle = std::fopen(path.c_str(), "wb");
  MCS_EXPECTS(out.handle != nullptr, "cannot open column file for writing");

  char header[kHeaderBytes] = {};
  std::memcpy(header, kColumnFileMagic, sizeof(kColumnFileMagic));
  const std::uint32_t version = kColumnFileVersion;
  const std::uint32_t endian = kColumnFileEndianTag;
  const std::uint64_t n64 = n;
  const std::uint64_t t64 = t;
  std::memcpy(header + 8, &version, sizeof(version));
  std::memcpy(header + 12, &endian, sizeof(endian));
  std::memcpy(header + 16, &n64, sizeof(n64));
  std::memcpy(header + 24, &t64, sizeof(t64));
  write_bytes(out.handle, header, sizeof(header), "failed to write column header");
  std::size_t written = kHeaderBytes;

  // Transpose one column at a time through a reused buffer: peak extra
  // memory is one lane, not a second copy of the events.
  std::vector<Timestamp> timestamps(n);
  for (std::size_t k = 0; k < n; ++k) {
    timestamps[k] = events[k].timestamp;
  }
  write_bytes(out.handle, timestamps.data(), n * sizeof(Timestamp),
              "failed to write timestamp column");
  written += n * sizeof(Timestamp);
  timestamps.clear();
  timestamps.shrink_to_fit();

  std::vector<double> coords(n);
  for (std::size_t k = 0; k < n; ++k) {
    coords[k] = events[k].location.lat;
  }
  write_bytes(out.handle, coords.data(), n * sizeof(double), "failed to write lat column");
  written += n * sizeof(double);
  for (std::size_t k = 0; k < n; ++k) {
    coords[k] = events[k].location.lon;
  }
  write_bytes(out.handle, coords.data(), n * sizeof(double), "failed to write lon column");
  written += n * sizeof(double);
  coords.clear();
  coords.shrink_to_fit();

  std::vector<TaxiId> taxis(n);
  for (std::size_t k = 0; k < n; ++k) {
    taxis[k] = events[k].taxi_id;
  }
  write_bytes(out.handle, taxis.data(), n * sizeof(TaxiId), "failed to write taxi column");
  written += n * sizeof(TaxiId);
  pad_to(out.handle, written, layout.kinds);
  taxis.clear();
  taxis.shrink_to_fit();

  std::vector<std::uint8_t> kinds(n);
  for (std::size_t k = 0; k < n; ++k) {
    kinds[k] = static_cast<std::uint8_t>(events[k].kind);
  }
  write_bytes(out.handle, kinds.data(), n * sizeof(std::uint8_t), "failed to write kind column");
  written += n * sizeof(std::uint8_t);
  pad_to(out.handle, written, layout.index_taxi);

  write_bytes(out.handle, ids.data(), t * sizeof(TaxiId), "failed to write taxi index");
  written += t * sizeof(TaxiId);
  pad_to(out.handle, written, layout.index_begin);

  std::vector<std::uint64_t> begins;
  begins.reserve(t + 1);
  for (TaxiId taxi : ids) {
    const auto range = dataset.events_of(taxi);
    begins.push_back(static_cast<std::uint64_t>(range.data() - events.data()));
  }
  begins.push_back(n);
  write_bytes(out.handle, begins.data(), (t + 1) * sizeof(std::uint64_t),
              "failed to write range index");
  written += (t + 1) * sizeof(std::uint64_t);
  MCS_ENSURES(written == layout.total, "column layout mismatch on write");
  MCS_EXPECTS(std::fflush(out.handle) == 0, "failed to flush column file");
}

MappedTraceDataset::MappedTraceDataset(const std::string& path) {
  // Every failure throws PreconditionError NAMING THE PATH — an open/corrupt
  // file surfaces as a diagnosable exception, never an errno crash or (see
  // the count validation below) an out-of-bounds lane read.
#if MCS_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  MCS_EXPECTS(fd >= 0, "cannot open column file " + path + ": " + std::strerror(errno));
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    MCS_EXPECTS(false, "cannot stat column file " + path + ": " + detail);
  }
  bytes_ = static_cast<std::size_t>(st.st_size);
  if (bytes_ < kHeaderBytes) {
    ::close(fd);
    MCS_EXPECTS(false, "column file " + path + " truncated before header (" +
                           std::to_string(bytes_) + " of " + std::to_string(kHeaderBytes) +
                           " header bytes)");
  }
  void* mapping = ::mmap(nullptr, bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
  const std::string mmap_detail = mapping == MAP_FAILED ? std::strerror(errno) : std::string();
  ::close(fd);  // the mapping keeps the file alive
  MCS_EXPECTS(mapping != MAP_FAILED, "mmap of column file " + path + " failed: " + mmap_detail);
  base_ = static_cast<const std::byte*>(mapping);
  mapped_ = true;
#else
  // No mmap on this platform: fall back to one heap read. Same accessors,
  // no streaming benefit.
  File in;
  in.handle = std::fopen(path.c_str(), "rb");
  MCS_EXPECTS(in.handle != nullptr, "cannot open column file " + path);
  std::fseek(in.handle, 0, SEEK_END);
  bytes_ = static_cast<std::size_t>(std::ftell(in.handle));
  std::fseek(in.handle, 0, SEEK_SET);
  MCS_EXPECTS(bytes_ >= kHeaderBytes, "column file " + path + " truncated before header (" +
                                          std::to_string(bytes_) + " of " +
                                          std::to_string(kHeaderBytes) + " header bytes)");
  auto* buffer = static_cast<std::byte*>(::operator new(bytes_, std::align_val_t{8}));
  if (std::fread(buffer, 1, bytes_, in.handle) != bytes_) {
    ::operator delete(buffer, std::align_val_t{8});
    MCS_EXPECTS(false, "failed to read column file " + path);
  }
  base_ = buffer;
  mapped_ = false;
#endif

  // From here the mapping (or heap buffer) is established but the object is
  // not: a throwing constructor never runs the destructor, so any validation
  // failure must release() before propagating or the resource leaks.
  try {
    MCS_EXPECTS(std::memcmp(base_, kColumnFileMagic, sizeof(kColumnFileMagic)) == 0,
                "not a trace column file (bad magic): " + path);
    std::uint32_t version = 0;
    std::uint32_t endian = 0;
    std::uint64_t n64 = 0;
    std::uint64_t t64 = 0;
    std::memcpy(&version, base_ + 8, sizeof(version));
    std::memcpy(&endian, base_ + 12, sizeof(endian));
    std::memcpy(&n64, base_ + 16, sizeof(n64));
    std::memcpy(&t64, base_ + 24, sizeof(t64));
    MCS_EXPECTS(version == kColumnFileVersion,
                "unsupported trace column file version in " + path);
    MCS_EXPECTS(endian == kColumnFileEndianTag,
                "trace column file " + path + " written on a foreign-endian host");
    // Counts a file of this size cannot possibly hold are corruption — and
    // must be rejected BEFORE layout_for: huge n64/t64 would overflow the
    // layout arithmetic into a wrapped `total` that passes the size check
    // and turns every lane pointer into an out-of-bounds read. Each event
    // occupies at least 29 lane bytes and each taxi at least 12, so counts
    // within these bounds cannot overflow the layout sums.
    const std::size_t lane_bytes = bytes_ - kHeaderBytes;
    constexpr std::size_t kMinEventBytes =
        sizeof(Timestamp) + 2 * sizeof(double) + sizeof(TaxiId) + sizeof(std::uint8_t);
    constexpr std::size_t kMinTaxiBytes = sizeof(TaxiId) + sizeof(std::uint64_t);
    MCS_EXPECTS(n64 <= lane_bytes / kMinEventBytes,
                "column file " + path + " header claims " + std::to_string(n64) +
                    " events, more than its " + std::to_string(bytes_) + " bytes can hold");
    MCS_EXPECTS(t64 <= lane_bytes / kMinTaxiBytes,
                "column file " + path + " header claims " + std::to_string(t64) +
                    " taxis, more than its " + std::to_string(bytes_) + " bytes can hold");
    num_events_ = static_cast<std::size_t>(n64);
    num_taxis_ = static_cast<std::size_t>(t64);
    const Layout layout = layout_for(num_events_, num_taxis_);
    MCS_EXPECTS(bytes_ >= layout.total,
                "column file " + path + " truncated: " + std::to_string(bytes_) + " bytes, " +
                    std::to_string(layout.total) + " needed for its lanes");

    timestamps_ = reinterpret_cast<const Timestamp*>(base_ + layout.timestamps);
    lats_ = reinterpret_cast<const double*>(base_ + layout.lats);
    lons_ = reinterpret_cast<const double*>(base_ + layout.lons);
    taxis_ = reinterpret_cast<const TaxiId*>(base_ + layout.taxis);
    kinds_ = reinterpret_cast<const std::uint8_t*>(base_ + layout.kinds);
    index_taxi_ = reinterpret_cast<const TaxiId*>(base_ + layout.index_taxi);
    index_begin_ = reinterpret_cast<const std::uint64_t*>(base_ + layout.index_begin);
    MCS_EXPECTS(index_begin_[num_taxis_] == num_events_, "corrupt range index in " + path);
  } catch (...) {
    release();
    throw;
  }
}

void MappedTraceDataset::release() noexcept {
  if (base_ == nullptr) {
    return;
  }
#if MCS_HAVE_MMAP
  ::munmap(const_cast<std::byte*>(base_), bytes_);
#else
  ::operator delete(const_cast<std::byte*>(base_), std::align_val_t{8});
#endif
  base_ = nullptr;
  bytes_ = 0;
}

MappedTraceDataset::~MappedTraceDataset() { release(); }

MappedTraceDataset::MappedTraceDataset(MappedTraceDataset&& other) noexcept {
  *this = std::move(other);
}

MappedTraceDataset& MappedTraceDataset::operator=(MappedTraceDataset&& other) noexcept {
  if (this != &other) {
    release();
    base_ = other.base_;
    bytes_ = other.bytes_;
    mapped_ = other.mapped_;
    num_events_ = other.num_events_;
    num_taxis_ = other.num_taxis_;
    timestamps_ = other.timestamps_;
    lats_ = other.lats_;
    lons_ = other.lons_;
    taxis_ = other.taxis_;
    kinds_ = other.kinds_;
    index_taxi_ = other.index_taxi_;
    index_begin_ = other.index_begin_;
    other.base_ = nullptr;
    other.bytes_ = 0;
    other.num_events_ = 0;
    other.num_taxis_ = 0;
  }
  return *this;
}

std::vector<TaxiId> MappedTraceDataset::taxi_ids() const {
  return std::vector<TaxiId>(index_taxi_, index_taxi_ + num_taxis_);
}

std::pair<std::size_t, std::size_t> MappedTraceDataset::range_of(TaxiId taxi) const {
  const TaxiId* end = index_taxi_ + num_taxis_;
  const TaxiId* it = std::lower_bound(index_taxi_, end, taxi);
  if (it == end || *it != taxi) {
    return {0, 0};
  }
  const std::size_t slot = static_cast<std::size_t>(it - index_taxi_);
  return {static_cast<std::size_t>(index_begin_[slot]),
          static_cast<std::size_t>(index_begin_[slot + 1])};
}

TraceEvent MappedTraceDataset::event_at(std::size_t row) const {
  MCS_EXPECTS(row < num_events_, "row out of range");
  TraceEvent event;
  event.taxi_id = taxis_[row];
  event.timestamp = timestamps_[row];
  event.location = geo::LatLon{lats_[row], lons_[row]};
  event.kind = static_cast<EventKind>(kinds_[row]);
  return event;
}

std::vector<geo::CellId> MappedTraceDataset::cell_sequence(TaxiId taxi,
                                                           const geo::GridMap& grid) const {
  const auto [begin, end] = range_of(taxi);
  std::vector<geo::CellId> cells;
  cells.reserve(end - begin);
  for (std::size_t row = begin; row < end; ++row) {
    cells.push_back(grid.cell_of(geo::LatLon{lats_[row], lons_[row]}));
  }
  return cells;
}

TraceDataset MappedTraceDataset::to_dataset() const {
  std::vector<TraceEvent> events;
  events.reserve(num_events_);
  for (std::size_t row = 0; row < num_events_; ++row) {
    events.push_back(event_at(row));
  }
  return TraceDataset(std::move(events));
}

}  // namespace mcs::trace
