#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/distributions.hpp"
#include "common/math.hpp"

namespace mcs::trace {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic uniform in [0, 1) derived from a pair of keys.
double hash01(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t h = mix64(a * 0x9e3779b97f4a7c15ULL ^ mix64(b + 0x2545f4914f6cdd1dULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

CityModel::CityModel(const CityConfig& config)
    : config_(config), grid_(geo::shanghai_bounding_box(), config.cell_side_m) {
  MCS_EXPECTS(config.num_taxis > 0, "city needs at least one taxi");
  MCS_EXPECTS(config.num_days > 0, "horizon must be at least one day");
  MCS_EXPECTS(config.trips_per_day > 0, "taxis must make at least one trip per day");
  MCS_EXPECTS(config.locality_radius >= 1, "locality radius must be at least 1");
  MCS_EXPECTS(config.locality_decay > 0.0, "locality decay must be positive");
  MCS_EXPECTS(config.home_weight >= 0.0, "home weight must be non-negative");
  MCS_EXPECTS(config.num_hotspots > 0, "city needs at least one hotspot");
  MCS_EXPECTS(config.personal_hotspots > 0 && config.personal_hotspots <= config.num_hotspots,
              "personal hotspot count must lie in [1, num_hotspots]");
  MCS_EXPECTS(config.hotspot_weight >= 0.0, "hotspot weight must be non-negative");
  MCS_EXPECTS(config.taxi_preference_spread >= 0.0, "preference spread must be non-negative");
  MCS_EXPECTS(config.min_trip_gap_s > 0 && config.min_trip_gap_s <= config.max_trip_gap_s,
              "trip gap range must be ordered and positive");

  common::Rng rng(config.seed);
  const auto cell_count = static_cast<std::size_t>(grid_.cell_count());
  const auto hotspot_count =
      std::min<std::size_t>(static_cast<std::size_t>(config.num_hotspots), cell_count);
  const auto picks = common::sample_without_replacement(rng, cell_count, hotspot_count);
  hotspots_.reserve(hotspot_count);
  for (std::size_t index : picks) {
    hotspots_.push_back(static_cast<geo::CellId>(index));
  }
  hotspot_popularity_ = common::zipf_weights(hotspot_count, config.hotspot_zipf_exponent);
}

geo::CellId CityModel::home_cell(TaxiId taxi) const {
  // Taxis live near hotspots with Zipf bias, so fleets concentrate downtown.
  const double u = hash01(static_cast<std::uint64_t>(taxi) + 1, 0xb0beULL);
  double cumulative = 0.0;
  for (std::size_t k = 0; k < hotspots_.size(); ++k) {
    cumulative += hotspot_popularity_[k];
    if (u < cumulative) {
      return hotspots_[k];
    }
  }
  return hotspots_.back();
}

std::vector<std::pair<geo::CellId, double>> CityModel::personal_hotspots(TaxiId taxi) const {
  // Deterministic Zipf-biased sample without replacement from the city pool.
  common::Rng rng(mix64(config_.seed ^ (static_cast<std::uint64_t>(taxi) + 0x5157ULL)));
  std::vector<double> weights(hotspot_popularity_);
  std::vector<std::pair<geo::CellId, double>> picks;
  const auto count =
      std::min<std::size_t>(static_cast<std::size_t>(config_.personal_hotspots), weights.size());
  picks.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t pick = common::sample_categorical(rng, weights);
    picks.emplace_back(hotspots_[pick], hotspot_popularity_[pick]);
    weights[pick] = 0.0;
  }
  // Renormalize the taxi-specific popularity over her personal set.
  double total = 0.0;
  for (const auto& [_, w] : picks) {
    total += w;
  }
  for (auto& [_, w] : picks) {
    w /= total;
  }
  std::sort(picks.begin(), picks.end());
  return picks;
}

std::vector<geo::CellId> CityModel::territory(TaxiId taxi) const {
  auto cells = grid_.neighborhood(home_cell(taxi), config_.locality_radius);
  for (const auto& [cell, _] : personal_hotspots(taxi)) {
    cells.push_back(cell);
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  return cells;
}

double CityModel::preference(TaxiId taxi, geo::CellId cell) const {
  const double spread = config_.taxi_preference_spread;
  if (spread <= 0.0) {
    return 1.0;
  }
  // Log-uniform multiplier in [1/(1+spread), 1+spread].
  const double u =
      hash01(static_cast<std::uint64_t>(taxi) + 1, static_cast<std::uint64_t>(cell) + 0x51ULL);
  const double log_hi = std::log1p(spread);
  return std::exp((2.0 * u - 1.0) * log_hi);
}

std::vector<CellProbability> CityModel::ground_truth_distribution(TaxiId taxi,
                                                                  geo::CellId cell) const {
  MCS_EXPECTS(grid_.valid(cell), "invalid current cell");
  const geo::CellId home = home_cell(taxi);
  const auto personal = personal_hotspots(taxi);
  const auto cells = territory(taxi);

  // Kernel weight of a candidate j: locality around the current cell, a pull
  // back toward the home district, and the taxi's hotspot popularity; all
  // modulated by her idiosyncratic preference.
  std::vector<CellProbability> dist;
  dist.reserve(cells.size());
  double total = 0.0;
  for (geo::CellId candidate : cells) {
    double w = std::exp(-config_.locality_decay * grid_.chebyshev(cell, candidate)) +
               config_.home_weight *
                   std::exp(-config_.locality_decay * grid_.chebyshev(home, candidate));
    const auto it = std::lower_bound(personal.begin(), personal.end(),
                                     std::make_pair(candidate, 0.0),
                                     [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it != personal.end() && it->first == candidate) {
      w += config_.hotspot_weight * it->second;
    }
    w *= preference(taxi, candidate);
    dist.push_back({candidate, w});
    total += w;
  }
  MCS_ENSURES(total > 0.0, "ground-truth kernel has no mass");
  for (auto& entry : dist) {
    entry.probability /= total;
  }
  std::sort(dist.begin(), dist.end(), [](const CellProbability& a, const CellProbability& b) {
    if (a.probability != b.probability) {
      return a.probability > b.probability;
    }
    return a.cell < b.cell;
  });
  return dist;
}

geo::CellId CityModel::sample_next_cell(TaxiId taxi, geo::CellId cell, common::Rng& rng) const {
  const auto dist = ground_truth_distribution(taxi, cell);
  std::vector<double> weights;
  weights.reserve(dist.size());
  for (const auto& entry : dist) {
    weights.push_back(entry.probability);
  }
  return dist[common::sample_categorical(rng, weights)].cell;
}

TraceDataset generate_trace(const CityModel& city) {
  const auto& config = city.config();
  const auto& grid = city.grid();
  common::Rng fleet_rng(config.seed ^ 0xfee1db0dULL);

  std::vector<TraceEvent> events;
  const auto total_trips = static_cast<std::size_t>(config.num_taxis) *
                           static_cast<std::size_t>(config.num_days) *
                           static_cast<std::size_t>(config.trips_per_day);
  events.reserve(total_trips * 2);

  for (TaxiId taxi = 0; taxi < config.num_taxis; ++taxi) {
    common::Rng rng = fleet_rng.split();
    geo::CellId current = city.home_cell(taxi);
    Timestamp now = config.start_time + rng.uniform_int(0, 3600);
    const auto trips =
        static_cast<std::size_t>(config.num_days) * static_cast<std::size_t>(config.trips_per_day);
    const auto jitter = [&](geo::CellId c) {
      geo::LatLon p = grid.center_of(c);
      p.lat += rng.uniform(-0.45, 0.45) * grid.lat_step_deg();
      p.lon += rng.uniform(-0.45, 0.45) * grid.lon_step_deg();
      return p;
    };
    for (std::size_t trip = 0; trip < trips; ++trip) {
      // Every event-to-event move is one kernel step: pickup at the current
      // cell, dropoff where the ride ends, and the taxi then roams one more
      // kernel step before its next pickup.
      events.push_back({taxi, now, jitter(current), EventKind::kPickup});
      const geo::CellId dropoff = city.sample_next_cell(taxi, current, rng);
      const Timestamp ride = rng.uniform_int(config.min_trip_gap_s / 2, config.min_trip_gap_s);
      events.push_back({taxi, now + ride, jitter(dropoff), EventKind::kDropoff});
      now += ride + rng.uniform_int(config.min_trip_gap_s, config.max_trip_gap_s);
      current = city.sample_next_cell(taxi, dropoff, rng);
    }
  }
  return TraceDataset(std::move(events));
}

}  // namespace mcs::trace
