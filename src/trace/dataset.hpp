// In-memory trace dataset: owns the events, groups them per taxi in time
// order, and extracts per-taxi grid-cell visit sequences — the input of the
// Markov mobility learner.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "trace/record.hpp"

namespace mcs::trace {

/// Owning container of trace events with per-taxi time-ordered views.
class TraceDataset {
 public:
  TraceDataset() = default;
  explicit TraceDataset(std::vector<TraceEvent> events);

  void add(const TraceEvent& event);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Distinct taxi ids, ascending.
  std::vector<TaxiId> taxi_ids() const;

  /// Events of one taxi, sorted by (timestamp, pickup-before-dropoff).
  /// The span stays valid until the dataset is modified.
  std::span<const TraceEvent> events_of(TaxiId taxi) const;

  /// All events grouped by taxi then time; spans index into this storage.
  std::span<const TraceEvent> all_events() const;

  /// Grid-cell visit sequence of one taxi (one entry per event, time order).
  std::vector<geo::CellId> cell_sequence(TaxiId taxi, const geo::GridMap& grid) const;

  /// Heap footprint of the dataset: event storage plus the per-taxi index
  /// arrays. Regression guard for the single-copy invariant — indexing must
  /// not duplicate the event payload (tests/trace_dataset_test.cpp).
  std::size_t memory_bytes() const;

 private:
  void reindex() const;

  // The events themselves, sorted in place by (taxi, time) on reindex — the
  // dataset holds exactly ONE copy of the payload; the lazily rebuilt index
  // is only the distinct ids plus per-taxi [begin, end) ranges into it.
  // In-place sorting is unobservable: nothing exposes insertion order, and
  // stable_sort keeps tied events (same taxi, timestamp, kind) in their
  // insertion order across repeated add()/reindex() cycles exactly as the
  // old sorted-copy index did.
  mutable std::vector<TraceEvent> events_;
  mutable bool index_dirty_ = true;
  mutable std::vector<TaxiId> ids_;
  mutable std::vector<std::pair<std::size_t, std::size_t>> ranges_;
};

}  // namespace mcs::trace
