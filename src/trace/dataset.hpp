// In-memory trace dataset: owns the events, groups them per taxi in time
// order, and extracts per-taxi grid-cell visit sequences — the input of the
// Markov mobility learner.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "trace/record.hpp"

namespace mcs::trace {

/// Owning container of trace events with per-taxi time-ordered views.
class TraceDataset {
 public:
  TraceDataset() = default;
  explicit TraceDataset(std::vector<TraceEvent> events);

  void add(const TraceEvent& event);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Distinct taxi ids, ascending.
  std::vector<TaxiId> taxi_ids() const;

  /// Events of one taxi, sorted by (timestamp, pickup-before-dropoff).
  /// The span stays valid until the dataset is modified.
  std::span<const TraceEvent> events_of(TaxiId taxi) const;

  /// All events grouped by taxi then time; spans index into this storage.
  std::span<const TraceEvent> all_events() const;

  /// Grid-cell visit sequence of one taxi (one entry per event, time order).
  std::vector<geo::CellId> cell_sequence(TaxiId taxi, const geo::GridMap& grid) const;

 private:
  void reindex() const;

  std::vector<TraceEvent> events_;
  // Lazily rebuilt index: events sorted by (taxi, time), plus per-taxi ranges.
  mutable bool index_dirty_ = true;
  mutable std::vector<TraceEvent> sorted_;
  mutable std::vector<TaxiId> ids_;
  mutable std::vector<std::pair<std::size_t, std::size_t>> ranges_;
};

}  // namespace mcs::trace
