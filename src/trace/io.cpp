#include "trace/io.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/csv.hpp"

namespace mcs::trace {

namespace {

const char* kind_name(EventKind kind) {
  return kind == EventKind::kPickup ? "pickup" : "dropoff";
}

EventKind kind_from_name(const std::string& name) {
  if (name == "pickup") {
    return EventKind::kPickup;
  }
  if (name == "dropoff") {
    return EventKind::kDropoff;
  }
  throw common::PreconditionError("unknown trace event kind: " + name);
}

template <typename T>
T parse_number(const std::string& text) {
  T value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  MCS_EXPECTS(ec == std::errc() && ptr == end, "malformed number in trace CSV: " + text);
  return value;
}

std::string format_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.7f", value);
  return buffer;
}

}  // namespace

std::string to_csv(const TraceDataset& dataset) {
  common::CsvTable table;
  table.header = {"taxi_id", "timestamp", "lat", "lon", "kind"};
  for (const auto& event : dataset.all_events()) {
    table.rows.push_back({std::to_string(event.taxi_id), std::to_string(event.timestamp),
                          format_double(event.location.lat), format_double(event.location.lon),
                          kind_name(event.kind)});
  }
  return common::to_csv(table);
}

TraceDataset from_csv(const std::string& text) {
  const auto table = common::parse_csv(text);
  if (table.header.empty()) {
    return TraceDataset{};
  }
  const auto taxi_col = table.column("taxi_id");
  const auto time_col = table.column("timestamp");
  const auto lat_col = table.column("lat");
  const auto lon_col = table.column("lon");
  const auto kind_col = table.column("kind");

  std::vector<TraceEvent> events;
  events.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    events.push_back({parse_number<TaxiId>(row[taxi_col]), parse_number<Timestamp>(row[time_col]),
                      {parse_number<double>(row[lat_col]), parse_number<double>(row[lon_col])},
                      kind_from_name(row[kind_col])});
  }
  return TraceDataset(std::move(events));
}

void save_csv(const std::filesystem::path& path, const TraceDataset& dataset) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open trace file for writing: " + path.string());
  }
  out << to_csv(dataset);
  if (!out) {
    throw std::runtime_error("failed writing trace file: " + path.string());
  }
}

TraceDataset load_csv(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open trace file for reading: " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_csv(buffer.str());
}

}  // namespace mcs::trace
