#include "trace/dataset.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mcs::trace {

TraceDataset::TraceDataset(std::vector<TraceEvent> events) : events_(std::move(events)) {}

void TraceDataset::add(const TraceEvent& event) {
  events_.push_back(event);
  index_dirty_ = true;
}

void TraceDataset::reindex() const {
  if (!index_dirty_) {
    return;
  }
  // Sort the one and only event array in place (stable: tied events keep
  // insertion order, matching the behaviour of the old sorted-copy index).
  std::stable_sort(events_.begin(), events_.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.taxi_id != b.taxi_id) {
      return a.taxi_id < b.taxi_id;
    }
    if (a.timestamp != b.timestamp) {
      return a.timestamp < b.timestamp;
    }
    return a.kind == EventKind::kPickup && b.kind == EventKind::kDropoff;
  });
  ids_.clear();
  ranges_.clear();
  std::size_t begin = 0;
  for (std::size_t k = 0; k <= events_.size(); ++k) {
    if (k == events_.size() || (k > begin && events_[k].taxi_id != events_[begin].taxi_id)) {
      if (k > begin) {
        ids_.push_back(events_[begin].taxi_id);
        ranges_.emplace_back(begin, k);
      }
      begin = k;
    }
  }
  index_dirty_ = false;
}

std::vector<TaxiId> TraceDataset::taxi_ids() const {
  reindex();
  return ids_;
}

std::span<const TraceEvent> TraceDataset::events_of(TaxiId taxi) const {
  reindex();
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), taxi);
  if (it == ids_.end() || *it != taxi) {
    return {};
  }
  const auto& [begin, end] = ranges_[static_cast<std::size_t>(it - ids_.begin())];
  return std::span<const TraceEvent>(events_.data() + begin, end - begin);
}

std::span<const TraceEvent> TraceDataset::all_events() const {
  reindex();
  return events_;
}

std::size_t TraceDataset::memory_bytes() const {
  return events_.capacity() * sizeof(TraceEvent) + ids_.capacity() * sizeof(TaxiId) +
         ranges_.capacity() * sizeof(std::pair<std::size_t, std::size_t>);
}

std::vector<geo::CellId> TraceDataset::cell_sequence(TaxiId taxi, const geo::GridMap& grid) const {
  const auto events = events_of(taxi);
  std::vector<geo::CellId> cells;
  cells.reserve(events.size());
  for (const auto& event : events) {
    cells.push_back(grid.cell_of(event.location));
  }
  return cells;
}

}  // namespace mcs::trace
