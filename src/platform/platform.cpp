#include "platform/platform.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"
#include "common/distributions.hpp"
#include "platform/journal.hpp"
#include "sim/execution.hpp"
#include "sim/metrics.hpp"

namespace mcs::platform {

namespace {

/// The service configuration a campaign's rounds run under: the campaign's
/// mechanism knobs plus its shard count (cell-modulo policy). The service's
/// own journal stays off — the campaign journal also captures platform state
/// (positions, rng, reputation), which the round-outcome journal cannot.
service::ServiceConfig service_config_for(const CampaignConfig& config) {
  service::ServiceConfig service_config;
  service_config.shards = service::ShardMap(config.shards);
  service_config.mechanism =
      auction::MechanismConfig{.alpha = config.alpha,
                               .time_budget_seconds = config.auction_time_budget_seconds,
                               .multi_task = {.critical_bid_rule = config.critical_bid_rule}};
  return service_config;
}

void accumulate(CampaignReport& report, const RoundReport& round) {
  report.total_payout += round.payout;
  report.total_social_cost += round.social_cost;
  report.total_tasks_posted += round.tasks_posted;
  report.total_tasks_completed += round.tasks_completed;
  report.rounds_held += round.held ? 1 : 0;
  report.telemetry_totals += round.telemetry;
  for (trace::TaxiId taxi : round.winning_taxis) {
    ++report.wins_by_taxi[taxi];
  }
}

}  // namespace

double CampaignReport::completion_rate() const {
  if (total_tasks_posted == 0) {
    return 0.0;
  }
  return static_cast<double>(total_tasks_completed) / static_cast<double>(total_tasks_posted);
}

std::size_t CampaignReport::total_wins() const {
  std::size_t total = 0;
  for (const auto& [_, wins] : wins_by_taxi) {
    total += wins;
  }
  return total;
}

double CampaignReport::win_concentration() const {
  const auto total = total_wins();
  if (total == 0) {
    return 0.0;
  }
  double hhi = 0.0;
  for (const auto& [_, wins] : wins_by_taxi) {
    const double share = static_cast<double>(wins) / static_cast<double>(total);
    hhi += share * share;
  }
  return hhi;
}

double CampaignReport::top_winner_share() const {
  const auto total = total_wins();
  if (total == 0) {
    return 0.0;
  }
  std::size_t best = 0;
  for (const auto& [_, wins] : wins_by_taxi) {
    best = std::max(best, wins);
  }
  return static_cast<double>(best) / static_cast<double>(total);
}

Platform::Platform(const trace::CityModel& city, const mobility::FleetModel& fleet,
                   const CampaignConfig& config)
    : city_(city),
      fleet_(fleet),
      config_(config),
      service_(service_config_for(config)),
      rng_(config.seed) {
  MCS_EXPECTS(config.rounds > 0, "campaign needs at least one round");
  MCS_EXPECTS(config.num_tasks > 0, "campaign needs at least one task per round");
  MCS_EXPECTS(config.num_bidders > 0, "campaign needs at least one bidder per round");
  MCS_EXPECTS(config.pos_requirement > 0.0 && config.pos_requirement < 1.0,
              "PoS requirement must lie in (0, 1)");
  MCS_EXPECTS(config.alpha > 0.0, "reward scaling factor must be positive");
  MCS_EXPECTS(config.budget > 0.0, "budget must be positive");
  MCS_EXPECTS(config.availability > 0.0 && config.availability <= 1.0,
              "availability must lie in (0, 1]");
  positions_.reserve(fleet.taxis().size());
  for (trace::TaxiId taxi : fleet.taxis()) {
    positions_.push_back(city.home_cell(taxi));
  }
}

geo::CellId Platform::position_of(trace::TaxiId taxi) const {
  const auto& taxis = fleet_.taxis();
  const auto it = std::lower_bound(taxis.begin(), taxis.end(), taxi);
  MCS_EXPECTS(it != taxis.end() && *it == taxi, "unknown taxi id");
  return positions_[static_cast<std::size_t>(it - taxis.begin())];
}

CampaignReport Platform::run_campaign() {
  CampaignReport report;
  std::size_t start_round = 0;
  std::unique_ptr<JournalWriter> journal;
  if (!config_.journal_path.empty()) {
    // Resume: fold every journaled round back into the report and restore
    // the platform state captured after the last one. The replayed rounds
    // are bit-identical to what an uninterrupted run produced, because the
    // journal stores every double at full precision.
    const auto replayed = load_journal(config_.journal_path);
    const auto fingerprint = config_fingerprint(config_);
    if (replayed.config.empty()) {
      MCS_EXPECTS(replayed.entries.empty(),
                  "campaign journal has rounds but no config fingerprint");
    } else {
      MCS_EXPECTS(replayed.config == fingerprint,
                  "campaign journal was written under a different campaign "
                  "configuration; resuming would splice incompatible rounds");
    }
    for (std::size_t k = 0; k < replayed.entries.size(); ++k) {
      const auto& entry = replayed.entries[k];
      MCS_EXPECTS(entry.report.round == k, "campaign journal rounds are not contiguous");
      accumulate(report, entry.report);
      report.rounds.push_back(entry.report);
    }
    if (!replayed.entries.empty()) {
      const auto& last = replayed.entries.back();
      MCS_EXPECTS(last.positions.size() == positions_.size(),
                  "campaign journal was written for a different fleet");
      positions_ = last.positions;
      rng_.set_state(last.rng_state);
      reputation_ = ReputationTracker{};
      for (const auto& [taxi, record] : last.reputation) {
        reputation_.restore(taxi, record);
      }
      start_round = last.report.round + 1;
    }
    // Drop any torn tail before appending: the re-run rounds must follow the
    // last complete block, or the next replay would meet the torn `begin`
    // with complete blocks after it and reject the whole journal.
    if (std::filesystem::exists(config_.journal_path) &&
        std::filesystem::file_size(config_.journal_path) > replayed.valid_bytes) {
      std::filesystem::resize_file(config_.journal_path, replayed.valid_bytes);
    }
    journal = std::make_unique<JournalWriter>(config_.journal_path, fingerprint);
  }
  for (std::size_t round = start_round; round < config_.rounds; ++round) {
    const double budget_left = config_.budget - report.total_payout;
    auto round_report = run_round(round, budget_left);
    if (journal) {
      JournalEntry entry;
      entry.report = round_report;
      entry.positions = positions_;
      entry.rng_state = rng_.state();
      entry.reputation.assign(reputation_.records().begin(), reputation_.records().end());
      journal->append(entry);
    }
    accumulate(report, round_report);
    report.rounds.push_back(std::move(round_report));
  }
  return report;
}

std::vector<geo::CellId> Platform::demand_tasks(
    const std::vector<mobility::MobilityUser>& pool) {
  const auto ranked = sim::popular_cells(pool);
  if (ranked.size() < config_.num_tasks) {
    return {};
  }
  switch (config_.task_policy) {
    case TaskPolicy::kMostCovered:
      return {ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(config_.num_tasks)};
    case TaskPolicy::kZipfDemand: {
      auto weights = common::zipf_weights(ranked.size(), config_.demand_zipf_exponent);
      std::vector<geo::CellId> tasks;
      tasks.reserve(config_.num_tasks);
      for (std::size_t k = 0; k < config_.num_tasks; ++k) {
        const std::size_t pick = common::sample_categorical(rng_, weights);
        tasks.push_back(ranked[pick]);
        weights[pick] = 0.0;  // without replacement
      }
      return tasks;
    }
    case TaskPolicy::kUniformRandom: {
      const auto picks =
          common::sample_without_replacement(rng_, ranked.size(), config_.num_tasks);
      std::vector<geo::CellId> tasks;
      tasks.reserve(picks.size());
      for (std::size_t pick : picks) {
        tasks.push_back(ranked[pick]);
      }
      return tasks;
    }
  }
  throw common::PreconditionError("unknown task policy");
}

void Platform::advance_positions() {
  const auto& taxis = fleet_.taxis();
  for (std::size_t k = 0; k < taxis.size(); ++k) {
    positions_[k] = city_.sample_next_cell(taxis[k], positions_[k], rng_);
  }
}

RoundReport Platform::run_round(std::size_t round, double budget_left) {
  RoundReport report;
  report.round = round;

  // Mobile users bid from wherever the previous rounds left them; off-shift
  // taxis sit this round out but keep moving.
  std::vector<mobility::MobilityUser> pool;
  const auto& taxis = fleet_.taxis();
  mobility::UserDerivationConfig user_config;
  for (std::size_t k = 0; k < taxis.size(); ++k) {
    if (!rng_.bernoulli(config_.availability)) {
      continue;
    }
    auto user = mobility::derive_user_at(fleet_, taxis[k], positions_[k], user_config, rng_);
    if (user.has_value()) {
      pool.push_back(std::move(*user));
    }
  }
  if (pool.empty()) {
    advance_positions();
    return report;
  }

  // The taxis move one ground-truth step this slot regardless of the auction;
  // winners' realized moves also decide execution under kGroundTruthMobility.
  const auto positions_before = positions_;
  advance_positions();

  if (budget_left <= 0.0) {
    return report;  // budget exhausted: no auction held
  }

  sim::ScenarioParams params;
  params.pos_requirement = config_.pos_requirement;
  params.requirement_cap_fraction = config_.requirement_cap_fraction;
  const auto task_cells = demand_tasks(pool);
  if (task_cells.empty()) {
    return report;
  }
  auto scenario = sim::build_multi_task_at(pool, task_cells,
                                           std::min(config_.num_bidders, pool.size()), params,
                                           rng_);
  if (!scenario.has_value() || !scenario->instance.is_feasible()) {
    return report;  // nothing coverable this slot
  }

  // Isolated dispatch through the campaign service: a throwing or
  // deadline-exceeding auction skips this round (captured in the report)
  // instead of aborting the whole campaign. Submit-then-wait keeps this
  // blocking loop's behaviour while the async surface stays available to
  // direct service users.
  const auto round_id =
      service_.submit_round(service::GeoRound{scenario->instance, scenario->task_cells});
  const auto slot = service_.wait_outcome(round_id);
  report.degraded = slot.outcome.degraded;
  report.error = slot.error;
  report.telemetry = slot.outcome.telemetry;
  if (!slot.ok() || !slot.outcome.allocation.feasible) {
    return report;
  }
  const auto& outcome = slot.outcome;

  report.held = true;
  report.winners = outcome.allocation.winners.size();
  report.social_cost = outcome.allocation.total_cost;
  report.winning_taxis.reserve(outcome.allocation.winners.size());
  for (auction::UserId winner : outcome.allocation.winners) {
    report.winning_taxis.push_back(
        pool[scenario->participants[static_cast<std::size_t>(winner)]].taxi);
  }
  std::sort(report.winning_taxis.begin(), report.winning_taxis.end());
  report.tasks_posted = scenario->instance.num_tasks();
  {
    double required = 0.0;
    for (double t : scenario->instance.requirement_pos) {
      required += t;
    }
    report.mean_required_pos = required / static_cast<double>(report.tasks_posted);
    report.mean_achieved_pos =
        sim::average_achieved_pos(scenario->instance, outcome.allocation.winners);
  }

  // Realize execution.
  std::vector<bool> winner_any_success;
  std::vector<bool> task_completed(scenario->instance.num_tasks(), false);
  if (config_.execution == ExecutionModel::kDeclaredBernoulli) {
    const auto run = sim::simulate(scenario->instance, outcome.allocation.winners, rng_);
    winner_any_success = run.winner_any_success;
    task_completed = run.task_completed;
  } else {
    // Ground truth: a winner completes exactly the task (if any) at the cell
    // her realized move landed on. Her realized move is the position update
    // sampled above from her position at bidding time.
    winner_any_success.reserve(outcome.allocation.winners.size());
    for (auction::UserId winner : outcome.allocation.winners) {
      const auto& user = pool[scenario->participants[static_cast<std::size_t>(winner)]];
      const auto it = std::lower_bound(taxis.begin(), taxis.end(), user.taxi);
      MCS_ENSURES(it != taxis.end() && *it == user.taxi, "pool user missing from fleet");
      const auto taxi_index = static_cast<std::size_t>(it - taxis.begin());
      (void)positions_before;  // user.current_cell == positions_before[taxi_index]
      const geo::CellId landed = positions_[taxi_index];
      bool any = false;
      const auto& bid = scenario->instance.users[static_cast<std::size_t>(winner)];
      for (std::size_t j = 0; j < bid.tasks.size(); ++j) {
        const auto task = static_cast<std::size_t>(bid.tasks[j]);
        if (scenario->task_cells[task] == landed) {
          any = true;
          task_completed[task] = true;
        }
      }
      winner_any_success.push_back(any);
    }
  }

  report.tasks_completed = static_cast<std::size_t>(
      std::count(task_completed.begin(), task_completed.end(), true));
  report.payout = sim::settle_payout(outcome, winner_any_success);

  // One reputation observation per winner: declared overall success
  // probability vs what actually happened.
  for (std::size_t k = 0; k < outcome.allocation.winners.size(); ++k) {
    const auto winner = outcome.allocation.winners[k];
    const auto& user = pool[scenario->participants[static_cast<std::size_t>(winner)]];
    const double declared =
        scenario->instance.users[static_cast<std::size_t>(winner)].any_success_probability();
    reputation_.record(user.taxi, declared, winner_any_success[k]);
  }
  return report;
}

}  // namespace mcs::platform
