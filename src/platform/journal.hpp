// Append-only campaign journal (mcs-journal-v1): crash-safe checkpointing
// for multi-round campaigns. After every completed round the platform
// appends one self-contained block holding the round's report plus the full
// state needed to resume — fleet positions, the 256-bit RNG state, and the
// reputation ledger — so a killed campaign restarts from the last journaled
// round and replays to a state bit-identical to an uninterrupted run
// (doubles are written with %.17g and round-trip exactly).
//
// Format, following the auction::io text conventions ('#' comments and blank
// lines ignored; the `config` and `error` directives instead take the raw
// remainder of their line, since captured exception text may contain
// anything — though serialization flattens newlines in error text to spaces,
// so a block can never be torn open by the message it carries):
//
//     mcs-journal-v1
//     config seed=77 tasks=6 ...        # fingerprint of the journaling run
//     begin round 0
//     held 1
//     degraded 0
//     winners 2
//     social_cost 3.5
//     payout 12.25
//     tasks_posted 8
//     tasks_completed 5
//     mean_required_pos 0.6
//     mean_achieved_pos 0.71
//     winning_taxis 2 14 37          # count, then taxi ids
//     error <raw text>               # only present when non-empty
//     positions 50 102 97 ...        # count, then one cell per fleet taxi
//     rng 123 456 789 1011           # xoshiro256** state words
//     reputation 2                   # count, then one `rep` line each
//     rep 14 3 2.1 0.63 2            # taxi rounds expected variance realized
//     end round 0
//
// A block is only valid once its newline-terminated `end round N` line is
// present, so a torn tail (the process died mid-append) is detected and
// dropped on replay; corruption BEFORE the last complete block throws
// instead. Resuming truncates the file to the valid prefix before appending,
// so a torn tail can never merge with the re-run rounds written after it.
//
// The `config` line fingerprints the campaign knobs that determine each
// round's outcome (seed, task/bidder counts, alpha, budget, ...). Resume
// refuses a journal whose fingerprint differs from the resuming campaign's:
// splicing rounds journaled under one configuration into a campaign run
// under another would silently void the bit-identical-resume guarantee. The
// round count is deliberately not part of the fingerprint — resuming with a
// larger `rounds` than the killed run is exactly how a campaign continues.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "platform/platform.hpp"

namespace mcs::platform {

/// One journaled round: the report plus the platform state snapshot taken
/// right after the round ran.
struct JournalEntry {
  RoundReport report;
  std::vector<geo::CellId> positions;  ///< indexed like FleetModel::taxis()
  std::array<std::uint64_t, 4> rng_state{};
  /// Full reputation ledger, ascending by taxi id.
  std::vector<std::pair<trace::TaxiId, ReputationRecord>> reputation;
};

/// Serializes one entry as a journal block (without the file header).
/// Newlines inside the error text are flattened to spaces — the format is
/// line-oriented, and a raw '\n' would terminate the directive early and
/// corrupt every block after it.
std::string to_text(const JournalEntry& entry);

/// The campaign-config fingerprint written as the journal's `config` line.
/// Covers every knob that shapes a round's outcome; excludes `rounds` (see
/// the format notes above) and `journal_path` itself.
std::string config_fingerprint(const CampaignConfig& config);

/// A parsed journal: the complete entries, plus what resume needs to append
/// safely after a crash.
struct ReplayedJournal {
  std::vector<JournalEntry> entries;
  /// Byte length of the valid prefix — header, `config` line, and every
  /// complete block. Anything past it is a torn tail from a crashed append;
  /// resume truncates the file here before appending new rounds.
  std::size_t valid_bytes = 0;
  /// Raw `config` fingerprint recorded when the journal was created; empty
  /// when the journal has none.
  std::string config;
};

/// Parses a full journal file's text. Throws PreconditionError (with the
/// offending line number) on a bad header or corruption before the last
/// complete block; an incomplete trailing block is silently dropped.
ReplayedJournal parse_journal(const std::string& text);

/// Convenience wrapper around parse_journal returning just the entries.
std::vector<JournalEntry> journal_from_text(const std::string& text);

/// Loads and parses a journal file. A missing file is an empty journal (the
/// campaign simply has not started); other I/O failures throw
/// std::runtime_error naming the path.
ReplayedJournal load_journal(const std::filesystem::path& path);

/// Convenience wrapper around load_journal returning just the entries.
std::vector<JournalEntry> replay_journal(const std::filesystem::path& path);

/// Appends entries to a journal file, creating it (with the format header
/// and, when non-empty, the `config` fingerprint line) when absent or empty.
/// Each append is flushed before returning, so the journal never lags the
/// campaign by more than the block being written.
class JournalWriter {
 public:
  explicit JournalWriter(const std::filesystem::path& path,
                         const std::string& config_fingerprint = {});

  void append(const JournalEntry& entry);

 private:
  std::filesystem::path path_;
  std::ofstream out_;
};

}  // namespace mcs::platform
