// Append-only campaign journal (mcs-journal-v1): crash-safe checkpointing
// for multi-round campaigns. After every completed round the platform
// appends one self-contained block holding the round's report plus the full
// state needed to resume — fleet positions, the 256-bit RNG state, and the
// reputation ledger — so a killed campaign restarts from the last journaled
// round and replays to a state bit-identical to an uninterrupted run
// (doubles are written with %.17g and round-trip exactly).
//
// Format, following the auction::io text conventions ('#' comments and blank
// lines ignored; the `error` directive instead takes the raw remainder of
// its line, since captured exception text may contain anything):
//
//     mcs-journal-v1
//     begin round 0
//     held 1
//     degraded 0
//     winners 2
//     social_cost 3.5
//     payout 12.25
//     tasks_posted 8
//     tasks_completed 5
//     mean_required_pos 0.6
//     mean_achieved_pos 0.71
//     winning_taxis 2 14 37          # count, then taxi ids
//     error <raw text>               # only present when non-empty
//     positions 50 102 97 ...        # count, then one cell per fleet taxi
//     rng 123 456 789 1011           # xoshiro256** state words
//     reputation 2                   # count, then one `rep` line each
//     rep 14 3 2.1 0.63 2            # taxi rounds expected variance realized
//     end round 0
//
// A block is only valid once its `end round N` terminator is present, so a
// torn tail (the process died mid-append) is detected and dropped on
// replay; corruption BEFORE the last complete block throws instead.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "platform/platform.hpp"

namespace mcs::platform {

/// One journaled round: the report plus the platform state snapshot taken
/// right after the round ran.
struct JournalEntry {
  RoundReport report;
  std::vector<geo::CellId> positions;  ///< indexed like FleetModel::taxis()
  std::array<std::uint64_t, 4> rng_state{};
  /// Full reputation ledger, ascending by taxi id.
  std::vector<std::pair<trace::TaxiId, ReputationRecord>> reputation;
};

/// Serializes one entry as a journal block (without the file header).
std::string to_text(const JournalEntry& entry);

/// Parses a full journal file's text. Throws PreconditionError (with the
/// offending line number) on a bad header or corruption before the last
/// complete block; an incomplete trailing block is silently dropped.
std::vector<JournalEntry> journal_from_text(const std::string& text);

/// Loads and replays a journal file. A missing file is an empty journal (the
/// campaign simply has not started); other I/O failures throw
/// std::runtime_error naming the path.
std::vector<JournalEntry> replay_journal(const std::filesystem::path& path);

/// Appends entries to a journal file, creating it (with the format header)
/// when absent or empty. Each append is flushed before returning, so the
/// journal never lags the campaign by more than the block being written.
class JournalWriter {
 public:
  explicit JournalWriter(const std::filesystem::path& path);

  void append(const JournalEntry& entry);

 private:
  std::filesystem::path path_;
  std::ofstream out_;
};

}  // namespace mcs::platform
