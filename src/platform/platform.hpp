// The crowdsensing platform of the paper's Fig 1, as a running system.
//
// The paper evaluates single sealed-bid auctions; a deployed platform runs
// them continuously: it posts location tasks each time slot (Step 2),
// collects bids from mobile users whose positions — and therefore predicted
// PoS — evolve between slots (Steps 3-4), runs the strategy-proof multi-task
// mechanism (Step 5), observes execution, settles the execution-contingent
// rewards (Step 6), and publishes results (Step 7). This module implements
// that loop: a multi-round campaign over the synthetic city, with
//   * per-round user mobility: each taxi's position advances one ground-truth
//     kernel step between rounds;
//   * two execution models: Bernoulli draws on the declared PoS (the paper's
//     implicit model), or ground-truth mobility (a task completes iff the
//     taxi's actual next move lands on the task cell — which also becomes her
//     position for the next round);
//   * budget accounting: the platform stops holding auctions once its
//     cumulative payout reaches the campaign budget.
#pragma once

#include <cstdint>
#include <filesystem>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "mobility/pos.hpp"
#include "platform/reputation.hpp"
#include "service/service.hpp"
#include "sim/scenario.hpp"
#include "trace/generator.hpp"

namespace mcs::platform {

/// How the society's per-round task demand (Fig 1, Step 1) is generated.
enum class TaskPolicy {
  /// Post the cells most users can serve — maximal competition per task.
  kMostCovered,
  /// Sample cells with Zipf bias by coverage rank: popular places are asked
  /// for more often, but the tail gets demand too.
  kZipfDemand,
  /// Sample uniformly among all serviceable cells.
  kUniformRandom,
};

/// How winners' task completion is realized each round.
enum class ExecutionModel {
  /// Bernoulli draw per (winner, task) with her declared PoS — the model the
  /// paper's evaluation implies.
  kDeclaredBernoulli,
  /// The taxi actually moves one ground-truth kernel step; a task completes
  /// iff her realized next cell is the task cell. Exposes model error: the
  /// declared (learned) PoS only approximates this process.
  kGroundTruthMobility,
};

struct CampaignConfig {
  std::size_t rounds = 10;
  std::size_t num_tasks = 12;    ///< tasks posted per round
  std::size_t num_bidders = 60;  ///< users invited per round
  double pos_requirement = 0.7;
  /// Per-round feasibility cap (fraction of achievable PoS); 0 disables and
  /// infeasible rounds are simply skipped.
  double requirement_cap_fraction = 0.9;
  double alpha = 10.0;
  auction::CriticalBidRule critical_bid_rule = auction::CriticalBidRule::kBinarySearch;
  TaskPolicy task_policy = TaskPolicy::kMostCovered;
  double demand_zipf_exponent = 1.0;  ///< for TaskPolicy::kZipfDemand
  /// Probability a taxi is on shift (able to bid) in a given round; off-shift
  /// taxis still move through the city. 1 = everyone always available.
  double availability = 1.0;
  ExecutionModel execution = ExecutionModel::kGroundTruthMobility;
  /// The campaign stops holding auctions once cumulative payout reaches this.
  double budget = std::numeric_limits<double>::infinity();
  /// Per-auction wall-clock budget in seconds (0 = unlimited); a round whose
  /// auction exceeds it falls back per the mechanism's degradation ladder,
  /// and a still-failing round is skipped instead of aborting the campaign.
  double auction_time_budget_seconds = 0.0;
  /// When non-empty, every completed round is appended to this journal file
  /// (format mcs-journal-v1, see platform/journal.hpp) and run_campaign
  /// resumes from the last journaled round after a crash or kill.
  std::filesystem::path journal_path;
  /// Geo shards each round's auction is partitioned into (cell-modulo
  /// policy, see service/shard.hpp). 1 — the default, and the only value
  /// legacy journals were written under — is the unsharded pass-through,
  /// bit-identical to dispatching the flat instance; > 1 trades the border
  /// straddlers' out-of-shard task entries for per-shard mechanism runs.
  std::size_t shards = 1;
  std::uint64_t seed = 1;
};

/// What happened in one round.
struct RoundReport {
  std::size_t round = 0;
  bool held = false;  ///< false when budget was exhausted or no feasible scenario
  std::size_t winners = 0;
  double social_cost = 0.0;
  double payout = 0.0;  ///< settled under the realized execution
  std::size_t tasks_posted = 0;
  std::size_t tasks_completed = 0;
  double mean_required_pos = 0.0;
  double mean_achieved_pos = 0.0;  ///< analytic, under declared PoS
  std::vector<trace::TaxiId> winning_taxis;  ///< the recruited taxis, ascending
  bool degraded = false;  ///< the round's auction used a fallback path
  std::string error;      ///< auction failure captured by the engine; empty when clean
  /// The round's mechanism telemetry (phase timings, probe/degradation
  /// counts). Populated only while obs::enabled(); journaled as an optional
  /// backward-compatible record and surfaced in CampaignReport totals.
  obs::MechanismTelemetry telemetry;
};

/// Aggregated campaign outcome.
struct CampaignReport {
  std::vector<RoundReport> rounds;
  double total_payout = 0.0;
  double total_social_cost = 0.0;
  std::size_t total_tasks_posted = 0;
  std::size_t total_tasks_completed = 0;
  std::size_t rounds_held = 0;
  /// How many rounds each taxi won across the campaign (absent = zero).
  /// Win concentration matters operationally: a platform whose rewards pool
  /// on a few users erodes everyone else's incentive to keep bidding.
  std::map<trace::TaxiId, std::size_t> wins_by_taxi;
  /// Sum of every round's telemetry record (all zeros, enabled=false, when
  /// telemetry was off for the whole campaign).
  obs::MechanismTelemetry telemetry_totals;

  /// Fraction of posted tasks completed across the campaign.
  double completion_rate() const;
  /// Total number of (round, winner) pairs.
  std::size_t total_wins() const;
  /// Herfindahl–Hirschman index of the win distribution in [0, 1]:
  /// 1/#winners when wins are evenly spread, 1 when one taxi takes all.
  /// 0 when no wins occurred.
  double win_concentration() const;
  /// Share of wins taken by the single most-winning taxi (0 when none).
  double top_winner_share() const;
};

/// The running platform: owns the per-taxi position state and drives the
/// auction/execution/settlement loop over a fixed city and learned fleet.
/// The city model and fleet must outlive the platform.
///
/// run_campaign is the blocking compatibility surface over the geo-sharded
/// service::CampaignService: each round is submitted as a GeoRound and
/// awaited synchronously, so with the default single shard every campaign
/// output (reports, journal, resume) is bit-identical to the pre-service
/// engine dispatch. Callers wanting the async submit/poll/stream surface use
/// the service directly.
class Platform {
 public:
  Platform(const trace::CityModel& city, const mobility::FleetModel& fleet,
           const CampaignConfig& config);

  /// Runs the configured number of rounds and returns the report.
  CampaignReport run_campaign();

  /// Current position of a taxi (after any rounds run so far).
  geo::CellId position_of(trace::TaxiId taxi) const;

  /// Declared-vs-realized reputation accumulated over the rounds run so far
  /// (one observation per winner per held round).
  const ReputationTracker& reputation() const { return reputation_; }

 private:
  RoundReport run_round(std::size_t round, double budget_left);
  /// Generates this round's task cells per the configured policy; empty when
  /// the pool cannot support the configured task count.
  std::vector<geo::CellId> demand_tasks(const std::vector<mobility::MobilityUser>& pool);
  void advance_positions();

  const trace::CityModel& city_;
  const mobility::FleetModel& fleet_;
  CampaignConfig config_;
  /// The sharded campaign service every round's auction goes through
  /// (sharing the process-wide pool, so the critical-bid computations reuse
  /// long-lived workers); run_round submits and waits synchronously.
  service::CampaignService service_;
  common::Rng rng_;
  std::vector<geo::CellId> positions_;  ///< indexed by position in fleet_.taxis()
  ReputationTracker reputation_;
};

}  // namespace mcs::platform
