// Declared-PoS reputation tracking — platform-side monitoring that
// complements the execution-contingent incentive.
//
// The EC reward makes PoS inflation unprofitable in expectation, but a
// platform still wants to DETECT systematic over-claimers (buggy predictors,
// or manipulation under a mis-configured reward rule). Each settled round
// contributes one Bernoulli observation per winner: she declared an overall
// success probability p̂ and either delivered or not. The tracker
// accumulates, per user, the expected and realized success counts and flags
// users whose realized rate falls below the declared rate by more than
// `z_threshold` standard deviations of the declared-Bernoulli sum — a
// one-sided z-test for over-claiming.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "trace/record.hpp"

namespace mcs::platform {

/// Accumulated declared-vs-realized evidence for one user.
struct ReputationRecord {
  std::size_t rounds = 0;
  double expected_successes = 0.0;  ///< Σ declared overall PoS
  double variance = 0.0;            ///< Σ p̂(1 - p̂)
  std::size_t realized_successes = 0;

  /// Realized minus expected, in standard deviations of the declared model;
  /// strongly negative = over-claimer. 0 until variance accumulates.
  double z_score() const;
};

/// Per-user reputation ledger.
class ReputationTracker {
 public:
  /// Records one settled round for a user: she declared overall success
  /// probability `declared_pos` (in [0, 1]) and either succeeded or not.
  void record(trace::TaxiId taxi, double declared_pos, bool succeeded);

  /// The user's record (zeroed default when never seen).
  ReputationRecord record_of(trace::TaxiId taxi) const;

  /// Users whose z-score is below -z_threshold after at least `min_rounds`
  /// observations, ascending by taxi id. These declared systematically more
  /// than they delivered.
  std::vector<trace::TaxiId> flagged_overclaimers(double z_threshold = 2.0,
                                                  std::size_t min_rounds = 5) const;

  std::size_t tracked_users() const { return records_.size(); }

  /// The full ledger, ascending by taxi id — used for checkpointing.
  const std::map<trace::TaxiId, ReputationRecord>& records() const { return records_; }

  /// Restores one user's record verbatim (checkpoint replay); replaces any
  /// existing record for that user.
  void restore(trace::TaxiId taxi, const ReputationRecord& record) { records_[taxi] = record; }

 private:
  std::map<trace::TaxiId, ReputationRecord> records_;
};

/// Multiplicative contribution-space prior weight derived from a user's
/// ledger, for reputation-weighted winner determination (the
/// sim::run_reputation_feedback loop; IncentMe-style PoS priors). A
/// Bayesian-shrinkage ratio of delivered to declared successes,
///
///   w = (strength + realized) / (strength + expected),
///
/// clamped into [kMinReputationWeight, 1]: a fresh user (no history) keeps
/// weight 1, a systematic over-claimer converges to realized/declared, and
/// `prior_strength` pseudo-observations damp early volatility. Weights never
/// exceed 1 — a prior can discount a declaration, never inflate it.
inline constexpr double kMinReputationWeight = 0.05;

double reputation_weight(const ReputationRecord& record, double prior_strength = 4.0);

}  // namespace mcs::platform
