#include "platform/reputation.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mcs::platform {

double ReputationRecord::z_score() const {
  if (variance <= 0.0) {
    return 0.0;
  }
  return (static_cast<double>(realized_successes) - expected_successes) / std::sqrt(variance);
}

void ReputationTracker::record(trace::TaxiId taxi, double declared_pos, bool succeeded) {
  MCS_EXPECTS(declared_pos >= 0.0 && declared_pos <= 1.0, "declared PoS must lie in [0, 1]");
  auto& record = records_[taxi];
  ++record.rounds;
  record.expected_successes += declared_pos;
  record.variance += declared_pos * (1.0 - declared_pos);
  record.realized_successes += succeeded ? 1 : 0;
}

ReputationRecord ReputationTracker::record_of(trace::TaxiId taxi) const {
  const auto it = records_.find(taxi);
  return it == records_.end() ? ReputationRecord{} : it->second;
}

std::vector<trace::TaxiId> ReputationTracker::flagged_overclaimers(
    double z_threshold, std::size_t min_rounds) const {
  MCS_EXPECTS(z_threshold > 0.0, "z threshold must be positive");
  MCS_EXPECTS(min_rounds >= 1, "need at least one observation");
  std::vector<trace::TaxiId> flagged;
  for (const auto& [taxi, record] : records_) {
    if (record.rounds >= min_rounds && record.z_score() < -z_threshold) {
      flagged.push_back(taxi);
    }
  }
  return flagged;
}

double reputation_weight(const ReputationRecord& record, double prior_strength) {
  MCS_EXPECTS(prior_strength > 0.0, "prior strength must be positive");
  const double w = (prior_strength + static_cast<double>(record.realized_successes)) /
                   (prior_strength + record.expected_successes);
  return std::min(1.0, std::max(kMinReputationWeight, w));
}

}  // namespace mcs::platform
