#include "platform/journal.hpp"

#include <charconv>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>

#include "common/check.hpp"

namespace mcs::platform {

namespace {

constexpr const char* kJournalHeader = "mcs-journal-v1";

std::string format_double(double value) {
  char buffer[64];
  // %.17g round-trips every double exactly, so a resumed campaign replays to
  // bit-identical state.
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

[[noreturn]] void fail(std::size_t line_number, const std::string& message) {
  throw common::PreconditionError("campaign journal, line " + std::to_string(line_number) +
                                  ": " + message);
}

/// One meaningful journal line. For the `config` and `error` directives the
/// raw remainder of the line is preserved verbatim (the text may contain
/// '#'), so it is carried separately from the whitespace-split tokens.
struct JournalLine {
  std::size_t number = 0;
  std::vector<std::string> tokens;
  std::string raw_text;  ///< only for the `config` and `error` directives
  /// Byte offset just past this line's '\n' in the journal text; truncating
  /// to it keeps the line.
  std::size_t end_offset = 0;
  /// False when the line is the file's last and lacks a terminating '\n' —
  /// a torn write. An unterminated line never completes a block, or the next
  /// append would fuse with it into one malformed line.
  bool terminated = false;
};

std::vector<JournalLine> meaningful_lines(const std::string& text) {
  std::vector<JournalLine> lines;
  std::size_t number = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    ++number;
    const auto newline = text.find('\n', pos);
    const bool terminated = newline != std::string::npos;
    const std::size_t end_offset = terminated ? newline + 1 : text.size();
    std::string raw = text.substr(pos, (terminated ? newline : text.size()) - pos);
    pos = end_offset;
    if (!raw.empty() && raw.back() == '\r') {
      raw.pop_back();
    }
    const auto first = raw.find_first_not_of(" \t");
    if (first == std::string::npos || raw[first] == '#') {
      continue;
    }
    const auto first_end = raw.find_first_of(" \t", first);
    const std::string keyword = raw.substr(first, first_end - first);
    JournalLine line;
    line.number = number;
    line.end_offset = end_offset;
    line.terminated = terminated;
    if (keyword == "error" || keyword == "config") {
      const auto value = raw.find_first_not_of(" \t", first_end);
      line.tokens = {keyword};
      line.raw_text = value == std::string::npos ? "" : raw.substr(value);
    } else {
      std::string body = raw;
      const auto comment = body.find('#');
      if (comment != std::string::npos) {
        body.resize(comment);
      }
      std::istringstream fields(body);
      std::string token;
      while (fields >> token) {
        line.tokens.push_back(std::move(token));
      }
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

double parse_double(const std::string& token, std::size_t line_number) {
  double value{};
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    fail(line_number, "malformed number '" + token + "'");
  }
  return value;
}

std::uint64_t parse_u64(const std::string& token, std::size_t line_number) {
  std::uint64_t value{};
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    fail(line_number, "malformed count '" + token + "'");
  }
  return value;
}

std::size_t parse_size(const std::string& token, std::size_t line_number) {
  return static_cast<std::size_t>(parse_u64(token, line_number));
}

std::int32_t parse_i32(const std::string& token, std::size_t line_number) {
  std::int64_t value{};
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end ||
      value < std::numeric_limits<std::int32_t>::min() ||
      value > std::numeric_limits<std::int32_t>::max()) {
    fail(line_number, "malformed id '" + token + "'");
  }
  return static_cast<std::int32_t>(value);
}

bool parse_flag(const JournalLine& line) {
  if (line.tokens.size() != 2 || (line.tokens[1] != "0" && line.tokens[1] != "1")) {
    fail(line.number, "expected '" + line.tokens.front() + " 0|1'");
  }
  return line.tokens[1] == "1";
}

double parse_double_directive(const JournalLine& line) {
  if (line.tokens.size() != 2) {
    fail(line.number, "expected '" + line.tokens.front() + " <value>'");
  }
  return parse_double(line.tokens[1], line.number);
}

std::size_t parse_size_directive(const JournalLine& line) {
  if (line.tokens.size() != 2) {
    fail(line.number, "expected '" + line.tokens.front() + " <count>'");
  }
  return parse_size(line.tokens[1], line.number);
}

/// Parses one complete block, lines[begin..end] inclusive where lines[end]
/// is the `end round` terminator.
JournalEntry parse_block(const std::vector<JournalLine>& lines, std::size_t begin,
                         std::size_t end) {
  const auto& head = lines[begin];
  if (head.tokens.size() != 3 || head.tokens[0] != "begin" || head.tokens[1] != "round") {
    fail(head.number, "expected 'begin round <n>'");
  }
  JournalEntry entry;
  entry.report.round = parse_size(head.tokens[2], head.number);

  bool have_rng = false;
  bool have_positions = false;
  std::size_t reputation_count = 0;
  bool have_reputation = false;
  for (std::size_t i = begin + 1; i < end; ++i) {
    const auto& line = lines[i];
    const auto& keyword = line.tokens.front();
    if (keyword == "held") {
      entry.report.held = parse_flag(line);
    } else if (keyword == "degraded") {
      entry.report.degraded = parse_flag(line);
    } else if (keyword == "winners") {
      entry.report.winners = parse_size_directive(line);
    } else if (keyword == "social_cost") {
      entry.report.social_cost = parse_double_directive(line);
    } else if (keyword == "payout") {
      entry.report.payout = parse_double_directive(line);
    } else if (keyword == "tasks_posted") {
      entry.report.tasks_posted = parse_size_directive(line);
    } else if (keyword == "tasks_completed") {
      entry.report.tasks_completed = parse_size_directive(line);
    } else if (keyword == "mean_required_pos") {
      entry.report.mean_required_pos = parse_double_directive(line);
    } else if (keyword == "mean_achieved_pos") {
      entry.report.mean_achieved_pos = parse_double_directive(line);
    } else if (keyword == "error") {
      entry.report.error = line.raw_text;
    } else if (keyword == "telemetry") {
      // Optional: blocks without this line (telemetry off, or written before
      // the record existed) leave the default disabled/all-zeros record.
      if (line.tokens.size() != 14) {
        fail(line.number,
             "expected 'telemetry <wd_s> <rw_s> <degraded> <5 wd counters> <5 rw counters>'");
      }
      auto& t = entry.report.telemetry;
      t.enabled = true;
      t.winner_determination_seconds = parse_double(line.tokens[1], line.number);
      t.rewards_seconds = parse_double(line.tokens[2], line.number);
      t.degraded_events = parse_u64(line.tokens[3], line.number);
      std::size_t k = 4;
      for (obs::PhaseCounters* phase : {&t.winner_determination, &t.rewards}) {
        phase->probes = parse_u64(line.tokens[k++], line.number);
        phase->deadline_polls = parse_u64(line.tokens[k++], line.number);
        phase->rounds = parse_u64(line.tokens[k++], line.number);
        phase->heap_reevaluations = parse_u64(line.tokens[k++], line.number);
        phase->bisection_steps = parse_u64(line.tokens[k++], line.number);
      }
    } else if (keyword == "winning_taxis") {
      if (line.tokens.size() < 2) {
        fail(line.number, "expected 'winning_taxis <count> <ids>...'");
      }
      const std::size_t count = parse_size(line.tokens[1], line.number);
      if (line.tokens.size() != 2 + count) {
        fail(line.number, "winning taxi count does not match the declared count");
      }
      for (std::size_t k = 0; k < count; ++k) {
        entry.report.winning_taxis.push_back(parse_i32(line.tokens[2 + k], line.number));
      }
    } else if (keyword == "positions") {
      if (line.tokens.size() < 2) {
        fail(line.number, "expected 'positions <count> <cells>...'");
      }
      const std::size_t count = parse_size(line.tokens[1], line.number);
      if (line.tokens.size() != 2 + count) {
        fail(line.number, "position count does not match the declared count");
      }
      for (std::size_t k = 0; k < count; ++k) {
        entry.positions.push_back(parse_i32(line.tokens[2 + k], line.number));
      }
      have_positions = true;
    } else if (keyword == "rng") {
      if (line.tokens.size() != 5) {
        fail(line.number, "expected 'rng <s0> <s1> <s2> <s3>'");
      }
      for (std::size_t k = 0; k < 4; ++k) {
        entry.rng_state[k] = parse_u64(line.tokens[1 + k], line.number);
      }
      have_rng = true;
    } else if (keyword == "reputation") {
      reputation_count = parse_size_directive(line);
      have_reputation = true;
    } else if (keyword == "rep") {
      if (line.tokens.size() != 6) {
        fail(line.number, "expected 'rep <taxi> <rounds> <expected> <variance> <realized>'");
      }
      ReputationRecord record;
      const trace::TaxiId taxi = parse_i32(line.tokens[1], line.number);
      record.rounds = parse_size(line.tokens[2], line.number);
      record.expected_successes = parse_double(line.tokens[3], line.number);
      record.variance = parse_double(line.tokens[4], line.number);
      record.realized_successes = parse_size(line.tokens[5], line.number);
      entry.reputation.emplace_back(taxi, record);
    } else if (keyword == "begin") {
      fail(line.number, "unterminated block: 'begin' before the previous 'end round'");
    } else {
      fail(line.number, "unknown directive '" + keyword + "'");
    }
  }

  const auto& tail = lines[end];
  if (tail.tokens.size() != 3 || tail.tokens[1] != "round" ||
      parse_size(tail.tokens[2], tail.number) != entry.report.round) {
    fail(tail.number, "expected 'end round " + std::to_string(entry.report.round) + "'");
  }
  if (!have_positions || !have_rng || !have_reputation) {
    fail(tail.number, "block is missing its positions/rng/reputation snapshot");
  }
  if (entry.reputation.size() != reputation_count) {
    fail(tail.number, "reputation record count does not match the declared count");
  }
  return entry;
}

}  // namespace

std::string to_text(const JournalEntry& entry) {
  std::ostringstream out;
  out << "begin round " << entry.report.round << "\n";
  out << "held " << (entry.report.held ? 1 : 0) << "\n";
  out << "degraded " << (entry.report.degraded ? 1 : 0) << "\n";
  out << "winners " << entry.report.winners << "\n";
  out << "social_cost " << format_double(entry.report.social_cost) << "\n";
  out << "payout " << format_double(entry.report.payout) << "\n";
  out << "tasks_posted " << entry.report.tasks_posted << "\n";
  out << "tasks_completed " << entry.report.tasks_completed << "\n";
  out << "mean_required_pos " << format_double(entry.report.mean_required_pos) << "\n";
  out << "mean_achieved_pos " << format_double(entry.report.mean_achieved_pos) << "\n";
  out << "winning_taxis " << entry.report.winning_taxis.size();
  for (trace::TaxiId taxi : entry.report.winning_taxis) {
    out << ' ' << taxi;
  }
  out << "\n";
  if (entry.report.telemetry.enabled) {
    // Optional record (PR 4): journals written with telemetry off — and
    // every pre-telemetry journal — simply omit the line, and readers
    // default the record to disabled, so old journals stay loadable.
    const auto& t = entry.report.telemetry;
    out << "telemetry " << format_double(t.winner_determination_seconds) << ' '
        << format_double(t.rewards_seconds) << ' ' << t.degraded_events;
    for (const obs::PhaseCounters* phase : {&t.winner_determination, &t.rewards}) {
      out << ' ' << phase->probes << ' ' << phase->deadline_polls << ' ' << phase->rounds << ' '
          << phase->heap_reevaluations << ' ' << phase->bisection_steps;
    }
    out << "\n";
  }
  if (!entry.report.error.empty()) {
    // The format is line-oriented: a newline inside the captured exception
    // text would end the directive early and corrupt every block after it,
    // so flatten line breaks to spaces.
    std::string error = entry.report.error;
    for (char& c : error) {
      if (c == '\n' || c == '\r') {
        c = ' ';
      }
    }
    out << "error " << error << "\n";
  }
  out << "positions " << entry.positions.size();
  for (geo::CellId cell : entry.positions) {
    out << ' ' << cell;
  }
  out << "\n";
  out << "rng " << entry.rng_state[0] << ' ' << entry.rng_state[1] << ' ' << entry.rng_state[2]
      << ' ' << entry.rng_state[3] << "\n";
  out << "reputation " << entry.reputation.size() << "\n";
  for (const auto& [taxi, record] : entry.reputation) {
    out << "rep " << taxi << ' ' << record.rounds << ' '
        << format_double(record.expected_successes) << ' ' << format_double(record.variance)
        << ' ' << record.realized_successes << "\n";
  }
  out << "end round " << entry.report.round << "\n";
  return out.str();
}

std::string config_fingerprint(const CampaignConfig& config) {
  std::ostringstream out;
  out << "seed=" << config.seed                                              //
      << " tasks=" << config.num_tasks                                       //
      << " bidders=" << config.num_bidders                                   //
      << " pos=" << format_double(config.pos_requirement)                    //
      << " cap=" << format_double(config.requirement_cap_fraction)           //
      << " alpha=" << format_double(config.alpha)                            //
      << " rule=" << static_cast<int>(config.critical_bid_rule)              //
      << " policy=" << static_cast<int>(config.task_policy)                  //
      << " zipf=" << format_double(config.demand_zipf_exponent)              //
      << " avail=" << format_double(config.availability)                     //
      << " exec=" << static_cast<int>(config.execution)                      //
      << " budget=" << format_double(config.budget)                          //
      << " auction_seconds=" << format_double(config.auction_time_budget_seconds);
  if (config.shards != 1) {
    // Only non-default so every pre-sharding journal (implicitly shards=1)
    // keeps resuming: sharded rounds can differ once users straddle shards,
    // so splicing across shard counts must be refused.
    out << " shards=" << config.shards;
  }
  return out.str();
}

ReplayedJournal parse_journal(const std::string& text) {
  const auto lines = meaningful_lines(text);
  if (lines.empty()) {
    // Empty (or comment-only) file: an empty journal, not corruption — a
    // writer that died before its first byte left nothing to recover.
    return {};
  }
  if (lines.front().tokens.size() != 1 || lines.front().tokens.front() != kJournalHeader) {
    // A write torn inside the very first line leaves an unterminated strict
    // prefix of the header — a torn tail to drop, not corruption to throw.
    if (lines.size() == 1 && !lines.front().terminated && lines.front().tokens.size() == 1 &&
        std::string_view(kJournalHeader).starts_with(lines.front().tokens.front())) {
      return {};
    }
    fail(lines.front().number, "missing mcs-journal-v1 header");
  }
  ReplayedJournal result;
  if (!lines.front().terminated) {
    return result;  // torn header write: nothing valid yet, rewrite from scratch
  }
  result.valid_bytes = lines.front().end_offset;
  std::size_t i = 1;
  if (i < lines.size() && lines[i].tokens.front() == "config") {
    if (!lines[i].terminated) {
      return result;  // torn config write: drop it, the header stands
    }
    result.config = lines[i].raw_text;
    result.valid_bytes = lines[i].end_offset;
    ++i;
  }
  while (i < lines.size()) {
    // A block only counts once its newline-terminated `end round` line is
    // present; an unterminated tail is a torn append (the process died
    // mid-write) and is dropped on replay.
    std::size_t end = i;
    while (end < lines.size() && lines[end].tokens.front() != "end") {
      ++end;
    }
    if (end == lines.size() || !lines[end].terminated) {
      break;  // torn tail: no complete terminator ever written
    }
    const bool is_last_block = [&] {
      for (std::size_t k = end + 1; k < lines.size(); ++k) {
        if (lines[k].tokens.front() == "end") {
          return false;
        }
      }
      return true;
    }();
    try {
      result.entries.push_back(parse_block(lines, i, end));
    } catch (const common::PreconditionError&) {
      if (is_last_block) {
        break;  // a torn write can also truncate mid-line; drop the tail
      }
      throw;  // corruption before the last complete block is a real error
    }
    result.valid_bytes = lines[end].end_offset;
    i = end + 1;
  }
  return result;
}

std::vector<JournalEntry> journal_from_text(const std::string& text) {
  return parse_journal(text).entries;
}

ReplayedJournal load_journal(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (!std::filesystem::exists(path)) {
      return {};  // no journal yet: the campaign has not started
    }
    throw std::runtime_error("cannot open campaign journal for reading: " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_journal(buffer.str());
}

std::vector<JournalEntry> replay_journal(const std::filesystem::path& path) {
  return load_journal(path).entries;
}

JournalWriter::JournalWriter(const std::filesystem::path& path,
                             const std::string& config_fingerprint)
    : path_(path) {
  const bool fresh = !std::filesystem::exists(path) ||
                     std::filesystem::file_size(path) == 0;
  out_.open(path, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("cannot open campaign journal for appending: " + path.string());
  }
  if (fresh) {
    out_ << kJournalHeader << "\n";
    if (!config_fingerprint.empty()) {
      out_ << "config " << config_fingerprint << "\n";
    }
    out_.flush();
  }
}

void JournalWriter::append(const JournalEntry& entry) {
  out_ << to_text(entry);
  out_.flush();
  if (!out_) {
    throw std::runtime_error("failed appending to campaign journal: " + path_.string());
  }
}

}  // namespace mcs::platform
