#include "auction/engine.hpp"

#include <exception>

#include "auction/multi_task/mechanism.hpp"
#include "auction/single_task/mechanism.hpp"
#include "common/deadline.hpp"
#include "obs/telemetry.hpp"

namespace mcs::auction {

namespace {

// Engine-level registry metrics: batch shape plus the per-slot status mix —
// the first signals an operator watches ("how much degraded/timed-out
// traffic are we serving?"). Shared across Engine instances.
struct EngineMetrics {
  obs::Registry::MetricId batches;
  obs::Registry::MetricId auctions;
  obs::Registry::MetricId slots_ok;
  obs::Registry::MetricId slots_degraded;
  obs::Registry::MetricId slots_timed_out;
  obs::Registry::MetricId slots_failed;

  static const EngineMetrics& get() {
    static const EngineMetrics metrics{
        obs::Registry::global().metric("engine.batches"),
        obs::Registry::global().metric("engine.auctions"),
        obs::Registry::global().metric("engine.slots_ok"),
        obs::Registry::global().metric("engine.slots_degraded"),
        obs::Registry::global().metric("engine.slots_timed_out"),
        obs::Registry::global().metric("engine.slots_failed"),
    };
    return metrics;
  }
};

void record_batch(std::size_t size) {
  if (!obs::enabled()) {
    return;
  }
  const EngineMetrics& metrics = EngineMetrics::get();
  obs::Registry::global().add(metrics.batches, 1);
  obs::Registry::global().add(metrics.auctions, static_cast<std::int64_t>(size));
}

void record_status(AuctionStatus status) {
  if (!obs::enabled()) {
    return;
  }
  const EngineMetrics& metrics = EngineMetrics::get();
  switch (status) {
    case AuctionStatus::kOk:
      obs::Registry::global().add(metrics.slots_ok, 1);
      break;
    case AuctionStatus::kDegraded:
      obs::Registry::global().add(metrics.slots_degraded, 1);
      break;
    case AuctionStatus::kTimedOut:
      obs::Registry::global().add(metrics.slots_timed_out, 1);
      break;
    case AuctionStatus::kFailed:
      obs::Registry::global().add(metrics.slots_failed, 1);
      break;
  }
}

MechanismOutcome dispatch(const SingleTaskInstance& instance, const MechanismConfig& config) {
  return single_task::run_mechanism(instance, config);
}

MechanismOutcome dispatch(const MultiTaskInstance& instance, const MechanismConfig& config) {
  return multi_task::run_mechanism(instance, config);
}

MechanismOutcome dispatch(const AuctionInstance& instance, const MechanismConfig& config) {
  return std::visit([&](const auto& typed) { return dispatch(typed, config); }, instance);
}

/// Runs one auction and folds any per-auction failure into the slot. The
/// happy path stores the strict outcome unchanged, so isolation costs
/// healthy auctions nothing but the status bookkeeping.
template <typename Item>
AuctionOutcome dispatch_isolated(const Item& instance, const MechanismConfig& config) {
  AuctionOutcome slot;
  try {
    slot.outcome = dispatch(instance, config);
    slot.status = slot.outcome.degraded ? AuctionStatus::kDegraded : AuctionStatus::kOk;
  } catch (const common::DeadlineExceeded& e) {
    slot.status = AuctionStatus::kTimedOut;
    slot.outcome = MechanismOutcome{};
    slot.error = e.what();
  } catch (const std::exception& e) {
    slot.status = AuctionStatus::kFailed;
    slot.outcome = MechanismOutcome{};
    slot.error = e.what();
  }
  record_status(slot.status);
  return slot;
}

}  // namespace

const char* to_string(AuctionStatus status) {
  switch (status) {
    case AuctionStatus::kOk:
      return "ok";
    case AuctionStatus::kDegraded:
      return "degraded";
    case AuctionStatus::kTimedOut:
      return "timed-out";
    case AuctionStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

Engine::Engine(const EngineOptions& options)
    : owned_(options.workers > 0 ? std::make_unique<common::ThreadPool>(options.workers)
                                 : nullptr) {}

common::ThreadPool& Engine::pool() const {
  return owned_ ? *owned_ : common::ThreadPool::shared();
}

std::size_t Engine::worker_count() const { return pool().worker_count(); }

MechanismConfig Engine::effective_config(const MechanismConfig& config) const {
  MechanismConfig adjusted = config;
  if (owned_ && adjusted.reward_workers == 0) {
    adjusted.reward_workers = owned_->worker_count();
  }
  return adjusted;
}

template <typename Item>
std::vector<MechanismOutcome> Engine::run_batch(const std::vector<Item>& batch,
                                                const MechanismConfig& config) const {
  const MechanismConfig adjusted = effective_config(config);
  record_batch(batch.size());
  std::vector<MechanismOutcome> outcomes(batch.size());
  // Inter-auction parallelism: one strided chunk per worker. Inside a pool
  // worker any nested parallel_map degrades to serial, so each auction runs
  // the exact serial code path; a lone auction runs inline on the calling
  // thread, where the critical-bid parallel_map still fans out.
  pool().for_each_index(
      batch.size(),
      [&](std::size_t index) { outcomes[index] = dispatch(batch[index], adjusted); },
      pool().worker_count());
  return outcomes;
}

std::vector<MechanismOutcome> Engine::run(const std::vector<AuctionInstance>& batch,
                                          const MechanismConfig& config) const {
  return run_batch(batch, config);
}

std::vector<MechanismOutcome> Engine::run(const std::vector<SingleTaskInstance>& batch,
                                          const MechanismConfig& config) const {
  return run_batch(batch, config);
}

std::vector<MechanismOutcome> Engine::run(const std::vector<MultiTaskInstance>& batch,
                                          const MechanismConfig& config) const {
  return run_batch(batch, config);
}

template <typename Item>
std::vector<AuctionOutcome> Engine::run_batch_isolated(const std::vector<Item>& batch,
                                                       const MechanismConfig& config) const {
  const MechanismConfig adjusted = effective_config(config);
  record_batch(batch.size());
  std::vector<AuctionOutcome> slots(batch.size());
  // Same scheduling as run_batch; dispatch_isolated swallows per-slot
  // exceptions before they can reach for_each_index's rethrow machinery, so
  // sibling auctions always complete.
  pool().for_each_index(
      batch.size(),
      [&](std::size_t index) { slots[index] = dispatch_isolated(batch[index], adjusted); },
      pool().worker_count());
  return slots;
}

std::vector<AuctionOutcome> Engine::run_isolated(const std::vector<AuctionInstance>& batch,
                                                 const MechanismConfig& config) const {
  return run_batch_isolated(batch, config);
}

std::vector<AuctionOutcome> Engine::run_isolated(const std::vector<SingleTaskInstance>& batch,
                                                 const MechanismConfig& config) const {
  return run_batch_isolated(batch, config);
}

std::vector<AuctionOutcome> Engine::run_isolated(const std::vector<MultiTaskInstance>& batch,
                                                 const MechanismConfig& config) const {
  return run_batch_isolated(batch, config);
}

MechanismOutcome Engine::run_one(const SingleTaskInstance& instance,
                                 const MechanismConfig& config) const {
  record_batch(1);
  return dispatch(instance, effective_config(config));
}

MechanismOutcome Engine::run_one(const MultiTaskInstance& instance,
                                 const MechanismConfig& config) const {
  record_batch(1);
  return dispatch(instance, effective_config(config));
}

MechanismOutcome Engine::run_one(const AuctionInstance& instance,
                                 const MechanismConfig& config) const {
  record_batch(1);
  return dispatch(instance, effective_config(config));
}

AuctionOutcome Engine::run_one_isolated(const SingleTaskInstance& instance,
                                        const MechanismConfig& config) const {
  record_batch(1);
  return dispatch_isolated(instance, effective_config(config));
}

AuctionOutcome Engine::run_one_isolated(const MultiTaskInstance& instance,
                                        const MechanismConfig& config) const {
  record_batch(1);
  return dispatch_isolated(instance, effective_config(config));
}

AuctionOutcome Engine::run_one_isolated(const AuctionInstance& instance,
                                        const MechanismConfig& config) const {
  record_batch(1);
  return dispatch_isolated(instance, effective_config(config));
}

}  // namespace mcs::auction
