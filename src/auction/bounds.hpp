// Approximation-bound certificates: the paper's guarantees as computable
// quantities, so any run can check its own optimality gap.
//
//   * Theorem 2: the FPTAS is a (1+ε)-approximation of the optimal single-
//     task social cost.
//   * Min-Greedy (paper's baseline [21]): a 2-approximation.
//   * Theorem 5: the multi-task greedy is an H(γ)-approximation, with
//     γ = max_i (1/Δq)·Σ_{j∈S_i} min{Q_j, q_i^j} for a contribution unit Δq.
//
// `gamma()` evaluates γ with the smallest positive per-task capped
// contribution as Δq — the largest (loosest) γ consistent with the instance,
// hence a sound upper bound; `harmonic_bound()` turns it into the H(γ)
// factor. A lower bound on the optimum (LP relaxation for the single task,
// max of the ratio/per-task bounds for multi-task — the same bounds the
// exact solvers prune with) certifies realized ratios without solving to
// optimality.
#pragma once

#include "auction/instance.hpp"

namespace mcs::auction {

/// Fractional (LP-relaxation) lower bound on the optimal single-task social
/// cost: fill the contribution requirement greedily by density, taking the
/// final user fractionally. Returns +infinity for infeasible instances.
double lower_bound(const SingleTaskInstance& instance);

/// Lower bound on the optimal multi-task social cost: the larger of
///   (total residual requirement) / (best capped contribution-cost ratio)
/// and  max_j requirement_j / (best per-task rate q_i^j / c_i).
/// Returns +infinity when some task is uncoverable.
double lower_bound(const MultiTaskInstance& instance);

/// γ of Theorem 5, evaluated with Δq = the smallest positive capped per-task
/// contribution in the instance. Returns 0 when no user contributes.
double gamma(const MultiTaskInstance& instance);

/// H(γ) — the multi-task greedy's approximation factor for this instance.
double harmonic_bound(const MultiTaskInstance& instance);

/// Certificate for a realized allocation: cost / lower_bound, a sound upper
/// bound on its true approximation ratio. Requires a feasible allocation on
/// a feasible instance.
double certified_ratio(const SingleTaskInstance& instance, const Allocation& allocation);
double certified_ratio(const MultiTaskInstance& instance, const Allocation& allocation);

}  // namespace mcs::auction
