#include "auction/columns.hpp"

#include "common/math.hpp"

namespace mcs::auction {

BidColumns BidColumns::from_single_task(const SingleTaskInstance& instance) {
  BidColumns columns;
  const std::size_t n = instance.bids.size();
  columns.cost.reserve(n);
  columns.q.reserve(n);
  for (const SingleTaskBid& bid : instance.bids) {
    columns.cost.push_back(bid.cost);
    columns.q.push_back(common::contribution_from_pos(bid.pos));
  }
  return columns;
}

}  // namespace mcs::auction
