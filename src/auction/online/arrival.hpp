// Arrival streams for the online mechanism family (ROADMAP item 1): the
// offline mechanisms see a sealed bid profile, the online mechanisms see the
// SAME population one user at a time and must decide irrevocably on each
// arrival. An ArrivalStream pins that order deterministically — either a
// seed-replayable shuffle of an auction instance (the secretary model's
// random-arrival assumption, replayable run to run) or an externally imposed
// order such as first-contact timestamps from a mobility trace — so online
// runs, offline comparisons on the identical population, and the
// arrival-fuzz property suites all agree on what "arrival k" means.
#pragma once

#include <cstdint>
#include <vector>

#include "auction/instance.hpp"

namespace mcs::auction::online {

/// One arrival: the user's id in the source instance plus her declaration.
/// Costs are verified (the paper's standing assumption); the PoS is the
/// strategic dimension, exactly as offline.
struct Arrival {
  UserId user = 0;
  SingleTaskBid bid;

  /// q = -ln(1 - p); +infinity when p = 1.
  double contribution() const;
  /// q / c — the density the threshold mechanism screens on.
  double density() const;
};

/// A deterministic arrival order over a single-task population. Immutable
/// once built; the online mechanism walks it front to back.
class ArrivalStream {
 public:
  /// An explicit order (the general constructor the factories feed).
  /// Requires requirement_pos in (0, 1) and valid bids; arrival user ids
  /// must be unique and non-negative.
  ArrivalStream(double requirement_pos, std::vector<Arrival> arrivals);

  /// Seed-replayable uniform shuffle of the instance's users (Fisher–Yates
  /// on common::Rng): the secretary model's random arrival order. The same
  /// (instance, seed) always yields the same stream.
  static ArrivalStream shuffled(const SingleTaskInstance& instance, std::uint64_t seed);

  /// Arrival order by an external per-user key, ascending, ties broken by
  /// user id — e.g. each user's first appearance timestamp in a mobility
  /// trace. `keys` aligns with instance.bids.
  static ArrivalStream by_key(const SingleTaskInstance& instance,
                              const std::vector<double>& keys);

  std::size_t size() const { return arrivals_.size(); }
  bool empty() const { return arrivals_.empty(); }
  double requirement_pos() const { return requirement_pos_; }
  /// Q = -ln(1 - T).
  double requirement_contribution() const;
  const Arrival& at(std::size_t k) const;
  const std::vector<Arrival>& arrivals() const { return arrivals_; }

  /// The stream's population as an offline instance: bid k is arrival k
  /// (user ids re-based to arrival order). What the offline comparators run
  /// on — same declarations, order information erased.
  SingleTaskInstance to_instance() const;

  /// Copy with arrival `k`'s declared PoS replaced — the building block of
  /// the online misreport fuzz (the offline analog is
  /// SingleTaskInstance::with_declared_pos).
  ArrivalStream with_declared_pos(std::size_t k, double declared_pos) const;

 private:
  double requirement_pos_ = 0.0;
  std::vector<Arrival> arrivals_;
};

}  // namespace mcs::auction::online
