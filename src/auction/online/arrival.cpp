#include "auction/online/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "common/check.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"

namespace mcs::auction::online {

double Arrival::contribution() const { return common::contribution_from_pos(bid.pos); }

double Arrival::density() const { return contribution() / bid.cost; }

ArrivalStream::ArrivalStream(double requirement_pos, std::vector<Arrival> arrivals)
    : requirement_pos_(requirement_pos), arrivals_(std::move(arrivals)) {
  MCS_EXPECTS(requirement_pos_ > 0.0 && requirement_pos_ < 1.0,
              "arrival stream requirement PoS must be in (0, 1)");
  std::unordered_set<UserId> seen;
  seen.reserve(arrivals_.size());
  for (const Arrival& arrival : arrivals_) {
    MCS_EXPECTS(arrival.user >= 0, "arrival user ids must be non-negative");
    MCS_EXPECTS(seen.insert(arrival.user).second, "arrival user ids must be unique");
    MCS_EXPECTS(arrival.bid.cost > 0.0, "arrival costs must be positive");
    MCS_EXPECTS(arrival.bid.pos >= 0.0 && arrival.bid.pos <= 1.0,
                "arrival PoS must be in [0, 1]");
  }
}

ArrivalStream ArrivalStream::shuffled(const SingleTaskInstance& instance, std::uint64_t seed) {
  instance.validate();
  std::vector<Arrival> arrivals;
  arrivals.reserve(instance.num_users());
  for (std::size_t k = 0; k < instance.num_users(); ++k) {
    arrivals.push_back(Arrival{static_cast<UserId>(k), instance.bids[k]});
  }
  // Fisher–Yates on the deterministic engine: the same (instance, seed)
  // replays the same order on every host.
  common::Rng rng(seed);
  for (std::size_t k = arrivals.size(); k > 1; --k) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(k) - 1));
    std::swap(arrivals[k - 1], arrivals[j]);
  }
  return ArrivalStream(instance.requirement_pos, std::move(arrivals));
}

ArrivalStream ArrivalStream::by_key(const SingleTaskInstance& instance,
                                    const std::vector<double>& keys) {
  instance.validate();
  MCS_EXPECTS(keys.size() == instance.num_users(),
              "arrival keys must align with the instance's users");
  for (const double key : keys) {
    MCS_EXPECTS(std::isfinite(key), "arrival keys must be finite");
  }
  std::vector<std::size_t> order(instance.num_users());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&keys](std::size_t a, std::size_t b) {
    return keys[a] < keys[b];  // stable: equal keys keep ascending user id
  });
  std::vector<Arrival> arrivals;
  arrivals.reserve(order.size());
  for (const std::size_t k : order) {
    arrivals.push_back(Arrival{static_cast<UserId>(k), instance.bids[k]});
  }
  return ArrivalStream(instance.requirement_pos, std::move(arrivals));
}

double ArrivalStream::requirement_contribution() const {
  return common::contribution_from_pos(requirement_pos_);
}

const Arrival& ArrivalStream::at(std::size_t k) const {
  MCS_EXPECTS(k < arrivals_.size(), "arrival index out of range");
  return arrivals_[k];
}

SingleTaskInstance ArrivalStream::to_instance() const {
  SingleTaskInstance instance;
  instance.requirement_pos = requirement_pos_;
  instance.bids.reserve(arrivals_.size());
  for (const Arrival& arrival : arrivals_) {
    instance.bids.push_back(arrival.bid);
  }
  return instance;
}

ArrivalStream ArrivalStream::with_declared_pos(std::size_t k, double declared_pos) const {
  MCS_EXPECTS(k < arrivals_.size(), "arrival index out of range");
  MCS_EXPECTS(declared_pos >= 0.0 && declared_pos <= 1.0, "declared PoS must be in [0, 1]");
  std::vector<Arrival> arrivals = arrivals_;
  arrivals[k].bid.pos = declared_pos;
  return ArrivalStream(requirement_pos_, std::move(arrivals));
}

}  // namespace mcs::auction::online
