// Online threshold mechanism (secretary-style with OMG's stage ladder): the
// third mechanism family, alongside single_task/ (Algorithms 2–3) and
// multi_task/ (Algorithms 4–5). Users arrive one at a time in an
// ArrivalStream's order; the platform must accept or reject each arrival
// irrevocably, paying winners with the same execution-contingent reward
// shape as the offline mechanisms, under a hard worst-case payout budget.
//
// Construction (PAPERS.md: "OMG: How Much Should I Pay Bob…" and "Offline
// and Online Incentive Mechanism Design for Smart-phone Crowd-sourcing"):
//
//   * Sample phase. The first ⌈φ·n⌉ arrivals are observed and rejected —
//     the classic secretary sacrifice. Nothing is paid, so there is nothing
//     a sample-phase user can gain by misreporting.
//   * Threshold learning. At each stage boundary the mechanism recomputes a
//     density threshold ρ (contribution per unit cost) from ALL arrivals
//     seen strictly before the stage: sort them by density descending
//     (ties: cheaper cost, then higher contribution, then lower user id —
//     a pure function of the SET, so any arrival order of the same prefix
//     learns the same ρ bit-for-bit), then walk that order accumulating
//     cost against the stage's budget share and take ρ = the density of the
//     last affordable bid. An empty or unaffordable prefix leaves ρ = +inf
//     (accept nothing — the safe default).
//   * Accept phase. Arrival i in a stage with threshold ρ is accepted iff
//     her declared density q_i/c_i reaches ρ AND the worst-case payment of
//     her EC reward fits the stage's cumulative budget share. Her critical
//     contribution is q̄_i = ρ·c_i — the posted price per unit cost in the
//     contribution domain — so her EC reward is calibrated at
//     p̄_i = 1 - e^(-ρ·c_i) and pays, like the offline Algorithm 3,
//     (1-p̄_i)·α + c_i on success and -p̄_i·α + c_i on failure.
//   * Stage ladder (OMG). With stages K > 1 the accept window is split into
//     geometrically growing stages (stage j holds ~2^(j-1) shares of the
//     window) and the budget unlocks in the same proportions, so early
//     over-acceptance against a badly-learned first threshold cannot drain
//     the campaign; K = 1 is the single-threshold secretary mechanism.
//
// Truthfulness (the online analog of paper Theorem 1): arrival i's
// threshold is learned from arrivals strictly before her stage, and the
// budget check reads only her VERIFIED cost — so her declaration moves
// nothing but the comparison q_i ≥ ρ·c_i. Acceptance is monotone in the
// declared PoS, q̄_i = ρ·c_i is exactly the infimum winning declaration,
// and the EC reward calibrated there makes truthful PoS declaration a
// dominant strategy; accepted truthful users have p_i ≥ p̄_i, hence
// non-negative expected utility (IR). A misreport can only change LATER
// users' thresholds — the deviator's own decision is already irrevocable.
// Both properties are fuzz-checked arrival-by-arrival in
// tests/online_property_test.cpp.
//
// Budget feasibility is by construction: every accept charges its
// worst-case (success-branch) payment against the remaining budget before
// it is granted. Deadline feasibility likewise: the stream IS the deadline
// — the mechanism touches each arrival exactly once and stops with it.
#pragma once

#include <cstddef>
#include <vector>

#include "auction/online/arrival.hpp"
#include "auction/types.hpp"

namespace mcs::auction::online {

/// Knobs of the online threshold mechanism.
struct OnlineConfig {
  /// Hard cap on the campaign's worst-case payout Σ ((1-p̄_i)·α + c_i) over
  /// accepted arrivals. Must be positive.
  double budget = 50.0;
  /// EC reward scale, as offline (paper Table II).
  double alpha = 10.0;
  /// Fraction of the stream observed before anything can be accepted, in
  /// (0, 1). The sample is at least one arrival (secretary sacrifice) and,
  /// on streams of one arrival, swallows the whole stream.
  double sample_fraction = 0.25;
  /// Stage count K >= 1 of the OMG budget ladder; 1 = pure secretary
  /// (single threshold, full budget unlocked at once).
  std::size_t stages = 1;
};

/// Where in the stream an arrival was decided.
enum class ArrivalPhase {
  kSample,  ///< observed only; never accepted
  kAccept,  ///< screened against the stage threshold
};

/// The irrevocable decision made on one arrival, in stream order.
struct ArrivalDecision {
  std::size_t arrival = 0;  ///< index in the stream
  UserId user = 0;          ///< the arrival's source-instance user id
  ArrivalPhase phase = ArrivalPhase::kSample;
  std::size_t stage = 0;  ///< accept-phase stage (1-based); 0 in the sample
  bool accepted = false;
  /// Density threshold in force at the decision (+inf while unaffordable or
  /// in the sample phase).
  double threshold = 0.0;
  /// q̄ = ρ·c for accepted arrivals; 0 otherwise.
  double critical_contribution = 0.0;
  /// EC reward (critical_pos/cost/alpha); zeroed for rejected arrivals.
  EcReward reward;
  /// Worst-case budget remaining AFTER this decision.
  double budget_remaining = 0.0;
};

/// Full outcome of one online run: the per-arrival decision log (what the
/// property fuzz replays) plus the aggregate view.
struct OnlineOutcome {
  std::vector<ArrivalDecision> decisions;  ///< one per arrival, stream order
  /// Accepted users by source-instance id, ascending (the offline
  /// Allocation::winners convention).
  std::vector<UserId> winners;
  double total_cost = 0.0;          ///< Σ c_i over accepts
  double worst_case_payout = 0.0;   ///< Σ ((1-p̄_i)·α + c_i) over accepts
  double achieved_contribution = 0.0;  ///< Σ q_i (declared) over accepts
  /// 1 - e^(-achieved_contribution): the task's achieved PoS under truthful
  /// declarations.
  double achieved_pos = 0.0;
  /// True when the accepts meet the stream's PoS requirement.
  bool requirement_met = false;
  std::size_t sample_size = 0;        ///< arrivals spent on the sample phase
  std::size_t accepted = 0;           ///< number of accepted arrivals
  std::size_t threshold_updates = 0;  ///< stage-boundary threshold relearns

  const ArrivalDecision& decision_of(std::size_t arrival) const;
};

/// Runs the online threshold mechanism over the stream. Deterministic: the
/// outcome is a pure function of (stream, config). Requires budget > 0,
/// alpha > 0, sample_fraction in (0, 1), and stages >= 1.
OnlineOutcome run_online_mechanism(const ArrivalStream& stream, const OnlineConfig& config);

/// The density threshold the mechanism would learn from `seen` (any
/// arrival prefix) under a budget share — exposed for tests and the
/// competitive bench. Pure function of the SET of arrivals (internal sort),
/// +inf when nothing is affordable.
double learn_threshold(const std::vector<Arrival>& seen, double budget_share);

}  // namespace mcs::auction::online
