#include "auction/online/mechanism.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::online {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Stage ladder over the accept window [sample, n): stage j (1-based) ends
/// at sample + round(window · (2^j - 1)/(2^K - 1)), so stage lengths grow
/// geometrically (~2^(j-1) shares) and the final boundary is exactly n.
/// The budget unlocks in the same proportions.
std::vector<std::size_t> stage_boundaries(std::size_t sample, std::size_t n,
                                          std::size_t stages) {
  const double window = static_cast<double>(n - sample);
  const double denom = std::exp2(static_cast<double>(stages)) - 1.0;
  std::vector<std::size_t> boundaries;
  boundaries.reserve(stages);
  for (std::size_t j = 1; j <= stages; ++j) {
    const double share = (std::exp2(static_cast<double>(j)) - 1.0) / denom;
    const auto end = sample + static_cast<std::size_t>(std::llround(window * share));
    boundaries.push_back(std::min(end, n));
  }
  boundaries.back() = n;  // exact by construction; pin against rounding
  return boundaries;
}

double budget_share(double budget, std::size_t stage, std::size_t stages) {
  const double denom = std::exp2(static_cast<double>(stages)) - 1.0;
  return budget * (std::exp2(static_cast<double>(stage)) - 1.0) / denom;
}

}  // namespace

const ArrivalDecision& OnlineOutcome::decision_of(std::size_t arrival) const {
  MCS_EXPECTS(arrival < decisions.size(), "arrival index out of range");
  return decisions[arrival];
}

double learn_threshold(const std::vector<Arrival>& seen, double budget_share) {
  MCS_EXPECTS(budget_share >= 0.0, "threshold budget share must be non-negative");
  // Sort a copy by (density desc, cost asc, contribution desc, user asc):
  // every key is a pure function of the arrival itself, so the learned
  // threshold depends only on the SET of arrivals seen — permuting the
  // sample phase cannot move it (pinned by online_property_test).
  std::vector<Arrival> ranked;
  ranked.reserve(seen.size());
  for (const Arrival& arrival : seen) {
    // Certain-success declarations (p = 1, infinite density) are unusable as
    // a finite posted price; learning skips them, the accept rule still
    // screens them like everyone else.
    if (std::isfinite(arrival.density())) {
      ranked.push_back(arrival);
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const Arrival& a, const Arrival& b) {
    const double da = a.density();
    const double db = b.density();
    if (da != db) {
      return da > db;
    }
    if (a.bid.cost != b.bid.cost) {
      return a.bid.cost < b.bid.cost;
    }
    const double qa = a.contribution();
    const double qb = b.contribution();
    if (qa != qb) {
      return qa > qb;
    }
    return a.user < b.user;
  });
  double threshold = kInf;
  double spent = 0.0;
  for (const Arrival& arrival : ranked) {
    if (spent + arrival.bid.cost > budget_share) {
      break;
    }
    spent += arrival.bid.cost;
    threshold = arrival.density();
  }
  return threshold;
}

OnlineOutcome run_online_mechanism(const ArrivalStream& stream, const OnlineConfig& config) {
  MCS_EXPECTS(config.budget > 0.0, "online budget must be positive");
  MCS_EXPECTS(config.alpha > 0.0, "online alpha must be positive");
  MCS_EXPECTS(config.sample_fraction > 0.0 && config.sample_fraction < 1.0,
              "online sample_fraction must be in (0, 1)");
  MCS_EXPECTS(config.stages >= 1 && config.stages <= 32,
              "online stages must be in [1, 32]");

  OnlineOutcome outcome;
  const std::size_t n = stream.size();
  if (n == 0) {
    return outcome;
  }
  const auto sample = std::min(
      n, std::max<std::size_t>(
             1, static_cast<std::size_t>(
                    std::ceil(config.sample_fraction * static_cast<double>(n)))));
  outcome.sample_size = sample;
  outcome.decisions.reserve(n);

  // Sample phase: observe and reject. Nothing is paid, so a sample arrival
  // has no deviation that changes her own (empty) outcome.
  for (std::size_t k = 0; k < sample; ++k) {
    ArrivalDecision decision;
    decision.arrival = k;
    decision.user = stream.at(k).user;
    decision.phase = ArrivalPhase::kSample;
    decision.threshold = kInf;
    decision.budget_remaining = config.budget;
    outcome.decisions.push_back(decision);
  }

  const auto boundaries = stage_boundaries(sample, n, config.stages);
  double spent = 0.0;  // worst-case payout committed so far
  double threshold = kInf;
  std::size_t stage = 0;  // 1-based once the accept phase starts
  double stage_cap = 0.0;
  for (std::size_t k = sample; k < n; ++k) {
    // Enter the arrival's stage (skipping any empty ones): relearn the
    // threshold from everything seen strictly before the stage's start and
    // unlock its budget share. Arrivals inside a stage never move their own
    // threshold — that is the irrevocability the truthfulness argument
    // stands on. Terminates because boundaries.back() == n > k.
    while (stage == 0 || k >= boundaries[stage - 1]) {
      ++stage;
      const std::size_t start = stage == 1 ? sample : boundaries[stage - 2];
      const std::vector<Arrival> seen(
          stream.arrivals().begin(),
          stream.arrivals().begin() + static_cast<std::ptrdiff_t>(start));
      stage_cap = budget_share(config.budget, stage, config.stages);
      threshold = learn_threshold(seen, stage_cap);
      ++outcome.threshold_updates;
    }

    const Arrival& arrival = stream.at(k);
    ArrivalDecision decision;
    decision.arrival = k;
    decision.user = arrival.user;
    decision.phase = ArrivalPhase::kAccept;
    decision.stage = stage;
    decision.threshold = threshold;

    if (std::isfinite(threshold)) {
      const double critical_q = threshold * arrival.bid.cost;
      const double critical_pos = common::pos_from_contribution(critical_q);
      // Worst-case (success-branch) payment of the EC reward calibrated at
      // the critical PoS. Reads only the VERIFIED cost and the posted
      // threshold — never the declaration — so the budget gate cannot be
      // gamed by misreporting.
      const double worst_case = (1.0 - critical_pos) * config.alpha + arrival.bid.cost;
      if (arrival.contribution() >= critical_q && spent + worst_case <= stage_cap) {
        spent += worst_case;
        decision.accepted = true;
        decision.critical_contribution = critical_q;
        decision.reward.critical_pos = critical_pos;
        decision.reward.cost = arrival.bid.cost;
        decision.reward.alpha = config.alpha;
        outcome.total_cost += arrival.bid.cost;
        outcome.worst_case_payout += worst_case;
        outcome.achieved_contribution += arrival.contribution();
        ++outcome.accepted;
        outcome.winners.push_back(arrival.user);
      }
    }
    decision.budget_remaining = config.budget - spent;
    outcome.decisions.push_back(decision);
  }

  std::sort(outcome.winners.begin(), outcome.winners.end());
  outcome.achieved_pos = common::pos_from_contribution(outcome.achieved_contribution);
  outcome.requirement_met =
      common::approx_ge(outcome.achieved_contribution, stream.requirement_contribution());
  MCS_ENSURES(outcome.worst_case_payout <= config.budget * (1.0 + 1e-12),
              "online mechanism exceeded its budget");
  return outcome;
}

}  // namespace mcs::auction::online
