#include "auction/bounds.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction {

double lower_bound(const SingleTaskInstance& instance) {
  instance.validate();
  const double requirement = instance.requirement_contribution();
  if (requirement <= 0.0) {
    return 0.0;
  }
  // Density order, fractional final take.
  std::vector<UserId> order(instance.num_users());
  std::iota(order.begin(), order.end(), UserId{0});
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    const double da =
        instance.contribution(a) / instance.bids[static_cast<std::size_t>(a)].cost;
    const double db =
        instance.contribution(b) / instance.bids[static_cast<std::size_t>(b)].cost;
    if (da != db) {
      return da > db;
    }
    return a < b;
  });
  double residual = requirement;
  double bound = 0.0;
  for (UserId user : order) {
    const double q = instance.contribution(user);
    if (q <= 0.0) {
      continue;
    }
    const double cost = instance.bids[static_cast<std::size_t>(user)].cost;
    if (q >= residual) {
      return bound + cost * (residual / q);
    }
    bound += cost;
    residual -= q;
  }
  return std::numeric_limits<double>::infinity();
}

double lower_bound(const MultiTaskInstance& instance) {
  instance.validate();
  const auto requirements = instance.requirement_contributions();
  double total_requirement = 0.0;
  for (double q : requirements) {
    total_requirement += q;
  }

  double best_ratio = 0.0;
  std::vector<double> best_task_rate(requirements.size(), 0.0);
  for (const auto& user : instance.users) {
    double capped = 0.0;
    for (std::size_t k = 0; k < user.tasks.size(); ++k) {
      const double q = common::contribution_from_pos(user.pos[k]);
      const auto task = static_cast<std::size_t>(user.tasks[k]);
      capped += std::min(q, requirements[task]);
      best_task_rate[task] = std::max(best_task_rate[task], q / user.cost);
    }
    best_ratio = std::max(best_ratio, capped / user.cost);
  }

  double bound = best_ratio > 0.0 ? total_requirement / best_ratio
                                  : std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < requirements.size(); ++j) {
    if (requirements[j] <= 0.0) {
      continue;
    }
    if (best_task_rate[j] <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    bound = std::max(bound, requirements[j] / best_task_rate[j]);
  }
  return bound;
}

double gamma(const MultiTaskInstance& instance) {
  instance.validate();
  const auto requirements = instance.requirement_contributions();
  double delta_q = std::numeric_limits<double>::infinity();
  double largest_capped = 0.0;
  for (const auto& user : instance.users) {
    double capped = 0.0;
    for (std::size_t k = 0; k < user.tasks.size(); ++k) {
      const double q =
          std::min(common::contribution_from_pos(user.pos[k]),
                   requirements[static_cast<std::size_t>(user.tasks[k])]);
      if (q > 0.0) {
        delta_q = std::min(delta_q, q);
        capped += q;
      }
    }
    largest_capped = std::max(largest_capped, capped);
  }
  if (largest_capped <= 0.0) {
    return 0.0;
  }
  return largest_capped / delta_q;
}

double harmonic_bound(const MultiTaskInstance& instance) {
  return common::harmonic_real(gamma(instance));
}

double certified_ratio(const SingleTaskInstance& instance, const Allocation& allocation) {
  MCS_EXPECTS(allocation.feasible, "certificates require a feasible allocation");
  const double bound = lower_bound(instance);
  MCS_EXPECTS(bound > 0.0 && bound < std::numeric_limits<double>::infinity(),
              "instance has no positive finite lower bound");
  return allocation.total_cost / bound;
}

double certified_ratio(const MultiTaskInstance& instance, const Allocation& allocation) {
  MCS_EXPECTS(allocation.feasible, "certificates require a feasible allocation");
  const double bound = lower_bound(instance);
  MCS_EXPECTS(bound > 0.0 && bound < std::numeric_limits<double>::infinity(),
              "instance has no positive finite lower bound");
  return allocation.total_cost / bound;
}

}  // namespace mcs::auction
