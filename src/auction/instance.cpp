#include "auction/instance.hpp"

#include <algorithm>
#include <cmath>

#include "auction/columns.hpp"
#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction {

namespace {
void check_pos(double p) { MCS_EXPECTS(p >= 0.0 && p <= 1.0, "PoS must lie in [0, 1]"); }
void check_requirement(double t) {
  MCS_EXPECTS(t > 0.0 && t < 1.0, "PoS requirement must lie in (0, 1)");
}
void check_cost(double c) { MCS_EXPECTS(c > 0.0, "costs must be strictly positive"); }
}  // namespace

// ---------------------------------------------------------------------------
// SingleTaskInstance
// ---------------------------------------------------------------------------

double SingleTaskInstance::requirement_contribution() const {
  return common::contribution_from_pos(requirement_pos);
}

double SingleTaskInstance::contribution(UserId user) const {
  MCS_EXPECTS(user >= 0 && static_cast<std::size_t>(user) < bids.size(), "user id out of range");
  return common::contribution_from_pos(bids[static_cast<std::size_t>(user)].pos);
}

double SingleTaskInstance::contribution_of(const std::vector<UserId>& users) const {
  double total = 0.0;
  for (UserId user : users) {
    total += contribution(user);
  }
  return total;
}

double SingleTaskInstance::cost_of(const std::vector<UserId>& users) const {
  double total = 0.0;
  for (UserId user : users) {
    MCS_EXPECTS(user >= 0 && static_cast<std::size_t>(user) < bids.size(), "user id out of range");
    total += bids[static_cast<std::size_t>(user)].cost;
  }
  return total;
}

bool SingleTaskInstance::covers(const std::vector<UserId>& users) const {
  return common::approx_ge(contribution_of(users), requirement_contribution());
}

bool SingleTaskInstance::is_feasible() const {
  double total = 0.0;
  for (std::size_t k = 0; k < bids.size(); ++k) {
    total += common::contribution_from_pos(bids[k].pos);
  }
  return common::approx_ge(total, requirement_contribution());
}

BidColumns SingleTaskInstance::make_columns() const {
  return BidColumns::from_single_task(*this);
}

void SingleTaskInstance::validate() const {
  check_requirement(requirement_pos);
  for (const auto& bid : bids) {
    check_cost(bid.cost);
    check_pos(bid.pos);
  }
}

SingleTaskInstance SingleTaskInstance::with_declared_pos(UserId user, double declared_pos) const {
  MCS_EXPECTS(user >= 0 && static_cast<std::size_t>(user) < bids.size(), "user id out of range");
  check_pos(declared_pos);
  SingleTaskInstance copy = *this;
  copy.bids[static_cast<std::size_t>(user)].pos = declared_pos;
  return copy;
}

SingleTaskInstance SingleTaskInstance::with_declared_contribution(UserId user,
                                                                  double declared_q) const {
  return with_declared_pos(user, common::pos_from_contribution(declared_q));
}

SingleTaskInstance SingleTaskInstance::without_user(UserId user) const {
  MCS_EXPECTS(user >= 0 && static_cast<std::size_t>(user) < bids.size(), "user id out of range");
  SingleTaskInstance copy = *this;
  copy.bids.erase(copy.bids.begin() + user);
  return copy;
}

// ---------------------------------------------------------------------------
// MultiTaskUserBid
// ---------------------------------------------------------------------------

double MultiTaskUserBid::pos_for(TaskIndex task) const {
  const auto it = std::lower_bound(tasks.begin(), tasks.end(), task);
  if (it == tasks.end() || *it != task) {
    return 0.0;
  }
  return pos[static_cast<std::size_t>(it - tasks.begin())];
}

double MultiTaskUserBid::contribution_for(TaskIndex task) const {
  return common::contribution_from_pos(pos_for(task));
}

double MultiTaskUserBid::total_contribution() const {
  double total = 0.0;
  for (double p : pos) {
    total += common::contribution_from_pos(p);
  }
  return total;
}

double MultiTaskUserBid::any_success_probability() const {
  // 1 - Π (1 - p_j) computed in log space: Σ q_j = -ln Π (1 - p_j).
  return common::pos_from_contribution(total_contribution());
}

// ---------------------------------------------------------------------------
// MultiTaskInstance
// ---------------------------------------------------------------------------

std::vector<double> MultiTaskInstance::requirement_contributions() const {
  std::vector<double> q(requirement_pos.size());
  for (std::size_t j = 0; j < requirement_pos.size(); ++j) {
    q[j] = common::contribution_from_pos(requirement_pos[j]);
  }
  return q;
}

double MultiTaskInstance::achieved_contribution(const std::vector<UserId>& winners,
                                                TaskIndex task) const {
  MCS_EXPECTS(task >= 0 && static_cast<std::size_t>(task) < requirement_pos.size(),
              "task index out of range");
  double total = 0.0;
  for (UserId user : winners) {
    MCS_EXPECTS(user >= 0 && static_cast<std::size_t>(user) < users.size(),
                "user id out of range");
    total += users[static_cast<std::size_t>(user)].contribution_for(task);
  }
  return total;
}

double MultiTaskInstance::achieved_pos(const std::vector<UserId>& winners, TaskIndex task) const {
  return common::pos_from_contribution(achieved_contribution(winners, task));
}

bool MultiTaskInstance::covers(const std::vector<UserId>& winners) const {
  const auto requirements = requirement_contributions();
  for (std::size_t j = 0; j < requirements.size(); ++j) {
    if (!common::approx_ge(achieved_contribution(winners, static_cast<TaskIndex>(j)),
                           requirements[j])) {
      return false;
    }
  }
  return true;
}

bool MultiTaskInstance::is_feasible() const {
  std::vector<UserId> everyone(users.size());
  for (std::size_t k = 0; k < users.size(); ++k) {
    everyone[k] = static_cast<UserId>(k);
  }
  return covers(everyone);
}

double MultiTaskInstance::cost_of(const std::vector<UserId>& users_subset) const {
  double total = 0.0;
  for (UserId user : users_subset) {
    MCS_EXPECTS(user >= 0 && static_cast<std::size_t>(user) < users.size(),
                "user id out of range");
    total += users[static_cast<std::size_t>(user)].cost;
  }
  return total;
}

void MultiTaskInstance::validate() const {
  for (double t : requirement_pos) {
    check_requirement(t);
  }
  for (const auto& user : users) {
    check_cost(user.cost);
    MCS_EXPECTS(user.tasks.size() == user.pos.size(),
                "task set and PoS arrays must be aligned");
    MCS_EXPECTS(!user.tasks.empty(), "single-minded users must demand at least one task");
    for (std::size_t k = 0; k < user.tasks.size(); ++k) {
      const TaskIndex task = user.tasks[k];
      MCS_EXPECTS(task >= 0 && static_cast<std::size_t>(task) < requirement_pos.size(),
                  "task index out of range");
      if (k > 0) {
        MCS_EXPECTS(user.tasks[k - 1] < task, "task sets must be strictly ascending");
      }
      check_pos(user.pos[k]);
    }
  }
}

MultiTaskInstance MultiTaskInstance::with_declared_total_contribution(
    UserId user, double declared_total_q) const {
  MCS_EXPECTS(user >= 0 && static_cast<std::size_t>(user) < users.size(), "user id out of range");
  MCS_EXPECTS(declared_total_q >= 0.0, "declared contribution must be non-negative");
  MultiTaskInstance copy = *this;
  auto& bid = copy.users[static_cast<std::size_t>(user)];
  const double current = bid.total_contribution();
  if (current <= 0.0) {
    // A user with zero true contribution declares uniformly over her tasks.
    const double share = declared_total_q / static_cast<double>(bid.tasks.size());
    for (double& p : bid.pos) {
      p = common::pos_from_contribution(share);
    }
    return copy;
  }
  const double scale = declared_total_q / current;
  for (double& p : bid.pos) {
    p = common::pos_from_contribution(common::contribution_from_pos(p) * scale);
  }
  return copy;
}

MultiTaskInstance MultiTaskInstance::without_user(UserId user) const {
  MCS_EXPECTS(user >= 0 && static_cast<std::size_t>(user) < users.size(), "user id out of range");
  MultiTaskInstance copy = *this;
  copy.users.erase(copy.users.begin() + user);
  return copy;
}

}  // namespace mcs::auction
