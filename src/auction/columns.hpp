// Structure-of-arrays bid storage shared across the single-task mechanisms
// (DESIGN.md §8). A SingleTaskInstance keeps bids as an array of
// {cost, pos} structs — natural for validation and I/O, hostile to the hot
// loops, which touch ONE field of every bid: the FPTAS gathers costs in
// (cost, id) order, Min-Greedy ranks by contribution/cost density, and the
// probe context folds contributions in id order. BidColumns transposes the
// bids once per mechanism run into two flat 64-byte-aligned columns —
// cost[i] and q[i] = -ln(1 - p_i) — so those loops stream 8-byte lanes
// instead of striding 16-byte structs and re-deriving q per read.
//
// Bit-identity: q is computed by the same contribution_from_pos the nested
// accessors call, once per bid, so every double a solver reads from the
// columns is the identical bit pattern the struct path would compute on the
// fly. The columns are a read-only snapshot: they must be rebuilt after any
// mutation of the instance (the mechanism facade builds them once per run;
// probe paths that mutate a scratch copy keep using the real instance).
#pragma once

#include <span>

#include "auction/instance.hpp"
#include "common/aligned.hpp"

namespace mcs::auction {

/// Flat per-user columns of a SingleTaskInstance, indexed by UserId.
struct BidColumns {
  common::aligned_vector<double> cost;  ///< c_i, aligned with user ids
  common::aligned_vector<double> q;     ///< -ln(1 - p_i); +inf when p_i = 1

  std::size_t size() const { return cost.size(); }

  std::span<const double> cost_span() const { return {cost.data(), cost.size()}; }
  std::span<const double> q_span() const { return {q.data(), q.size()}; }

  /// Transposes the instance's bids. Does not validate — callers that need
  /// validation (the mechanism facade) validate the instance once first.
  static BidColumns from_single_task(const SingleTaskInstance& instance);
};

}  // namespace mcs::auction
