// ST-VCG — the paper's VCG-like single-task baseline (Section IV-E). Because
// a plain VCG payment ignores the PoS dimension, every strategic user inflates
// her declared PoS to 1; the platform, believing any single user completes the
// task surely, recruits just the cheapest user. The achieved PoS is then the
// winner's *true* PoS, which generally falls short of the requirement —
// exactly the failure mode Fig 7 demonstrates.
#pragma once

#include "auction/instance.hpp"

namespace mcs::auction::single_task {

/// The strategic outcome of ST-VCG on an instance: selects the single
/// cheapest user (declared PoS taken as 1 by every strategic user). The
/// instance's stored PoS values are interpreted as the users' true PoS, used
/// only by callers evaluating the achieved PoS.
Allocation solve_st_vcg(const SingleTaskInstance& instance);

}  // namespace mcs::auction::single_task
