#include "auction/single_task/min_greedy.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::single_task {

Allocation solve_min_greedy(const SingleTaskInstance& instance, const common::Deadline& deadline,
                            obs::PhaseCounters* counters) {
  return solve_min_greedy(instance, BidColumns::from_single_task(instance), deadline, counters);
}

Allocation solve_min_greedy(const SingleTaskInstance& instance, const BidColumns& columns,
                            const common::Deadline& deadline, obs::PhaseCounters* counters) {
  instance.validate();
  MCS_EXPECTS(columns.size() == instance.num_users(), "columns must snapshot this instance");
  Allocation result;
  if (!instance.is_feasible()) {
    return result;
  }
  const double requirement = instance.requirement_contribution();
  const auto n = instance.num_users();

  // The columns ARE the per-id contribution/cost rows the density sort and
  // both scans consume; no per-call gather or q re-derivation.
  const std::span<const double> contributions = columns.q_span();
  const std::span<const double> costs = columns.cost_span();

  // Density order: contribution per unit cost, descending; ties by id.
  std::vector<UserId> order(n);
  std::iota(order.begin(), order.end(), UserId{0});
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    const double da = contributions[static_cast<std::size_t>(a)] /
                      costs[static_cast<std::size_t>(a)];
    const double db = contributions[static_cast<std::size_t>(b)] /
                      costs[static_cast<std::size_t>(b)];
    if (da != db) {
      return da > db;
    }
    return a < b;
  });

  // Greedy fill until feasible.
  std::vector<UserId> greedy;
  double covered = 0.0;
  std::size_t last_pick_position = 0;
  for (std::size_t k = 0; k < n; ++k) {
    deadline.check("min-greedy cover scan");
    if (counters != nullptr) {
      ++counters->deadline_polls;
    }
    if (contributions[static_cast<std::size_t>(order[k])] <= 0.0) {
      continue;
    }
    if (counters != nullptr) {
      ++counters->rounds;
    }
    greedy.push_back(order[k]);
    covered += contributions[static_cast<std::size_t>(order[k])];
    last_pick_position = k;
    if (common::approx_ge(covered, requirement)) {
      break;
    }
  }
  if (!common::approx_ge(covered, requirement)) {
    // Knife-edge instance: the total contribution equals the requirement to
    // within rounding, so is_feasible() (an id-order sum) and the
    // density-order accumulation above can disagree. Report infeasible
    // rather than crash — the same guard solve_fptas applies when its DP
    // and is_feasible() disagree. Critical-bid probes bisect onto exactly
    // such boundaries, so this is reachable from any reward search.
    result.feasible = false;
    return result;
  }
  const double greedy_cost = instance.cost_of(greedy);

  // Swap variant: drop the final pick and close the residual with the single
  // cheapest user able to cover it alone.
  double swap_cost = std::numeric_limits<double>::infinity();
  std::vector<UserId> swap_set;
  if (!greedy.empty()) {
    std::vector<UserId> prefix(greedy.begin(), greedy.end() - 1);
    std::vector<char> in_prefix(n, 0);
    for (UserId user : prefix) {
      in_prefix[static_cast<std::size_t>(user)] = 1;
    }
    const double prefix_cover = covered - contributions[static_cast<std::size_t>(greedy.back())];
    const double residual = requirement - prefix_cover;
    UserId best_closer = -1;
    double best_closer_cost = std::numeric_limits<double>::infinity();
    for (std::size_t k = last_pick_position; k < n; ++k) {
      deadline.check("min-greedy swap scan");
      if (counters != nullptr) {
        ++counters->deadline_polls;
      }
      const UserId user = order[k];
      if (in_prefix[static_cast<std::size_t>(user)] != 0) {
        continue;
      }
      const double cost = costs[static_cast<std::size_t>(user)];
      if (common::approx_ge(contributions[static_cast<std::size_t>(user)], residual) &&
          cost < best_closer_cost) {
        best_closer = user;
        best_closer_cost = cost;
      }
    }
    if (best_closer >= 0) {
      prefix.push_back(best_closer);
      swap_cost = instance.cost_of(prefix);
      swap_set = std::move(prefix);
    }
  }

  result.feasible = true;
  if (swap_cost < greedy_cost) {
    result.winners = std::move(swap_set);
    result.total_cost = swap_cost;
  } else {
    result.winners = std::move(greedy);
    result.total_cost = greedy_cost;
  }
  std::sort(result.winners.begin(), result.winners.end());
  return result;
}

}  // namespace mcs::auction::single_task
