#include "auction/single_task/dp_knapsack.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::single_task {

namespace {

/// A DP state; subsets are reconstructed by following `parent` links.
struct State {
  std::int64_t cost = 0;
  double contribution = 0.0;
  std::int32_t item = -1;    ///< item added to create this state; -1 for the root
  std::int32_t parent = -1;  ///< pool index of the predecessor state
};

/// Runs the Algorithm 1 sweep: builds the Pareto frontier (cost ascending,
/// contribution ascending) over all items. Contributions are capped at
/// `contribution_cap` when finite; states with cost > cost_cap are dropped
/// when cost_cap >= 0. Returns the state pool and the final frontier.
std::pair<std::vector<State>, std::vector<std::int32_t>> sweep(
    std::span<const KnapsackItem> items, double contribution_cap, std::int64_t cost_cap,
    const common::Deadline& deadline = {}) {
  std::vector<State> pool;
  pool.push_back(State{});  // the empty set
  std::vector<std::int32_t> frontier{0};
  std::vector<std::int32_t> merged;
  std::vector<State> extensions;

  for (std::size_t j = 0; j < items.size(); ++j) {
    deadline.check("knapsack DP sweep");
    const auto& item = items[j];
    // Extend every frontier state with item j. The extension list inherits
    // the frontier's cost order because the added cost is constant.
    extensions.clear();
    extensions.reserve(frontier.size());
    for (std::int32_t state_index : frontier) {
      const State& state = pool[static_cast<std::size_t>(state_index)];
      const std::int64_t cost = state.cost + item.scaled_cost;
      if (cost_cap >= 0 && cost > cost_cap) {
        continue;  // over budget; extensions of it would be too
      }
      extensions.push_back(State{cost,
                                 std::min(contribution_cap, state.contribution + item.contribution),
                                 static_cast<std::int32_t>(j), state_index});
    }

    // Merge (old frontier, extensions) by cost, old-first on ties so that the
    // smaller subset is preferred; then drop dominated states.
    merged.clear();
    merged.reserve(frontier.size() + extensions.size());
    std::size_t a = 0;
    std::size_t b = 0;
    double best_contribution = -1.0;
    while (a < frontier.size() || b < extensions.size()) {
      const bool take_old =
          b >= extensions.size() ||
          (a < frontier.size() &&
           pool[static_cast<std::size_t>(frontier[a])].cost <= extensions[b].cost);
      if (take_old) {
        const State& state = pool[static_cast<std::size_t>(frontier[a])];
        if (state.contribution > best_contribution) {
          merged.push_back(frontier[a]);
          best_contribution = state.contribution;
        }
        ++a;
      } else {
        // Materialize the extension in the pool only if it survives pruning.
        if (extensions[b].contribution > best_contribution) {
          pool.push_back(extensions[b]);
          merged.push_back(static_cast<std::int32_t>(pool.size() - 1));
          best_contribution = extensions[b].contribution;
        }
        ++b;
      }
    }
    frontier.swap(merged);
  }
  return {std::move(pool), std::move(frontier)};
}

KnapsackSolution reconstruct(const std::vector<State>& pool, std::int32_t state_index) {
  KnapsackSolution solution;
  const State& state = pool[static_cast<std::size_t>(state_index)];
  solution.total_scaled_cost = state.cost;
  solution.total_contribution = state.contribution;
  for (std::int32_t cursor = state_index; cursor >= 0;) {
    const State& node = pool[static_cast<std::size_t>(cursor)];
    if (node.item >= 0) {
      solution.items.push_back(static_cast<std::size_t>(node.item));
    }
    cursor = node.parent;
  }
  std::reverse(solution.items.begin(), solution.items.end());
  return solution;
}

void check_items(std::span<const KnapsackItem> items) {
  for (const auto& item : items) {
    MCS_EXPECTS(item.scaled_cost >= 0, "scaled costs must be non-negative");
    MCS_EXPECTS(item.contribution >= 0.0, "contributions must be non-negative");
  }
}

}  // namespace

std::vector<FrontierEntry> min_knapsack_frontier(std::span<const KnapsackItem> items,
                                                 double requirement,
                                                 const common::Deadline& deadline) {
  MCS_EXPECTS(requirement >= 0.0, "requirement must be non-negative");
  check_items(items);
  const auto [pool, frontier] = sweep(items, requirement, /*cost_cap=*/-1, deadline);
  std::vector<FrontierEntry> entries;
  entries.reserve(frontier.size());
  for (std::int32_t state_index : frontier) {
    const State& state = pool[static_cast<std::size_t>(state_index)];
    entries.push_back({state.cost, state.contribution});
  }
  return entries;
}

std::optional<KnapsackSolution> solve_min_knapsack(std::span<const KnapsackItem> items,
                                                   double requirement,
                                                   const common::Deadline& deadline) {
  MCS_EXPECTS(requirement >= 0.0, "requirement must be non-negative");
  check_items(items);
  const auto [pool, frontier] = sweep(items, requirement, /*cost_cap=*/-1, deadline);
  // Minimum-cost feasible state: the frontier is cost-ascending, so the first
  // state meeting the requirement is optimal.
  for (std::int32_t state_index : frontier) {
    const State& state = pool[static_cast<std::size_t>(state_index)];
    if (common::approx_ge(state.contribution, requirement)) {
      return reconstruct(pool, state_index);
    }
  }
  return std::nullopt;
}

KnapsackSolution solve_max_knapsack(std::span<const KnapsackItem> items, std::int64_t budget) {
  MCS_EXPECTS(budget >= 0, "budget must be non-negative");
  check_items(items);
  const auto [pool, frontier] = sweep(items, std::numeric_limits<double>::infinity(), budget);
  // The frontier is contribution-ascending, so its last state (all states
  // already respect the budget) carries the maximum contribution.
  MCS_ENSURES(!frontier.empty(), "the empty set always fits the budget");
  return reconstruct(pool, frontier.back());
}

}  // namespace mcs::auction::single_task
