#include "auction/single_task/dp_knapsack.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::single_task {

namespace {

/// A DP state; subsets are reconstructed by following `parent` links.
struct State {
  std::int64_t cost = 0;
  double contribution = 0.0;
  std::int32_t item = -1;    ///< item added to create this state; -1 for the root
  std::int32_t parent = -1;  ///< pool index of the predecessor state
};

/// Runs the Algorithm 1 sweep: builds the Pareto frontier (cost ascending,
/// contribution ascending) over all items. Contributions are capped at
/// `contribution_cap` when finite; states with cost > cost_cap are dropped
/// when cost_cap >= 0. Returns the state pool and the final frontier.
std::pair<std::vector<State>, std::vector<std::int32_t>> sweep(
    std::span<const KnapsackItem> items, double contribution_cap, std::int64_t cost_cap,
    const common::Deadline& deadline = {}) {
  std::vector<State> pool;
  pool.push_back(State{});  // the empty set
  std::vector<std::int32_t> frontier{0};
  std::vector<std::int32_t> merged;
  std::vector<State> extensions;

  for (std::size_t j = 0; j < items.size(); ++j) {
    deadline.check("knapsack DP sweep");
    const auto& item = items[j];
    // Extend every frontier state with item j. The extension list inherits
    // the frontier's cost order because the added cost is constant.
    extensions.clear();
    extensions.reserve(frontier.size());
    for (std::int32_t state_index : frontier) {
      const State& state = pool[static_cast<std::size_t>(state_index)];
      const std::int64_t cost = state.cost + item.scaled_cost;
      if (cost_cap >= 0 && cost > cost_cap) {
        continue;  // over budget; extensions of it would be too
      }
      extensions.push_back(State{cost,
                                 std::min(contribution_cap, state.contribution + item.contribution),
                                 static_cast<std::int32_t>(j), state_index});
    }

    // Merge (old frontier, extensions) by cost, old-first on ties so that the
    // smaller subset is preferred; then drop dominated states.
    merged.clear();
    merged.reserve(frontier.size() + extensions.size());
    std::size_t a = 0;
    std::size_t b = 0;
    double best_contribution = -1.0;
    while (a < frontier.size() || b < extensions.size()) {
      const bool take_old =
          b >= extensions.size() ||
          (a < frontier.size() &&
           pool[static_cast<std::size_t>(frontier[a])].cost <= extensions[b].cost);
      if (take_old) {
        const State& state = pool[static_cast<std::size_t>(frontier[a])];
        if (state.contribution > best_contribution) {
          merged.push_back(frontier[a]);
          best_contribution = state.contribution;
        }
        ++a;
      } else {
        // Materialize the extension in the pool only if it survives pruning.
        if (extensions[b].contribution > best_contribution) {
          pool.push_back(extensions[b]);
          merged.push_back(static_cast<std::int32_t>(pool.size() - 1));
          best_contribution = extensions[b].contribution;
        }
        ++b;
      }
    }
    frontier.swap(merged);
  }
  return {std::move(pool), std::move(frontier)};
}

KnapsackSolution reconstruct(const std::vector<State>& pool, std::int32_t state_index) {
  KnapsackSolution solution;
  const State& state = pool[static_cast<std::size_t>(state_index)];
  solution.total_scaled_cost = state.cost;
  solution.total_contribution = state.contribution;
  for (std::int32_t cursor = state_index; cursor >= 0;) {
    const State& node = pool[static_cast<std::size_t>(cursor)];
    if (node.item >= 0) {
      solution.items.push_back(static_cast<std::size_t>(node.item));
    }
    cursor = node.parent;
  }
  std::reverse(solution.items.begin(), solution.items.end());
  return solution;
}

void check_items(std::span<const KnapsackItem> items) {
  for (const auto& item : items) {
    MCS_EXPECTS(item.scaled_cost >= 0, "scaled costs must be non-negative");
    MCS_EXPECTS(item.contribution >= 0.0, "contributions must be non-negative");
  }
}

// ---- kColumns kernel ------------------------------------------------------
//
// The frontier lives in two parallel, contiguous rows: costs[] and
// contribs[]. Each item's pass first materializes the extension rows in two
// tight loops the compiler can vectorize (an integer add lane and a
// min(cap, +) lane), then merges old row and extension row with the same
// two-pointer, old-first-on-ties, dominance-pruning walk the scalar oracle
// performs. Every comparison runs on the same doubles in the same order as
// the oracle, so survivors and their order are bit-identical; only the
// storage changed. Parent links for subset reconstruction sit in a separate
// node pool that exists only when the caller asked to reconstruct — the
// frontier-only path (the reward probe context's inner loop) touches pure
// value rows and allocates no parent state at all.

/// One reconstruction node: the item that created a surviving extension and
/// the node id of the state it extended. Root is node 0 (item -1).
struct ParentNode {
  std::int32_t item = -1;
  std::int32_t parent = -1;
};

/// Final frontier rows of the columns sweep; `ids`/`pool` are populated only
/// when the sweep ran with track_parents.
struct ColumnsResult {
  std::vector<std::int64_t> costs;
  std::vector<double> contribs;
  std::vector<std::int32_t> ids;  ///< parent-pool node id per frontier entry
  std::vector<ParentNode> pool;
};

ColumnsResult sweep_columns(std::span<const KnapsackItem> items, double contribution_cap,
                            std::int64_t cost_cap, const common::Deadline& deadline,
                            bool track_parents) {
  ColumnsResult result;
  result.costs.push_back(0);        // the empty set
  result.contribs.push_back(0.0);
  if (track_parents) {
    result.pool.push_back(ParentNode{});
    result.ids.push_back(0);
  }

  // Double-buffered rows; capacity is retained across items via swap.
  std::vector<std::int64_t> next_costs;
  std::vector<double> next_contribs;
  std::vector<std::int32_t> next_ids;
  std::vector<std::int64_t> ext_costs;
  std::vector<double> ext_contribs;

  for (std::size_t j = 0; j < items.size(); ++j) {
    deadline.check("knapsack DP sweep");
    const auto& item = items[j];
    const std::size_t n = result.costs.size();

    // Extension rows: contiguous, branch-free, auto-vectorizable.
    ext_costs.resize(n);
    ext_contribs.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      ext_costs[i] = result.costs[i] + item.scaled_cost;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ext_contribs[i] = std::min(contribution_cap, result.contribs[i] + item.contribution);
    }
    // Frontier costs are non-decreasing and the added cost is constant, so
    // over-budget extensions form a suffix: a boundary replaces the oracle's
    // per-entry skip without changing which extensions survive.
    std::size_t ext_end = n;
    if (cost_cap >= 0) {
      while (ext_end > 0 && ext_costs[ext_end - 1] > cost_cap) {
        --ext_end;
      }
    }

    // Output rows are written through a cursor into pre-sized buffers (a
    // surviving merge never exceeds n + ext_end rows), and the merge drains
    // the leftover run in dedicated tail loops — fewer per-entry branches
    // than the oracle's generic loop, but the comparisons themselves (cost
    // `<=` old-first, contribution `> best`) run on the same values in the
    // same order, so the survivors are identical.
    next_costs.resize(n + ext_end);
    next_contribs.resize(n + ext_end);
    if (track_parents) {
      next_ids.resize(n + ext_end);
    }
    const std::int64_t* old_costs = result.costs.data();
    const double* old_contribs = result.contribs.data();
    std::int64_t* out_costs = next_costs.data();
    double* out_contribs = next_contribs.data();
    std::size_t out = 0;
    std::size_t a = 0;
    std::size_t b = 0;
    double best_contribution = -1.0;
    while (a < n && b < ext_end) {
      if (old_costs[a] <= ext_costs[b]) {
        if (old_contribs[a] > best_contribution) {
          out_costs[out] = old_costs[a];
          out_contribs[out] = old_contribs[a];
          if (track_parents) {
            next_ids[out] = result.ids[a];
          }
          best_contribution = old_contribs[a];
          ++out;
        }
        ++a;
      } else {
        if (ext_contribs[b] > best_contribution) {
          out_costs[out] = ext_costs[b];
          out_contribs[out] = ext_contribs[b];
          if (track_parents) {
            result.pool.push_back(ParentNode{static_cast<std::int32_t>(j), result.ids[b]});
            next_ids[out] = static_cast<std::int32_t>(result.pool.size() - 1);
          }
          best_contribution = ext_contribs[b];
          ++out;
        }
        ++b;
      }
    }
    for (; a < n; ++a) {
      if (old_contribs[a] > best_contribution) {
        out_costs[out] = old_costs[a];
        out_contribs[out] = old_contribs[a];
        if (track_parents) {
          next_ids[out] = result.ids[a];
        }
        best_contribution = old_contribs[a];
        ++out;
      }
    }
    for (; b < ext_end; ++b) {
      if (ext_contribs[b] > best_contribution) {
        out_costs[out] = ext_costs[b];
        out_contribs[out] = ext_contribs[b];
        if (track_parents) {
          result.pool.push_back(ParentNode{static_cast<std::int32_t>(j), result.ids[b]});
          next_ids[out] = static_cast<std::int32_t>(result.pool.size() - 1);
        }
        best_contribution = ext_contribs[b];
        ++out;
      }
    }
    next_costs.resize(out);
    next_contribs.resize(out);
    result.costs.swap(next_costs);
    result.contribs.swap(next_contribs);
    if (track_parents) {
      next_ids.resize(out);
      result.ids.swap(next_ids);
    }
  }
  return result;
}

KnapsackSolution reconstruct_columns(const ColumnsResult& result, std::size_t entry) {
  KnapsackSolution solution;
  solution.total_scaled_cost = result.costs[entry];
  solution.total_contribution = result.contribs[entry];
  for (std::int32_t cursor = result.ids[entry]; cursor >= 0;) {
    const ParentNode& node = result.pool[static_cast<std::size_t>(cursor)];
    if (node.item >= 0) {
      solution.items.push_back(static_cast<std::size_t>(node.item));
    }
    cursor = node.parent;
  }
  std::reverse(solution.items.begin(), solution.items.end());
  return solution;
}

}  // namespace

std::vector<FrontierEntry> min_knapsack_frontier(std::span<const KnapsackItem> items,
                                                 double requirement,
                                                 const common::Deadline& deadline,
                                                 DpKernel kernel) {
  MCS_EXPECTS(requirement >= 0.0, "requirement must be non-negative");
  check_items(items);
  std::vector<FrontierEntry> entries;
  if (kernel == DpKernel::kScalarOracle) {
    const auto [pool, frontier] = sweep(items, requirement, /*cost_cap=*/-1, deadline);
    entries.reserve(frontier.size());
    for (std::int32_t state_index : frontier) {
      const State& state = pool[static_cast<std::size_t>(state_index)];
      entries.push_back({state.cost, state.contribution});
    }
    return entries;
  }
  const ColumnsResult result =
      sweep_columns(items, requirement, /*cost_cap=*/-1, deadline, /*track_parents=*/false);
  entries.reserve(result.costs.size());
  for (std::size_t i = 0; i < result.costs.size(); ++i) {
    entries.push_back({result.costs[i], result.contribs[i]});
  }
  return entries;
}

std::optional<KnapsackSolution> solve_min_knapsack(std::span<const KnapsackItem> items,
                                                   double requirement,
                                                   const common::Deadline& deadline,
                                                   DpKernel kernel) {
  MCS_EXPECTS(requirement >= 0.0, "requirement must be non-negative");
  check_items(items);
  // Minimum-cost feasible state: the frontier is cost-ascending, so the first
  // state meeting the requirement is optimal.
  if (kernel == DpKernel::kScalarOracle) {
    const auto [pool, frontier] = sweep(items, requirement, /*cost_cap=*/-1, deadline);
    for (std::int32_t state_index : frontier) {
      const State& state = pool[static_cast<std::size_t>(state_index)];
      if (common::approx_ge(state.contribution, requirement)) {
        return reconstruct(pool, state_index);
      }
    }
    return std::nullopt;
  }
  const ColumnsResult result =
      sweep_columns(items, requirement, /*cost_cap=*/-1, deadline, /*track_parents=*/true);
  for (std::size_t i = 0; i < result.costs.size(); ++i) {
    if (common::approx_ge(result.contribs[i], requirement)) {
      return reconstruct_columns(result, i);
    }
  }
  return std::nullopt;
}

KnapsackSolution solve_max_knapsack(std::span<const KnapsackItem> items, std::int64_t budget,
                                    DpKernel kernel) {
  MCS_EXPECTS(budget >= 0, "budget must be non-negative");
  check_items(items);
  // The frontier is contribution-ascending, so its last state (all states
  // already respect the budget) carries the maximum contribution.
  if (kernel == DpKernel::kScalarOracle) {
    const auto [pool, frontier] = sweep(items, std::numeric_limits<double>::infinity(), budget);
    MCS_ENSURES(!frontier.empty(), "the empty set always fits the budget");
    return reconstruct(pool, frontier.back());
  }
  const ColumnsResult result = sweep_columns(items, std::numeric_limits<double>::infinity(),
                                             budget, common::Deadline{}, /*track_parents=*/true);
  MCS_ENSURES(!result.costs.empty(), "the empty set always fits the budget");
  return reconstruct_columns(result, result.costs.size() - 1);
}

}  // namespace mcs::auction::single_task
