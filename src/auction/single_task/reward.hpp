// Algorithm 3 of the paper: the reward scheme of the single-task mechanism.
// For a winner i, binary search (valid because the FPTAS winner determination
// is monotone in the declared contribution — Lemma 1) finds the critical
// contribution q̄_i: the smallest declaration with which i still wins. The
// critical PoS p̄_i = 1 - e^{-q̄_i} parameterizes the execution-contingent
// reward
//     success: (1 - p̄_i)·α + c_i,    failure: -p̄_i·α + c_i,
// which yields expected utility (p_i - p̄_i)·α and makes truthful PoS
// declaration dominant (Theorem 1).
#pragma once

#include "auction/instance.hpp"
#include "common/deadline.hpp"
#include "obs/telemetry.hpp"

namespace mcs::auction::single_task {

/// Which winner-determination algorithm the critical-bid search replays. The
/// reward scheme must re-run the SAME rule that selected the winners, or the
/// computed threshold is for the wrong mechanism; kMinGreedy is the degraded
/// ladder's rule, matching the fallback allocation after an FPTAS timeout.
enum class WinnerRule {
  kFptas,
  kMinGreedy,
};

struct RewardOptions {
  double alpha = 10.0;             ///< reward scaling factor α (paper Table II)
  double epsilon = 0.1;            ///< FPTAS parameter used by the re-runs
  int binary_search_iterations = 48;  ///< ~1e-14 relative precision on q̄
  WinnerRule winner_rule = WinnerRule::kFptas;
  /// How FPTAS critical-bid probes are answered: kDpReuse (default) builds
  /// one FptasProbeContext per winner and answers probes from reused
  /// without-winner DP frontiers; kFullSolve re-runs the winner
  /// determination per probe (the oracle the fast path is differential-
  /// tested against). Bit-identical outcomes either way; Min-Greedy probes
  /// always full-solve. See DESIGN.md §8.
  ProbeStrategy probe_strategy = ProbeStrategy::kDpReuse;
  /// Cooperative wall-clock budget; polled once per probe and threaded into
  /// the FPTAS and Min-Greedy re-runs.
  common::Deadline deadline = {};
  /// Answer each critical-bid probe by mutating one reusable scratch copy of
  /// the instance (save/restore the winner's declared PoS around the probe)
  /// instead of materializing a fresh O(n) copy per probe. Bit-identical to
  /// the copying path (asserted by tests/st_reward_test.cpp); off reproduces
  /// the legacy allocation behaviour for benchmarking.
  bool scratch_probes = true;
  /// Frontier-DP kernel threaded into every FPTAS re-run and probe-context
  /// build this search issues (see DpKernel); both settings bit-identical.
  DpKernel dp_kernel = DpKernel::kColumns;
  /// Borrowed per-instance bid columns (built once by the mechanism facade
  /// and shared across all winners' searches). When non-null, the
  /// probe-context build reads costs/contributions from these flat arrays;
  /// null builds a snapshot on demand. Probe re-runs that mutate a scratch
  /// instance always snapshot that instance themselves — the shared columns
  /// describe only the unmodified auction.
  const BidColumns* columns = nullptr;
  /// When non-null, accumulates probe / bisection / deadline-poll counts.
  /// The caller owns the block; under parallel rewards each worker slot must
  /// get its own (the mechanism facade merges them in index order).
  obs::PhaseCounters* counters = nullptr;
};

/// Critical contribution q̄_i of `winner`: the infimum of declared
/// contributions with which the winner-determination algorithm still selects
/// her, searched over [0, her declared contribution]. Requires that she wins
/// with her current declaration.
double critical_contribution(const SingleTaskInstance& instance, UserId winner,
                             const RewardOptions& options);

/// Full reward for one winner (Algorithm 3).
WinnerReward compute_reward(const SingleTaskInstance& instance, UserId winner,
                            const RewardOptions& options);

}  // namespace mcs::auction::single_task
