// Naive single-task baselines: selection rules a platform might try before
// adopting density-aware winner determination. Both satisfy the coverage
// constraint but ignore the contribution-cost trade-off the FPTAS exploits:
//   * cheapest-first — add users by ascending cost until covered;
//   * random-order   — add users in a random order until covered.
// Used by the extended Fig 5(a) comparison to show how much of the
// mechanism's saving comes from density awareness alone.
#pragma once

#include "auction/instance.hpp"
#include "common/rng.hpp"

namespace mcs::auction::single_task {

/// Adds users in ascending-cost order until the requirement is met. Returns
/// an infeasible Allocation for infeasible instances.
Allocation solve_cheapest_first(const SingleTaskInstance& instance);

/// Adds users in a uniformly random order until the requirement is met.
Allocation solve_random_order(const SingleTaskInstance& instance, common::Rng& rng);

}  // namespace mcs::auction::single_task
