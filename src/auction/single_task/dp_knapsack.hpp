// Algorithm 1 of the paper: dynamic programming for the (minimum) knapsack
// problem over states (I, Q, C) with dominance pruning. A state records a
// subset of the first j items with exact total contribution Q and total
// (integer, already-scaled) cost C; state (I, Q, C) dominates (I', Q', C')
// when C <= C' and Q >= Q'. The surviving states per prefix form a Pareto
// frontier ordered by strictly increasing cost and contribution, so the
// minimum-cost feasible state is found by a scan.
//
// Item subsets are reconstructed through parent links in a state pool rather
// than stored per state, keeping the DP O(#states) in memory.
//
// Two kernels implement the sweep (auction::DpKernel). kColumns, the
// default, keeps the frontier as two contiguous (cost, contribution) arrays
// and merges extensions with a branch-light two-pointer pass — no state
// pool, no index indirection, parent links in a side pool only when the
// caller reconstructs a subset. kScalarOracle is the original pooled
// implementation, retained verbatim as the differential oracle. Both
// perform the identical comparisons on the identical doubles, so frontier
// entries, chosen subsets, and tie-breaks are bit-for-bit equal
// (tests/dp_kernel_equivalence_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "auction/types.hpp"
#include "common/deadline.hpp"

namespace mcs::auction::single_task {

/// One knapsack item: a real-valued contribution and an integer (scaled)
/// cost. Costs must be non-negative; contributions must be non-negative and
/// may be +infinity (a declared PoS of 1).
struct KnapsackItem {
  double contribution = 0.0;
  std::int64_t scaled_cost = 0;
};

/// Solution of the minimum knapsack: chosen item indices (ascending), their
/// total scaled cost and total contribution.
struct KnapsackSolution {
  std::vector<std::size_t> items;
  std::int64_t total_scaled_cost = 0;
  double total_contribution = 0.0;
};

/// One surviving Pareto state of the minimum-knapsack sweep, stripped of its
/// reconstruction links: the subset's (already-scaled) integer cost and its
/// capped contribution. Within a frontier costs are non-decreasing (equal
/// costs can coexist at distinct contributions) and contributions strictly
/// ascending.
struct FrontierEntry {
  std::int64_t scaled_cost = 0;
  double contribution = 0.0;
};

/// The final Pareto frontier of the Algorithm 1 sweep over `items` with
/// contributions capped at `requirement` — the values solve_min_knapsack
/// scans, without materializing any subset. The single-task reward fast path
/// builds one frontier per (winner, FPTAS subproblem) over the OTHER items
/// and answers every critical-bid probe against it (DESIGN.md §8): the
/// sweep's floating-point folds over without-winner subsets are exactly the
/// ones a full re-solve would compute, which is what makes the reuse
/// bit-identical. Polls `deadline` once per item, like solve_min_knapsack.
/// The frontier-only path never allocates parent links under kColumns: the
/// probe context builds thousands of these per reward phase and needs only
/// the (cost, contribution) rows.
std::vector<FrontierEntry> min_knapsack_frontier(std::span<const KnapsackItem> items,
                                                 double requirement,
                                                 const common::Deadline& deadline = {},
                                                 DpKernel kernel = DpKernel::kColumns);

/// Minimum-cost subset with total contribution >= requirement, or nullopt
/// when even the full item set falls short. Contributions are capped at
/// `requirement` during the DP (capping preserves optimality for a covering
/// constraint and sharpens dominance pruning). The sweep polls `deadline`
/// once per item and throws common::DeadlineExceeded when it expires.
std::optional<KnapsackSolution> solve_min_knapsack(std::span<const KnapsackItem> items,
                                                   double requirement,
                                                   const common::Deadline& deadline = {},
                                                   DpKernel kernel = DpKernel::kColumns);

/// The dual form Algorithm 1's discussion also describes: the
/// maximum-contribution subset whose total scaled cost stays within
/// `budget`. Always has a solution (the empty set). Budgeted coverage is the
/// primitive behind budget-feasible crowdsensing (the paper's reference
/// [5]): recruit the best task coverage a fixed budget can buy.
KnapsackSolution solve_max_knapsack(std::span<const KnapsackItem> items, std::int64_t budget,
                                    DpKernel kernel = DpKernel::kColumns);

}  // namespace mcs::auction::single_task
