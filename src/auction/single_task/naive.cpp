#include "auction/single_task/naive.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::single_task {

namespace {

Allocation fill_in_order(const SingleTaskInstance& instance, const std::vector<UserId>& order) {
  Allocation result;
  if (!instance.is_feasible()) {
    return result;
  }
  const double requirement = instance.requirement_contribution();
  double covered = 0.0;
  for (UserId user : order) {
    const double q = instance.contribution(user);
    if (q <= 0.0) {
      continue;
    }
    result.winners.push_back(user);
    covered += q;
    if (common::approx_ge(covered, requirement)) {
      break;
    }
  }
  MCS_ENSURES(common::approx_ge(covered, requirement),
              "feasible instance must be coverable in any positive order");
  result.feasible = true;
  std::sort(result.winners.begin(), result.winners.end());
  result.total_cost = instance.cost_of(result.winners);
  return result;
}

}  // namespace

Allocation solve_cheapest_first(const SingleTaskInstance& instance) {
  instance.validate();
  std::vector<UserId> order(instance.num_users());
  std::iota(order.begin(), order.end(), UserId{0});
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    const double ca = instance.bids[static_cast<std::size_t>(a)].cost;
    const double cb = instance.bids[static_cast<std::size_t>(b)].cost;
    if (ca != cb) {
      return ca < cb;
    }
    return a < b;
  });
  return fill_in_order(instance, order);
}

Allocation solve_random_order(const SingleTaskInstance& instance, common::Rng& rng) {
  instance.validate();
  std::vector<UserId> order(instance.num_users());
  std::iota(order.begin(), order.end(), UserId{0});
  for (std::size_t k = order.size(); k > 1; --k) {
    std::swap(order[k - 1], order[static_cast<std::size_t>(
                                rng.uniform_int(0, static_cast<std::int64_t>(k) - 1))]);
  }
  return fill_in_order(instance, order);
}

}  // namespace mcs::auction::single_task
