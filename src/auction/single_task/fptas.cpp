#include "auction/single_task/fptas.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "auction/single_task/dp_knapsack.hpp"
#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::single_task {

namespace {

/// Sentinel scaled cost for "no subset covers the requirement". Small enough
/// that adding a real scaled cost to a non-sentinel value can never reach it.
constexpr std::int64_t kNoCover = std::numeric_limits<std::int64_t>::max();

/// Membership verdict for the subproblem that wins the scaled-value argmin.
enum class Membership { kLoses, kWins, kAmbiguous };

/// The q → PoS → q round trip every probe path applies: probes write
/// pos_from_contribution(q) into the instance and the solver reads
/// contribution_from_pos back, so the fast path must reason about the
/// round-tripped value, not q itself.
double roundtrip_contribution(double declared_q) {
  return common::contribution_from_pos(common::pos_from_contribution(declared_q));
}

}  // namespace

Allocation solve_fptas(const SingleTaskInstance& instance, double epsilon,
                       const common::Deadline& deadline, obs::PhaseCounters* counters,
                       DpKernel kernel) {
  return solve_fptas(instance, BidColumns::from_single_task(instance), epsilon, deadline,
                     counters, kernel);
}

Allocation solve_fptas(const SingleTaskInstance& instance, const BidColumns& columns,
                       double epsilon, const common::Deadline& deadline,
                       obs::PhaseCounters* counters, DpKernel kernel) {
  MCS_EXPECTS(epsilon > 0.0, "approximation parameter must be positive");
  instance.validate();
  MCS_EXPECTS(columns.size() == instance.num_users(), "columns must snapshot this instance");
  const double requirement = instance.requirement_contribution();
  const auto n = instance.num_users();

  Allocation result;
  if (!instance.is_feasible()) {
    return result;
  }

  // Sort user ids by (cost, id); ties broken by id for determinism.
  const std::span<const double> cost_col = columns.cost_span();
  const std::span<const double> q_col = columns.q_span();
  std::vector<UserId> order(n);
  std::iota(order.begin(), order.end(), UserId{0});
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    const double ca = cost_col[static_cast<std::size_t>(a)];
    const double cb = cost_col[static_cast<std::size_t>(b)];
    if (ca != cb) {
      return ca < cb;
    }
    return a < b;
  });

  // Costs and contributions gathered once into sorted-order rows; the
  // per-subproblem item builds below then stream these contiguously instead
  // of re-gathering through the permutation every round.
  std::vector<double> sorted_costs(n);
  std::vector<double> contributions(n);
  for (std::size_t k = 0; k < n; ++k) {
    sorted_costs[k] = cost_col[static_cast<std::size_t>(order[k])];
    contributions[k] = q_col[static_cast<std::size_t>(order[k])];
  }

  double best_scaled_value = std::numeric_limits<double>::infinity();
  std::vector<UserId> best_winners;
  double prefix_contribution = 0.0;
  std::vector<KnapsackItem> items;

  for (std::size_t k = 1; k <= n; ++k) {
    deadline.check("FPTAS subproblem scan");
    if (counters != nullptr) {
      ++counters->deadline_polls;
      ++counters->rounds;
    }
    prefix_contribution += contributions[k - 1];
    if (!common::approx_ge(prefix_contribution, requirement)) {
      continue;  // the first k users cannot cover the task
    }
    const double c_k = sorted_costs[k - 1];
    const double mu = epsilon * c_k / static_cast<double>(k);

    items.clear();
    items.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      // mu can only vanish if c_k does, which validate() excludes; still
      // guard so a pathological instance degrades instead of dividing by 0.
      const std::int64_t scaled =
          mu > 0.0 ? static_cast<std::int64_t>(std::floor(sorted_costs[j] / mu)) : 0;
      items.push_back({contributions[j], scaled});
    }

    const auto solution = solve_min_knapsack(items, requirement, deadline, kernel);
    if (!solution.has_value()) {
      continue;
    }
    const double scaled_value = static_cast<double>(solution->total_scaled_cost) * mu;
    if (scaled_value <= best_scaled_value) {
      best_scaled_value = scaled_value;
      best_winners.clear();
      best_winners.reserve(solution->items.size());
      for (std::size_t item : solution->items) {
        best_winners.push_back(order[item]);
      }
    }
  }

  if (best_winners.empty()) {
    // Knife-edge instance: the total contribution equals the requirement to
    // within rounding, so is_feasible() and the DP (which accumulates in a
    // different order) can disagree. Report infeasible rather than crash.
    return result;
  }
  std::sort(best_winners.begin(), best_winners.end());
  result.feasible = true;
  result.total_cost = instance.cost_of(best_winners);
  result.winners = std::move(best_winners);
  return result;
}

FptasProbeContext::FptasProbeContext(const SingleTaskInstance& instance, UserId winner,
                                     double epsilon, common::Deadline deadline,
                                     obs::PhaseCounters* counters, DpKernel kernel)
    : FptasProbeContext(instance, BidColumns::from_single_task(instance), winner, epsilon,
                        std::move(deadline), counters, kernel) {}

FptasProbeContext::FptasProbeContext(const SingleTaskInstance& instance,
                                     const BidColumns& columns, UserId winner, double epsilon,
                                     common::Deadline deadline, obs::PhaseCounters* counters,
                                     DpKernel kernel)
    : scratch_(instance),
      winner_(winner),
      epsilon_(epsilon),
      deadline_(std::move(deadline)),
      counters_(counters),
      kernel_(kernel),
      requirement_(instance.requirement_contribution()) {
  MCS_EXPECTS(epsilon > 0.0, "approximation parameter must be positive");
  instance.validate();
  const std::size_t n = instance.num_users();
  MCS_EXPECTS(columns.size() == n, "columns must snapshot this instance");
  MCS_EXPECTS(winner >= 0 && static_cast<std::size_t>(winner) < n, "user id out of range");
  const std::size_t winner_index = static_cast<std::size_t>(winner);
  const std::span<const double> cost_col = columns.cost_span();
  const std::span<const double> q_col = columns.q_span();

  // is_feasible() replay state: the sequential id-order partial sum up to the
  // winner's slot and the per-id contributions after it. Re-folding
  // (prefix + q') + c_{w+1} + ... reproduces the oracle's sum exactly
  // because every non-probed term is the identical double.
  for (std::size_t k = 0; k < winner_index; ++k) {
    id_prefix_before_winner_ += q_col[k];
  }
  id_contributions_after_winner_.assign(q_col.begin() + static_cast<std::ptrdiff_t>(winner_index) + 1,
                                        q_col.end());

  // The (cost, id) order is probe-invariant: a critical-bid search changes
  // only the winner's declared PoS, never a cost.
  std::vector<UserId> order(n);
  std::iota(order.begin(), order.end(), UserId{0});
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    const double ca = cost_col[static_cast<std::size_t>(a)];
    const double cb = cost_col[static_cast<std::size_t>(b)];
    if (ca != cb) {
      return ca < cb;
    }
    return a < b;
  });
  position_ = static_cast<std::size_t>(
      std::find(order.begin(), order.end(), winner_) - order.begin());

  sorted_costs_.resize(n, 0.0);
  sorted_contributions_.resize(n, 0.0);
  double max_finite_contribution = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sorted_costs_[k] = cost_col[static_cast<std::size_t>(order[k])];
    if (k == position_) {
      continue;  // slot m carries the probed contribution
    }
    sorted_contributions_[k] = q_col[static_cast<std::size_t>(order[k])];
    if (std::isfinite(sorted_contributions_[k])) {
      max_finite_contribution = std::max(max_finite_contribution, sorted_contributions_[k]);
    }
  }
  declared_roundtrip_ = roundtrip_contribution(q_col[winner_index]);
  if (std::isfinite(declared_roundtrip_)) {
    max_finite_contribution = std::max(max_finite_contribution, declared_roundtrip_);
  }
  // Magnitude bound on every intermediate of the (capped) contribution folds;
  // infinities are exact under IEEE arithmetic and need no band.
  const double fold_magnitude = 1.0 + requirement_ + max_finite_contribution;

  const double cost_winner = cost_col[winner_index];
  subproblems_.resize(n + 1);
  std::vector<KnapsackItem> items;
  double prefix_contribution = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    deadline_.check("FPTAS probe-context build");
    if (counters_ != nullptr) {
      ++counters_->deadline_polls;
      ++counters_->rounds;
    }
    prefix_contribution +=
        k - 1 == position_ ? declared_roundtrip_ : sorted_contributions_[k - 1];
    if (k - 1 < position_) {
      prefix_at_position_ = prefix_contribution;  // ends as the sum of slots [0, m)
    }
    Subproblem& sub = subproblems_[k];
    sub.mu = epsilon * sorted_costs_[k - 1] / static_cast<double>(k);

    if (k <= position_) {
      // The winner is outside the prefix: the oracle would solve the exact
      // same subproblem on every probe. Its filter uses the probe-free
      // prefix sum, so pass/fail is probe-independent too.
      if (!common::approx_ge(prefix_contribution, requirement_)) {
        continue;
      }
      items.clear();
      items.reserve(k);
      for (std::size_t j = 0; j < k; ++j) {
        const std::int64_t scaled =
            sub.mu > 0.0 ? static_cast<std::int64_t>(std::floor(sorted_costs_[j] / sub.mu)) : 0;
        items.push_back({sorted_contributions_[j], scaled});
      }
      const auto solution = solve_min_knapsack(items, requirement_, deadline_, kernel_);
      if (solution.has_value()) {
        sub.constant_feasible = true;
        sub.constant_scaled_value = static_cast<double>(solution->total_scaled_cost) * sub.mu;
      }
      continue;
    }

    // k > m: the prefix filter is monotone in the probed contribution, and
    // every probe is at most the declared contribution, so a subproblem
    // filtered out here is filtered out on every probe — skip its frontier.
    if (!common::approx_ge(prefix_contribution, requirement_)) {
      continue;
    }
    sub.prepared = true;
    sub.scaled_cost_winner =
        sub.mu > 0.0 ? static_cast<std::int64_t>(std::floor(cost_winner / sub.mu)) : 0;
    items.clear();
    items.reserve(k - 1);
    for (std::size_t j = 0; j < k; ++j) {
      if (j == position_) {
        continue;
      }
      const std::int64_t scaled =
          sub.mu > 0.0 ? static_cast<std::int64_t>(std::floor(sorted_costs_[j] / sub.mu)) : 0;
      items.push_back({sorted_contributions_[j], scaled});
    }
    sub.frontier = min_knapsack_frontier(items, requirement_, deadline_, kernel_);
    // Cheapest without-winner cover: the frontier is cost-ascending and its
    // contributions are the oracle's own fold values, so this scan IS the
    // oracle's feasibility scan restricted to without-winner states.
    for (const FrontierEntry& entry : sub.frontier) {
      if (common::approx_ge(entry.contribution, requirement_)) {
        sub.cover_without_winner = entry.scaled_cost;
        break;
      }
      sub.cover_without_winner = kNoCover;
    }
    if (sub.frontier.empty()) {
      sub.cover_without_winner = kNoCover;
    }
    // Reassociation band: the oracle folds the probed contribution in at
    // slot m while the fast path appends it to a finished without-winner
    // fold. Both are sums of <= k+1 terms whose intermediates stay below
    // fold_magnitude, so they differ by at most (k+2) rounding steps; the
    // factor 4 is headroom.
    sub.band = 4.0 * static_cast<double>(k + 2) *
               std::numeric_limits<double>::epsilon() * fold_magnitude;
    // Window-prune the stored frontier. Below: states whose contribution
    // cannot reach the requirement even with the largest legal probe are
    // never feasible. Above: the scan for the cheapest cover stops at the
    // first state that is certainly feasible on its own (everything after
    // it costs more), so keep entries up to and including that state.
    const double slack =
        2.0 * common::kDefaultEps * (1.0 + requirement_ + declared_roundtrip_) + 2.0 * sub.band;
    const double floor_contribution = requirement_ - declared_roundtrip_ - slack;
    std::size_t begin = 0;
    while (begin < sub.frontier.size() &&
           sub.frontier[begin].contribution < floor_contribution) {
      ++begin;
    }
    std::size_t end = begin;
    while (end < sub.frontier.size()) {
      const bool certainly_feasible_alone =
          common::approx_ge(sub.frontier[end].contribution - sub.band, requirement_);
      ++end;
      if (certainly_feasible_alone) {
        break;
      }
    }
    sub.frontier.erase(sub.frontier.begin() + static_cast<std::ptrdiff_t>(end),
                       sub.frontier.end());
    sub.frontier.erase(sub.frontier.begin(),
                       sub.frontier.begin() + static_cast<std::ptrdiff_t>(begin));
  }
}

FptasProbeContext::CoverBounds FptasProbeContext::with_winner_cover_bounds(
    const Subproblem& sub, double probe_q) const {
  const auto& frontier = sub.frontier;
  // First state whose combined contribution passes the oracle's feasibility
  // test as the fast path computes it (state fold + probed contribution).
  const std::size_t split = static_cast<std::size_t>(
      std::partition_point(frontier.begin(), frontier.end(),
                           [&](const FrontierEntry& entry) {
                             return !common::approx_ge(entry.contribution + probe_q,
                                                       requirement_);
                           }) -
      frontier.begin());
  // Widen by the reassociation band: the oracle's interleaved fold may land
  // anywhere within +-band of ours, so the true first-feasible state lies
  // between the first possibly-feasible and the first certainly-feasible.
  std::size_t lo = split;
  while (lo > 0 &&
         common::approx_ge(frontier[lo - 1].contribution + probe_q + sub.band, requirement_)) {
    --lo;
  }
  std::size_t hi = split;
  while (hi < frontier.size() &&
         !common::approx_ge(frontier[hi].contribution + probe_q - sub.band, requirement_)) {
    ++hi;
  }
  CoverBounds bounds;
  bounds.lo = lo < frontier.size() ? frontier[lo].scaled_cost + sub.scaled_cost_winner : kNoCover;
  bounds.hi = hi < frontier.size() ? frontier[hi].scaled_cost + sub.scaled_cost_winner : kNoCover;
  return bounds;
}

FptasProbeContext::ExactSubproblem FptasProbeContext::solve_subproblem_exact(
    std::size_t k, double probe_q) const {
  // Rebuild subproblem k's item list exactly as solve_fptas does — all k
  // users in (cost, id) order, the probed winner at slot m, the same μ/floor
  // arithmetic — and run the real Algorithm 1 DP on it. The result is
  // bit-identical to the oracle's for this subproblem by construction: it is
  // literally the same code on the same inputs, including the DP's state
  // order, which is what decides membership on an exact scaled-cost tie.
  const Subproblem& sub = subproblems_[k];
  std::vector<KnapsackItem> items;
  items.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    const std::int64_t scaled =
        sub.mu > 0.0 ? static_cast<std::int64_t>(std::floor(sorted_costs_[j] / sub.mu)) : 0;
    items.push_back({j == position_ ? probe_q : sorted_contributions_[j], scaled});
  }
  const auto solution = solve_min_knapsack(items, requirement_, deadline_, kernel_);
  ExactSubproblem exact;
  if (!solution.has_value()) {
    return exact;
  }
  exact.feasible = true;
  exact.cover = solution->total_scaled_cost;
  exact.winner_selected = std::find(solution->items.begin(), solution->items.end(),
                                    position_) != solution->items.end();
  return exact;
}

bool FptasProbeContext::fallback_wins(double declared_q) {
  if (counters_ != nullptr) {
    ++counters_->dp_reuse_fallbacks;
  }
  // Exactly the scratch probe path: write the declaration and run the real
  // solver. Bit-identical to the oracle by construction.
  scratch_.bids[static_cast<std::size_t>(winner_)].pos =
      common::pos_from_contribution(declared_q);
  const auto allocation = solve_fptas(scratch_, epsilon_, deadline_, counters_, kernel_);
  return allocation.feasible && allocation.contains(winner_);
}

bool FptasProbeContext::wins(double declared_q) {
  const double probe_q = roundtrip_contribution(declared_q);
  if (!(probe_q <= declared_roundtrip_)) {
    // Above the build-time declaration the pruned frontiers and skipped
    // subproblems are no longer conservative; answer with the real solver.
    return fallback_wins(declared_q);
  }

  // is_feasible() replay: the oracle returns an infeasible allocation (the
  // probe loses) when even the full user set falls short.
  double total = id_prefix_before_winner_ + probe_q;
  for (const double contribution : id_contributions_after_winner_) {
    total += contribution;
  }
  if (!common::approx_ge(total, requirement_)) {
    if (counters_ != nullptr) {
      ++counters_->dp_reuse_hits;
    }
    return false;
  }

  // Replay the subproblem scan: same k order, same `<=` argmin (later
  // subproblems win scaled-value ties, exactly like the oracle's update).
  double best_scaled_value = std::numeric_limits<double>::infinity();
  Membership best_membership = Membership::kLoses;
  std::size_t best_k = 0;  ///< only meaningful while best_membership is kAmbiguous
  bool any_feasible = false;
  bool resolved_exactly = false;  ///< any subproblem needed an exact re-solve
  const std::size_t n = sorted_contributions_.size();
  for (std::size_t k = 1; k <= position_; ++k) {
    const Subproblem& sub = subproblems_[k];
    if (!sub.constant_feasible) {
      continue;  // filtered out or no cover — identical on every probe
    }
    if (sub.constant_scaled_value <= best_scaled_value) {
      best_scaled_value = sub.constant_scaled_value;
      best_membership = Membership::kLoses;  // the winner is not in the prefix
      any_feasible = true;
    }
  }
  double prefix_contribution = prefix_at_position_;
  for (std::size_t k = position_ + 1; k <= n; ++k) {
    prefix_contribution += k - 1 == position_ ? probe_q : sorted_contributions_[k - 1];
    if (!common::approx_ge(prefix_contribution, requirement_)) {
      continue;
    }
    const Subproblem& sub = subproblems_[k];
    if (!sub.prepared) {
      return fallback_wins(declared_q);  // unreachable for probes <= declared
    }
    const CoverBounds with_winner = with_winner_cover_bounds(sub, probe_q);
    std::int64_t cover = 0;
    Membership membership = Membership::kLoses;
    if (sub.cover_without_winner <= with_winner.lo) {
      if (sub.cover_without_winner == kNoCover) {
        continue;  // neither side covers: the oracle's DP returns nullopt
      }
      cover = sub.cover_without_winner;
      membership = sub.cover_without_winner < with_winner.lo ? Membership::kLoses
                                                             : Membership::kAmbiguous;
    } else if (with_winner.lo == with_winner.hi) {
      cover = with_winner.lo;
      membership = Membership::kWins;  // strictly cheaper than any without-winner cover
    } else {
      // The with-winner cover cost is uncertain (the certificate band
      // straddles the feasibility boundary). A straddling state keeps the
      // same fold value in every larger subproblem that contains it, so near
      // the critical declaration MANY subproblems are uncertain at once —
      // but almost all of them are priced out: when even the optimistic
      // bound cannot win the `<=` argmin, the true value (>= lo, and the
      // scaling by mu > 0 preserves the order) cannot either, and whether
      // this subproblem is feasible no longer matters (best is finite, so
      // any_feasible is already set). Skip without resolving.
      if (static_cast<double>(with_winner.lo) * sub.mu > best_scaled_value) {
        continue;
      }
      // Still a contender: re-solve just this subproblem exactly.
      resolved_exactly = true;
      const ExactSubproblem exact = solve_subproblem_exact(k, probe_q);
      if (!exact.feasible) {
        continue;
      }
      cover = exact.cover;
      membership = exact.winner_selected ? Membership::kWins : Membership::kLoses;
    }
    const double scaled_value = static_cast<double>(cover) * sub.mu;
    if (scaled_value <= best_scaled_value) {
      best_scaled_value = scaled_value;
      best_membership = membership;
      best_k = k;
      any_feasible = true;
    }
  }

  if (!any_feasible) {
    if (counters_ != nullptr) {
      resolved_exactly ? ++counters_->dp_reuse_fallbacks : ++counters_->dp_reuse_hits;
    }
    return false;
  }
  if (best_membership == Membership::kAmbiguous) {
    // An exact scaled-cost tie at the winning subproblem: whether the oracle
    // reconstructs the with-winner or without-winner subset depends on state
    // order inside its DP — replay that one DP to find out. (Only the final
    // best needs this: an ambiguous k overwritten later in the argmin never
    // decides membership.)
    resolved_exactly = true;
    const ExactSubproblem exact = solve_subproblem_exact(best_k, probe_q);
    MCS_ENSURES(exact.feasible, "tied subproblem must stay feasible under exact re-solve");
    MCS_ENSURES(static_cast<double>(exact.cover) * subproblems_[best_k].mu == best_scaled_value,
                "exact re-solve must reproduce the certified cover cost");
    best_membership = exact.winner_selected ? Membership::kWins : Membership::kLoses;
  }
  if (counters_ != nullptr) {
    resolved_exactly ? ++counters_->dp_reuse_fallbacks : ++counters_->dp_reuse_hits;
  }
  return best_membership == Membership::kWins;
}

}  // namespace mcs::auction::single_task
