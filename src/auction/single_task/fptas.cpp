#include "auction/single_task/fptas.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "auction/single_task/dp_knapsack.hpp"
#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::single_task {

Allocation solve_fptas(const SingleTaskInstance& instance, double epsilon,
                       const common::Deadline& deadline, obs::PhaseCounters* counters) {
  MCS_EXPECTS(epsilon > 0.0, "approximation parameter must be positive");
  instance.validate();
  const double requirement = instance.requirement_contribution();
  const auto n = instance.num_users();

  Allocation result;
  if (!instance.is_feasible()) {
    return result;
  }

  // Sort user ids by (cost, id); ties broken by id for determinism.
  std::vector<UserId> order(n);
  std::iota(order.begin(), order.end(), UserId{0});
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    const double ca = instance.bids[static_cast<std::size_t>(a)].cost;
    const double cb = instance.bids[static_cast<std::size_t>(b)].cost;
    if (ca != cb) {
      return ca < cb;
    }
    return a < b;
  });

  // Contributions in sorted order, with prefix sums for a quick feasibility
  // test per subproblem.
  std::vector<double> contributions(n);
  for (std::size_t k = 0; k < n; ++k) {
    contributions[k] = instance.contribution(order[k]);
  }

  double best_scaled_value = std::numeric_limits<double>::infinity();
  std::vector<UserId> best_winners;
  double prefix_contribution = 0.0;
  std::vector<KnapsackItem> items;

  for (std::size_t k = 1; k <= n; ++k) {
    deadline.check("FPTAS subproblem scan");
    if (counters != nullptr) {
      ++counters->deadline_polls;
      ++counters->rounds;
    }
    prefix_contribution += contributions[k - 1];
    if (!common::approx_ge(prefix_contribution, requirement)) {
      continue;  // the first k users cannot cover the task
    }
    const double c_k = instance.bids[static_cast<std::size_t>(order[k - 1])].cost;
    const double mu = epsilon * c_k / static_cast<double>(k);

    items.clear();
    items.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      const double cost = instance.bids[static_cast<std::size_t>(order[j])].cost;
      // mu can only vanish if c_k does, which validate() excludes; still
      // guard so a pathological instance degrades instead of dividing by 0.
      const std::int64_t scaled =
          mu > 0.0 ? static_cast<std::int64_t>(std::floor(cost / mu)) : 0;
      items.push_back({contributions[j], scaled});
    }

    const auto solution = solve_min_knapsack(items, requirement, deadline);
    if (!solution.has_value()) {
      continue;
    }
    const double scaled_value = static_cast<double>(solution->total_scaled_cost) * mu;
    if (scaled_value <= best_scaled_value) {
      best_scaled_value = scaled_value;
      best_winners.clear();
      best_winners.reserve(solution->items.size());
      for (std::size_t item : solution->items) {
        best_winners.push_back(order[item]);
      }
    }
  }

  if (best_winners.empty()) {
    // Knife-edge instance: the total contribution equals the requirement to
    // within rounding, so is_feasible() and the DP (which accumulates in a
    // different order) can disagree. Report infeasible rather than crash.
    return result;
  }
  std::sort(best_winners.begin(), best_winners.end());
  result.feasible = true;
  result.total_cost = instance.cost_of(best_winners);
  result.winners = std::move(best_winners);
  return result;
}

}  // namespace mcs::auction::single_task
