#include "auction/single_task/vcg.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mcs::auction::single_task {

Allocation solve_st_vcg(const SingleTaskInstance& instance) {
  instance.validate();
  Allocation result;
  if (instance.bids.empty()) {
    return result;
  }
  UserId cheapest = 0;
  for (std::size_t k = 1; k < instance.bids.size(); ++k) {
    if (instance.bids[k].cost < instance.bids[static_cast<std::size_t>(cheapest)].cost) {
      cheapest = static_cast<UserId>(k);
    }
  }
  result.feasible = true;  // feasible under the (inflated) declared PoS of 1
  result.winners = {cheapest};
  result.total_cost = instance.bids[static_cast<std::size_t>(cheapest)].cost;
  return result;
}

}  // namespace mcs::auction::single_task
