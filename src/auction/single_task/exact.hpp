// Exact minimum-knapsack solver — the paper's "OPT" baseline. The paper uses
// exhaustive search; we use depth-first branch-and-bound with a fractional
// (LP-relaxation) lower bound and a Min-Greedy warm start, which is exact and
// far faster on the evaluated instance sizes. A node budget guards against
// pathological instances; when it is exhausted the incumbent is returned with
// proven_optimal = false (see DESIGN.md §4).
#pragma once

#include <cstddef>

#include "auction/instance.hpp"

namespace mcs::auction::single_task {

struct ExactResult {
  Allocation allocation;
  /// False when the node budget expired before the search space was
  /// exhausted; the allocation is then the best incumbent found.
  bool proven_optimal = true;
  std::size_t nodes_explored = 0;
};

struct ExactOptions {
  std::size_t node_budget = 50'000'000;
};

/// Solves the single-task instance to optimality. Returns an infeasible
/// Allocation (with proven_optimal = true) for infeasible instances.
ExactResult solve_exact(const SingleTaskInstance& instance, const ExactOptions& options = {});

}  // namespace mcs::auction::single_task
