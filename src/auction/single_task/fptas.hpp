// Algorithm 2 of the paper: the FPTAS winner-determination algorithm for the
// single-task setting. Users are sorted by cost; for each prefix length k the
// costs are scaled by μ_k = ε·c_k/k, the scaled minimum knapsack is solved
// exactly by Algorithm 1, and the best feasible solution across the n
// subproblems (compared in the scaled domain, as in the paper) is returned.
//
// Guarantees (paper Theorems 1-3, Lemma 1):
//   * (1+ε)-approximation of the optimal social cost,
//   * monotone in each user's declared PoS — the property the critical-bid
//     reward scheme (Algorithm 3) relies on,
//   * O(n^4/ε) time.
#pragma once

#include <cstdint>
#include <vector>

#include "auction/columns.hpp"
#include "auction/instance.hpp"
#include "auction/single_task/dp_knapsack.hpp"
#include "common/deadline.hpp"
#include "obs/telemetry.hpp"

namespace mcs::auction::single_task {

/// Runs the FPTAS winner determination. `epsilon` > 0 is the approximation
/// parameter. Returns an infeasible Allocation when even the full user set
/// cannot meet the requirement. The instance must be valid (validate()).
/// The subproblem scan and the DP sweeps poll `deadline` cooperatively and
/// throw common::DeadlineExceeded when it expires (the mechanism facade may
/// then retry on the Min-Greedy degraded ladder). `counters`, when non-null,
/// accumulates rounds (subproblem scans) and scan-level deadline polls (the
/// DP's inner polls are uncounted to keep the hot loop branch-free).
/// `kernel` selects the Algorithm 1 sweep implementation (see DpKernel);
/// both settings return bit-identical allocations.
Allocation solve_fptas(const SingleTaskInstance& instance, double epsilon,
                       const common::Deadline& deadline = {},
                       obs::PhaseCounters* counters = nullptr,
                       DpKernel kernel = DpKernel::kColumns);

/// Column-routed overload: reads every per-user cost and contribution from
/// `columns` (one BidColumns::from_single_task snapshot of `instance`)
/// instead of striding the nested bids. The snapshot carries the identical
/// doubles the struct accessors would compute, so the allocation is
/// bit-identical; the mechanism facade builds the columns once per run and
/// shares them between winner determination and every reward search.
Allocation solve_fptas(const SingleTaskInstance& instance, const BidColumns& columns,
                       double epsilon, const common::Deadline& deadline = {},
                       obs::PhaseCounters* counters = nullptr,
                       DpKernel kernel = DpKernel::kColumns);

/// Reusable probe state of the single-task critical-bid fast path
/// (ProbeStrategy::kDpReuse). The bisection of Algorithm 3 asks "does winner
/// i still win when declaring q?" ~50 times per winner, and each full-solve
/// answer re-runs every FPTAS subproblem from scratch even though only i's
/// declaration changed. This context factors the solve into its
/// probe-invariant parts, computed once per winner:
///
///   * the (cost, id) sort order, the winner's slot m in it, and the other
///     users' contributions — costs never change during a search;
///   * per-subproblem scaling μ_k and scaled costs;
///   * subproblems k <= m (prefixes that exclude the winner): solved once,
///     their scaled values are probe-independent and the winner is never in
///     them;
///   * subproblems k > m: one Algorithm 1 Pareto frontier over the OTHER
///     k-1 items. Without-winner subsets never fold the winner's
///     contribution, so the frontier's floating-point values are exactly
///     the ones a full re-solve computes; a probe then only has to compare
///     the cheapest without-winner cover against the cheapest
///     "frontier state + probed contribution" cover (binary search).
///
/// Bit-identity contract: every probe answer equals what solve_fptas would
/// return on an instance with the declaration written in. Comparisons whose
/// outcome could be flipped by floating-point reassociation (the probed
/// contribution joins the fold at slot m instead of at the end) are
/// certified with an error band; when the certificate cannot decide a
/// subproblem — or an exact scaled-cost tie makes membership
/// order-dependent — only THAT subproblem is re-solved exactly with the
/// real Algorithm 1 DP on the oracle's own item list, which reproduces the
/// oracle's values and tie-breaking state order for 1/n-th the cost of a
/// full solve. A genuine full solve remains only for probes above the
/// build-time declaration, where the pruned tables are not conservative.
class FptasProbeContext {
 public:
  /// Builds the reusable tables for probing `winner`'s declarations in
  /// [0, her current declaration]. Cost is comparable to one solve_fptas
  /// run (frontiers are only built for subproblems that can cover the
  /// requirement at the declared contribution; lower declarations only
  /// shrink that set). `counters` (borrowed, may be null) accumulates the
  /// build's rounds and deadline polls plus per-probe dp_reuse_hits /
  /// dp_reuse_fallbacks; the caller counts probes. Polls `deadline` once
  /// per subproblem, like solve_fptas.
  FptasProbeContext(const SingleTaskInstance& instance, UserId winner, double epsilon,
                    common::Deadline deadline = {}, obs::PhaseCounters* counters = nullptr,
                    DpKernel kernel = DpKernel::kColumns);

  /// Column-routed overload: the build reads costs and contributions from
  /// `columns` (a snapshot of `instance`, borrowed only for the build)
  /// instead of the nested bids — same doubles, bit-identical tables.
  FptasProbeContext(const SingleTaskInstance& instance, const BidColumns& columns,
                    UserId winner, double epsilon, common::Deadline deadline = {},
                    obs::PhaseCounters* counters = nullptr,
                    DpKernel kernel = DpKernel::kColumns);

  /// Whether the winner is selected when declaring contribution
  /// `declared_q`. Applies the same q → PoS → q round trip as the
  /// copying/scratch probe paths, so the answer is bit-identical to
  /// solve_fptas on the modified instance — purely from the reused
  /// frontiers (dp_reuse_hits) or, when the reassociation certificate
  /// cannot decide a subproblem, with that subproblem re-solved exactly
  /// (dp_reuse_fallbacks). `declared_q` must be in [0, the declaration the
  /// context was built with]; anything larger is answered by a genuine
  /// full solve (also counted as a fallback).
  bool wins(double declared_q);

 private:
  /// Per-subproblem reusable state; entry k of subproblems_ (1-based like
  /// the FPTAS scan) is one of three shapes: filtered out / constant
  /// (k <= m, winner not in the prefix) / frontier-backed (k > m).
  struct Subproblem {
    double mu = 0.0;
    // k <= m: probe-independent result, solved at build time.
    bool constant_feasible = false;
    double constant_scaled_value = 0.0;
    // k > m: without-winner frontier and the winner's scaled cost.
    bool prepared = false;
    std::int64_t scaled_cost_winner = 0;
    /// Min scaled cost of a without-winner cover; kNoCover when none.
    std::int64_t cover_without_winner = 0;
    /// Reassociation error band for "state contribution + probed q"
    /// feasibility tests (the only reassociated comparison of a probe).
    double band = 0.0;
    std::vector<FrontierEntry> frontier;
  };

  /// Inclusive bounds on the oracle's minimum with-winner scaled cost for
  /// one subproblem at one probed contribution; kNoCover = no cover.
  struct CoverBounds {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
  };

  /// Oracle-exact resolution of one subproblem at one probed contribution:
  /// re-runs the real Algorithm 1 DP on the subproblem's own item list (the
  /// probed winner included, in the oracle's order), so the returned cover
  /// cost, scaled value, and membership — INCLUDING the DP's tie-breaking
  /// state order — are bit-identical to the full solve's. O(one DP) instead
  /// of the full solve's one-DP-per-subproblem; used when the certificate
  /// cannot decide a comparison.
  struct ExactSubproblem {
    bool feasible = false;
    std::int64_t cover = 0;
    bool winner_selected = false;
  };
  ExactSubproblem solve_subproblem_exact(std::size_t k, double probe_q) const;

  CoverBounds with_winner_cover_bounds(const Subproblem& sub, double probe_q) const;
  bool fallback_wins(double declared_q);

  SingleTaskInstance scratch_;  ///< fallback probes write the declaration here
  UserId winner_;
  double epsilon_;
  common::Deadline deadline_;
  obs::PhaseCounters* counters_;
  DpKernel kernel_ = DpKernel::kColumns;  ///< threaded into every DP this context runs
  double requirement_ = 0.0;
  double declared_roundtrip_ = 0.0;  ///< build-time declaration after q→PoS→q

  // is_feasible() replay state (id-order sequential sum).
  double id_prefix_before_winner_ = 0.0;
  std::vector<double> id_contributions_after_winner_;

  // FPTAS scan replay state (sorted-order).
  std::size_t position_ = 0;  ///< winner's slot m in the (cost, id) order
  std::vector<double> sorted_costs_;  ///< costs in (cost, id) order
  std::vector<double> sorted_contributions_;  ///< slot m unused (probe fills it)
  double prefix_at_position_ = 0.0;  ///< sequential sum of slots [0, m)
  std::vector<Subproblem> subproblems_;  ///< index k in [1, n]
};

}  // namespace mcs::auction::single_task
