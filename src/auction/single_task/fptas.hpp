// Algorithm 2 of the paper: the FPTAS winner-determination algorithm for the
// single-task setting. Users are sorted by cost; for each prefix length k the
// costs are scaled by μ_k = ε·c_k/k, the scaled minimum knapsack is solved
// exactly by Algorithm 1, and the best feasible solution across the n
// subproblems (compared in the scaled domain, as in the paper) is returned.
//
// Guarantees (paper Theorems 1-3, Lemma 1):
//   * (1+ε)-approximation of the optimal social cost,
//   * monotone in each user's declared PoS — the property the critical-bid
//     reward scheme (Algorithm 3) relies on,
//   * O(n^4/ε) time.
#pragma once

#include "auction/instance.hpp"
#include "common/deadline.hpp"
#include "obs/telemetry.hpp"

namespace mcs::auction::single_task {

/// Runs the FPTAS winner determination. `epsilon` > 0 is the approximation
/// parameter. Returns an infeasible Allocation when even the full user set
/// cannot meet the requirement. The instance must be valid (validate()).
/// The subproblem scan and the DP sweeps poll `deadline` cooperatively and
/// throw common::DeadlineExceeded when it expires (the mechanism facade may
/// then retry on the Min-Greedy degraded ladder). `counters`, when non-null,
/// accumulates rounds (subproblem scans) and scan-level deadline polls (the
/// DP's inner polls are uncounted to keep the hot loop branch-free).
Allocation solve_fptas(const SingleTaskInstance& instance, double epsilon,
                       const common::Deadline& deadline = {},
                       obs::PhaseCounters* counters = nullptr);

}  // namespace mcs::auction::single_task
