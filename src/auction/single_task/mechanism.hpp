// Facade of the complete single-task mechanism M = (A, R): the FPTAS winner
// determination (Algorithm 2) plus the critical-bid execution-contingent
// reward scheme (Algorithm 3). This is the object a platform runs per task:
// collect sealed bids, call run(), pay each winner reward.on_success() or
// reward.on_failure() depending on the observed execution outcome.
#pragma once

#include "auction/single_task/reward.hpp"

namespace mcs::auction::single_task {

struct MechanismConfig {
  double epsilon = 0.1;  ///< FPTAS approximation parameter
  double alpha = 10.0;   ///< reward scaling factor (paper Table II)
  int binary_search_iterations = 48;
  /// Compute the winners' critical bids on multiple threads. Results are
  /// bit-identical to the serial path (each bid is an independent
  /// computation); disable for single-core determinism profiling.
  bool parallel_rewards = true;
};

/// Runs the full strategy-proof single-task mechanism. The returned outcome
/// holds the allocation and one EC reward per winner. For infeasible
/// instances the allocation is infeasible and no rewards are issued.
MechanismOutcome run_mechanism(const SingleTaskInstance& instance,
                               const MechanismConfig& config = {});

}  // namespace mcs::auction::single_task
