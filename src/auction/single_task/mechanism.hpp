// Facade of the complete single-task mechanism M = (A, R): the FPTAS winner
// determination (Algorithm 2) plus the critical-bid execution-contingent
// reward scheme (Algorithm 3). This is the object a platform runs per task:
// collect sealed bids, call run_mechanism() (or batch many auctions through
// auction::Engine), pay each winner reward.on_success() or
// reward.on_failure() depending on the observed execution outcome.
#pragma once

#include "auction/single_task/reward.hpp"

namespace mcs::auction::single_task {

/// Runs the full strategy-proof single-task mechanism. Reads config.alpha,
/// config.single_task.*, and the reward-parallelism fields. The returned
/// outcome holds the allocation and one EC reward per winner. For infeasible
/// instances the allocation is infeasible and no rewards are issued.
MechanismOutcome run_mechanism(const SingleTaskInstance& instance,
                               const auction::MechanismConfig& config = {});

}  // namespace mcs::auction::single_task
