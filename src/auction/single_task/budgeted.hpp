// Budgeted coverage — the dual of the paper's minimization problem, built on
// the maximum-knapsack form of Algorithm 1: given a recruitment budget,
// which users maximize the task's achieved PoS? This is the primitive of
// budget-feasible crowdsensing (the paper's reference [5]) and what a
// platform runs when the budget, not the assurance level, is the hard
// constraint.
#pragma once

#include "auction/instance.hpp"

namespace mcs::auction::single_task {

struct BudgetedCoverage {
  /// Selected users (ascending) and their true total cost (<= budget).
  Allocation allocation;
  /// The achieved PoS of the task under the selection: 1 - Π(1 - p_i).
  double achieved_pos = 0.0;
};

/// Maximizes the task's achieved PoS subject to total cost <= budget. Costs
/// are discretized to a grid of `cost_granularity` × budget for the DP
/// (rounded UP, so the budget is never exceeded); the result is optimal
/// among selections on that grid — granularity 1e-4 is exact for all
/// practical cost data. The instance's requirement_pos is ignored. Requires
/// a valid instance, budget > 0, and granularity in (0, 1].
BudgetedCoverage max_coverage_for_budget(const SingleTaskInstance& instance, double budget,
                                         double cost_granularity = 1e-4);

}  // namespace mcs::auction::single_task
