// The paper's single-task baseline "Greedy" (its reference [21], Güntzer &
// Jungnickel's Min-Greedy): a 2-approximation for the minimum knapsack.
// Users are scanned in decreasing contribution-per-cost density and added
// until the requirement is met; the resulting set is compared with the
// variant that swaps the final (possibly wasteful) pick for the cheapest
// single user able to cover the residual on her own, and the cheaper of the
// two is returned.
#pragma once

#include "auction/instance.hpp"

namespace mcs::auction::single_task {

/// Runs the Min-Greedy baseline. Returns an infeasible Allocation when the
/// instance is infeasible. The instance must be valid.
Allocation solve_min_greedy(const SingleTaskInstance& instance);

}  // namespace mcs::auction::single_task
