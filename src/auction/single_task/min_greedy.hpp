// The paper's single-task baseline "Greedy" (its reference [21], Güntzer &
// Jungnickel's Min-Greedy): a 2-approximation for the minimum knapsack.
// Users are scanned in decreasing contribution-per-cost density and added
// until the requirement is met; the resulting set is compared with the
// variant that swaps the final (possibly wasteful) pick for the cheapest
// single user able to cover the residual on her own, and the cheaper of the
// two is returned.
#pragma once

#include "auction/columns.hpp"
#include "auction/instance.hpp"
#include "common/deadline.hpp"
#include "obs/telemetry.hpp"

namespace mcs::auction::single_task {

/// Runs the Min-Greedy baseline. Returns an infeasible Allocation when the
/// instance is infeasible. The instance must be valid.
///
/// `deadline` is polled once per greedy-fill pick and once per swap-closer
/// scan candidate, mirroring the FPTAS subproblem scan — this is the
/// degradation ladder's fallback rule and every kMinGreedy critical-bid
/// probe, so it must honour the cooperative budget too (a second expiry on
/// the ladder propagates to the engine as a timeout). `counters`, when
/// non-null, accumulates rounds (greedy picks) and deadline polls.
Allocation solve_min_greedy(const SingleTaskInstance& instance,
                            const common::Deadline& deadline = {},
                            obs::PhaseCounters* counters = nullptr);

/// Column-routed overload: the density sort and both scans read costs and
/// contributions from `columns` (a BidColumns snapshot of `instance`)
/// instead of striding the nested bids and re-deriving q per read — same
/// doubles, bit-identical allocation.
Allocation solve_min_greedy(const SingleTaskInstance& instance, const BidColumns& columns,
                            const common::Deadline& deadline = {},
                            obs::PhaseCounters* counters = nullptr);

}  // namespace mcs::auction::single_task
