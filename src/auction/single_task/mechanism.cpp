#include "auction/single_task/mechanism.hpp"

#include "auction/single_task/fptas.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"

namespace mcs::auction::single_task {

MechanismOutcome run_mechanism(const SingleTaskInstance& instance,
                               const auction::MechanismConfig& config) {
  MCS_EXPECTS(config.single_task.epsilon > 0.0, "approximation parameter must be positive");
  MCS_EXPECTS(config.alpha > 0.0, "reward scaling factor must be positive");

  MechanismOutcome outcome;
  outcome.allocation = solve_fptas(instance, config.single_task.epsilon);
  if (!outcome.allocation.feasible) {
    return outcome;
  }
  const RewardOptions reward_options{
      .alpha = config.alpha,
      .epsilon = config.single_task.epsilon,
      .binary_search_iterations = config.single_task.binary_search_iterations};
  const auto& winners = outcome.allocation.winners;
  outcome.rewards = common::parallel_map<WinnerReward>(
      winners.size(),
      [&](std::size_t index) { return compute_reward(instance, winners[index], reward_options); },
      config.reward_worker_budget());
  return outcome;
}

}  // namespace mcs::auction::single_task
