#include "auction/single_task/mechanism.hpp"

#include "auction/columns.hpp"
#include "auction/single_task/fptas.hpp"
#include "auction/single_task/min_greedy.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "obs/telemetry.hpp"

namespace mcs::auction::single_task {

namespace {

MechanismOutcome run_with_rule(const SingleTaskInstance& instance,
                               const auction::MechanismConfig& config, WinnerRule rule,
                               const common::Deadline& deadline) {
  const bool telemetry = obs::enabled();
  MechanismOutcome outcome;
  outcome.telemetry.enabled = telemetry;
  outcome.degraded = rule == WinnerRule::kMinGreedy;
  if (telemetry && outcome.degraded) {
    outcome.telemetry.degraded_events = 1;
  }
  // One SoA snapshot of the bids for the whole run: winner determination and
  // every winner's critical-bid search read the same flat columns.
  const BidColumns columns = instance.make_columns();
  {
    const obs::PhaseTimer timer(telemetry);
    obs::PhaseCounters* counters = telemetry ? &outcome.telemetry.winner_determination : nullptr;
    outcome.allocation =
        rule == WinnerRule::kMinGreedy
            ? solve_min_greedy(instance, columns, deadline, counters)
            : solve_fptas(instance, columns, config.single_task.epsilon, deadline, counters,
                          config.single_task.dp_kernel);
    if (telemetry) {
      outcome.telemetry.winner_determination_seconds = timer.seconds();
    }
  }
  if (!outcome.allocation.feasible) {
    return outcome;
  }
  const RewardOptions reward_options{
      .alpha = config.alpha,
      .epsilon = config.single_task.epsilon,
      .binary_search_iterations = config.single_task.binary_search_iterations,
      .winner_rule = rule,
      .probe_strategy = config.single_task.probe_strategy,
      .deadline = deadline,
      .dp_kernel = config.single_task.dp_kernel,
      .columns = &columns};
  const auto& winners = outcome.allocation.winners;
  const obs::PhaseTimer reward_timer(telemetry);
  if (telemetry) {
    // Each winner's reward computation counts into its own block; merging in
    // index order afterwards keeps the totals deterministic regardless of
    // how parallel_map schedules the slots.
    std::vector<obs::PhaseCounters> per_winner(winners.size());
    outcome.rewards = common::parallel_map<WinnerReward>(
        winners.size(),
        [&](std::size_t index) {
          RewardOptions slot_options = reward_options;
          slot_options.counters = &per_winner[index];
          return compute_reward(instance, winners[index], slot_options);
        },
        config.reward_worker_budget());
    for (const obs::PhaseCounters& block : per_winner) {
      outcome.telemetry.rewards += block;
    }
    outcome.telemetry.rewards_seconds = reward_timer.seconds();
  } else {
    outcome.rewards = common::parallel_map<WinnerReward>(
        winners.size(),
        [&](std::size_t index) {
          return compute_reward(instance, winners[index], reward_options);
        },
        config.reward_worker_budget());
  }
  return outcome;
}

}  // namespace

MechanismOutcome run_mechanism(const SingleTaskInstance& instance,
                               const auction::MechanismConfig& config) {
  MCS_EXPECTS(config.single_task.epsilon > 0.0, "approximation parameter must be positive");
  MCS_EXPECTS(config.alpha > 0.0, "reward scaling factor must be positive");

  const auto deadline = common::Deadline::from_budget(config.time_budget_seconds);
  if (deadline.is_unlimited() || !config.degrade_on_timeout) {
    return run_with_rule(instance, config, WinnerRule::kFptas, deadline);
  }
  try {
    return run_with_rule(instance, config, WinnerRule::kFptas, deadline);
  } catch (const common::DeadlineExceeded&) {
    // Degradation ladder: the (1+ε) FPTAS blew its budget, so rerun under
    // the 2-approx Min-Greedy rule (allocation AND critical bids — the
    // reward must replay the rule that selected the winners) with a fresh
    // budget. A second expiry propagates to the engine as a timeout.
    return run_with_rule(instance, config, WinnerRule::kMinGreedy,
                         common::Deadline::from_budget(config.time_budget_seconds));
  }
}

}  // namespace mcs::auction::single_task
