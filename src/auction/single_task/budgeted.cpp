#include "auction/single_task/budgeted.hpp"

#include <algorithm>
#include <cmath>

#include "auction/single_task/dp_knapsack.hpp"
#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::single_task {

BudgetedCoverage max_coverage_for_budget(const SingleTaskInstance& instance, double budget,
                                         double cost_granularity) {
  instance.validate();
  MCS_EXPECTS(budget > 0.0, "budget must be positive");
  MCS_EXPECTS(cost_granularity > 0.0 && cost_granularity <= 1.0,
              "cost granularity must lie in (0, 1]");

  const double mu = budget * cost_granularity;
  const auto scaled_budget = static_cast<std::int64_t>(std::floor(budget / mu));

  // Rounding costs UP keeps every reported selection within the true budget.
  std::vector<KnapsackItem> items;
  std::vector<UserId> item_user;
  items.reserve(instance.num_users());
  for (std::size_t k = 0; k < instance.num_users(); ++k) {
    const double q = instance.contribution(static_cast<UserId>(k));
    if (q <= 0.0) {
      continue;  // never helps coverage
    }
    const auto scaled = static_cast<std::int64_t>(std::ceil(instance.bids[k].cost / mu));
    if (scaled > scaled_budget) {
      continue;  // cannot fit alone
    }
    items.push_back({q, scaled});
    item_user.push_back(static_cast<UserId>(k));
  }

  const auto solution = solve_max_knapsack(items, scaled_budget);
  BudgetedCoverage result;
  result.allocation.feasible = true;  // the empty selection is always valid
  for (std::size_t item : solution.items) {
    result.allocation.winners.push_back(item_user[item]);
  }
  std::sort(result.allocation.winners.begin(), result.allocation.winners.end());
  result.allocation.total_cost = instance.cost_of(result.allocation.winners);
  MCS_ENSURES(result.allocation.total_cost <= budget + 1e-9,
              "budgeted selection exceeded the budget");
  result.achieved_pos =
      common::pos_from_contribution(instance.contribution_of(result.allocation.winners));
  return result;
}

}  // namespace mcs::auction::single_task
