#include "auction/single_task/reward.hpp"

#include "auction/single_task/fptas.hpp"
#include "auction/single_task/min_greedy.hpp"
#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::single_task {

namespace {

// One winner-determination re-run against `probe`, which already carries the
// winner's probed declaration. Both rules honour the options' deadline; the
// probe count feeds the telemetry record.
bool probe_wins(const SingleTaskInstance& probe, UserId user, const RewardOptions& options) {
  if (options.counters != nullptr) {
    ++options.counters->probes;
  }
  const auto allocation =
      options.winner_rule == WinnerRule::kMinGreedy
          ? solve_min_greedy(probe, options.deadline, options.counters)
          : solve_fptas(probe, options.epsilon, options.deadline, options.counters,
                        options.dp_kernel);
  return allocation.feasible && allocation.contains(user);
}

// Copying probe path: materializes a fresh instance per probe. Kept as the
// oracle the scratch path is asserted bit-identical against.
bool wins_with_contribution_copied(const SingleTaskInstance& instance, UserId user,
                                   double declared_q, const RewardOptions& options) {
  const auto modified = instance.with_declared_contribution(user, declared_q);
  return probe_wins(modified, user, options);
}

// Scratch probe path: writes the probed declaration into a caller-owned
// mutable copy in place. pos_from_contribution is exactly the conversion
// with_declared_contribution applies, so the solver sees a bit-identical
// instance without the O(n) copy per probe.
bool wins_with_contribution_scratch(SingleTaskInstance& scratch, UserId user, double declared_q,
                                    const RewardOptions& options) {
  scratch.bids[static_cast<std::size_t>(user)].pos = common::pos_from_contribution(declared_q);
  return probe_wins(scratch, user, options);
}

// The bisection of Algorithm 3 over wins(q), shared by all probe paths.
// Monotonicity (Lemma 1): wins(q) is a step function, false below the
// critical bid and true at/above it. Invariant: loses at lo, wins at hi.
// Every probe — the two boundary probes included — runs behind the same
// deadline poll and poll counter, so the budget covers every solve the
// search issues, not just the bisection loop's.
template <typename WinsFn>
double bisect_critical(double declared, const RewardOptions& options, WinsFn&& wins) {
  const auto polled_wins = [&](double q) {
    options.deadline.check("single-task critical-bid search");
    if (options.counters != nullptr) {
      ++options.counters->deadline_polls;
    }
    return wins(q);
  };
  MCS_EXPECTS(polled_wins(declared), "critical bid is only defined for winners");
  if (polled_wins(0.0)) {
    return 0.0;
  }
  double lo = 0.0;
  double hi = declared;
  for (int iter = 0; iter < options.binary_search_iterations; ++iter) {
    if (options.counters != nullptr) {
      ++options.counters->bisection_steps;
    }
    const double mid = 0.5 * (lo + hi);
    if (polled_wins(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace

double critical_contribution(const SingleTaskInstance& instance, UserId winner,
                             const RewardOptions& options) {
  MCS_EXPECTS(options.alpha > 0.0, "reward scaling factor must be positive");
  MCS_EXPECTS(options.binary_search_iterations > 0, "need at least one bisection step");
  const double declared = instance.contribution(winner);

  if (options.winner_rule == WinnerRule::kFptas &&
      options.probe_strategy == ProbeStrategy::kDpReuse) {
    // Fast path: one reusable probe context per winner answers the whole
    // bisection from reused DP frontiers (falling back to full solves only
    // when its certificate cannot decide a probe). Min-Greedy probes stay on
    // the full-solve path: its density order depends on the probed
    // declaration, and a full greedy pass is O(n log n) anyway.
    FptasProbeContext context =
        options.columns != nullptr
            ? FptasProbeContext(instance, *options.columns, winner, options.epsilon,
                                options.deadline, options.counters, options.dp_kernel)
            : FptasProbeContext(instance, winner, options.epsilon, options.deadline,
                                options.counters, options.dp_kernel);
    return bisect_critical(declared, options, [&](double q) {
      if (options.counters != nullptr) {
        ++options.counters->probes;
      }
      return context.wins(q);
    });
  }
  if (options.scratch_probes) {
    SingleTaskInstance scratch = instance;  // one copy for the whole search
    return bisect_critical(declared, options, [&](double q) {
      return wins_with_contribution_scratch(scratch, winner, q, options);
    });
  }
  return bisect_critical(declared, options, [&](double q) {
    return wins_with_contribution_copied(instance, winner, q, options);
  });
}

WinnerReward compute_reward(const SingleTaskInstance& instance, UserId winner,
                            const RewardOptions& options) {
  WinnerReward result;
  result.user = winner;
  result.critical_contribution = critical_contribution(instance, winner, options);
  result.reward.critical_pos = common::pos_from_contribution(result.critical_contribution);
  result.reward.cost = instance.bids[static_cast<std::size_t>(winner)].cost;
  result.reward.alpha = options.alpha;
  return result;
}

}  // namespace mcs::auction::single_task
