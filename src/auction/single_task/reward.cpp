#include "auction/single_task/reward.hpp"

#include "auction/single_task/fptas.hpp"
#include "auction/single_task/min_greedy.hpp"
#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::single_task {

namespace {

bool wins_with_contribution(const SingleTaskInstance& instance, UserId user, double declared_q,
                            const RewardOptions& options) {
  const auto modified = instance.with_declared_contribution(user, declared_q);
  const auto allocation = options.winner_rule == WinnerRule::kMinGreedy
                              ? solve_min_greedy(modified)
                              : solve_fptas(modified, options.epsilon, options.deadline);
  return allocation.feasible && allocation.contains(user);
}

}  // namespace

double critical_contribution(const SingleTaskInstance& instance, UserId winner,
                             const RewardOptions& options) {
  MCS_EXPECTS(options.alpha > 0.0, "reward scaling factor must be positive");
  MCS_EXPECTS(options.binary_search_iterations > 0, "need at least one bisection step");
  const double declared = instance.contribution(winner);
  MCS_EXPECTS(wins_with_contribution(instance, winner, declared, options),
              "critical bid is only defined for winners");

  if (wins_with_contribution(instance, winner, 0.0, options)) {
    return 0.0;
  }
  // Monotonicity (Lemma 1): wins(q) is a step function, false below the
  // critical bid and true at/above it. Invariant: loses at lo, wins at hi.
  double lo = 0.0;
  double hi = declared;
  for (int iter = 0; iter < options.binary_search_iterations; ++iter) {
    options.deadline.check("single-task critical-bid search");
    const double mid = 0.5 * (lo + hi);
    if (wins_with_contribution(instance, winner, mid, options)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

WinnerReward compute_reward(const SingleTaskInstance& instance, UserId winner,
                            const RewardOptions& options) {
  WinnerReward result;
  result.user = winner;
  result.critical_contribution = critical_contribution(instance, winner, options);
  result.reward.critical_pos = common::pos_from_contribution(result.critical_contribution);
  result.reward.cost = instance.bids[static_cast<std::size_t>(winner)].cost;
  result.reward.alpha = options.alpha;
  return result;
}

}  // namespace mcs::auction::single_task
