#include "auction/single_task/exact.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "auction/single_task/min_greedy.hpp"
#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::single_task {

namespace {

struct SearchItem {
  UserId user = 0;
  double cost = 0.0;
  double contribution = 0.0;
};

class BranchAndBound {
 public:
  BranchAndBound(std::vector<SearchItem> items, double requirement, std::size_t node_budget)
      : items_(std::move(items)), requirement_(requirement), node_budget_(node_budget) {}

  void seed_incumbent(double cost, std::vector<UserId> winners) {
    best_cost_ = cost;
    best_set_ = std::move(winners);
  }

  void run() { search(0, 0.0, 0.0); }

  double best_cost() const { return best_cost_; }
  const std::vector<UserId>& best_set() const { return best_set_; }
  bool proven_optimal() const { return nodes_ < node_budget_; }
  std::size_t nodes() const { return nodes_; }

 private:
  /// LP-relaxation lower bound: cheapest fractional fill of the residual
  /// requirement using the density-sorted suffix starting at `index`.
  /// +infinity when the suffix cannot cover the residual even fully taken.
  double fractional_bound(std::size_t index, double covered) const {
    double residual = requirement_ - covered;
    if (residual <= 0.0) {
      return 0.0;
    }
    double bound = 0.0;
    for (std::size_t k = index; k < items_.size(); ++k) {
      const auto& item = items_[k];
      if (item.contribution >= residual) {
        return bound + item.cost * (residual / item.contribution);
      }
      bound += item.cost;
      residual -= item.contribution;
    }
    return std::numeric_limits<double>::infinity();
  }

  void search(std::size_t index, double cost, double covered) {
    if (nodes_ >= node_budget_) {
      return;
    }
    ++nodes_;
    if (common::approx_ge(covered, requirement_)) {
      if (cost < best_cost_) {
        best_cost_ = cost;
        best_set_ = current_;
      }
      return;
    }
    if (index >= items_.size()) {
      return;
    }
    if (cost + fractional_bound(index, covered) >= best_cost_) {
      return;
    }
    // Include-first: the density order makes early inclusions likely optimal,
    // tightening the incumbent quickly.
    current_.push_back(items_[index].user);
    search(index + 1, cost + items_[index].cost, covered + items_[index].contribution);
    current_.pop_back();
    search(index + 1, cost, covered);
  }

  std::vector<SearchItem> items_;
  double requirement_;
  std::size_t node_budget_;
  std::size_t nodes_ = 0;
  double best_cost_ = std::numeric_limits<double>::infinity();
  std::vector<UserId> best_set_;
  std::vector<UserId> current_;
};

}  // namespace

ExactResult solve_exact(const SingleTaskInstance& instance, const ExactOptions& options) {
  instance.validate();
  ExactResult result;
  if (!instance.is_feasible()) {
    return result;
  }

  std::vector<SearchItem> items;
  items.reserve(instance.num_users());
  for (std::size_t k = 0; k < instance.num_users(); ++k) {
    const double q = instance.contribution(static_cast<UserId>(k));
    if (q <= 0.0) {
      continue;  // positive cost, zero contribution: never part of an optimum
    }
    items.push_back({static_cast<UserId>(k), instance.bids[k].cost, q});
  }
  std::sort(items.begin(), items.end(), [](const SearchItem& a, const SearchItem& b) {
    const double da = a.contribution / a.cost;
    const double db = b.contribution / b.cost;
    if (da != db) {
      return da > db;
    }
    return a.user < b.user;
  });

  BranchAndBound solver(std::move(items), instance.requirement_contribution(),
                        options.node_budget);
  const Allocation warm_start = solve_min_greedy(instance);
  MCS_ENSURES(warm_start.feasible, "warm start must exist for a feasible instance");
  solver.seed_incumbent(warm_start.total_cost, warm_start.winners);
  solver.run();

  result.allocation.feasible = true;
  result.allocation.winners = solver.best_set();
  std::sort(result.allocation.winners.begin(), result.allocation.winners.end());
  result.allocation.total_cost = instance.cost_of(result.allocation.winners);
  result.proven_optimal = solver.proven_optimal();
  result.nodes_explored = solver.nodes();
  return result;
}

}  // namespace mcs::auction::single_task
