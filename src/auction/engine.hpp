// Batched auction engine: the platform-facing entry point for running many
// auctions of either family on the persistent thread pool. Campaign rounds,
// experiment sweeps, and replayed traces are streams of independent sealed-bid
// auctions (Algorithms 2–5 share nothing across instances), so the engine
// parallelizes ACROSS auctions first; a lone auction instead runs on the
// calling thread where the per-winner critical-bid parallelism inside
// run_mechanism still fans out.
//
// Determinism contract: outcomes come back in submission order and are
// bit-identical to calling the per-family run_mechanism serially on each
// instance, whatever the worker count — both parallelism levels only ever
// partition independent, index-addressed work.
//
// Fault isolation: run() keeps the strict contract (first exception by index
// rethrown after the batch completes), while run_isolated() never throws for
// a per-auction failure — each slot instead carries a structured
// AuctionStatus plus the error text, so one malformed instance or blown
// deadline cannot take down its siblings' results.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "auction/instance.hpp"
#include "common/thread_pool.hpp"

namespace mcs::auction {

/// One auction of either family, as submitted to the engine.
using AuctionInstance = std::variant<SingleTaskInstance, MultiTaskInstance>;

/// How one isolated auction slot ended.
enum class AuctionStatus {
  kOk,        ///< clean outcome, identical to the strict path
  kDegraded,  ///< a fallback produced the outcome (see MechanismOutcome::degraded)
  kTimedOut,  ///< the wall-clock budget expired (common::DeadlineExceeded)
  kFailed,    ///< any other exception (e.g. PreconditionError on bad input)
};

const char* to_string(AuctionStatus status);

/// One slot of an isolated batch: the outcome when the auction produced one
/// (kOk/kDegraded — bit-identical to run_mechanism on that instance), plus
/// the captured error text otherwise.
struct AuctionOutcome {
  AuctionStatus status = AuctionStatus::kOk;
  MechanismOutcome outcome;  ///< default-constructed for kTimedOut/kFailed
  std::string error;         ///< exception what(); empty for kOk/kDegraded

  /// True when `outcome` is meaningful (possibly via a degraded ladder).
  bool ok() const { return status == AuctionStatus::kOk || status == AuctionStatus::kDegraded; }
};

struct EngineOptions {
  /// Worker threads. 0 shares the process-wide pool (the common case: one
  /// engine per process); a positive count gives the engine a dedicated pool
  /// of exactly that size, which then also caps the intra-auction
  /// critical-bid threads — workers = 1 is the fully serial reference path.
  std::size_t workers = 0;
};

class Engine {
 public:
  explicit Engine(const EngineOptions& options = {});

  /// Threads available to a batch (the shared or dedicated pool's size).
  std::size_t worker_count() const;

  /// Runs a batch under one shared config; outcomes align with the batch.
  /// The first exception (by batch index), e.g. a PreconditionError from an
  /// invalid instance or config, is rethrown after the batch completes.
  std::vector<MechanismOutcome> run(const std::vector<AuctionInstance>& batch,
                                    const MechanismConfig& config = {}) const;
  std::vector<MechanismOutcome> run(const std::vector<SingleTaskInstance>& batch,
                                    const MechanismConfig& config = {}) const;
  std::vector<MechanismOutcome> run(const std::vector<MultiTaskInstance>& batch,
                                    const MechanismConfig& config = {}) const;

  /// Fault-isolated batch: never throws for a per-auction failure. Healthy
  /// slots are bit-identical to the strict path; a throwing or
  /// deadline-exceeding auction only poisons its own slot, which carries the
  /// structured status and error text instead. (Batch-level errors — e.g.
  /// allocation failure of the outcome vector itself — still throw.)
  std::vector<AuctionOutcome> run_isolated(const std::vector<AuctionInstance>& batch,
                                           const MechanismConfig& config = {}) const;
  std::vector<AuctionOutcome> run_isolated(const std::vector<SingleTaskInstance>& batch,
                                           const MechanismConfig& config = {}) const;
  std::vector<AuctionOutcome> run_isolated(const std::vector<MultiTaskInstance>& batch,
                                           const MechanismConfig& config = {}) const;

  /// Single-auction convenience: runs on the calling thread with the
  /// engine's worker budget applied to the critical-bid computations.
  MechanismOutcome run_one(const SingleTaskInstance& instance,
                           const MechanismConfig& config = {}) const;
  MechanismOutcome run_one(const MultiTaskInstance& instance,
                           const MechanismConfig& config = {}) const;
  MechanismOutcome run_one(const AuctionInstance& instance,
                           const MechanismConfig& config = {}) const;

  /// Isolated single-auction convenience, same capture rules as
  /// run_isolated.
  AuctionOutcome run_one_isolated(const SingleTaskInstance& instance,
                                  const MechanismConfig& config = {}) const;
  AuctionOutcome run_one_isolated(const MultiTaskInstance& instance,
                                  const MechanismConfig& config = {}) const;
  AuctionOutcome run_one_isolated(const AuctionInstance& instance,
                                  const MechanismConfig& config = {}) const;

 private:
  template <typename Item>
  std::vector<MechanismOutcome> run_batch(const std::vector<Item>& batch,
                                          const MechanismConfig& config) const;
  template <typename Item>
  std::vector<AuctionOutcome> run_batch_isolated(const std::vector<Item>& batch,
                                                 const MechanismConfig& config) const;
  common::ThreadPool& pool() const;
  /// A dedicated pool's size becomes the default critical-bid budget, so an
  /// Engine{workers = w} never uses more than w threads at either level.
  MechanismConfig effective_config(const MechanismConfig& config) const;

  std::unique_ptr<common::ThreadPool> owned_;  ///< null when sharing
};

}  // namespace mcs::auction
