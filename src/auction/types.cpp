#include "auction/types.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace mcs::auction {

bool Allocation::contains(UserId user) const {
  return std::binary_search(winners.begin(), winners.end(), user);
}

const WinnerReward& MechanismOutcome::reward_of(UserId user) const {
  for (const auto& reward : rewards) {
    if (reward.user == user) {
      return reward;
    }
  }
  throw common::PreconditionError("user is not a winner of this outcome");
}

std::size_t MechanismConfig::reward_worker_budget() const {
  if (!parallel_rewards) {
    return 1;
  }
  return reward_workers > 0 ? reward_workers : common::default_worker_count();
}

}  // namespace mcs::auction
