#include "auction/types.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mcs::auction {

bool Allocation::contains(UserId user) const {
  return std::binary_search(winners.begin(), winners.end(), user);
}

const WinnerReward& MechanismOutcome::reward_of(UserId user) const {
  for (const auto& reward : rewards) {
    if (reward.user == user) {
      return reward;
    }
  }
  throw common::PreconditionError("user is not a winner of this outcome");
}

}  // namespace mcs::auction
