// Core vocabulary of the reverse auction (Section II): user/task identifiers,
// allocations, and the execution-contingent (EC) reward of the paper's
// mechanisms. An EC reward pays a winner differently depending on whether she
// completed her task(s); calibrated at the critical PoS, it makes truthful
// PoS declaration a dominant strategy (Theorems 1 and 4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/telemetry.hpp"

namespace mcs::auction {

/// Index of a user within an auction instance.
using UserId = std::int32_t;
/// Index of a task within a multi-task instance.
using TaskIndex = std::int32_t;

/// Result of a winner-determination algorithm.
struct Allocation {
  /// False when the instance's requirements cannot be met by any user set
  /// (in which case winners is empty and total_cost is 0).
  bool feasible = false;
  /// Selected users, ascending by id.
  std::vector<UserId> winners;
  /// Sum of the winners' (true, unscaled) costs — the social cost.
  double total_cost = 0.0;

  bool contains(UserId user) const;
};

/// Execution-contingent reward for one winner (Algorithm 3 / Algorithm 5):
///   success: (1 - p̄)·α + c,   failure: -p̄·α + c,
/// where p̄ is the winner's critical PoS, α the platform's reward scaling
/// factor, and c her declared (verified) cost.
struct EcReward {
  double critical_pos = 0.0;  ///< p̄ in [0, 1]
  double cost = 0.0;          ///< c, reimbursed in both branches
  double alpha = 0.0;         ///< α > 0, platform reward scale

  double on_success() const { return (1.0 - critical_pos) * alpha + cost; }
  double on_failure() const { return -critical_pos * alpha + cost; }

  /// Expected utility of a winner whose true overall success probability is
  /// `true_success_prob`: (p - p̄)·α. Non-negative iff she could truthfully
  /// win (individual rationality).
  double expected_utility(double true_success_prob) const {
    return (true_success_prob - critical_pos) * alpha;
  }

  /// Realized utility given the execution outcome.
  double realized_utility(bool success) const {
    return (success ? on_success() : on_failure()) - cost;
  }
};

/// Reward assigned to one winning user.
struct WinnerReward {
  UserId user = 0;
  double critical_contribution = 0.0;  ///< q̄ = -ln(1 - p̄)
  EcReward reward;
};

/// Full outcome of a strategy-proof mechanism: the allocation plus one EC
/// reward per winner (aligned with Allocation::winners).
struct MechanismOutcome {
  Allocation allocation;
  std::vector<WinnerReward> rewards;
  /// True when a degraded path produced this outcome: the single-task
  /// Min-Greedy fallback after an FPTAS timeout, or a multi-task
  /// partial-coverage round. Degraded outcomes trade the approximation /
  /// coverage guarantee for availability; the (1+ε) bound becomes 2 on the
  /// Min-Greedy ladder.
  bool degraded = false;
  /// Multi-task partial coverage only: task indices whose PoS requirement
  /// the (partial) winner set does not meet, ascending. Empty on full
  /// coverage and for single-task outcomes.
  std::vector<TaskIndex> uncovered_tasks;
  /// Phase timings and event counts of the run that produced this outcome.
  /// Populated only while obs::enabled(); otherwise default (disabled, all
  /// zeros). Purely additive: the allocation and rewards are bit-identical
  /// whether or not telemetry was on.
  obs::MechanismTelemetry telemetry;

  const WinnerReward& reward_of(UserId user) const;
};

/// How a multi-task winner's critical contribution is computed.
/// kBinarySearch is strategy-proof; kPaperIterationMin reproduces the
/// paper's Algorithm 5 literally (see multi_task/reward.hpp for the
/// reproduction finding behind the default).
enum class CriticalBidRule {
  kBinarySearch,
  kPaperIterationMin,
};

/// How the multi-task greedy cover (Algorithm 4) finds each round's argmax.
/// kLazy is the CELF-style max-heap of stale contribution/cost ratios —
/// submodularity of the residual-capped cover means ratios only ever
/// decrease, so a freshly recomputed entry that still tops the heap is the
/// true argmax. kReferenceScan is the paper-literal O(n²t) full rescan kept
/// as the equivalence oracle; both produce bit-identical winners, steps, and
/// tie-breaks (asserted by tests/mt_lazy_equivalence_test.cpp).
enum class GreedyAlgorithm {
  kLazy,
  kReferenceScan,
};

/// How the single-task critical-bid search answers its wins(q) probes.
/// kDpReuse is the fast path: one without-winner knapsack frontier per
/// (winner, FPTAS subproblem), built once per critical-bid search and
/// combined with the probed declaration in O(log states) per bisection step;
/// probes whose outcome could differ from a full re-solve by floating-point
/// reassociation (detected by an interval certificate) fall back to the full
/// solve, so the two strategies are bit-identical (asserted by
/// tests/st_probe_equivalence_test.cpp). kFullSolve re-runs winner
/// determination from scratch on every probe — the oracle and the benchmark
/// baseline. Min-Greedy probes always full-solve (already cheap).
enum class ProbeStrategy {
  kDpReuse,
  kFullSolve,
};

/// Which implementation runs the Algorithm 1 Pareto-frontier sweep (the
/// remaining single-task hot kernel — it dominates both solve_fptas and the
/// probe-context builds). kColumns is the memory-engineered default: the
/// frontier lives in two contiguous (cost, contribution) arrays merged with
/// a branch-light two-pointer pass, parent links for subset reconstruction
/// kept in a separate side pool only when a caller actually reconstructs
/// (frontier-only callers allocate none). kScalarOracle is the original
/// pointer-chasing state pool retained as the differential oracle; both
/// kernels produce bit-identical frontiers, solutions, and tie-breaks
/// (asserted by tests/dp_kernel_equivalence_test.cpp — see DESIGN.md §8).
enum class DpKernel {
  kColumns,
  kScalarOracle,
};

/// Knobs only the single-task (FPTAS) family reads.
struct SingleTaskKnobs {
  double epsilon = 0.1;               ///< FPTAS approximation parameter
  int binary_search_iterations = 48;  ///< ~1e-14 relative precision on q̄
  /// Probe strategy of the critical-bid reward search (see ProbeStrategy).
  ProbeStrategy probe_strategy = ProbeStrategy::kDpReuse;
  /// Frontier-DP kernel behind every Algorithm 1 sweep (see DpKernel). The
  /// knob exists for benchmarking and bisection; both settings are
  /// bit-identical end to end.
  DpKernel dp_kernel = DpKernel::kColumns;
};

/// Knobs only the multi-task single-minded family reads.
struct MultiTaskKnobs {
  CriticalBidRule critical_bid_rule = CriticalBidRule::kBinarySearch;
  /// Winner-determination algorithm; kLazy and kReferenceScan are
  /// bit-identical, the knob exists for benchmarking and bisection.
  GreedyAlgorithm winner_determination = GreedyAlgorithm::kLazy;
  /// Run the critical-bid greedy probes on a flat CSR view of the instance
  /// with an exclusion-mask / declared-contribution overlay instead of
  /// materializing an O(n·t) instance copy per probe. Bit-identical to the
  /// copied path (asserted by tests); off reproduces the legacy allocation
  /// behaviour for benchmarking.
  bool masked_rewards = true;
  /// When the greedy cover stalls (infeasible instance) or hits the auction
  /// deadline, keep the selected winner prefix: the outcome stays infeasible
  /// and pays no rewards (partial coverage cannot be strategy-proof), but
  /// reports the partial winner set and the uncovered task indices so the
  /// platform can act on what WAS covered. Off reproduces the paper's
  /// all-or-nothing behaviour exactly.
  bool partial_coverage = false;
};

/// One configuration for both mechanism families — what the batched
/// auction::Engine and every caller of the per-family run_mechanism take.
/// Shared fields live at the top level; per-family knobs nest so a config is
/// valid for either instance kind (the other family's sub-struct is simply
/// ignored).
struct MechanismConfig {
  double alpha = 10.0;  ///< reward scaling factor (paper Table II)
  /// Compute the winners' critical bids on multiple threads. Results are
  /// bit-identical to the serial path (each bid is an independent
  /// computation); disable for single-core determinism profiling.
  bool parallel_rewards = true;
  /// Upper bound on threads for the critical-bid computations; 0 means
  /// common::default_worker_count().
  std::size_t reward_workers = 0;
  /// Wall-clock budget per auction in seconds; 0 (or below) = unlimited.
  /// Cooperative: the FPTAS DP, the greedy cover, and the critical-bid loops
  /// poll a common::Deadline, so an expired budget surfaces as
  /// common::DeadlineExceeded (or as the degraded ladder below) rather than
  /// an unbounded round.
  double time_budget_seconds = 0.0;
  /// Single-task degradation ladder: when the FPTAS hits the deadline, retry
  /// winner determination AND critical bids under the 2-approx Min-Greedy
  /// rule with a fresh budget, marking the outcome degraded. When off, the
  /// DeadlineExceeded propagates (the batched engine turns it into a
  /// structured timeout status).
  bool degrade_on_timeout = true;
  SingleTaskKnobs single_task = {};
  MultiTaskKnobs multi_task = {};

  /// The thread budget the reward schemes actually use: 1 when
  /// parallel_rewards is off, otherwise reward_workers (or the hardware
  /// default when 0).
  std::size_t reward_worker_budget() const;
};

}  // namespace mcs::auction
