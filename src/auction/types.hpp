// Core vocabulary of the reverse auction (Section II): user/task identifiers,
// allocations, and the execution-contingent (EC) reward of the paper's
// mechanisms. An EC reward pays a winner differently depending on whether she
// completed her task(s); calibrated at the critical PoS, it makes truthful
// PoS declaration a dominant strategy (Theorems 1 and 4).
#pragma once

#include <cstdint>
#include <vector>

namespace mcs::auction {

/// Index of a user within an auction instance.
using UserId = std::int32_t;
/// Index of a task within a multi-task instance.
using TaskIndex = std::int32_t;

/// Result of a winner-determination algorithm.
struct Allocation {
  /// False when the instance's requirements cannot be met by any user set
  /// (in which case winners is empty and total_cost is 0).
  bool feasible = false;
  /// Selected users, ascending by id.
  std::vector<UserId> winners;
  /// Sum of the winners' (true, unscaled) costs — the social cost.
  double total_cost = 0.0;

  bool contains(UserId user) const;
};

/// Execution-contingent reward for one winner (Algorithm 3 / Algorithm 5):
///   success: (1 - p̄)·α + c,   failure: -p̄·α + c,
/// where p̄ is the winner's critical PoS, α the platform's reward scaling
/// factor, and c her declared (verified) cost.
struct EcReward {
  double critical_pos = 0.0;  ///< p̄ in [0, 1]
  double cost = 0.0;          ///< c, reimbursed in both branches
  double alpha = 0.0;         ///< α > 0, platform reward scale

  double on_success() const { return (1.0 - critical_pos) * alpha + cost; }
  double on_failure() const { return -critical_pos * alpha + cost; }

  /// Expected utility of a winner whose true overall success probability is
  /// `true_success_prob`: (p - p̄)·α. Non-negative iff she could truthfully
  /// win (individual rationality).
  double expected_utility(double true_success_prob) const {
    return (true_success_prob - critical_pos) * alpha;
  }

  /// Realized utility given the execution outcome.
  double realized_utility(bool success) const {
    return (success ? on_success() : on_failure()) - cost;
  }
};

/// Reward assigned to one winning user.
struct WinnerReward {
  UserId user = 0;
  double critical_contribution = 0.0;  ///< q̄ = -ln(1 - p̄)
  EcReward reward;
};

/// Full outcome of a strategy-proof mechanism: the allocation plus one EC
/// reward per winner (aligned with Allocation::winners).
struct MechanismOutcome {
  Allocation allocation;
  std::vector<WinnerReward> rewards;

  const WinnerReward& reward_of(UserId user) const;
};

}  // namespace mcs::auction
