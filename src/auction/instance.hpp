// Auction instances for the two settings of the paper.
//
// Single task (Section III-B): one task with PoS requirement T; each user
// declares a cost c_i (verified, per the paper's assumption) and a PoS p_i.
//
// Multi-task single-minded (Section III-C): t tasks with requirements T_j;
// each user declares a task set S_i, a per-task PoS p_i^j, and one cost c_i
// for performing the whole set.
//
// Both instances expose the log-domain view (q = -ln(1-p), Q = -ln(1-T))
// under which PoS constraints become additive covering constraints.
#pragma once

#include <vector>

#include "auction/types.hpp"

namespace mcs::auction {

struct BidColumns;

/// One user's declaration in the single-task auction.
struct SingleTaskBid {
  double cost = 0.0;  ///< c_i > 0 (verified by the platform)
  double pos = 0.0;   ///< declared p_i in [0, 1]
};

/// Single-task auction instance.
struct SingleTaskInstance {
  double requirement_pos = 0.0;  ///< T in (0, 1)
  std::vector<SingleTaskBid> bids;

  std::size_t num_users() const { return bids.size(); }

  /// Q = -ln(1 - T).
  double requirement_contribution() const;
  /// q_i = -ln(1 - p_i); +infinity when p_i = 1.
  double contribution(UserId user) const;
  /// Σ_i q_i over a user set.
  double contribution_of(const std::vector<UserId>& users) const;
  /// Σ_i c_i over a user set.
  double cost_of(const std::vector<UserId>& users) const;
  /// True when the user set meets the requirement (with tolerance).
  bool covers(const std::vector<UserId>& users) const;
  /// True when even selecting everyone meets the requirement.
  bool is_feasible() const;

  /// Flat SoA snapshot of the bids (cost[] and q[] columns, 64-byte
  /// aligned) — what the mechanism facade builds once per run and threads
  /// through winner determination and every critical-bid search. Stale after
  /// any mutation of `bids`; see auction/columns.hpp.
  BidColumns make_columns() const;

  /// Throws PreconditionError unless T ∈ (0,1), every cost > 0, and every
  /// PoS ∈ [0, 1].
  void validate() const;

  /// Copy with user `user`'s declared PoS replaced — the building block of
  /// critical-bid searches and misreport experiments.
  SingleTaskInstance with_declared_pos(UserId user, double declared_pos) const;
  /// Same, in the contribution domain.
  SingleTaskInstance with_declared_contribution(UserId user, double declared_q) const;
  /// Copy without user `user` (ids above shift down by one).
  SingleTaskInstance without_user(UserId user) const;
};

/// One user's declaration in the multi-task single-minded auction. `tasks`
/// and `pos` are parallel arrays; tasks are indices into the instance's task
/// list, strictly ascending.
struct MultiTaskUserBid {
  std::vector<TaskIndex> tasks;
  std::vector<double> pos;
  double cost = 0.0;

  /// Declared PoS for a task; 0 when the task is outside the set.
  double pos_for(TaskIndex task) const;
  /// Contribution q_i^j for a task; 0 when outside the set.
  double contribution_for(TaskIndex task) const;
  /// Σ_j q_i^j over the user's task set.
  double total_contribution() const;
  /// The user's overall success probability 1 - Π_j (1 - p_i^j): the chance
  /// she completes at least one of her tasks (what the EC reward pays on).
  double any_success_probability() const;
};

/// Multi-task single-minded auction instance.
struct MultiTaskInstance {
  std::vector<double> requirement_pos;  ///< T_j per task, each in (0, 1)
  std::vector<MultiTaskUserBid> users;

  std::size_t num_tasks() const { return requirement_pos.size(); }
  std::size_t num_users() const { return users.size(); }

  /// Q_j = -ln(1 - T_j) for every task.
  std::vector<double> requirement_contributions() const;
  /// Achieved PoS of `task` under a winner set: 1 - Π (1 - p_i^task).
  double achieved_pos(const std::vector<UserId>& winners, TaskIndex task) const;
  /// Total contribution Σ q_i^task accumulated on a task by a winner set.
  double achieved_contribution(const std::vector<UserId>& winners, TaskIndex task) const;
  /// True when every task requirement is met by the winner set (tolerance).
  bool covers(const std::vector<UserId>& winners) const;
  /// True when selecting everyone meets every requirement.
  bool is_feasible() const;
  double cost_of(const std::vector<UserId>& users_subset) const;

  /// Throws PreconditionError unless every T_j ∈ (0,1), every cost > 0,
  /// every PoS ∈ [0, 1], and every task set is sorted, unique, in range, and
  /// aligned with its PoS array.
  void validate() const;

  /// Copy with one user's declared PoS vector scaled in contribution space
  /// so her total contribution becomes `declared_total_q` (direction of the
  /// vector preserved); used by misreport experiments.
  MultiTaskInstance with_declared_total_contribution(UserId user, double declared_total_q) const;
  /// Copy without user `user` (ids above shift down by one).
  MultiTaskInstance without_user(UserId user) const;
};

}  // namespace mcs::auction
