#include "auction/io.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace mcs::auction {

namespace {

constexpr const char* kSingleHeader = "mcs-single-task-v1";
constexpr const char* kMultiHeader = "mcs-multi-task-v1";
constexpr const char* kDefaultSource = "instance text";

/// Upper bound on the declared task count: a hostile 'tasks 1e15' line must
/// fail cleanly instead of attempting a huge allocation.
constexpr std::size_t kMaxTaskCount = std::size_t{1} << 20;

std::string format_double(double value) {
  char buffer[64];
  // %.17g is the shortest precision that round-trips every double exactly.
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

[[noreturn]] void fail(const std::string& source, std::size_t line_number,
                       const std::string& message) {
  throw common::PreconditionError(source + ", line " + std::to_string(line_number) + ": " +
                                  message);
}

/// Splits the text into (line number, tokens) records, dropping comments and
/// blank lines.
std::vector<std::pair<std::size_t, std::vector<std::string>>> tokenize(
    const std::string& text) {
  std::vector<std::pair<std::size_t, std::vector<std::string>>> records;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto comment = line.find('#');
    if (comment != std::string::npos) {
      line.resize(comment);
    }
    std::istringstream fields(line);
    std::vector<std::string> tokens;
    std::string token;
    while (fields >> token) {
      tokens.push_back(std::move(token));
    }
    if (!tokens.empty()) {
      records.emplace_back(line_number, std::move(tokens));
    }
  }
  return records;
}

double parse_double(const std::string& source, const std::string& token,
                    std::size_t line_number) {
  double value{};
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    fail(source, line_number, "malformed number '" + token + "'");
  }
  // from_chars happily parses "inf" and "nan"; neither is a valid cost, PoS,
  // or requirement anywhere in the formats.
  if (!std::isfinite(value)) {
    fail(source, line_number, "non-finite number '" + token + "'");
  }
  return value;
}

std::size_t parse_size(const std::string& source, const std::string& token,
                       std::size_t line_number) {
  std::size_t value{};
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    fail(source, line_number, "malformed count '" + token + "'");
  }
  return value;
}

double parse_pos(const std::string& source, const std::string& token,
                 std::size_t line_number) {
  const double pos = parse_double(source, token, line_number);
  if (pos < 0.0 || pos > 1.0) {
    fail(source, line_number, "PoS " + token + " out of range [0, 1]");
  }
  return pos;
}

double parse_requirement(const std::string& source, const std::string& token,
                         std::size_t line_number) {
  const double requirement = parse_double(source, token, line_number);
  if (requirement <= 0.0 || requirement >= 1.0) {
    fail(source, line_number, "PoS requirement " + token + " out of range (0, 1)");
  }
  return requirement;
}

double parse_cost(const std::string& source, const std::string& token,
                  std::size_t line_number) {
  const double cost = parse_double(source, token, line_number);
  if (cost <= 0.0) {
    fail(source, line_number, "cost " + token + " must be strictly positive");
  }
  return cost;
}

/// Final whole-instance validation, with the source folded into any error so
/// a bad file is named in the message.
template <typename Instance>
void validate_parsed(const Instance& instance, const std::string& source) {
  try {
    instance.validate();
  } catch (const common::PreconditionError& e) {
    throw common::PreconditionError(source + ": " + e.what());
  }
}

SingleTaskInstance parse_single_task(const std::string& text, const std::string& source) {
  const auto records = tokenize(text);
  if (records.empty() || records.front().second.size() != 1 ||
      records.front().second.front() != kSingleHeader) {
    fail(source, records.empty() ? 1 : records.front().first,
         "missing mcs-single-task-v1 header");
  }
  SingleTaskInstance instance;
  bool have_requirement = false;
  for (std::size_t r = 1; r < records.size(); ++r) {
    const auto& [line_number, tokens] = records[r];
    if (tokens.front() == "requirement") {
      if (tokens.size() != 2 || have_requirement) {
        fail(source, line_number, "expected exactly one 'requirement <pos>' line");
      }
      instance.requirement_pos = parse_requirement(source, tokens[1], line_number);
      have_requirement = true;
    } else if (tokens.front() == "user") {
      if (tokens.size() != 3) {
        fail(source, line_number, "expected 'user <cost> <pos>'");
      }
      instance.bids.push_back({parse_cost(source, tokens[1], line_number),
                               parse_pos(source, tokens[2], line_number)});
    } else {
      fail(source, line_number, "unknown directive '" + tokens.front() + "'");
    }
  }
  if (!have_requirement) {
    fail(source, records.back().first, "instance is missing its requirement line");
  }
  validate_parsed(instance, source);
  return instance;
}

MultiTaskInstance parse_multi_task(const std::string& text, const std::string& source) {
  const auto records = tokenize(text);
  if (records.empty() || records.front().second.size() != 1 ||
      records.front().second.front() != kMultiHeader) {
    fail(source, records.empty() ? 1 : records.front().first,
         "missing mcs-multi-task-v1 header");
  }
  MultiTaskInstance instance;
  bool have_tasks = false;
  std::size_t tasks_line = 0;
  std::vector<bool> requirement_seen;
  for (std::size_t r = 1; r < records.size(); ++r) {
    const auto& [line_number, tokens] = records[r];
    if (tokens.front() == "tasks") {
      if (tokens.size() != 2 || have_tasks) {
        fail(source, line_number, "expected exactly one 'tasks <count>' line before anything else");
      }
      const std::size_t count = parse_size(source, tokens[1], line_number);
      if (count == 0 || count > kMaxTaskCount) {
        fail(source, line_number,
             "task count must lie in [1, " + std::to_string(kMaxTaskCount) + "]");
      }
      instance.requirement_pos.assign(count, 0.0);
      requirement_seen.assign(count, false);
      have_tasks = true;
      tasks_line = line_number;
    } else if (tokens.front() == "requirement") {
      if (!have_tasks) {
        fail(source, line_number, "'tasks <count>' must come before requirements");
      }
      if (tokens.size() != 3) {
        fail(source, line_number, "expected 'requirement <task> <pos>'");
      }
      const std::size_t task = parse_size(source, tokens[1], line_number);
      if (task >= instance.num_tasks()) {
        fail(source, line_number, "task index out of range");
      }
      if (requirement_seen[task]) {
        fail(source, line_number, "duplicate requirement for task " + tokens[1]);
      }
      instance.requirement_pos[task] = parse_requirement(source, tokens[2], line_number);
      requirement_seen[task] = true;
    } else if (tokens.front() == "user") {
      if (!have_tasks) {
        fail(source, line_number, "'tasks <count>' must come before users");
      }
      if (tokens.size() < 3) {
        fail(source, line_number, "expected 'user <cost> <count> <task:pos>...'");
      }
      MultiTaskUserBid bid;
      bid.cost = parse_cost(source, tokens[1], line_number);
      const std::size_t count = parse_size(source, tokens[2], line_number);
      if (count == 0) {
        fail(source, line_number, "single-minded users must demand at least one task");
      }
      if (tokens.size() != 3 + count) {
        fail(source, line_number, "task:pos pair count does not match the declared count");
      }
      for (std::size_t k = 0; k < count; ++k) {
        const auto& pair = tokens[3 + k];
        const auto colon = pair.find(':');
        if (colon == std::string::npos) {
          fail(source, line_number, "expected task:pos, got '" + pair + "'");
        }
        const std::size_t task = parse_size(source, pair.substr(0, colon), line_number);
        if (task >= instance.num_tasks()) {
          fail(source, line_number, "task index out of range in '" + pair + "'");
        }
        if (!bid.tasks.empty() && static_cast<std::size_t>(bid.tasks.back()) >= task) {
          fail(source, line_number,
               static_cast<std::size_t>(bid.tasks.back()) == task
                   ? "duplicate task index in '" + pair + "'"
                   : "task set must be strictly ascending at '" + pair + "'");
        }
        bid.tasks.push_back(static_cast<TaskIndex>(task));
        bid.pos.push_back(parse_pos(source, pair.substr(colon + 1), line_number));
      }
      instance.users.push_back(std::move(bid));
    } else {
      fail(source, line_number, "unknown directive '" + tokens.front() + "'");
    }
  }
  if (!have_tasks) {
    fail(source, records.back().first, "instance is missing its tasks line");
  }
  for (std::size_t j = 0; j < requirement_seen.size(); ++j) {
    if (!requirement_seen[j]) {
      fail(source, tasks_line, "task " + std::to_string(j) + " has no requirement line");
    }
  }
  validate_parsed(instance, source);
  return instance;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open instance file for reading: " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open instance file for writing: " + path.string());
  }
  out << text;
  if (!out) {
    throw std::runtime_error("failed writing instance file: " + path.string());
  }
}

}  // namespace

std::string to_text(const SingleTaskInstance& instance) {
  std::ostringstream out;
  out << kSingleHeader << "\n";
  out << "requirement " << format_double(instance.requirement_pos) << "\n";
  for (const auto& bid : instance.bids) {
    out << "user " << format_double(bid.cost) << ' ' << format_double(bid.pos) << "\n";
  }
  return out.str();
}

std::string to_text(const MultiTaskInstance& instance) {
  std::ostringstream out;
  out << kMultiHeader << "\n";
  out << "tasks " << instance.num_tasks() << "\n";
  for (std::size_t j = 0; j < instance.num_tasks(); ++j) {
    out << "requirement " << j << ' ' << format_double(instance.requirement_pos[j]) << "\n";
  }
  for (const auto& user : instance.users) {
    out << "user " << format_double(user.cost) << ' ' << user.tasks.size();
    for (std::size_t k = 0; k < user.tasks.size(); ++k) {
      out << ' ' << user.tasks[k] << ':' << format_double(user.pos[k]);
    }
    out << "\n";
  }
  return out.str();
}

SingleTaskInstance single_task_from_text(const std::string& text) {
  return parse_single_task(text, kDefaultSource);
}

MultiTaskInstance multi_task_from_text(const std::string& text) {
  return parse_multi_task(text, kDefaultSource);
}

void save_single_task(const std::filesystem::path& path, const SingleTaskInstance& instance) {
  write_file(path, to_text(instance));
}

void save_multi_task(const std::filesystem::path& path, const MultiTaskInstance& instance) {
  write_file(path, to_text(instance));
}

SingleTaskInstance load_single_task(const std::filesystem::path& path) {
  return parse_single_task(read_file(path), path.string());
}

MultiTaskInstance load_multi_task(const std::filesystem::path& path) {
  return parse_multi_task(read_file(path), path.string());
}

std::string detect_instance_kind(const std::string& text) {
  const auto records = tokenize(text);
  if (records.empty() || records.front().second.size() != 1) {
    return "";
  }
  const auto& header = records.front().second.front();
  if (header == kSingleHeader) {
    return "single";
  }
  if (header == kMultiHeader) {
    return "multi";
  }
  return "";
}

}  // namespace mcs::auction
