// Plain-text persistence of auction instances, so the mechanisms can run on
// data a user prepares by hand or exports from another system (see
// examples/auction_cli.cpp).
//
// Single-task format (mcs-single-task-v1):
//     mcs-single-task-v1
//     requirement 0.9
//     user 3.0 0.7        # cost pos
//     user 2.0 0.7
//
// Multi-task format (mcs-multi-task-v1):
//     mcs-multi-task-v1
//     tasks 3
//     requirement 0 0.8    # task index, PoS requirement
//     requirement 1 0.8
//     requirement 2 0.7
//     user 5.0 2 0:0.3 2:0.25   # cost, #tasks, task:pos pairs
//
// Lines starting with '#' and blank lines are ignored; '#' starts a comment
// anywhere on a line. Parsers throw PreconditionError with the offending
// line number on malformed input; writers produce canonical output that
// round-trips exactly.
#pragma once

#include <filesystem>
#include <string>

#include "auction/instance.hpp"

namespace mcs::auction {

std::string to_text(const SingleTaskInstance& instance);
std::string to_text(const MultiTaskInstance& instance);

SingleTaskInstance single_task_from_text(const std::string& text);
MultiTaskInstance multi_task_from_text(const std::string& text);

/// File wrappers; throw std::runtime_error on I/O failure.
void save_single_task(const std::filesystem::path& path, const SingleTaskInstance& instance);
void save_multi_task(const std::filesystem::path& path, const MultiTaskInstance& instance);
SingleTaskInstance load_single_task(const std::filesystem::path& path);
MultiTaskInstance load_multi_task(const std::filesystem::path& path);

/// Peeks at the header line: "single", "multi", or "" when unrecognized.
std::string detect_instance_kind(const std::string& text);

}  // namespace mcs::auction
