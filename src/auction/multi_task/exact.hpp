// Exact solver for the multi-task covering problem — the paper's multi-task
// "OPT" baseline. Depth-first branch-and-bound over users in density order
// with two lower bounds: (a) remaining total residual divided by the best
// contribution-cost ratio still available, and (b) per-task coverability
// (a branch dies when some task can no longer be covered by the remaining
// users). Warm-started from the greedy solution. A node budget guards
// pathological instances (proven_optimal reports whether it was hit).
#pragma once

#include <cstddef>

#include "auction/instance.hpp"

namespace mcs::auction::multi_task {

struct ExactResult {
  Allocation allocation;
  bool proven_optimal = true;
  std::size_t nodes_explored = 0;
};

struct ExactOptions {
  std::size_t node_budget = 50'000'000;
};

/// Solves the multi-task instance to optimality. Returns an infeasible
/// Allocation (proven_optimal = true) when the instance is infeasible.
ExactResult solve_exact(const MultiTaskInstance& instance, const ExactOptions& options = {});

}  // namespace mcs::auction::multi_task
