#include "auction/multi_task/greedy.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <queue>

#include "auction/multi_task/gain.hpp"
#include "common/check.hpp"

namespace mcs::auction::multi_task {

namespace {

/// The selected user's gain read through the overlay.
double effective_of(const MultiTaskView& view, const ViewOverlay& overlay, UserId user,
                    std::span<const double> residual) {
  return effective_contribution(view.user_tasks(user), overlay.contributions_of(view, user),
                                residual);
}

/// One round's argmax: the user, her gain, and her ratio.
struct Pick {
  UserId user = 0;
  double effective = 0.0;
  double ratio = 0.0;
};

/// Closes out a keep_partial run: the allocation stays infeasible but keeps
/// the selected prefix and its cost, and the unmet tasks are reported.
GreedyResult finish_partial(const MultiTaskView& view, GreedyResult result,
                            const std::vector<double>& residual, bool timed_out) {
  for (std::size_t j = 0; j < residual.size(); ++j) {
    if (residual[j] > kResidualFloor) {
      result.uncovered_tasks.push_back(static_cast<TaskIndex>(j));
    }
  }
  result.timed_out = timed_out;
  std::sort(result.allocation.winners.begin(), result.allocation.winners.end());
  result.allocation.total_cost = view.cost_of(result.allocation.winners);
  return result;
}

/// The paper-literal argmax: rescan every unselected user each round.
/// Ascending id order plus the strict `>` comparison break ratio ties toward
/// the lower user id.
class ReferencePicker {
 public:
  ReferencePicker(const MultiTaskView& view, const ViewOverlay& overlay,
                  obs::PhaseCounters* counters)
      : view_(view), overlay_(overlay), counters_(counters), selected_(view.num_users(), false) {}

  std::optional<Pick> next(const std::vector<double>& residual) {
    UserId best = -1;
    double best_ratio = 0.0;
    double best_effective = 0.0;
    for (std::size_t i = 0; i < view_.num_users(); ++i) {
      const auto user = static_cast<UserId>(i);
      if (selected_[i] || overlay_.excludes(user)) {
        continue;
      }
      if (counters_ != nullptr) {
        ++counters_->heap_reevaluations;
      }
      const double effective = effective_of(view_, overlay_, user, residual);
      if (effective <= 0.0) {
        continue;
      }
      const double ratio = effective / view_.costs[i];
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_effective = effective;
        best = user;
      }
    }
    if (best < 0) {
      return std::nullopt;
    }
    selected_[static_cast<std::size_t>(best)] = true;
    return Pick{best, best_effective, best_ratio};
  }

 private:
  const MultiTaskView& view_;
  const ViewOverlay& overlay_;
  obs::PhaseCounters* counters_;
  std::vector<bool> selected_;
};

/// The CELF-style lazy argmax. Every heap entry carries the round its ratio
/// was computed in; ratios are non-increasing across rounds (the gain is
/// submodular in the shrinking residuals and costs are constant), so a stale
/// ratio is an upper bound. Popping until the top entry is fresh therefore
/// yields the true argmax, and ordering equal ratios by ascending user id
/// reproduces the reference scan's lowest-id tie-break: a smaller-id user
/// whose stale bound ties the fresh top would still sit above it, so she is
/// recomputed first and, on a true tie, selected first.
class LazyPicker {
 public:
  LazyPicker(const MultiTaskView& view, const ViewOverlay& overlay, obs::PhaseCounters* counters)
      : view_(view), overlay_(overlay), counters_(counters) {
    std::vector<Entry> entries;
    entries.reserve(view.num_users());
    for (std::size_t i = 0; i < view.num_users(); ++i) {
      const auto user = static_cast<UserId>(i);
      if (overlay.excludes(user)) {
        continue;
      }
      // Round 0's residuals ARE the requirements, so the precomputed
      // first-round gains apply; only an overridden user needs a fresh scan.
      const double effective = user == overlay.overridden_user
                                   ? effective_of(view, overlay, user, view.requirements)
                                   : view.initial_effective[i];
      if (effective <= 0.0) {
        continue;
      }
      entries.push_back({effective / view.costs[i], effective, user, 0});
    }
    heap_ = Heap(Order{}, std::move(entries));
  }

  std::optional<Pick> next(const std::vector<double>& residual) {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      heap_.pop();
      if (top.round == round_) {
        ++round_;
        return Pick{top.user, top.effective, top.ratio};
      }
      if (counters_ != nullptr) {
        ++counters_->heap_reevaluations;
      }
      const double effective = effective_of(view_, overlay_, top.user, residual);
      if (effective <= 0.0) {
        // Gains never recover (residuals only shrink): drop the user for good.
        continue;
      }
      heap_.push({effective / view_.costs[static_cast<std::size_t>(top.user)], effective,
                  top.user, round_});
    }
    ++round_;
    return std::nullopt;
  }

 private:
  struct Entry {
    double ratio;
    double effective;
    UserId user;
    std::uint32_t round;
  };
  struct Order {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.ratio != b.ratio) {
        return a.ratio < b.ratio;
      }
      return a.user > b.user;  // equal ratios: lower id on top
    }
  };
  using Heap = std::priority_queue<Entry, std::vector<Entry>, Order>;

  const MultiTaskView& view_;
  const ViewOverlay& overlay_;
  obs::PhaseCounters* counters_;
  Heap heap_;
  std::uint32_t round_ = 0;
};

template <typename Picker>
GreedyResult run_greedy(const MultiTaskView& view, const ViewOverlay& overlay,
                        const GreedyOptions& options, Picker picker) {
  GreedyResult result;
  std::vector<double> residual(view.requirements.begin(), view.requirements.end());

  while (any_residual(residual)) {
    if (options.counters != nullptr) {
      ++options.counters->deadline_polls;
    }
    if (options.deadline.expired()) {
      if (options.keep_partial) {
        return finish_partial(view, std::move(result), residual, /*timed_out=*/true);
      }
      options.deadline.check("multi-task greedy cover");
    }
    const auto pick = picker.next(residual);
    if (!pick) {
      // Stalled with unmet requirements: infeasible instance.
      if (options.keep_partial) {
        return finish_partial(view, std::move(result), residual, /*timed_out=*/false);
      }
      return GreedyResult{};
    }
    if (options.counters != nullptr) {
      ++options.counters->rounds;
    }
    result.steps.push_back({pick->user, pick->effective, pick->ratio,
                            options.record_residuals ? residual : std::vector<double>{}});
    result.allocation.winners.push_back(pick->user);
    const auto tasks = view.user_tasks(pick->user);
    const auto contributions = overlay.contributions_of(view, pick->user);
    for (std::size_t k = 0; k < tasks.size(); ++k) {
      const auto task = static_cast<std::size_t>(tasks[k]);
      residual[task] = std::max(0.0, residual[task] - contributions[k]);
    }
  }

  result.allocation.feasible = true;
  std::sort(result.allocation.winners.begin(), result.allocation.winners.end());
  result.allocation.total_cost = view.cost_of(result.allocation.winners);
  return result;
}

}  // namespace

GreedyResult solve_greedy(const MultiTaskInstance& instance) {
  return solve_greedy(instance, GreedyOptions{});
}

GreedyResult solve_greedy(const MultiTaskInstance& instance, const GreedyOptions& options) {
  return solve_greedy(MultiTaskView::from_instance(instance), ViewOverlay::none(), options);
}

GreedyResult solve_greedy(const MultiTaskView& view, const ViewOverlay& overlay,
                          const GreedyOptions& options) {
  switch (options.algorithm) {
    case GreedyAlgorithm::kLazy:
      return run_greedy(view, overlay, options, LazyPicker(view, overlay, options.counters));
    case GreedyAlgorithm::kReferenceScan:
      return run_greedy(view, overlay, options, ReferencePicker(view, overlay, options.counters));
  }
  throw common::PreconditionError("unknown greedy algorithm");
}

}  // namespace mcs::auction::multi_task
