#include "auction/multi_task/greedy.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::multi_task {

namespace {

/// Residuals below this absolute floor count as satisfied; guards against a
/// requirement lingering at ~1e-16 after exact-looking subtractions.
constexpr double kResidualFloor = 1e-12;

double effective_contribution(const MultiTaskUserBid& bid, const std::vector<double>& residual) {
  double total = 0.0;
  for (std::size_t k = 0; k < bid.tasks.size(); ++k) {
    const auto task = static_cast<std::size_t>(bid.tasks[k]);
    if (residual[task] <= kResidualFloor) {
      continue;
    }
    total += std::min(common::contribution_from_pos(bid.pos[k]), residual[task]);
  }
  return total;
}

bool any_residual(const std::vector<double>& residual) {
  return std::any_of(residual.begin(), residual.end(),
                     [](double r) { return r > kResidualFloor; });
}

/// Closes out a keep_partial run: the allocation stays infeasible but keeps
/// the selected prefix and its cost, and the unmet tasks are reported.
GreedyResult finish_partial(const MultiTaskInstance& instance, GreedyResult result,
                            const std::vector<double>& residual, bool timed_out) {
  for (std::size_t j = 0; j < residual.size(); ++j) {
    if (residual[j] > kResidualFloor) {
      result.uncovered_tasks.push_back(static_cast<TaskIndex>(j));
    }
  }
  result.timed_out = timed_out;
  std::sort(result.allocation.winners.begin(), result.allocation.winners.end());
  result.allocation.total_cost = instance.cost_of(result.allocation.winners);
  return result;
}

}  // namespace

GreedyResult solve_greedy(const MultiTaskInstance& instance) {
  return solve_greedy(instance, GreedyOptions{});
}

GreedyResult solve_greedy(const MultiTaskInstance& instance, const GreedyOptions& options) {
  instance.validate();
  GreedyResult result;
  std::vector<double> residual = instance.requirement_contributions();
  std::vector<bool> selected(instance.num_users(), false);

  while (any_residual(residual)) {
    if (options.deadline.expired()) {
      if (options.keep_partial) {
        return finish_partial(instance, std::move(result), residual, /*timed_out=*/true);
      }
      options.deadline.check("multi-task greedy cover");
    }
    UserId best = -1;
    double best_ratio = 0.0;
    double best_effective = 0.0;
    for (std::size_t i = 0; i < instance.num_users(); ++i) {
      if (selected[i]) {
        continue;
      }
      const double effective = effective_contribution(instance.users[i], residual);
      if (effective <= 0.0) {
        continue;
      }
      const double ratio = effective / instance.users[i].cost;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_effective = effective;
        best = static_cast<UserId>(i);
      }
    }
    if (best < 0) {
      // Stalled with unmet requirements: infeasible instance.
      if (options.keep_partial) {
        return finish_partial(instance, std::move(result), residual, /*timed_out=*/false);
      }
      return GreedyResult{};
    }
    result.steps.push_back({best, best_effective, best_ratio, residual});
    selected[static_cast<std::size_t>(best)] = true;
    result.allocation.winners.push_back(best);
    const auto& bid = instance.users[static_cast<std::size_t>(best)];
    for (std::size_t k = 0; k < bid.tasks.size(); ++k) {
      const auto task = static_cast<std::size_t>(bid.tasks[k]);
      residual[task] =
          std::max(0.0, residual[task] - common::contribution_from_pos(bid.pos[k]));
    }
  }

  result.allocation.feasible = true;
  std::sort(result.allocation.winners.begin(), result.allocation.winners.end());
  result.allocation.total_cost = instance.cost_of(result.allocation.winners);
  return result;
}

}  // namespace mcs::auction::multi_task
