// Budgeted multi-task coverage — the dual of Algorithm 4's minimization:
// with a fixed recruitment budget, maximize the total (requirement-capped)
// contribution across tasks. The coverage function is monotone submodular,
// so the classic budgeted-maximization recipe applies (Khuller–Moss–Naor):
// run the cost-benefit greedy under the budget, also evaluate the best
// single affordable user, and keep the better of the two — a constant-factor
// ((1−1/e)/2) approximation. This is the platform's tool when the budget,
// not the per-task assurance, is the binding constraint.
#pragma once

#include "auction/instance.hpp"

namespace mcs::auction::multi_task {

struct BudgetedCoverage {
  /// Selected users (ascending) and their true total cost (<= budget).
  Allocation allocation;
  /// Σ_j min{Q_j, achieved contribution on j} — the objective value.
  double covered_contribution = 0.0;
  /// Per-task achieved PoS under the selection.
  std::vector<double> achieved_pos;
};

/// Maximizes the requirement-capped total contribution subject to total cost
/// <= budget. The instance's requirement_pos define the per-task caps Q_j
/// (coverage beyond a task's requirement earns nothing). Requires a valid
/// instance and budget > 0.
BudgetedCoverage max_coverage_for_budget(const MultiTaskInstance& instance, double budget);

}  // namespace mcs::auction::multi_task
