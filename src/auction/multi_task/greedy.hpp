// Algorithm 4 of the paper: greedy winner determination for the multi-task
// single-minded setting. The residual requirements Q̄_j define a submodular
// coverage function; the algorithm repeatedly selects the user maximizing the
// contribution-cost ratio
//     ( Σ_{j∈S_i} min{q_i^j, Q̄_j} ) / c_i
// and deducts her contributions, until every requirement is met. Guarantees
// (Theorems 4-6, Lemma 2): H(γ)-approximation, monotone in declared
// contributions, O(n²t) time.
//
// The iteration log (who was picked, at what ratio, against which residuals)
// is exposed because the reward scheme (Algorithm 5) replays it.
#pragma once

#include <vector>

#include "auction/instance.hpp"
#include "common/deadline.hpp"

namespace mcs::auction::multi_task {

/// One iteration of the greedy loop.
struct GreedyStep {
  UserId selected = 0;
  /// The selected user's effective (residual-capped) total contribution at
  /// the start of the iteration: Σ_j min{q_i^j, Q̄_j}.
  double effective_contribution = 0.0;
  /// Her contribution-cost ratio at that point.
  double ratio = 0.0;
  /// Residual requirements Q̄ at the start of the iteration.
  std::vector<double> residual_before;
};

struct GreedyOptions {
  /// Cooperative wall-clock budget, polled once per greedy iteration.
  common::Deadline deadline = {};
  /// Keep the selected prefix when the loop stalls (infeasible) or the
  /// deadline expires: the result's allocation stays infeasible but carries
  /// the partial winner set, its cost, and the iteration log, and
  /// `uncovered_tasks` lists the unmet requirements. When false (the
  /// default) a stall returns an empty result and an expiry throws
  /// common::DeadlineExceeded — the paper-exact contract.
  bool keep_partial = false;
};

struct GreedyResult {
  Allocation allocation;
  std::vector<GreedyStep> steps;  ///< selection order; empty when infeasible
  /// Tasks whose requirement is unmet, ascending; populated only under
  /// GreedyOptions::keep_partial (empty on full coverage).
  std::vector<TaskIndex> uncovered_tasks;
  /// True when the deadline (not a stall) ended a keep_partial run.
  bool timed_out = false;
};

/// Runs Algorithm 4. Returns an infeasible Allocation when the loop stalls
/// with unmet requirements (no remaining user adds positive contribution).
/// Ties on the ratio break toward the lower user id. The instance must be
/// valid.
GreedyResult solve_greedy(const MultiTaskInstance& instance);
GreedyResult solve_greedy(const MultiTaskInstance& instance, const GreedyOptions& options);

}  // namespace mcs::auction::multi_task
