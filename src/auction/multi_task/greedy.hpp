// Algorithm 4 of the paper: greedy winner determination for the multi-task
// single-minded setting. The residual requirements Q̄_j define a submodular
// coverage function; the algorithm repeatedly selects the user maximizing the
// contribution-cost ratio
//     ( Σ_{j∈S_i} min{q_i^j, Q̄_j} ) / c_i
// and deducts her contributions, until every requirement is met. Guarantees
// (Theorems 4-6, Lemma 2): H(γ)-approximation, monotone in declared
// contributions.
//
// Two interchangeable argmax strategies (GreedyAlgorithm, see
// auction/types.hpp): the paper-literal O(n²t) full rescan per round
// (kReferenceScan) and the CELF-style lazy max-heap of stale ratios (kLazy,
// the default). Because residuals only shrink and costs are constant, every
// stale heap ratio is an upper bound on the user's current ratio, so a
// popped entry whose recomputed ratio still tops the heap is the true
// argmax; the heap orders equal ratios by ascending user id, preserving the
// reference's lowest-id tie-break exactly. The two paths are bit-identical
// (same winners, same steps, same tie-breaks) — an invariant asserted by
// tests/mt_lazy_equivalence_test.cpp and tests/perf_smoke_test.cpp.
//
// The iteration log (who was picked, at what ratio) is exposed because the
// reward scheme (Algorithm 5) replays it. The solve_greedy overloads on
// MultiTaskView run the same algorithms against the flat CSR layout through
// an exclusion/override overlay — the allocation-free probe path of the
// reward scheme — and report winners under ORIGINAL user ids.
#pragma once

#include <vector>

#include "auction/instance.hpp"
#include "auction/multi_task/view.hpp"
#include "common/deadline.hpp"
#include "obs/telemetry.hpp"

namespace mcs::auction::multi_task {

/// The algorithm enum lives in auction/types.hpp so the unified
/// MechanismConfig can carry it; this alias keeps call sites short.
using GreedyAlgorithm = auction::GreedyAlgorithm;

/// One iteration of the greedy loop.
struct GreedyStep {
  UserId selected = 0;
  /// The selected user's effective (residual-capped) total contribution at
  /// the start of the iteration: Σ_j min{q_i^j, Q̄_j}.
  double effective_contribution = 0.0;
  /// Her contribution-cost ratio at that point.
  double ratio = 0.0;
  /// Residual requirements Q̄ at the start of the iteration. Populated only
  /// under GreedyOptions::record_residuals — the copy is O(t) per step, so
  /// the hot path skips it; the binary-search reward rule opts in for the
  /// one without-i run whose log its replay probes consume (reward.cpp).
  std::vector<double> residual_before;
};

struct GreedyOptions {
  /// Cooperative wall-clock budget, polled once per greedy iteration.
  common::Deadline deadline = {};
  /// Keep the selected prefix when the loop stalls (infeasible) or the
  /// deadline expires: the result's allocation stays infeasible but carries
  /// the partial winner set, its cost, and the iteration log, and
  /// `uncovered_tasks` lists the unmet requirements. When false (the
  /// default) a stall returns an empty result and an expiry throws
  /// common::DeadlineExceeded — the paper-exact contract.
  bool keep_partial = false;
  /// Argmax strategy; kLazy and kReferenceScan produce identical results.
  GreedyAlgorithm algorithm = GreedyAlgorithm::kLazy;
  /// Snapshot the residual vector into every GreedyStep (tests/debugging
  /// only; off keeps the hot path free of per-step O(t) copies).
  bool record_residuals = false;
  /// When non-null, accumulates rounds (greedy picks), deadline polls, and
  /// gain re-evaluations inside the argmax (lazy-heap stale recomputes for
  /// kLazy, full candidate scans for kReferenceScan — the counter is
  /// algorithm-dependent by design: it measures the CELF saving). The caller
  /// owns the block and must not share it across concurrent solves.
  obs::PhaseCounters* counters = nullptr;
};

struct GreedyResult {
  Allocation allocation;
  std::vector<GreedyStep> steps;  ///< selection order; empty when infeasible
  /// Tasks whose requirement is unmet, ascending; populated only under
  /// GreedyOptions::keep_partial (empty on full coverage).
  std::vector<TaskIndex> uncovered_tasks;
  /// True when the deadline (not a stall) ended a keep_partial run.
  bool timed_out = false;
};

/// Runs Algorithm 4. Returns an infeasible Allocation when the loop stalls
/// with unmet requirements (no remaining user adds positive contribution).
/// Ties on the ratio break toward the lower user id. The instance must be
/// valid (it is validated on entry).
GreedyResult solve_greedy(const MultiTaskInstance& instance);
GreedyResult solve_greedy(const MultiTaskInstance& instance, const GreedyOptions& options);

/// Runs Algorithm 4 against a prebuilt CSR view through an overlay, without
/// copying or validating anything. Winner ids, steps, and costs refer to the
/// ORIGINAL instance ids (an excluded user simply never appears), and are
/// bit-identical to solving the equivalent materialized copy.
GreedyResult solve_greedy(const MultiTaskView& view, const ViewOverlay& overlay,
                          const GreedyOptions& options = {});

}  // namespace mcs::auction::multi_task
