#include "auction/multi_task/view.hpp"

#include "auction/multi_task/gain.hpp"
#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::multi_task {

double MultiTaskView::total_contribution(UserId user) const {
  double total = 0.0;
  for (double q : user_contributions(user)) {
    total += q;
  }
  return total;
}

double MultiTaskView::cost_of(const std::vector<UserId>& users) const {
  double total = 0.0;
  for (UserId user : users) {
    total += costs[static_cast<std::size_t>(user)];
  }
  return total;
}

MultiTaskView MultiTaskView::from_instance(const MultiTaskInstance& instance) {
  instance.validate();
  MultiTaskView view;
  const std::size_t n = instance.num_users();
  const auto requirements = instance.requirement_contributions();
  view.requirements.assign(requirements.begin(), requirements.end());
  view.offsets.reserve(n + 1);
  view.costs.reserve(n);
  std::size_t nnz = 0;
  for (const auto& user : instance.users) {
    nnz += user.tasks.size();
  }
  view.tasks.reserve(nnz);
  view.contributions.reserve(nnz);
  view.offsets.push_back(0);
  for (const auto& user : instance.users) {
    view.costs.push_back(user.cost);
    for (std::size_t k = 0; k < user.tasks.size(); ++k) {
      view.tasks.push_back(user.tasks[k]);
      view.contributions.push_back(common::contribution_from_pos(user.pos[k]));
    }
    view.offsets.push_back(view.tasks.size());
  }
  view.initial_effective.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    view.initial_effective.push_back(
        effective_contribution(view.user_tasks(static_cast<UserId>(i)),
                               view.user_contributions(static_cast<UserId>(i)),
                               view.requirements));
  }
  return view;
}

ViewOverlay ViewOverlay::without(UserId user) {
  ViewOverlay overlay;
  overlay.excluded_user = user;
  return overlay;
}

ViewOverlay ViewOverlay::with_declared_total_contribution(const MultiTaskView& view, UserId user,
                                                          double declared_total_q) {
  MCS_EXPECTS(user >= 0 && static_cast<std::size_t>(user) < view.num_users(),
              "user id out of range");
  MCS_EXPECTS(declared_total_q >= 0.0, "declared contribution must be non-negative");
  ViewOverlay overlay;
  overlay.overridden_user = user;
  const auto original = view.user_contributions(user);
  overlay.overridden_contributions.reserve(original.size());
  const double current = view.total_contribution(user);
  if (current <= 0.0) {
    // A user with zero true contribution declares uniformly over her tasks.
    const double share = declared_total_q / static_cast<double>(original.size());
    const double q = common::contribution_from_pos(common::pos_from_contribution(share));
    overlay.overridden_contributions.assign(original.size(), q);
    return overlay;
  }
  const double scale = declared_total_q / current;
  for (double q : original) {
    overlay.overridden_contributions.push_back(
        common::contribution_from_pos(common::pos_from_contribution(q * scale)));
  }
  return overlay;
}

}  // namespace mcs::auction::multi_task
