#include "auction/multi_task/vcg.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace mcs::auction::multi_task {

Allocation solve_mt_vcg(const MultiTaskInstance& instance) {
  instance.validate();
  Allocation result;

  std::vector<UserId> order(instance.num_users());
  std::iota(order.begin(), order.end(), UserId{0});
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    const double ca = instance.users[static_cast<std::size_t>(a)].cost;
    const double cb = instance.users[static_cast<std::size_t>(b)].cost;
    if (ca != cb) {
      return ca < cb;
    }
    return a < b;
  });

  std::vector<bool> covered(instance.num_tasks(), false);
  std::size_t uncovered = instance.num_tasks();
  for (UserId user : order) {
    if (uncovered == 0) {
      break;
    }
    const auto& bid = instance.users[static_cast<std::size_t>(user)];
    bool helps = false;
    for (TaskIndex task : bid.tasks) {
      if (!covered[static_cast<std::size_t>(task)]) {
        helps = true;
        break;
      }
    }
    if (!helps) {
      continue;
    }
    result.winners.push_back(user);
    for (TaskIndex task : bid.tasks) {
      if (!covered[static_cast<std::size_t>(task)]) {
        covered[static_cast<std::size_t>(task)] = true;
        --uncovered;
      }
    }
  }

  if (uncovered > 0) {
    return Allocation{};  // some task is in nobody's task set
  }
  result.feasible = true;  // feasible under the inflated declared PoS of 1
  std::sort(result.winners.begin(), result.winners.end());
  result.total_cost = instance.cost_of(result.winners);
  return result;
}

}  // namespace mcs::auction::multi_task
