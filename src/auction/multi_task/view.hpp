// Flat, cache-friendly view of a MultiTaskInstance plus lightweight overlays
// — the data layer of the lazy-greedy hot path.
//
// MultiTaskView stores the instance in CSR form (ligra-style): one
// contiguous task-index array, one parallel contribution array (q = -ln(1-p)
// precomputed once), and per-user offsets into both, next to flat cost and
// requirement arrays. contribution_from_pos is deterministic, so every
// number a greedy run reads from the view is bit-identical to what the
// nested-layout run computes on the fly.
//
// ViewOverlay answers the reward scheme's two probe shapes — "without user
// i" and "user i declares total contribution x" — without the O(n·t)
// instance copy (and its ~2n vector allocations) that without_user /
// with_declared_total_contribution pay per probe. An overlay is O(1) to
// build for exclusion and O(|S_i|) for an override, and a greedy run reads
// through it with two branchless id compares. The override replicates the
// copied path's q → PoS → q round trip exactly, so masked re-solves stay
// bit-identical to re-solves on a materialized copy (asserted by
// tests/mt_lazy_equivalence_test.cpp).
#pragma once

#include <span>
#include <vector>

#include "auction/instance.hpp"
#include "common/aligned.hpp"

namespace mcs::auction::multi_task {

/// Sentinel for "no user" in overlay slots.
inline constexpr UserId kNoUser = -1;

struct MultiTaskView {
  /// offsets[i]..offsets[i+1] delimit user i's slice of tasks/contributions.
  std::vector<std::size_t> offsets;
  std::vector<TaskIndex> tasks;  ///< concatenated task sets, ascending per user
  /// The double columns live in 64-byte-aligned storage (common/aligned.hpp)
  /// so the gain loops stream cache-line-aligned 8-byte lanes; alignment
  /// never changes a value, so the bit-identity contracts are untouched.
  common::aligned_vector<double> contributions;      ///< q_i^j aligned with `tasks`
  common::aligned_vector<double> costs;              ///< c_i per user
  common::aligned_vector<double> requirements;       ///< Q_j per task (contribution domain)
  /// Each user's effective contribution against the untouched requirements —
  /// the first-round ratio numerators, precomputed so a masked probe's heap
  /// build is O(n) instead of O(n·t).
  common::aligned_vector<double> initial_effective;

  std::size_t num_users() const { return costs.size(); }
  std::size_t num_tasks() const { return requirements.size(); }

  /// Whole-column spans — the SoA surface the mechanisms and benches read.
  std::span<const double> cost_span() const { return {costs.data(), costs.size()}; }
  std::span<const double> contribution_span() const {
    return {contributions.data(), contributions.size()};
  }
  std::span<const double> requirement_span() const {
    return {requirements.data(), requirements.size()};
  }

  std::span<const TaskIndex> user_tasks(UserId user) const {
    const auto i = static_cast<std::size_t>(user);
    return {tasks.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }
  std::span<const double> user_contributions(UserId user) const {
    const auto i = static_cast<std::size_t>(user);
    return {contributions.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }

  /// Σ_j q_i^j in the same summation order as
  /// MultiTaskUserBid::total_contribution.
  double total_contribution(UserId user) const;
  /// Σ c_i over a user set, same order as MultiTaskInstance::cost_of.
  double cost_of(const std::vector<UserId>& users) const;

  /// Builds the view, validating the instance once (the per-probe
  /// solve_greedy calls on the view skip re-validation).
  static MultiTaskView from_instance(const MultiTaskInstance& instance);
};

/// A masked / overridden reading of a MultiTaskView. At most one user is
/// excluded and at most one user's contribution vector is replaced; that is
/// all the critical-bid probes ever need.
struct ViewOverlay {
  UserId excluded_user = kNoUser;
  UserId overridden_user = kNoUser;
  /// Replacement contributions for overridden_user, aligned with her CSR
  /// slice; empty unless overridden_user is set.
  std::vector<double> overridden_contributions;

  bool excludes(UserId user) const { return user == excluded_user; }

  /// The user's contribution array under this overlay.
  std::span<const double> contributions_of(const MultiTaskView& view, UserId user) const {
    if (user == overridden_user) {
      return overridden_contributions;
    }
    return view.user_contributions(user);
  }

  static ViewOverlay none() { return {}; }
  static ViewOverlay without(UserId user);
  /// Mirrors MultiTaskInstance::with_declared_total_contribution bit for bit,
  /// including the contribution → PoS → contribution round trip the copied
  /// path performs (scaling happens in contribution space, storage in PoS
  /// space) and its uniform-share branch for zero-contribution users.
  static ViewOverlay with_declared_total_contribution(const MultiTaskView& view, UserId user,
                                                      double declared_total_q);
};

}  // namespace mcs::auction::multi_task
