// MT-VCG — the paper's VCG-like multi-task baseline (Section IV-E). Under a
// plain VCG payment strategic users inflate every declared PoS to 1, so the
// platform believes one user per task suffices and recruits the cheapest
// users that touch every task. The achieved PoS (computed with true PoS)
// falls short of the requirements — the multi-task half of Fig 7.
#pragma once

#include "auction/instance.hpp"

namespace mcs::auction::multi_task {

/// Strategic outcome of MT-VCG: scans users by ascending cost and recruits a
/// user iff she covers a still-uncovered task, until every task has at least
/// one recruit (infeasible when some task is in no task set). The instance's
/// stored PoS values are treated as the true PoS and are ignored by the
/// selection itself.
Allocation solve_mt_vcg(const MultiTaskInstance& instance);

}  // namespace mcs::auction::multi_task
