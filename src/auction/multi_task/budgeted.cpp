#include "auction/multi_task/budgeted.hpp"

#include <algorithm>

#include "auction/multi_task/gain.hpp"
#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::multi_task {

namespace {

/// Σ_j min{q_i^j, Q̄_j} against the current residual caps — the shared gain
/// function of gain.hpp under this file's historical name.
double marginal_gain(const MultiTaskUserBid& bid, const std::vector<double>& residual) {
  return effective_contribution(bid, residual);
}

}  // namespace

BudgetedCoverage max_coverage_for_budget(const MultiTaskInstance& instance, double budget) {
  instance.validate();
  MCS_EXPECTS(budget > 0.0, "budget must be positive");
  const auto requirements = instance.requirement_contributions();

  // Cost-benefit greedy under the budget.
  std::vector<double> residual = requirements;
  std::vector<bool> selected(instance.num_users(), false);
  std::vector<UserId> greedy_set;
  double greedy_cost = 0.0;
  double greedy_value = 0.0;
  while (true) {
    UserId best = -1;
    double best_ratio = 0.0;
    double best_gain = 0.0;
    for (std::size_t i = 0; i < instance.num_users(); ++i) {
      if (selected[i] || greedy_cost + instance.users[i].cost > budget) {
        continue;
      }
      const double gain = marginal_gain(instance.users[i], residual);
      if (gain <= 0.0) {
        continue;
      }
      const double ratio = gain / instance.users[i].cost;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_gain = gain;
        best = static_cast<UserId>(i);
      }
    }
    if (best < 0) {
      break;
    }
    selected[static_cast<std::size_t>(best)] = true;
    greedy_set.push_back(best);
    greedy_cost += instance.users[static_cast<std::size_t>(best)].cost;
    greedy_value += best_gain;
    const auto& bid = instance.users[static_cast<std::size_t>(best)];
    for (std::size_t k = 0; k < bid.tasks.size(); ++k) {
      const auto task = static_cast<std::size_t>(bid.tasks[k]);
      residual[task] =
          std::max(0.0, residual[task] - common::contribution_from_pos(bid.pos[k]));
    }
  }

  // The best single affordable user (the KMN safeguard against a greedy run
  // that burns the budget on cheap low-value picks).
  UserId best_single = -1;
  double best_single_value = 0.0;
  for (std::size_t i = 0; i < instance.num_users(); ++i) {
    if (instance.users[i].cost > budget) {
      continue;
    }
    const double value = marginal_gain(instance.users[i], requirements);
    if (value > best_single_value) {
      best_single_value = value;
      best_single = static_cast<UserId>(i);
    }
  }

  BudgetedCoverage result;
  result.allocation.feasible = true;  // the empty selection is always valid
  if (best_single >= 0 && best_single_value > greedy_value) {
    result.allocation.winners = {best_single};
    result.covered_contribution = best_single_value;
  } else {
    result.allocation.winners = std::move(greedy_set);
    result.covered_contribution = greedy_value;
  }
  std::sort(result.allocation.winners.begin(), result.allocation.winners.end());
  result.allocation.total_cost = instance.cost_of(result.allocation.winners);
  MCS_ENSURES(result.allocation.total_cost <= budget + 1e-9,
              "budgeted selection exceeded the budget");
  result.achieved_pos.reserve(instance.num_tasks());
  for (std::size_t j = 0; j < instance.num_tasks(); ++j) {
    result.achieved_pos.push_back(
        instance.achieved_pos(result.allocation.winners, static_cast<TaskIndex>(j)));
  }
  return result;
}

}  // namespace mcs::auction::multi_task
