#include "auction/multi_task/mechanism.hpp"

#include "auction/multi_task/greedy.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "obs/telemetry.hpp"

namespace mcs::auction::multi_task {

MechanismOutcome run_mechanism(const MultiTaskInstance& instance,
                               const auction::MechanismConfig& config) {
  MCS_EXPECTS(config.alpha > 0.0, "reward scaling factor must be positive");

  const bool telemetry = obs::enabled();
  const auto deadline = common::Deadline::from_budget(config.time_budget_seconds);
  MechanismOutcome outcome;
  outcome.telemetry.enabled = telemetry;
  const obs::PhaseTimer wd_timer(telemetry);
  // One CSR build serves winner determination AND every critical-bid probe
  // of every winner — the probes below only layer overlays on top of it.
  const auto view = MultiTaskView::from_instance(instance);
  const auto greedy = solve_greedy(
      view, ViewOverlay::none(),
      GreedyOptions{.deadline = deadline,
                    .keep_partial = config.multi_task.partial_coverage,
                    .algorithm = config.multi_task.winner_determination,
                    .counters = telemetry ? &outcome.telemetry.winner_determination : nullptr});
  if (telemetry) {
    outcome.telemetry.winner_determination_seconds = wd_timer.seconds();
  }
  outcome.allocation = greedy.allocation;
  if (!outcome.allocation.feasible) {
    // Partial coverage (when enabled): report what WAS covered — the winner
    // prefix and the uncovered task set — but pay no rewards; a partial
    // cover has no critical bids, so any payment rule would be gameable.
    outcome.uncovered_tasks = greedy.uncovered_tasks;
    outcome.degraded = !outcome.allocation.winners.empty() || greedy.timed_out;
    if (telemetry && outcome.degraded) {
      outcome.telemetry.degraded_events = 1;
    }
    return outcome;
  }
  const RewardOptions reward_options{.alpha = config.alpha,
                                     .rule = config.multi_task.critical_bid_rule,
                                     .deadline = deadline,
                                     .algorithm = config.multi_task.winner_determination,
                                     .masked_resolves = config.multi_task.masked_rewards};
  // Per-winner critical bids are independent; fan them out across the shared
  // pool (parallel_map assembles results in submission order, bit-identical
  // to the serial loop). Each probe polls the same deadline token.
  const auto& winners = outcome.allocation.winners;
  const obs::PhaseTimer reward_timer(telemetry);
  if (telemetry) {
    // One counter block per winner, merged in index order afterwards, so the
    // totals are deterministic regardless of how parallel_map schedules.
    std::vector<obs::PhaseCounters> per_winner(winners.size());
    outcome.rewards = common::parallel_map<WinnerReward>(
        winners.size(),
        [&](std::size_t index) {
          RewardOptions slot_options = reward_options;
          slot_options.counters = &per_winner[index];
          return config.multi_task.masked_rewards
                     ? compute_reward(view, winners[index], slot_options)
                     : compute_reward(instance, winners[index], slot_options);
        },
        config.reward_worker_budget());
    for (const obs::PhaseCounters& block : per_winner) {
      outcome.telemetry.rewards += block;
    }
    outcome.telemetry.rewards_seconds = reward_timer.seconds();
  } else if (config.multi_task.masked_rewards) {
    outcome.rewards = common::parallel_map<WinnerReward>(
        winners.size(),
        [&](std::size_t index) { return compute_reward(view, winners[index], reward_options); },
        config.reward_worker_budget());
  } else {
    outcome.rewards = common::parallel_map<WinnerReward>(
        winners.size(),
        [&](std::size_t index) {
          return compute_reward(instance, winners[index], reward_options);
        },
        config.reward_worker_budget());
  }
  return outcome;
}

}  // namespace mcs::auction::multi_task
