#include "auction/multi_task/mechanism.hpp"

#include "auction/multi_task/greedy.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"

namespace mcs::auction::multi_task {

MechanismOutcome run_mechanism(const MultiTaskInstance& instance,
                               const auction::MechanismConfig& config) {
  MCS_EXPECTS(config.alpha > 0.0, "reward scaling factor must be positive");

  MechanismOutcome outcome;
  outcome.allocation = solve_greedy(instance).allocation;
  if (!outcome.allocation.feasible) {
    return outcome;
  }
  const RewardOptions reward_options{.alpha = config.alpha,
                                     .rule = config.multi_task.critical_bid_rule};
  const auto& winners = outcome.allocation.winners;
  outcome.rewards = common::parallel_map<WinnerReward>(
      winners.size(),
      [&](std::size_t index) { return compute_reward(instance, winners[index], reward_options); },
      config.reward_worker_budget());
  return outcome;
}

}  // namespace mcs::auction::multi_task
