// Algorithm 5 of the paper: the reward scheme of the multi-task single-minded
// mechanism. For a winner i, the allocation algorithm is re-run without her;
// in each iteration (residuals Q̄, selected user k) the contribution i would
// have needed to beat k's ratio is (c_i / c_k)·Σ_j min{Q̄_j, q_k^j}. The
// minimum over all iterations is her critical contribution q̄_i, the critical
// PoS is p̄_i = 1 - e^{-q̄_i}, and the execution-contingent reward pays
//     any task completed: (1 - p̄_i)·α + c_i,   none completed: -p̄_i·α + c_i,
// giving expected utility (e^{-q̄_i} - e^{-Σ_j q_i^j})·α (Theorem 4).
//
// REPRODUCTION FINDING (see DESIGN.md §4 and tests/mt_reward_test.cpp): the
// paper's iteration-minimum UNDERSTATES the true win threshold — the
// without-i run keeps iterating past the point where the with-i run would
// have stopped, and those extra iterations have lower ratio bars. A loser
// whose total contribution exceeds that understated q̄ profits from inflating
// her declaration, breaking incentive compatibility. We therefore default to
// the Myerson-style rule: binary search (valid by Lemma 2's monotonicity)
// for the minimum total declared contribution with which the user actually
// wins, exactly as the single-task mechanism does. The paper-literal rule
// stays available for comparison.
//
// When the without-i run stalls (i is pivotal for feasibility) she would be
// selected eventually at any positive declaration, so her critical
// contribution is 0 under both rules.
//
// Probe cost: naively every rule re-runs the greedy cover dozens of times
// per winner. The default path instead solves ONE recorded without-i run
// per winner against the shared MultiTaskView (exclusion overlay, no O(n·t)
// instance copy) and answers each bisection probe by REPLAYING that log:
// the with-i run tracks the without-i run round for round until i first
// tops the argmax, so "does i win at declaration q" reduces to comparing
// i's ratio against each recorded round's winner at that round's residuals
// — O(rounds · |S_i|) per probe, bit-identical to a full re-solve (see
// DESIGN.md §8). RewardOptions::masked_resolves = false restores the legacy
// copied-instance full-re-solve probes, kept bit-identical as the
// equivalence oracle (asserted by tests/mt_lazy_equivalence_test.cpp).
#pragma once

#include "auction/instance.hpp"
#include "auction/multi_task/view.hpp"
#include "common/deadline.hpp"
#include "obs/telemetry.hpp"

namespace mcs::auction::multi_task {

/// The rule enum lives in auction/types.hpp so the unified MechanismConfig
/// can carry it; this alias keeps the historical qualified name working.
using CriticalBidRule = auction::CriticalBidRule;

struct RewardOptions {
  double alpha = 10.0;  ///< reward scaling factor α (paper Table II)
  CriticalBidRule rule = CriticalBidRule::kBinarySearch;
  int binary_search_iterations = 48;  ///< ~1e-14 relative precision on q̄
  /// Cooperative wall-clock budget; polled once per bisection step and
  /// threaded into the greedy re-runs.
  common::Deadline deadline = {};
  /// Winner-determination algorithm used by the greedy probe re-runs.
  auction::GreedyAlgorithm algorithm = auction::GreedyAlgorithm::kLazy;
  /// Solve the probes through view overlays instead of materialized
  /// instance copies (instance-based entry points only; the view-based
  /// overloads are always masked). Both paths are bit-identical.
  bool masked_resolves = true;
  /// When non-null, accumulates probe / bisection / deadline-poll counts
  /// (and the probe solves' greedy rounds). The caller owns the block; under
  /// parallel rewards each worker slot must get its own (the mechanism
  /// facade merges them in index order).
  obs::PhaseCounters* counters = nullptr;
};

/// Critical contribution q̄_i of `winner` under the selected rule. For
/// kBinarySearch the caller must pass an actual winner (the search brackets
/// her truthful declaration); kPaperIterationMin accepts any user. The
/// instance must be valid.
double critical_contribution(const MultiTaskInstance& instance, UserId winner,
                             const RewardOptions& options = {});

/// Same, against a prebuilt view — the amortized path the mechanism uses so
/// n winners share one CSR build instead of paying n·probes instance copies.
double critical_contribution(const MultiTaskView& view, UserId winner,
                             const RewardOptions& options = {});

/// Full reward for one winner.
WinnerReward compute_reward(const MultiTaskInstance& instance, UserId winner,
                            const RewardOptions& options);
WinnerReward compute_reward(const MultiTaskView& view, UserId winner,
                            const RewardOptions& options);

}  // namespace mcs::auction::multi_task
