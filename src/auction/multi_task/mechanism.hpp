// Facade of the complete multi-task single-minded mechanism M = (A, R):
// greedy winner determination (Algorithm 4) plus the per-iteration
// critical-bid execution-contingent reward scheme (Algorithm 5). A winner is
// paid reward.on_success() when she completes ANY task from her set and
// reward.on_failure() when she completes none (the single-minded EC rule of
// Section III-C).
#pragma once

#include "auction/multi_task/reward.hpp"

namespace mcs::auction::multi_task {

/// Runs the full strategy-proof multi-task mechanism. Reads config.alpha,
/// config.multi_task.*, and the reward-parallelism fields. For infeasible
/// instances the allocation is infeasible and no rewards are issued.
MechanismOutcome run_mechanism(const MultiTaskInstance& instance,
                               const auction::MechanismConfig& config = {});

}  // namespace mcs::auction::multi_task
