// Facade of the complete multi-task single-minded mechanism M = (A, R):
// greedy winner determination (Algorithm 4) plus the per-iteration
// critical-bid execution-contingent reward scheme (Algorithm 5). A winner is
// paid reward.on_success() when she completes ANY task from her set and
// reward.on_failure() when she completes none (the single-minded EC rule of
// Section III-C).
#pragma once

#include "auction/multi_task/reward.hpp"

namespace mcs::auction::multi_task {

struct MechanismConfig {
  double alpha = 10.0;  ///< reward scaling factor (paper Table II)
  /// Critical-bid rule; kBinarySearch is strategy-proof, kPaperIterationMin
  /// reproduces the paper's Algorithm 5 literally (see reward.hpp).
  CriticalBidRule critical_bid_rule = CriticalBidRule::kBinarySearch;
  /// Compute the winners' critical bids on multiple threads (bit-identical
  /// to the serial path; each bid is independent).
  bool parallel_rewards = true;
};

/// Runs the full strategy-proof multi-task mechanism. For infeasible
/// instances the allocation is infeasible and no rewards are issued.
MechanismOutcome run_mechanism(const MultiTaskInstance& instance,
                               const MechanismConfig& config = {});

}  // namespace mcs::auction::multi_task
