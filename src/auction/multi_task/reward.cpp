#include "auction/multi_task/reward.hpp"

#include <algorithm>
#include <limits>

#include "auction/multi_task/gain.hpp"
#include "auction/multi_task/greedy.hpp"
#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::multi_task {

namespace {

GreedyOptions probe_options(const RewardOptions& options) {
  if (options.counters != nullptr) {
    // Every probe_options() consumer is about to issue one greedy re-run.
    ++options.counters->probes;
  }
  return GreedyOptions{.deadline = options.deadline, .algorithm = options.algorithm,
                       .counters = options.counters};
}

/// A recorded-run replay is a probe too — counted at the call sites because
/// replay_wins itself stays allocation- and options-free.
void count_replay_probe(const RewardOptions& options) {
  if (options.counters != nullptr) {
    ++options.counters->probes;
  }
}

// ---------------------------------------------------------------------------
// Masked probes: one shared CSR view, per-probe overlays, zero copies.
// ---------------------------------------------------------------------------

/// Whether user i would enter the greedy cover when declaring
/// `declared_total`, answered by REPLAYING the recorded without-i run
/// instead of re-solving. The with-i greedy run picks exactly the without-i
/// run's users (same residual trajectory) until the first round where i tops
/// the argmax, so i wins iff some recorded round's winner is beaten by i's
/// ratio at that round's residuals — strict ratio comparison, lowest-id
/// tie-break, the reference scan's rule verbatim. All doubles involved are
/// the ones a full re-solve would compute, so the answer is bit-identical;
/// the cost is O(rounds · |S_i|) per probe instead of a full re-solve.
/// Precondition: `without` is a feasible run recorded with
/// GreedyOptions::record_residuals (i's pivotality was already ruled out) —
/// feasibility with i present at any declaration follows, since the other
/// users alone cover the requirements.
bool replay_wins(const MultiTaskView& view, const GreedyResult& without, UserId user,
                 double declared_total) {
  const auto overlay = ViewOverlay::with_declared_total_contribution(view, user, declared_total);
  const auto tasks = view.user_tasks(user);
  const auto contributions = overlay.contributions_of(view, user);
  const double cost = view.costs[static_cast<std::size_t>(user)];
  for (const auto& step : without.steps) {
    const double effective = effective_contribution(tasks, contributions, step.residual_before);
    if (effective <= 0.0) {
      // Residuals only shrink along the run, so a vanished gain never
      // recovers: i can no longer be selected in any later round.
      break;
    }
    const double ratio = effective / cost;
    if (ratio > step.ratio || (ratio == step.ratio && user < step.selected)) {
      return true;
    }
  }
  return false;
}

/// The paper's Algorithm 5: minimum over the without-i iterations of the
/// contribution needed to beat that iteration's winner ratio.
double iteration_min_critical(const MultiTaskView& view, UserId winner,
                              const RewardOptions& options) {
  const double cost_i = view.costs[static_cast<std::size_t>(winner)];
  const auto without = solve_greedy(view, ViewOverlay::without(winner), probe_options(options));
  if (!without.allocation.feasible) {
    // Winner is pivotal: with any positive declaration the greedy loop must
    // eventually select her, so her critical contribution vanishes.
    return 0.0;
  }
  // Masked runs keep original ids, so no reduced-id translation is needed.
  double critical = std::numeric_limits<double>::infinity();
  for (const auto& step : without.steps) {
    const double cost_k = view.costs[static_cast<std::size_t>(step.selected)];
    // Σ_j min{Q̄_j, q_k^j} is recorded as the step's effective contribution;
    // beating user k's ratio requires contribution >= c_i/c_k times it.
    critical = std::min(critical, (cost_i / cost_k) * step.effective_contribution);
  }
  MCS_ENSURES(critical < std::numeric_limits<double>::infinity(),
              "a feasible without-i run must have at least one iteration");
  return critical;
}

/// Myerson-style rule: binary search for the smallest total declared
/// contribution (along the winner's own task-PoS direction) that still wins.
double binary_search_critical(const MultiTaskView& view, UserId winner,
                              const RewardOptions& options) {
  // ONE recorded without-i solve powers every bisection probe below via
  // replay_wins — the reward phase's dominant cost drops from ~50 full
  // re-solves per winner to a single one.
  auto without_options = probe_options(options);
  without_options.record_residuals = true;
  const auto without = solve_greedy(view, ViewOverlay::without(winner), without_options);
  if (!without.allocation.feasible) {
    return 0.0;  // pivotal, as above
  }
  const double declared = view.total_contribution(winner);
  count_replay_probe(options);
  MCS_EXPECTS(replay_wins(view, without, winner, declared),
              "the binary-search critical bid is only defined for winners");
  count_replay_probe(options);
  if (replay_wins(view, without, winner, 0.0)) {
    return 0.0;
  }
  // Monotonicity (Lemma 2): wins(q) is a step function. Invariant: loses at
  // lo, wins at hi.
  double lo = 0.0;
  double hi = declared;
  for (int iter = 0; iter < options.binary_search_iterations; ++iter) {
    options.deadline.check("multi-task critical-bid search");
    if (options.counters != nullptr) {
      ++options.counters->deadline_polls;
      ++options.counters->bisection_steps;
    }
    const double mid = 0.5 * (lo + hi);
    count_replay_probe(options);
    if (replay_wins(view, without, winner, mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

// ---------------------------------------------------------------------------
// Legacy copied-instance probes (masked_resolves = false): one O(n·t)
// MultiTaskInstance materialization per probe. Kept as the bit-identical
// oracle for the equivalence suite and as the benchmark baseline.
// ---------------------------------------------------------------------------

bool wins_with_total_contribution_copied(const MultiTaskInstance& instance, UserId user,
                                         double declared_total, const RewardOptions& options) {
  const auto result = solve_greedy(instance.with_declared_total_contribution(user, declared_total),
                                   probe_options(options));
  return result.allocation.feasible && result.allocation.contains(user);
}

double iteration_min_critical_copied(const MultiTaskInstance& instance, UserId winner,
                                     const RewardOptions& options) {
  const double cost_i = instance.users[static_cast<std::size_t>(winner)].cost;
  const auto without = solve_greedy(instance.without_user(winner), probe_options(options));
  if (!without.allocation.feasible) {
    return 0.0;
  }
  // Ids in the reduced instance at or above `winner` are shifted down by one.
  const auto original_id = [&](UserId reduced) {
    return reduced >= winner ? reduced + 1 : reduced;
  };
  double critical = std::numeric_limits<double>::infinity();
  for (const auto& step : without.steps) {
    const UserId k = original_id(step.selected);
    const double cost_k = instance.users[static_cast<std::size_t>(k)].cost;
    critical = std::min(critical, (cost_i / cost_k) * step.effective_contribution);
  }
  MCS_ENSURES(critical < std::numeric_limits<double>::infinity(),
              "a feasible without-i run must have at least one iteration");
  return critical;
}

double binary_search_critical_copied(const MultiTaskInstance& instance, UserId winner,
                                     const RewardOptions& options) {
  if (!solve_greedy(instance.without_user(winner), probe_options(options))
           .allocation.feasible) {
    return 0.0;
  }
  const double declared = instance.users[static_cast<std::size_t>(winner)].total_contribution();
  MCS_EXPECTS(wins_with_total_contribution_copied(instance, winner, declared, options),
              "the binary-search critical bid is only defined for winners");
  if (wins_with_total_contribution_copied(instance, winner, 0.0, options)) {
    return 0.0;
  }
  double lo = 0.0;
  double hi = declared;
  for (int iter = 0; iter < options.binary_search_iterations; ++iter) {
    options.deadline.check("multi-task critical-bid search");
    if (options.counters != nullptr) {
      ++options.counters->deadline_polls;
      ++options.counters->bisection_steps;
    }
    const double mid = 0.5 * (lo + hi);
    if (wins_with_total_contribution_copied(instance, winner, mid, options)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

void check_reward_inputs(std::size_t num_users, UserId winner, const RewardOptions& options) {
  MCS_EXPECTS(winner >= 0 && static_cast<std::size_t>(winner) < num_users,
              "user id out of range");
  MCS_EXPECTS(options.binary_search_iterations > 0, "need at least one bisection step");
}

WinnerReward assemble_reward(UserId winner, double cost, double critical,
                             const RewardOptions& options) {
  WinnerReward result;
  result.user = winner;
  result.critical_contribution = critical;
  result.reward.critical_pos = common::pos_from_contribution(critical);
  result.reward.cost = cost;
  result.reward.alpha = options.alpha;
  return result;
}

}  // namespace

double critical_contribution(const MultiTaskInstance& instance, UserId winner,
                             const RewardOptions& options) {
  check_reward_inputs(instance.num_users(), winner, options);
  if (options.masked_resolves) {
    return critical_contribution(MultiTaskView::from_instance(instance), winner, options);
  }
  switch (options.rule) {
    case CriticalBidRule::kPaperIterationMin:
      return iteration_min_critical_copied(instance, winner, options);
    case CriticalBidRule::kBinarySearch:
      return binary_search_critical_copied(instance, winner, options);
  }
  throw common::PreconditionError("unknown critical-bid rule");
}

double critical_contribution(const MultiTaskView& view, UserId winner,
                             const RewardOptions& options) {
  check_reward_inputs(view.num_users(), winner, options);
  switch (options.rule) {
    case CriticalBidRule::kPaperIterationMin:
      return iteration_min_critical(view, winner, options);
    case CriticalBidRule::kBinarySearch:
      return binary_search_critical(view, winner, options);
  }
  throw common::PreconditionError("unknown critical-bid rule");
}

WinnerReward compute_reward(const MultiTaskInstance& instance, UserId winner,
                            const RewardOptions& options) {
  MCS_EXPECTS(options.alpha > 0.0, "reward scaling factor must be positive");
  const double critical = critical_contribution(instance, winner, options);
  return assemble_reward(winner, instance.users[static_cast<std::size_t>(winner)].cost, critical,
                         options);
}

WinnerReward compute_reward(const MultiTaskView& view, UserId winner,
                            const RewardOptions& options) {
  MCS_EXPECTS(options.alpha > 0.0, "reward scaling factor must be positive");
  const double critical = critical_contribution(view, winner, options);
  return assemble_reward(winner, view.costs[static_cast<std::size_t>(winner)], critical, options);
}

}  // namespace mcs::auction::multi_task
