#include "auction/multi_task/reward.hpp"

#include <algorithm>
#include <limits>

#include "auction/multi_task/greedy.hpp"
#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::multi_task {

namespace {

bool wins_with_total_contribution(const MultiTaskInstance& instance, UserId user,
                                  double declared_total, const common::Deadline& deadline) {
  const auto result = solve_greedy(instance.with_declared_total_contribution(user, declared_total),
                                   GreedyOptions{.deadline = deadline});
  return result.allocation.feasible && result.allocation.contains(user);
}

/// The paper's Algorithm 5: minimum over the without-i iterations of the
/// contribution needed to beat that iteration's winner ratio.
double iteration_min_critical(const MultiTaskInstance& instance, UserId winner,
                              const common::Deadline& deadline) {
  const double cost_i = instance.users[static_cast<std::size_t>(winner)].cost;
  const auto without =
      solve_greedy(instance.without_user(winner), GreedyOptions{.deadline = deadline});
  if (!without.allocation.feasible) {
    // Winner is pivotal: with any positive declaration the greedy loop must
    // eventually select her, so her critical contribution vanishes.
    return 0.0;
  }
  // Ids in the reduced instance at or above `winner` are shifted down by one.
  const auto original_id = [&](UserId reduced) {
    return reduced >= winner ? reduced + 1 : reduced;
  };
  double critical = std::numeric_limits<double>::infinity();
  for (const auto& step : without.steps) {
    const UserId k = original_id(step.selected);
    const double cost_k = instance.users[static_cast<std::size_t>(k)].cost;
    // Σ_j min{Q̄_j, q_k^j} is recorded as the step's effective contribution;
    // beating user k's ratio requires contribution >= c_i/c_k times it.
    critical = std::min(critical, (cost_i / cost_k) * step.effective_contribution);
  }
  MCS_ENSURES(critical < std::numeric_limits<double>::infinity(),
              "a feasible without-i run must have at least one iteration");
  return critical;
}

/// Myerson-style rule: binary search for the smallest total declared
/// contribution (along the winner's own task-PoS direction) that still wins.
double binary_search_critical(const MultiTaskInstance& instance, UserId winner, int iterations,
                              const common::Deadline& deadline) {
  if (!solve_greedy(instance.without_user(winner), GreedyOptions{.deadline = deadline})
           .allocation.feasible) {
    return 0.0;  // pivotal, as above
  }
  const double declared = instance.users[static_cast<std::size_t>(winner)].total_contribution();
  MCS_EXPECTS(wins_with_total_contribution(instance, winner, declared, deadline),
              "the binary-search critical bid is only defined for winners");
  if (wins_with_total_contribution(instance, winner, 0.0, deadline)) {
    return 0.0;
  }
  // Monotonicity (Lemma 2): wins(q) is a step function. Invariant: loses at
  // lo, wins at hi.
  double lo = 0.0;
  double hi = declared;
  for (int iter = 0; iter < iterations; ++iter) {
    deadline.check("multi-task critical-bid search");
    const double mid = 0.5 * (lo + hi);
    if (wins_with_total_contribution(instance, winner, mid, deadline)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace

double critical_contribution(const MultiTaskInstance& instance, UserId winner,
                             const RewardOptions& options) {
  MCS_EXPECTS(winner >= 0 && static_cast<std::size_t>(winner) < instance.num_users(),
              "user id out of range");
  MCS_EXPECTS(options.binary_search_iterations > 0, "need at least one bisection step");
  switch (options.rule) {
    case CriticalBidRule::kPaperIterationMin:
      return iteration_min_critical(instance, winner, options.deadline);
    case CriticalBidRule::kBinarySearch:
      return binary_search_critical(instance, winner, options.binary_search_iterations,
                                    options.deadline);
  }
  throw common::PreconditionError("unknown critical-bid rule");
}

WinnerReward compute_reward(const MultiTaskInstance& instance, UserId winner,
                            const RewardOptions& options) {
  MCS_EXPECTS(options.alpha > 0.0, "reward scaling factor must be positive");
  WinnerReward result;
  result.user = winner;
  result.critical_contribution = critical_contribution(instance, winner, options);
  result.reward.critical_pos = common::pos_from_contribution(result.critical_contribution);
  result.reward.cost = instance.users[static_cast<std::size_t>(winner)].cost;
  result.reward.alpha = options.alpha;
  return result;
}

}  // namespace mcs::auction::multi_task
