// The single source of truth for the multi-task gain function: the
// residual-capped marginal contribution Σ_j min{q_i^j, Q̄_j} that both the
// cover greedy (Algorithm 4, greedy.cpp) and the budgeted-maximization
// greedy (budgeted.cpp) rank users by. Keeping one definition matters
// because the lazy-greedy heap relies on this exact function being
// monotone non-increasing in the residuals (submodularity): any drift
// between copies would silently break the staleness argument.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "auction/instance.hpp"
#include "common/math.hpp"

namespace mcs::auction::multi_task {

/// Residuals below this absolute floor count as satisfied; guards against a
/// requirement lingering at ~1e-16 after exact-looking subtractions.
inline constexpr double kResidualFloor = 1e-12;

/// Σ_j min{q_j, Q̄_j} over parallel (task, contribution) arrays — the CSR
/// slice of one user — skipping tasks whose residual is already satisfied.
/// Residuals arrive as a span so plain and aligned columns both fit.
inline double effective_contribution(std::span<const TaskIndex> tasks,
                                     std::span<const double> contributions,
                                     std::span<const double> residual) {
  double total = 0.0;
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    const auto task = static_cast<std::size_t>(tasks[k]);
    if (residual[task] <= kResidualFloor) {
      continue;
    }
    total += std::min(contributions[k], residual[task]);
  }
  return total;
}

/// Same gain against a bid in the nested (array-of-structs) layout,
/// converting PoS to contributions on the fly. contribution_from_pos is
/// deterministic, so this is bit-identical to the span overload fed
/// precomputed contributions.
inline double effective_contribution(const MultiTaskUserBid& bid,
                                     std::span<const double> residual) {
  double total = 0.0;
  for (std::size_t k = 0; k < bid.tasks.size(); ++k) {
    const auto task = static_cast<std::size_t>(bid.tasks[k]);
    if (residual[task] <= kResidualFloor) {
      continue;
    }
    total += std::min(common::contribution_from_pos(bid.pos[k]), residual[task]);
  }
  return total;
}

/// True while any requirement is still unmet (above the floor).
inline bool any_residual(std::span<const double> residual) {
  return std::any_of(residual.begin(), residual.end(),
                     [](double r) { return r > kResidualFloor; });
}

}  // namespace mcs::auction::multi_task
