#include "auction/multi_task/exact.hpp"

#include <algorithm>
#include <limits>

#include "auction/multi_task/greedy.hpp"
#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::auction::multi_task {

namespace {

constexpr double kResidualFloor = 1e-12;

struct SearchUser {
  UserId user = 0;
  double cost = 0.0;
  double capped_total = 0.0;                         ///< Σ_j min{q_i^j, Q_j}
  std::vector<std::pair<std::size_t, double>> gives;  ///< (task, q_i^j)
};

class BranchAndBound {
 public:
  BranchAndBound(std::vector<SearchUser> users, std::vector<double> requirements,
                 std::size_t node_budget)
      : users_(std::move(users)),
        requirements_(std::move(requirements)),
        node_budget_(node_budget) {
    build_suffix_tables();
  }

  void seed_incumbent(double cost, std::vector<UserId> winners) {
    best_cost_ = cost;
    best_set_ = std::move(winners);
  }

  void run() {
    std::vector<double> residual = requirements_;
    search(0, 0.0, residual);
  }

  const std::vector<UserId>& best_set() const { return best_set_; }
  bool proven_optimal() const { return nodes_ < node_budget_; }
  std::size_t nodes() const { return nodes_; }

 private:
  void build_suffix_tables() {
    const std::size_t n = users_.size();
    const std::size_t t = requirements_.size();
    // suffix_cover_[k][j]: total contribution users k..n-1 can put on task j.
    // suffix_task_rate_[k][j]: best q_i^j / c_i among users k..n-1.
    // suffix_ratio_[k]: best capped_total / c_i among users k..n-1.
    suffix_cover_.assign(n + 1, std::vector<double>(t, 0.0));
    suffix_task_rate_.assign(n + 1, std::vector<double>(t, 0.0));
    suffix_ratio_.assign(n + 1, 0.0);
    for (std::size_t k = n; k-- > 0;) {
      suffix_cover_[k] = suffix_cover_[k + 1];
      suffix_task_rate_[k] = suffix_task_rate_[k + 1];
      suffix_ratio_[k] = std::max(suffix_ratio_[k + 1], users_[k].capped_total / users_[k].cost);
      for (const auto& [task, q] : users_[k].gives) {
        suffix_cover_[k][task] += q;
        suffix_task_rate_[k][task] = std::max(suffix_task_rate_[k][task], q / users_[k].cost);
      }
    }
  }

  /// Lower bound on the extra cost needed to close `residual` with users
  /// k..n-1; +infinity when some task is no longer coverable.
  double bound(std::size_t k, const std::vector<double>& residual) const {
    double total_residual = 0.0;
    double per_task_bound = 0.0;
    for (std::size_t j = 0; j < residual.size(); ++j) {
      if (residual[j] <= kResidualFloor) {
        continue;
      }
      if (!common::approx_ge(suffix_cover_[k][j], residual[j])) {
        return std::numeric_limits<double>::infinity();
      }
      total_residual += residual[j];
      per_task_bound = std::max(per_task_bound, residual[j] / suffix_task_rate_[k][j]);
    }
    if (total_residual <= 0.0) {
      return 0.0;
    }
    const double ratio_bound = total_residual / suffix_ratio_[k];
    return std::max(ratio_bound, per_task_bound);
  }

  void search(std::size_t index, double cost, std::vector<double>& residual) {
    if (nodes_ >= node_budget_) {
      return;
    }
    ++nodes_;
    const bool satisfied = std::none_of(residual.begin(), residual.end(),
                                        [](double r) { return r > kResidualFloor; });
    if (satisfied) {
      if (cost < best_cost_) {
        best_cost_ = cost;
        best_set_ = current_;
      }
      return;
    }
    if (index >= users_.size()) {
      return;
    }
    const double extra = bound(index, residual);
    if (cost + extra >= best_cost_) {
      return;
    }

    // Include users_[index].
    const auto& user = users_[index];
    std::vector<std::pair<std::size_t, double>> undo;
    undo.reserve(user.gives.size());
    for (const auto& [task, q] : user.gives) {
      undo.emplace_back(task, residual[task]);
      residual[task] = std::max(0.0, residual[task] - q);
    }
    current_.push_back(user.user);
    search(index + 1, cost + user.cost, residual);
    current_.pop_back();
    for (const auto& [task, value] : undo) {
      residual[task] = value;
    }

    // Exclude users_[index].
    search(index + 1, cost, residual);
  }

  std::vector<SearchUser> users_;
  std::vector<double> requirements_;
  std::size_t node_budget_;
  std::vector<std::vector<double>> suffix_cover_;
  std::vector<std::vector<double>> suffix_task_rate_;
  std::vector<double> suffix_ratio_;
  std::size_t nodes_ = 0;
  double best_cost_ = std::numeric_limits<double>::infinity();
  std::vector<UserId> best_set_;
  std::vector<UserId> current_;
};

}  // namespace

ExactResult solve_exact(const MultiTaskInstance& instance, const ExactOptions& options) {
  instance.validate();
  ExactResult result;
  const auto greedy = solve_greedy(instance);
  if (!greedy.allocation.feasible) {
    return result;  // greedy stalls only on infeasible instances
  }

  const auto requirements = instance.requirement_contributions();
  std::vector<SearchUser> users;
  users.reserve(instance.num_users());
  for (std::size_t i = 0; i < instance.num_users(); ++i) {
    const auto& bid = instance.users[i];
    SearchUser entry;
    entry.user = static_cast<UserId>(i);
    entry.cost = bid.cost;
    for (std::size_t k = 0; k < bid.tasks.size(); ++k) {
      const double q = common::contribution_from_pos(bid.pos[k]);
      if (q <= 0.0) {
        continue;
      }
      const auto task = static_cast<std::size_t>(bid.tasks[k]);
      entry.gives.emplace_back(task, q);
      entry.capped_total += std::min(q, requirements[task]);
    }
    if (!entry.gives.empty()) {
      users.push_back(std::move(entry));
    }
  }
  std::sort(users.begin(), users.end(), [](const SearchUser& a, const SearchUser& b) {
    const double da = a.capped_total / a.cost;
    const double db = b.capped_total / b.cost;
    if (da != db) {
      return da > db;
    }
    return a.user < b.user;
  });

  BranchAndBound solver(std::move(users), requirements, options.node_budget);
  solver.seed_incumbent(greedy.allocation.total_cost, greedy.allocation.winners);
  solver.run();

  result.allocation.feasible = true;
  result.allocation.winners = solver.best_set();
  std::sort(result.allocation.winners.begin(), result.allocation.winners.end());
  result.allocation.total_cost = instance.cost_of(result.allocation.winners);
  result.proven_optimal = solver.proven_optimal();
  result.nodes_explored = solver.nodes();
  return result;
}

}  // namespace mcs::auction::multi_task
