// Observability substrate (mcs::obs): always-compiled, near-zero-overhead
// telemetry for the auction platform. The ROADMAP's production framing needs
// the system to report where time goes inside a mechanism, how often the
// FPTAS→Min-Greedy degradation ladder fires, and how saturated the shared
// thread pool is — without perturbing the determinism or the latency of the
// hot paths it measures.
//
// Three layers, cheapest first:
//
//   * A process-wide enable flag (`enabled()`, one relaxed atomic load).
//     Every instrumentation site is gated on it; with telemetry off (the
//     default) the only cost anywhere is that load or a null-pointer test.
//
//   * Per-mechanism records: `MechanismTelemetry` rides on every
//     MechanismOutcome, split into the winner-determination and reward
//     phases. The mechanisms count events (probes, deadline polls, greedy
//     rounds, lazy-heap re-evaluations, bisection steps) into plain
//     `PhaseCounters` blocks — one private block per parallel reward worker,
//     merged in index order afterwards — so the hot loops never touch a
//     shared cache line, let alone a lock, and the merged numbers are
//     deterministic.
//
//   * A process-wide `Registry` of named monotonic counters and gauges for
//     the shared substrate (thread-pool queue depth and utilization, engine
//     batch occupancy and per-slot status tallies), sharded per thread:
//     every thread increments its own relaxed-atomic cells and `snapshot()`
//     merges the shards. No locks on the write path; TSan-clean by
//     construction (the asan-ubsan and tsan presets run the obs suite).
//
// Determinism contract: with telemetry disabled, all mechanism outcomes are
// bit-identical to an uninstrumented build; enabling it may only populate
// the telemetry fields, never change allocations or rewards.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mcs::obs {

/// True when telemetry collection is on (process-wide). One relaxed atomic
/// load — the entire cost of every instrumentation site while disabled.
bool enabled();

/// Flips the process-wide switch. Prefer ScopedTelemetry in tests.
void set_enabled(bool on);

/// RAII enable/disable that restores the previous state.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(bool on);
  ~ScopedTelemetry();
  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  bool previous_;
};

/// Wall-clock span timer. Unarmed instances never read the clock, so a
/// disabled mechanism run costs nothing; armed instances measure from
/// construction to seconds().
class PhaseTimer {
 public:
  explicit PhaseTimer(bool armed);

  /// Elapsed seconds since construction; 0 when unarmed.
  double seconds() const;

 private:
  bool armed_;
  std::chrono::steady_clock::time_point start_{};
};

/// Event counts of one mechanism phase, accumulated in plain (non-atomic)
/// fields: each counting site owns its block exclusively — per call on the
/// winner-determination path, per reward worker slot on the parallel reward
/// path — and blocks are merged with += after the phase completes.
struct PhaseCounters {
  /// Winner-determination re-runs issued by the reward search (full
  /// re-solves, masked overlay solves, or recorded-run replays).
  std::uint64_t probes = 0;
  /// Cooperative deadline polls at the instrumented loop heads (FPTAS
  /// subproblem scan, Min-Greedy cover scan, multi-task greedy cover,
  /// critical-bid bisections). Polls inside the knapsack DP are uncounted.
  std::uint64_t deadline_polls = 0;
  /// Winner-determination rounds: greedy picks (multi-task and Min-Greedy)
  /// or FPTAS subproblem scans.
  std::uint64_t rounds = 0;
  /// Gain re-evaluations inside the multi-task argmax: stale-entry
  /// recomputes for the lazy heap, full candidate scans for the reference
  /// picker — the telemetry view of the CELF speedup.
  std::uint64_t heap_reevaluations = 0;
  /// Critical-bid bisection iterations across all winners of the phase.
  std::uint64_t bisection_steps = 0;
  /// Single-task fast-path probes answered from the per-winner reused DP
  /// frontiers (ProbeStrategy::kDpReuse) without a full re-solve.
  std::uint64_t dp_reuse_hits = 0;
  /// Fast-path probes that fell back to a full winner-determination solve:
  /// the reuse certificate could not rule out a floating-point-reassociation
  /// flip (or an exact cost tie made the membership order-dependent).
  std::uint64_t dp_reuse_fallbacks = 0;

  PhaseCounters& operator+=(const PhaseCounters& other);
};

/// Telemetry record of one mechanism run, attached to MechanismOutcome (and
/// through it to the engine's AuctionOutcome and the campaign's
/// RoundReport). Default-constructed = disabled = all zeros.
struct MechanismTelemetry {
  /// False when telemetry was off for the run: every other field is 0.
  bool enabled = false;
  /// Wall-clock split of the run's two phases.
  double winner_determination_seconds = 0.0;
  double rewards_seconds = 0.0;
  /// Degradation events: 1 when the single-task Min-Greedy ladder produced
  /// the outcome or a multi-task run ended degraded (partial coverage /
  /// timeout), 0 otherwise; sums across rounds when aggregated.
  std::uint64_t degraded_events = 0;
  PhaseCounters winner_determination;
  PhaseCounters rewards;

  /// Field-wise sum (enabled is OR-ed) — campaign aggregation.
  MechanismTelemetry& operator+=(const MechanismTelemetry& other);
};

/// One-line JSON object for a mechanism record (stable keys, documented in
/// DESIGN.md §10) — the export format of the CLI/bench telemetry sinks.
std::string to_json(const MechanismTelemetry& telemetry);

/// Process-wide registry of named int64 metrics, sharded per thread. A
/// metric is either a monotonic counter (only positive deltas) or a gauge
/// (signed deltas; the merged sum is the current level) — the distinction is
/// naming convention, not mechanism. Registration is a cold mutex path; the
/// write path is one relaxed fetch_add on the calling thread's own shard.
class Registry {
 public:
  using MetricId = std::size_t;
  /// Fixed shard width: registering more than kMaxMetrics names throws.
  static constexpr std::size_t kMaxMetrics = 64;

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every built-in instrumentation site uses.
  static Registry& global();

  /// Id of the named metric, registering it on first use (idempotent:
  /// the same name always yields the same id). Cold path — resolve once and
  /// cache the id at the call site.
  MetricId metric(const std::string& name);

  /// Adds `delta` to the metric on the calling thread's shard. Lock-free
  /// and contention-free: no other thread writes this shard.
  void add(MetricId id, std::int64_t delta);

  /// A merged point-in-time view of every registered metric.
  struct Snapshot {
    /// (name, merged value) in registration order.
    std::vector<std::pair<std::string, std::int64_t>> values;

    /// Value of a named metric; 0 when the name is not registered.
    std::int64_t value_of(const std::string& name) const;
    /// One-line JSON object {"name":value,...}.
    std::string to_json() const;
  };

  /// Merges all thread shards. Safe to call concurrently with add(): the
  /// shard cells are atomics, so a snapshot taken mid-update is simply a
  /// momentary view.
  Snapshot snapshot() const;

  /// Zeroes every shard cell (names stay registered). Test/bench isolation.
  void reset();

 private:
  struct Shard {
    std::array<std::atomic<std::int64_t>, kMaxMetrics> cells{};
  };

  Shard& local_shard();

  const std::uint64_t id_;  ///< process-unique, never reused (tls keys on it)
  mutable std::mutex mutex_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mcs::obs
