#include "obs/telemetry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace mcs::obs {

namespace {

std::atomic<bool> g_enabled{false};

// Every Registry gets a process-unique id; the thread-local shard cache keys
// on it so a thread that outlives a (test-local) Registry never dereferences
// the dead registry's shard when a new Registry reuses the address.
std::atomic<std::uint64_t> g_next_registry_id{1};

void append_json_number(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void append_json_number(std::string& out, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  out += buffer;
}

void append_phase_json(std::string& out, const PhaseCounters& phase) {
  out += "{\"probes\":";
  append_json_number(out, phase.probes);
  out += ",\"deadline_polls\":";
  append_json_number(out, phase.deadline_polls);
  out += ",\"rounds\":";
  append_json_number(out, phase.rounds);
  out += ",\"heap_reevaluations\":";
  append_json_number(out, phase.heap_reevaluations);
  out += ",\"bisection_steps\":";
  append_json_number(out, phase.bisection_steps);
  out += ",\"dp_reuse_hits\":";
  append_json_number(out, phase.dp_reuse_hits);
  out += ",\"dp_reuse_fallbacks\":";
  append_json_number(out, phase.dp_reuse_fallbacks);
  out += "}";
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

ScopedTelemetry::ScopedTelemetry(bool on) : previous_(enabled()) { set_enabled(on); }

ScopedTelemetry::~ScopedTelemetry() { set_enabled(previous_); }

PhaseTimer::PhaseTimer(bool armed) : armed_(armed) {
  if (armed_) start_ = std::chrono::steady_clock::now();
}

double PhaseTimer::seconds() const {
  if (!armed_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

PhaseCounters& PhaseCounters::operator+=(const PhaseCounters& other) {
  probes += other.probes;
  deadline_polls += other.deadline_polls;
  rounds += other.rounds;
  heap_reevaluations += other.heap_reevaluations;
  bisection_steps += other.bisection_steps;
  dp_reuse_hits += other.dp_reuse_hits;
  dp_reuse_fallbacks += other.dp_reuse_fallbacks;
  return *this;
}

MechanismTelemetry& MechanismTelemetry::operator+=(const MechanismTelemetry& other) {
  enabled = enabled || other.enabled;
  winner_determination_seconds += other.winner_determination_seconds;
  rewards_seconds += other.rewards_seconds;
  degraded_events += other.degraded_events;
  winner_determination += other.winner_determination;
  rewards += other.rewards;
  return *this;
}

std::string to_json(const MechanismTelemetry& telemetry) {
  std::string out;
  out.reserve(256);
  out += "{\"enabled\":";
  out += telemetry.enabled ? "true" : "false";
  out += ",\"winner_determination_seconds\":";
  append_json_number(out, telemetry.winner_determination_seconds);
  out += ",\"rewards_seconds\":";
  append_json_number(out, telemetry.rewards_seconds);
  out += ",\"degraded_events\":";
  append_json_number(out, telemetry.degraded_events);
  out += ",\"winner_determination\":";
  append_phase_json(out, telemetry.winner_determination);
  out += ",\"rewards\":";
  append_phase_json(out, telemetry.rewards);
  out += "}";
  return out;
}

Registry::Registry() : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry& Registry::global() {
  // Leaked on purpose: worker threads (e.g. ThreadPool::shared()) may still
  // be incrementing their shards during static destruction.
  static Registry* instance = new Registry();
  return *instance;
}

Registry::MetricId Registry::metric(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (MetricId id = 0; id < names_.size(); ++id) {
    if (names_[id] == name) return id;
  }
  if (names_.size() >= kMaxMetrics) {
    throw std::runtime_error("obs::Registry is full (kMaxMetrics=64): cannot register '" + name +
                             "'");
  }
  names_.push_back(name);
  return names_.size() - 1;
}

Registry::Shard& Registry::local_shard() {
  // Cache of (registry id → shard) for this thread. A plain vector scan: a
  // thread talks to one or two registries in practice (the global one, plus
  // possibly a test-local one).
  struct TlsEntry {
    std::uint64_t registry_id;
    Shard* shard;
  };
  thread_local std::vector<TlsEntry> tls_shards;
  for (const TlsEntry& entry : tls_shards) {
    if (entry.registry_id == id_) return *entry.shard;
  }
  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::move(owned));
  }
  tls_shards.push_back({id_, shard});
  return *shard;
}

void Registry::add(MetricId id, std::int64_t delta) {
  Shard& shard = local_shard();
  shard.cells[id].fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t Registry::Snapshot::value_of(const std::string& name) const {
  for (const auto& [metric_name, value] : values) {
    if (metric_name == name) return value;
  }
  return 0;
}

std::string Registry::Snapshot::to_json() const {
  std::string out;
  out.reserve(64 + values.size() * 32);
  out += "{";
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += name;  // metric names are identifier-like; no escaping needed
    out += "\":";
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
    out += buffer;
  }
  out += "}";
  return out;
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.values.reserve(names_.size());
  for (MetricId id = 0; id < names_.size(); ++id) {
    std::int64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->cells[id].load(std::memory_order_relaxed);
    }
    snap.values.emplace_back(names_[id], total);
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (auto& cell : shard->cells) {
      cell.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace mcs::obs
