// Lightweight contract checking in the spirit of the Core Guidelines'
// Expects()/Ensures() (I.5–I.8). Violations throw, so library preconditions
// are enforced uniformly in release builds as well as debug builds.
#pragma once

#include <stdexcept>
#include <string>

namespace mcs::common {

/// Thrown when a precondition (caller error) is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a postcondition or internal invariant (library bug or
/// unexpected state) is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file, int line,
                                     const std::string& message);
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& message);
}  // namespace detail

}  // namespace mcs::common

/// Precondition check: use at the top of public functions to validate inputs.
#define MCS_EXPECTS(expr, message)                                                  \
  do {                                                                              \
    if (!(expr)) {                                                                  \
      ::mcs::common::detail::throw_precondition(#expr, __FILE__, __LINE__, message); \
    }                                                                               \
  } while (false)

/// Invariant/postcondition check: use for conditions the library itself must
/// maintain; a failure indicates a bug in this library, not in the caller.
#define MCS_ENSURES(expr, message)                                               \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::mcs::common::detail::throw_invariant(#expr, __FILE__, __LINE__, message); \
    }                                                                            \
  } while (false)
