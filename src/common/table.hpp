// Text table printer used by the bench binaries so every figure/table of the
// paper is regenerated as an aligned, copy-pasteable block on stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/csv.hpp"

namespace mcs::common {

/// Column-aligned text table with a title, header and numeric-friendly cells.
class TextTable {
 public:
  explicit TextTable(std::string title, std::vector<std::string> header);

  /// Appends a row; its width must match the header's.
  void add_row(std::vector<std::string> row);

  /// Formats a double with the given precision, trimming trailing zeros.
  static std::string num(double value, int precision = 4);

  /// Renders the table (title, rule, header, rule, rows).
  std::string str() const;
  void print(std::ostream& out) const;

  const std::string& title() const { return title_; }
  /// The same data as a CSV table (header + rows), for plotting pipelines.
  CsvTable to_csv_table() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcs::common
