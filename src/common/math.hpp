// Numeric helpers shared across the library: the log-space PoS/contribution
// transform at the heart of the paper's problem formulation (Section II),
// harmonic numbers (the H(γ) approximation bound of Theorem 5), and tolerant
// floating-point comparisons.
#pragma once

#include <cstddef>
#include <span>

namespace mcs::common {

/// Default tolerance used by the feasibility and comparison helpers.
inline constexpr double kDefaultEps = 1e-9;

/// Converts a probability of success p in [0, 1) to the additive
/// "contribution" q = -ln(1 - p). Uses log1p for accuracy near p = 0.
/// A p of exactly 1 maps to +infinity; callers that forbid certain success
/// should validate beforehand.
double contribution_from_pos(double p);

/// Inverse transform: p = 1 - exp(-q). Uses expm1 for accuracy near q = 0.
/// Requires q >= 0.
double pos_from_contribution(double q);

/// nth harmonic number H(n) = 1 + 1/2 + ... + 1/n, with H(0) = 0.
double harmonic(std::size_t n);

/// Harmonic number generalized to a real argument by linear interpolation
/// between floor(x) and ceil(x); used to evaluate the H(γ) bound when γ is
/// derived from real-valued contributions.
double harmonic_real(double x);

/// True when |a - b| <= eps * max(1, |a|, |b|) (relative-with-floor).
bool almost_equal(double a, double b, double eps = kDefaultEps);

/// True when a >= b - eps * max(1, |a|, |b|). Used for "requirement met"
/// checks so that accumulated rounding does not flip feasibility.
bool approx_ge(double a, double b, double eps = kDefaultEps);

/// Sum of a span of doubles via Kahan compensated summation; the mechanisms
/// compare social costs that are sums of tens of floats, and benches sum
/// thousands of per-run values.
double kahan_sum(std::span<const double> values);

/// Clamps x into [lo, hi]; requires lo <= hi.
double clamp(double x, double lo, double hi);

}  // namespace mcs::common
