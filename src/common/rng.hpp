// Deterministic random-number generation. Every stochastic component in the
// library takes an explicit seed (or an Rng&) so that experiments, tests, and
// benches are reproducible run to run. The engine is SplitMix64-seeded
// xoshiro256**, a small, fast, well-distributed generator that satisfies the
// std uniform_random_bit_generator concept, so the std <random> distributions
// compose with it.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace mcs::common {

/// xoshiro256** engine with SplitMix64 seeding.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()();

  /// Derives an independent child generator; use to hand each parallel or
  /// per-entity component its own stream without correlated draws.
  Rng split();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi); requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Raw 256-bit engine state, for checkpointing.
  std::array<std::uint64_t, 4> state() const { return state_; }

  /// Restores a previously captured state; the stream resumes exactly where
  /// it was captured. The all-zero state is invalid for xoshiro256** (the
  /// generator would stay at zero forever) and is rejected.
  void set_state(const std::array<std::uint64_t, 4>& state);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace mcs::common
