#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace mcs::common {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string quote(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t k = 0; k < header.size(); ++k) {
    if (header[k] == name) {
      return k;
    }
  }
  throw PreconditionError("CSV column not found: " + name);
}

CsvTable parse_csv(const std::string& text) {
  CsvTable table;
  if (text.empty()) {
    return table;
  }
  std::vector<CsvRow> all_rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  const auto end_row = [&] {
    end_field();
    all_rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  for (std::size_t k = 0; k < text.size(); ++k) {
    const char c = text[k];
    if (in_quotes) {
      if (c == '"') {
        if (k + 1 < text.size() && text[k + 1] == '"') {
          field += '"';
          ++k;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
        row_has_content = true;
      }
    } else if (c == '"') {
      in_quotes = true;
      row_has_content = true;
    } else if (c == ',') {
      end_field();
      row_has_content = true;
    } else if (c == '\n') {
      if (row_has_content || !field.empty() || !row.empty()) {
        end_row();
      }
    } else if (c != '\r') {
      field += c;
      row_has_content = true;
    }
  }
  MCS_EXPECTS(!in_quotes, "CSV ends inside a quoted field");
  if (row_has_content || !field.empty() || !row.empty()) {
    end_row();
  }

  if (all_rows.empty()) {
    return table;
  }
  table.header = std::move(all_rows.front());
  for (std::size_t k = 1; k < all_rows.size(); ++k) {
    MCS_EXPECTS(all_rows[k].size() == table.header.size(),
                "CSV row width differs from header width");
    table.rows.push_back(std::move(all_rows[k]));
  }
  return table;
}

std::string to_csv(const CsvTable& table) {
  std::ostringstream out;
  const auto write_row = [&](const CsvRow& row) {
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (k > 0) {
        out << ',';
      }
      out << (needs_quoting(row[k]) ? quote(row[k]) : row[k]);
    }
    out << '\n';
  };
  write_row(table.header);
  for (const auto& row : table.rows) {
    write_row(row);
  }
  return out.str();
}

CsvTable read_csv_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open CSV file for reading: " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

void write_csv_file(const std::filesystem::path& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open CSV file for writing: " + path.string());
  }
  out << to_csv(table);
  if (!out) {
    throw std::runtime_error("failed writing CSV file: " + path.string());
  }
}

}  // namespace mcs::common
