// Persistent execution substrate: a long-lived worker pool for the
// embarrassingly parallel loops in the mechanisms (critical bids, batched
// auctions). Unlike a fork-join helper that spawns threads per call, the pool
// pays thread creation once and amortizes it over every batch — the property
// a platform serving a continuous stream of auction rounds needs.
//
// Determinism contract: work is partitioned into strided chunks by index and
// results are owned by the caller per index, so outputs are bit-identical to
// a serial loop no matter how many workers run. Exception contract: every
// index is attempted, then the first exception BY INDEX is rethrown.
// Nested-parallelism contract: a for_each_index issued from inside a pool
// worker runs inline (serially) on that worker, which makes nesting
// deadlock-free by construction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <limits>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace mcs::common {

/// A sensible worker count: hardware concurrency, at least 1.
std::size_t default_worker_count();

class ThreadPool {
 public:
  /// No cap on the number of strided chunks (count becomes the cap).
  static constexpr std::size_t kUnbounded = std::numeric_limits<std::size_t>::max();

  /// Spawns `workers` long-lived threads (>= 1).
  explicit ThreadPool(std::size_t workers = default_worker_count());
  /// Runs any queued work to completion, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// True when the calling thread is a worker of any ThreadPool — the signal
  /// that a nested parallel call must run inline.
  static bool on_worker_thread();

  /// The process-wide pool (default_worker_count() workers), created on first
  /// use. parallel_map and the default-configured auction engine run here.
  static ThreadPool& shared();

  /// Applies `fn(index)` for index in [0, count), blocking until all calls
  /// complete. Work is split into min(count, max_workers) strided chunks.
  /// Runs inline (serially, in index order) when count < 2, max_workers < 2,
  /// or the caller is itself a pool worker. If calls throw, every index is
  /// still attempted and the first exception by index is rethrown.
  /// `fn` must be safe to call concurrently from multiple threads.
  template <typename Fn>
  void for_each_index(std::size_t count, Fn&& fn, std::size_t max_workers = kUnbounded) {
    if (count == 0) {
      return;
    }
    const std::size_t chunks = std::min(count, std::max<std::size_t>(1, max_workers));
    if (count < 2 || chunks < 2 || on_worker_thread()) {
      for (std::size_t index = 0; index < count; ++index) {
        fn(index);
      }
      return;
    }

    std::vector<std::exception_ptr> errors(count);
    Completion completion{chunks};
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      enqueue([&, chunk] {
        for (std::size_t index = chunk; index < count; index += chunks) {
          try {
            fn(index);
          } catch (...) {
            errors[index] = std::current_exception();
          }
        }
        completion.finish_one();
      });
    }
    completion.wait();
    for (const auto& error : errors) {
      if (error) {
        std::rethrow_exception(error);
      }
    }
  }

  /// Queues one task and returns its future. Do not block on the future from
  /// inside a pool worker: the task may be waiting for that same worker.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    auto future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

 private:
  /// Latch-like completion state of one for_each_index call.
  struct Completion {
    explicit Completion(std::size_t chunks) : remaining(chunks) {}
    void finish_one() {
      std::lock_guard<std::mutex> lock(mutex);
      if (--remaining == 0) {
        done.notify_one();
      }
    }
    void wait() {
      std::unique_lock<std::mutex> lock(mutex);
      done.wait(lock, [&] { return remaining == 0; });
    }
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
  };

  void enqueue(std::function<void()> task);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mcs::common
