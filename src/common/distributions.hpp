// Samplers used by the workload generators: the paper samples sensing costs
// from a normal distribution (Table II), task-set sizes uniformly from
// [10, 20], and our synthetic city model uses a Zipf popularity law over grid
// cells plus categorical draws from learned/ground-truth kernels.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace mcs::common {

/// Standard normal draw (Box–Muller, no state carried between calls).
double sample_normal(Rng& rng, double mean, double stddev);

/// Normal draw truncated (by rejection) to [lo, hi]; requires lo < hi and a
/// truncation window with non-trivial mass (the generator throws after an
/// internal attempt limit otherwise). The paper's cost model N(15, 5) is used
/// with a positivity truncation since negative sensing costs are meaningless.
double sample_truncated_normal(Rng& rng, double mean, double stddev, double lo, double hi);

/// Draws an index in [0, weights.size()) with probability proportional to
/// weights[k]. Requires at least one strictly positive weight and no negative
/// weights.
std::size_t sample_categorical(Rng& rng, std::span<const double> weights);

/// Zipf(s) probability vector over n ranks: P(k) ∝ 1 / (k+1)^s.
std::vector<double> zipf_weights(std::size_t n, double exponent);

/// Samples `count` distinct indices from [0, population) uniformly without
/// replacement (partial Fisher–Yates). Requires count <= population.
std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t population,
                                                    std::size_t count);

}  // namespace mcs::common
