// Cooperative wall-clock deadlines for the auction hot paths. A production
// platform cannot let one runaway FPTAS grid or slow greedy round hold a
// worker thread forever, so every long-running mechanism loop (the Algorithm
// 1 DP sweep, the Algorithm 2 subproblem scan, the Algorithm 4 cover loop,
// and both critical-bid bisections) polls a Deadline token at its outer
// iterations and bails out with DeadlineExceeded when the budget is spent.
//
// The token is cooperative on purpose: no signals, no thread cancellation —
// the loops stay deterministic and sanitizer-clean, and a poll costs one
// steady_clock read at a granularity coarse enough to be invisible in the
// benches. A default-constructed Deadline is unlimited and polls for free.
#pragma once

#include <chrono>
#include <stdexcept>

namespace mcs::common {

/// Thrown when a cooperative deadline expires inside a mechanism loop. The
/// batched engine turns it into a structured per-auction timeout status; the
/// single-task mechanism may first retry on its degraded ladder.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A copyable wall-clock budget token. Default-constructed = unlimited.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  static Deadline unlimited() { return Deadline{}; }

  /// Expires `seconds` from now; a non-positive budget is already expired.
  /// A budget too large for the clock to represent is unlimited — the cast
  /// to clock ticks would otherwise overflow (UB).
  static Deadline after(double seconds);

  /// The MechanismConfig convention: a budget of 0 (or below) means no
  /// deadline at all, anything positive counts down from now.
  static Deadline from_budget(double seconds);

  bool is_unlimited() const { return !limited_; }

  /// True when the budget is spent. Free for unlimited deadlines.
  bool expired() const { return limited_ && Clock::now() >= at_; }

  /// Throws DeadlineExceeded("<where>: wall-clock budget exhausted") when
  /// expired; `where` names the loop for the engine's error status.
  void check(const char* where) const;

  /// Seconds left; +infinity when unlimited, clamped at 0 when expired.
  double remaining_seconds() const;

 private:
  bool limited_ = false;
  Clock::time_point at_{};
};

}  // namespace mcs::common
