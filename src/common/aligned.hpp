// Cache-line-aligned storage for the hot-path columns (DESIGN.md §8). The
// SoA layers — auction::BidColumns, the multi-task CSR view, and the
// frontier-DP row buffers — allocate through this so every column starts on
// a 64-byte boundary: loads in the vectorized sweeps never split a cache
// line, and two columns touched together cannot false-share a line with an
// unrelated heap block. Alignment changes WHERE values live, never what
// they are, so it is invisible to the bit-identity contracts.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace mcs::common {

/// Minimal C++17 allocator handing out `Alignment`-byte-aligned blocks via
/// the aligned operator new. All instances are interchangeable (stateless).
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T), "alignment must not weaken the type's own");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be a power of two");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) { return false; }
};

/// A std::vector whose buffer starts on a 64-byte (cache line) boundary.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace mcs::common
