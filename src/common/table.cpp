#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace mcs::common {

TextTable::TextTable(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  MCS_EXPECTS(!header_.empty(), "table header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  MCS_EXPECTS(row.size() == header_.size(), "table row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  std::string s = out.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') {
      s.pop_back();
    }
    if (!s.empty() && s.back() == '.') {
      s.pop_back();
    }
  }
  return s;
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t k = 0; k < header_.size(); ++k) {
    widths[k] = header_[k].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t k = 0; k < row.size(); ++k) {
      widths[k] = std::max(widths[k], row[k].size());
    }
  }

  std::ostringstream out;
  const auto rule = [&] {
    for (std::size_t k = 0; k < widths.size(); ++k) {
      out << std::string(widths[k] + 2, '-');
      out << (k + 1 < widths.size() ? "+" : "\n");
    }
  };
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t k = 0; k < row.size(); ++k) {
      out << ' ' << std::left << std::setw(static_cast<int>(widths[k])) << row[k] << ' ';
      out << (k + 1 < row.size() ? "|" : "\n");
    }
  };

  out << "== " << title_ << " ==\n";
  rule();
  emit_row(header_);
  rule();
  for (const auto& row : rows_) {
    emit_row(row);
  }
  rule();
  return out.str();
}

void TextTable::print(std::ostream& out) const { out << str(); }

CsvTable TextTable::to_csv_table() const {
  CsvTable csv;
  csv.header = header_;
  csv.rows = rows_;
  return csv;
}

}  // namespace mcs::common
