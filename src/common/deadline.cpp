#include "common/deadline.hpp"

#include <algorithm>
#include <limits>
#include <string>

namespace mcs::common {

Deadline Deadline::after(double seconds) {
  Deadline deadline;
  deadline.limited_ = true;
  deadline.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(std::max(0.0, seconds)));
  return deadline;
}

Deadline Deadline::from_budget(double seconds) {
  return seconds > 0.0 ? after(seconds) : unlimited();
}

void Deadline::check(const char* where) const {
  if (expired()) {
    throw DeadlineExceeded(std::string(where) + ": wall-clock budget exhausted");
  }
}

double Deadline::remaining_seconds() const {
  if (!limited_) {
    return std::numeric_limits<double>::infinity();
  }
  const std::chrono::duration<double> left = at_ - Clock::now();
  return std::max(0.0, left.count());
}

}  // namespace mcs::common
