#include "common/deadline.hpp"

#include <algorithm>
#include <limits>
#include <string>

namespace mcs::common {

Deadline Deadline::after(double seconds) {
  const double capped = std::max(0.0, seconds);
  // A budget beyond what steady_clock can represent (~146 years at
  // nanosecond resolution) is "never": the duration_cast below would be
  // float-to-integer overflow — UB that can land on an already-expired
  // negative deadline. Half the representable range leaves headroom for the
  // addition to now().
  constexpr double kUnlimitedSeconds =
      std::chrono::duration<double>(Clock::duration::max() / 2).count();
  if (!(capped < kUnlimitedSeconds)) {
    return unlimited();
  }
  Deadline deadline;
  deadline.limited_ = true;
  deadline.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(capped));
  return deadline;
}

Deadline Deadline::from_budget(double seconds) {
  return seconds > 0.0 ? after(seconds) : unlimited();
}

void Deadline::check(const char* where) const {
  if (expired()) {
    throw DeadlineExceeded(std::string(where) + ": wall-clock budget exhausted");
  }
}

double Deadline::remaining_seconds() const {
  if (!limited_) {
    return std::numeric_limits<double>::infinity();
  }
  const std::chrono::duration<double> left = at_ - Clock::now();
  return std::max(0.0, left.count());
}

}  // namespace mcs::common
