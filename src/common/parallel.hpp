// Order-preserving parallel map over the process-wide ThreadPool. The
// mechanisms' reward schemes compute one critical bid per winner, each an
// independent re-run of the winner-determination algorithm — the textbook
// case. parallel_map preserves input order, propagates the first exception
// (by index), and degrades to a plain loop for tiny inputs, a single worker,
// or when the caller is already a pool worker, so results are bit-identical
// to the serial path.
//
// The callable is a template parameter (not std::function): critical-bid
// loops sit on the hot path and must not pay a type-erasure allocation per
// call site.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace mcs::common {

/// Applies `fn(index)` for index in [0, count) on the shared ThreadPool and
/// returns the results in index order. Runs serially when count < 2 or
/// workers < 2. If any call throws, every index is still attempted and the
/// first exception (by index) is rethrown. `fn` must be safe to call
/// concurrently from multiple threads.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t count, Fn&& fn,
                            std::size_t workers = default_worker_count()) {
  MCS_EXPECTS(workers >= 1, "need at least one worker");
  std::vector<T> results(count);
  ThreadPool::shared().for_each_index(
      count, [&](std::size_t index) { results[index] = fn(index); }, workers);
  return results;
}

}  // namespace mcs::common
