// Minimal fork-join parallelism for embarrassingly parallel loops. The
// mechanisms' reward schemes compute one critical bid per winner, each an
// independent re-run of the winner-determination algorithm — the textbook
// case. parallel_map preserves input order, propagates the first exception,
// and degrades to a plain loop for tiny inputs or a single worker, so results
// are bit-identical to the serial path.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace mcs::common {

/// A sensible worker count: hardware concurrency, at least 1.
std::size_t default_worker_count();

/// Applies `fn(index)` for index in [0, count) and returns the results in
/// index order. Runs serially when count < 2 or workers < 2. If any call
/// throws, the first exception (by index) is rethrown after all workers
/// join. `fn` must be safe to call concurrently from multiple threads.
template <typename T>
std::vector<T> parallel_map(std::size_t count, const std::function<T(std::size_t)>& fn,
                            std::size_t workers = default_worker_count()) {
  MCS_EXPECTS(workers >= 1, "need at least one worker");
  std::vector<T> results(count);
  if (count == 0) {
    return results;
  }
  if (count < 2 || workers < 2) {
    for (std::size_t index = 0; index < count; ++index) {
      results[index] = fn(index);
    }
    return results;
  }

  const std::size_t thread_count = std::min(workers, count);
  std::vector<std::exception_ptr> errors(count);
  std::vector<std::thread> threads;
  threads.reserve(thread_count);
  for (std::size_t worker = 0; worker < thread_count; ++worker) {
    threads.emplace_back([&, worker] {
      // Strided assignment: deterministic and balanced for similar items.
      for (std::size_t index = worker; index < count; index += thread_count) {
        try {
          results[index] = fn(index);
        } catch (...) {
          errors[index] = std::current_exception();
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (const auto& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
  return results;
}

}  // namespace mcs::common
