// Minimal CSV reader/writer for trace datasets and experiment output. Handles
// quoting of fields containing commas/quotes/newlines; does not attempt full
// RFC 4180 edge cases beyond that (no embedded CR handling differences).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace mcs::common {

using CsvRow = std::vector<std::string>;

/// In-memory CSV table: a header row plus data rows.
struct CsvTable {
  CsvRow header;
  std::vector<CsvRow> rows;

  /// Index of a header column; throws PreconditionError when absent.
  std::size_t column(const std::string& name) const;
};

/// Parses CSV text. The first row becomes the header. Empty input yields an
/// empty table. Throws PreconditionError on ragged rows (row width differing
/// from the header's).
CsvTable parse_csv(const std::string& text);

/// Serializes a table to CSV text with \n line endings.
std::string to_csv(const CsvTable& table);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
CsvTable read_csv_file(const std::filesystem::path& path);
void write_csv_file(const std::filesystem::path& path, const CsvTable& table);

}  // namespace mcs::common
