#include "common/distributions.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

#include "common/check.hpp"

namespace mcs::common {

double sample_normal(Rng& rng, double mean, double stddev) {
  MCS_EXPECTS(stddev >= 0.0, "stddev must be non-negative");
  // Box–Muller: u1 in (0, 1] so log(u1) is finite.
  const double u1 = 1.0 - rng.uniform01();
  const double u2 = rng.uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(2.0 * std::numbers::pi * u2);
}

double sample_truncated_normal(Rng& rng, double mean, double stddev, double lo, double hi) {
  MCS_EXPECTS(lo < hi, "truncation window must be non-empty");
  constexpr int kMaxAttempts = 100000;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const double draw = sample_normal(rng, mean, stddev);
    if (draw >= lo && draw <= hi) {
      return draw;
    }
  }
  throw PreconditionError(
      "sample_truncated_normal: truncation window has negligible probability mass");
}

std::size_t sample_categorical(Rng& rng, std::span<const double> weights) {
  MCS_EXPECTS(!weights.empty(), "categorical distribution needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    MCS_EXPECTS(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  MCS_EXPECTS(total > 0.0, "categorical distribution needs positive total weight");
  double target = rng.uniform01() * total;
  for (std::size_t k = 0; k < weights.size(); ++k) {
    target -= weights[k];
    if (target < 0.0) {
      return k;
    }
  }
  // Rounding can leave target at ~0 after the loop; return the last positive-
  // weight index.
  for (std::size_t k = weights.size(); k-- > 0;) {
    if (weights[k] > 0.0) {
      return k;
    }
  }
  throw InvariantError("sample_categorical: unreachable");
}

std::vector<double> zipf_weights(std::size_t n, double exponent) {
  MCS_EXPECTS(n > 0, "Zipf support must be non-empty");
  MCS_EXPECTS(exponent >= 0.0, "Zipf exponent must be non-negative");
  std::vector<double> weights(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    weights[k] = 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    total += weights[k];
  }
  for (double& w : weights) {
    w /= total;
  }
  return weights;
}

std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t population,
                                                    std::size_t count) {
  MCS_EXPECTS(count <= population, "cannot sample more items than the population holds");
  std::vector<std::size_t> pool(population);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t k = 0; k < count; ++k) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(k), static_cast<std::int64_t>(population - 1)));
    std::swap(pool[k], pool[pick]);
  }
  pool.resize(count);
  return pool;
}

}  // namespace mcs::common
