#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"

namespace mcs::common {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::mean() const {
  MCS_EXPECTS(count_ > 0, "mean of an empty sample");
  return mean_;
}

double RunningStats::variance() const {
  MCS_EXPECTS(count_ > 0, "variance of an empty sample");
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  MCS_EXPECTS(count_ > 0, "min of an empty sample");
  return min_;
}

double RunningStats::max() const {
  MCS_EXPECTS(count_ > 0, "max of an empty sample");
  return max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  MCS_EXPECTS(lo < hi, "histogram range must be non-empty");
  MCS_EXPECTS(bins > 0, "histogram needs at least one bin");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double value) {
  if (!std::isfinite(value)) {
    // NaN/±inf carry no bin information and make the float→integer cast
    // below UB; tally them instead of crashing an experiment sweep.
    ++dropped_;
    return;
  }
  // Clamp in the double domain BEFORE the integer cast: a finite value far
  // outside [lo, hi] (e.g. 1e308) would overflow ptrdiff_t, which is UB too.
  const double last = static_cast<double>(counts_.size()) - 1.0;
  const double scaled = std::clamp(std::floor((value - lo_) / width_), 0.0, last);
  ++counts_[static_cast<std::size_t>(scaled)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) {
    add(v);
  }
}

std::size_t Histogram::count(std::size_t bin) const {
  MCS_EXPECTS(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  MCS_EXPECTS(bin < counts_.size(), "histogram bin out of range");
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::bin_lo(std::size_t bin) const {
  MCS_EXPECTS(bin < counts_.size(), "histogram bin out of range");
  return lo_ + static_cast<double>(bin) * width_;
}

double Histogram::bin_hi(std::size_t bin) const {
  MCS_EXPECTS(bin < counts_.size(), "histogram bin out of range");
  return lo_ + static_cast<double>(bin + 1) * width_;
}

double Histogram::mass(std::size_t bin) const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double Histogram::density(std::size_t bin) const { return mass(bin) / width_; }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  MCS_EXPECTS(!sorted_.empty(), "empirical CDF needs at least one sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::value(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const {
  MCS_EXPECTS(p > 0.0 && p <= 1.0, "quantile probability must lie in (0, 1]");
  const auto n = static_cast<double>(sorted_.size());
  auto index = static_cast<std::size_t>(std::ceil(p * n)) - 1;
  index = std::min(index, sorted_.size() - 1);
  return sorted_[index];
}

double mean(std::span<const double> values) {
  MCS_EXPECTS(!values.empty(), "mean of an empty span");
  return kahan_sum(values) / static_cast<double>(values.size());
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> samples, double confidence,
                                     std::size_t resamples, Rng& rng) {
  MCS_EXPECTS(!samples.empty(), "bootstrap needs at least one sample");
  MCS_EXPECTS(confidence > 0.0 && confidence < 1.0, "confidence must lie in (0, 1)");
  MCS_EXPECTS(resamples >= 10, "need at least 10 resamples");
  const auto n = samples.size();
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      total += samples[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))];
    }
    means.push_back(total / static_cast<double>(n));
  }
  const EmpiricalCdf cdf(std::move(means));
  return ConfidenceInterval{cdf.quantile((1.0 - confidence) / 2.0),
                            cdf.quantile((1.0 + confidence) / 2.0)};
}

}  // namespace mcs::common
