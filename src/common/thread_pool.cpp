#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "obs/telemetry.hpp"

namespace mcs::common {

namespace {
// Set for the lifetime of every pool worker thread; read by nested parallel
// calls to decide on inline execution. Process-wide on purpose: a worker of
// one pool must not block on another pool either.
thread_local bool tls_on_pool_worker = false;

// Pool-level registry metrics, shared by every ThreadPool instance (the
// platform runs one shared pool; per-pool attribution is not worth a second
// registry). Ids resolve once; add() is a relaxed increment on the calling
// thread's own shard.
struct PoolMetrics {
  obs::Registry::MetricId enqueued;
  obs::Registry::MetricId executed;
  obs::Registry::MetricId queue_depth;   // gauge: enqueued but not yet started
  obs::Registry::MetricId busy_workers;  // gauge: workers executing a task
  obs::Registry::MetricId busy_micros;   // total wall-clock spent in tasks

  static const PoolMetrics& get() {
    static const PoolMetrics metrics{
        obs::Registry::global().metric("pool.tasks_enqueued"),
        obs::Registry::global().metric("pool.tasks_executed"),
        obs::Registry::global().metric("pool.queue_depth"),
        obs::Registry::global().metric("pool.busy_workers"),
        obs::Registry::global().metric("pool.busy_micros"),
    };
    return metrics;
  }
};
}  // namespace

std::size_t default_worker_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

bool ThreadPool::on_worker_thread() { return tls_on_pool_worker; }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_worker_count());
  return pool;
}

ThreadPool::ThreadPool(std::size_t workers) {
  MCS_EXPECTS(workers >= 1, "thread pool needs at least one worker");
  // Force the metric registry (and the global Registry behind it) into
  // existence before the workers start, so its static lifetime brackets
  // theirs no matter which translation unit touched telemetry first.
  (void)PoolMetrics::get();
  workers_.reserve(workers);
  for (std::size_t worker = 0; worker < workers; ++worker) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  if (obs::enabled()) {
    const PoolMetrics& metrics = PoolMetrics::get();
    obs::Registry::global().add(metrics.enqueued, 1);
    obs::Registry::global().add(metrics.queue_depth, 1);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  tls_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping, and all queued work has drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (obs::enabled()) {
      const PoolMetrics& metrics = PoolMetrics::get();
      obs::Registry& registry = obs::Registry::global();
      registry.add(metrics.queue_depth, -1);
      registry.add(metrics.busy_workers, 1);
      const auto start = std::chrono::steady_clock::now();
      task();
      const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      registry.add(metrics.busy_micros, micros);
      registry.add(metrics.busy_workers, -1);
      registry.add(metrics.executed, 1);
    } else {
      task();
    }
  }
}

}  // namespace mcs::common
