#include "common/thread_pool.hpp"

#include <algorithm>

namespace mcs::common {

namespace {
// Set for the lifetime of every pool worker thread; read by nested parallel
// calls to decide on inline execution. Process-wide on purpose: a worker of
// one pool must not block on another pool either.
thread_local bool tls_on_pool_worker = false;
}  // namespace

std::size_t default_worker_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

bool ThreadPool::on_worker_thread() { return tls_on_pool_worker; }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_worker_count());
  return pool;
}

ThreadPool::ThreadPool(std::size_t workers) {
  MCS_EXPECTS(workers >= 1, "thread pool needs at least one worker");
  workers_.reserve(workers);
  for (std::size_t worker = 0; worker < workers; ++worker) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  tls_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping, and all queued work has drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace mcs::common
