#include "common/parallel.hpp"

#include <algorithm>

namespace mcs::common {

std::size_t default_worker_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace mcs::common
