// Deterministic, seed-driven fault injection for the serving stack. The
// paper's premise is execution uncertainty at the USER level (PoS < 1); this
// layer injects uncertainty at the INFRASTRUCTURE level — a shard run that
// fails, a journal append that errors, a telemetry sink that throws, a queue
// handoff that drops — so the campaign service's recovery paths (retry,
// degraded merge, watchdog, sink quarantine) can be exercised and, crucially,
// REPLAYED: every decision is a pure function of
//
//     (seed, fail point, stream, hit index)
//
// where the stream is the service's round id and the hit index counts that
// fail point's evaluations within the round. Nothing depends on wall clock,
// thread interleaving, or global mutable counters, so a fault schedule found
// in CI reproduces bit-for-bit from its seed — even when a watchdog-abandoned
// round keeps evaluating fail points concurrently with the next round.
//
// Cost model: a service without an injector pays one null-pointer test per
// fail point (the `fault_point` helper); an injector with an all-zero spec
// pays one hash per hit. Fault injection is a test/bench facility, never a
// production default.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mcs::common {

/// Thrown by FaultInjector::act at a firing fail point. Catchable like any
/// infrastructure error; the message names the point, stream, and hit so a
/// captured error text identifies the injected schedule entry.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Named fail points of the serving stack. Each is a place where real
/// infrastructure fails: the per-shard mechanism run, the durability
/// journal's append and replay, a telemetry sink dispatch, and the
/// queue→dispatcher handoff.
enum class FailPoint : std::size_t {
  kShardRun = 0,     ///< one hit per shard attempt (first pass and retries)
  kJournalAppend,    ///< one hit per round-outcome append
  kJournalReplay,    ///< one hit per journal-served round
  kSinkDispatch,     ///< one hit per (round, registered sink) delivery
  kQueueHandoff,     ///< one hit per round popped off the submission queue
};
inline constexpr std::size_t kFailPointCount = 5;

const char* to_string(FailPoint point);

/// What a fail point does on a firing hit.
enum class FaultAction {
  kNone,   ///< pass through
  kFail,   ///< the operation fails (throw / synthesize a failed result)
  kStall,  ///< the operation wedges for stall_seconds before proceeding
};

struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  double stall_seconds = 0.0;  ///< only meaningful for kStall
};

/// Per-point schedule. Probabilistic fields draw from the pure hash; the
/// explicit (stream, hit) lists force a decision at exactly those
/// coordinates, which is how a test or bench targets "round 3, shard 1".
struct FailPointSpec {
  double fail_prob = 0.0;      ///< P(kFail) per hit, in [0, 1]
  double stall_prob = 0.0;     ///< P(kStall) per hit; fail wins the overlap
  double stall_seconds = 0.05; ///< wedge length for every kStall at this point
  /// Explicit (stream, hit) coordinates that always fail / always stall.
  /// Checked before the probabilistic draw; fail_at wins over stall_at.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fail_at;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> stall_at;
};

/// The message act() throws and the service records for a kFail decision.
std::string injected_fault_message(FailPoint point, std::uint64_t stream, std::uint64_t hit);

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed);

  /// Installs a fail point's schedule. Configure before handing the injector
  /// to a service: configure() is not synchronized against decide().
  void configure(FailPoint point, FailPointSpec spec);

  std::uint64_t seed() const { return seed_; }
  const FailPointSpec& spec(FailPoint point) const;

  /// The decision for hit #`hit` of `point` within `stream` — a pure
  /// function of (seed, point, stream, hit), so any thread may evaluate it
  /// in any order and replays agree. The per-point totals below are the only
  /// mutation (relaxed atomics, reporting only).
  FaultDecision decide(FailPoint point, std::uint64_t stream, std::uint64_t hit) const;

  /// Convenience for call sites that propagate failures as exceptions:
  /// throws InjectedFault on kFail, sleeps through kStall, returns on kNone.
  void act(FailPoint point, std::uint64_t stream, std::uint64_t hit) const;

  /// Totals of firing decisions, for reports and assertions. Order-free sums
  /// (a decision evaluated twice counts twice).
  std::uint64_t injected_failures(FailPoint point) const;
  std::uint64_t injected_stalls(FailPoint point) const;

 private:
  struct PointState {
    FailPointSpec spec;
    mutable std::atomic<std::uint64_t> failures{0};
    mutable std::atomic<std::uint64_t> stalls{0};
  };

  std::uint64_t seed_;
  std::array<PointState, kFailPointCount> points_;
};

/// The near-zero-cost guard used at instrumentation sites: one null-pointer
/// test when fault injection is disabled (the production state).
inline void fault_point(const FaultInjector* injector, FailPoint point, std::uint64_t stream,
                        std::uint64_t hit) {
  if (injector != nullptr) {
    injector->act(point, stream, hit);
  }
}

}  // namespace mcs::common
