#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace mcs::common {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split() { return Rng((*this)()); }

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MCS_EXPECTS(lo < hi, "uniform range must be non-empty");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MCS_EXPECTS(lo <= hi, "uniform_int range must be non-empty");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) {
    draw = (*this)();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) {
  MCS_EXPECTS(p >= 0.0 && p <= 1.0, "Bernoulli probability must lie in [0, 1]");
  return uniform01() < p;
}

void Rng::set_state(const std::array<std::uint64_t, 4>& state) {
  MCS_EXPECTS(state[0] != 0 || state[1] != 0 || state[2] != 0 || state[3] != 0,
              "the all-zero xoshiro256** state is invalid");
  state_ = state;
}

}  // namespace mcs::common
