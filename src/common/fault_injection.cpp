#include "common/fault_injection.hpp"

#include <chrono>
#include <thread>

#include "common/check.hpp"

namespace mcs::common {

namespace {

/// SplitMix64 — the same finalizer Rng uses for seeding; enough mixing to
/// decorrelate (seed, point, stream, hit) lattices.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the pure coordinate hash.
double hash01(std::uint64_t seed, FailPoint point, std::uint64_t stream, std::uint64_t hit) {
  std::uint64_t x = splitmix64(seed);
  x = splitmix64(x ^ (static_cast<std::uint64_t>(point) + 1));
  x = splitmix64(x ^ stream);
  x = splitmix64(x ^ hit);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

bool listed(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& at, std::uint64_t stream,
            std::uint64_t hit) {
  for (const auto& [s, h] : at) {
    if (s == stream && h == hit) {
      return true;
    }
  }
  return false;
}

}  // namespace

const char* to_string(FailPoint point) {
  switch (point) {
    case FailPoint::kShardRun:
      return "shard-run";
    case FailPoint::kJournalAppend:
      return "journal-append";
    case FailPoint::kJournalReplay:
      return "journal-replay";
    case FailPoint::kSinkDispatch:
      return "sink-dispatch";
    case FailPoint::kQueueHandoff:
      return "queue-handoff";
  }
  return "unknown";
}

std::string injected_fault_message(FailPoint point, std::uint64_t stream, std::uint64_t hit) {
  return "injected fault at " + std::string(to_string(point)) + " (stream " +
         std::to_string(stream) + ", hit " + std::to_string(hit) + ")";
}

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {}

void FaultInjector::configure(FailPoint point, FailPointSpec spec) {
  MCS_EXPECTS(spec.fail_prob >= 0.0 && spec.fail_prob <= 1.0,
              "fail point fail_prob must lie in [0, 1]");
  MCS_EXPECTS(spec.stall_prob >= 0.0 && spec.stall_prob <= 1.0,
              "fail point stall_prob must lie in [0, 1]");
  MCS_EXPECTS(spec.fail_prob + spec.stall_prob <= 1.0,
              "fail point fail_prob + stall_prob must not exceed 1");
  MCS_EXPECTS(spec.stall_seconds >= 0.0, "fail point stall_seconds must be non-negative");
  points_[static_cast<std::size_t>(point)].spec = std::move(spec);
}

const FailPointSpec& FaultInjector::spec(FailPoint point) const {
  return points_[static_cast<std::size_t>(point)].spec;
}

FaultDecision FaultInjector::decide(FailPoint point, std::uint64_t stream,
                                    std::uint64_t hit) const {
  const PointState& state = points_[static_cast<std::size_t>(point)];
  const FailPointSpec& spec = state.spec;

  FaultDecision decision;
  if (listed(spec.fail_at, stream, hit)) {
    decision.action = FaultAction::kFail;
  } else if (listed(spec.stall_at, stream, hit)) {
    decision.action = FaultAction::kStall;
  } else if (spec.fail_prob > 0.0 || spec.stall_prob > 0.0) {
    const double u = hash01(seed_, point, stream, hit);
    if (u < spec.fail_prob) {
      decision.action = FaultAction::kFail;
    } else if (u < spec.fail_prob + spec.stall_prob) {
      decision.action = FaultAction::kStall;
    }
  }
  if (decision.action == FaultAction::kStall) {
    decision.stall_seconds = spec.stall_seconds;
    state.stalls.fetch_add(1, std::memory_order_relaxed);
  } else if (decision.action == FaultAction::kFail) {
    state.failures.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

void FaultInjector::act(FailPoint point, std::uint64_t stream, std::uint64_t hit) const {
  const FaultDecision decision = decide(point, stream, hit);
  switch (decision.action) {
    case FaultAction::kNone:
      return;
    case FaultAction::kStall:
      std::this_thread::sleep_for(std::chrono::duration<double>(decision.stall_seconds));
      return;
    case FaultAction::kFail:
      throw InjectedFault(injected_fault_message(point, stream, hit));
  }
}

std::uint64_t FaultInjector::injected_failures(FailPoint point) const {
  return points_[static_cast<std::size_t>(point)].failures.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected_stalls(FailPoint point) const {
  return points_[static_cast<std::size_t>(point)].stalls.load(std::memory_order_relaxed);
}

}  // namespace mcs::common
