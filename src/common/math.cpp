#include "common/math.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mcs::common {

double contribution_from_pos(double p) {
  MCS_EXPECTS(p >= 0.0 && p <= 1.0, "PoS must lie in [0, 1]");
  if (p >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  return -std::log1p(-p);
}

double pos_from_contribution(double q) {
  MCS_EXPECTS(q >= 0.0, "contribution must be non-negative");
  return -std::expm1(-q);
}

double harmonic(std::size_t n) {
  double h = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    h += 1.0 / static_cast<double>(k);
  }
  return h;
}

double harmonic_real(double x) {
  MCS_EXPECTS(x >= 0.0, "harmonic argument must be non-negative");
  const double lo = std::floor(x);
  const double hi = std::ceil(x);
  const double h_lo = harmonic(static_cast<std::size_t>(lo));
  if (lo == hi) {
    return h_lo;
  }
  const double h_hi = harmonic(static_cast<std::size_t>(hi));
  const double frac = x - lo;
  return h_lo + frac * (h_hi - h_lo);
}

bool almost_equal(double a, double b, double eps) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= eps * scale;
}

bool approx_ge(double a, double b, double eps) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return a >= b - eps * scale;
}

double kahan_sum(std::span<const double> values) {
  double sum = 0.0;
  double carry = 0.0;
  for (double v : values) {
    const double y = v - carry;
    const double t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double clamp(double x, double lo, double hi) {
  MCS_EXPECTS(lo <= hi, "clamp bounds must be ordered");
  return std::clamp(x, lo, hi);
}

}  // namespace mcs::common
