// Descriptive statistics used by the evaluation harness: running summaries
// for repeated experiment runs, fixed-bin histograms (Fig 4's PoS PDF), and
// empirical CDFs (Fig 6's utility CDF).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mcs::common {

/// Welford running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n - 1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi]. Finite values outside the range
/// are clamped into the first/last bin so no real sample is silently lost.
/// Non-finite samples (NaN, ±inf) carry no bin information — they are
/// rejected and tallied in dropped() instead of feeding the float→integer
/// bin cast, which is undefined behavior for them.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const double> values);

  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// Non-finite samples rejected by add(); not part of total().
  std::size_t dropped() const { return dropped_; }
  std::size_t count(std::size_t bin) const;
  /// Center of the bin, for plotting.
  double bin_center(std::size_t bin) const;
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  /// Empirical probability mass of the bin (count / total); 0 when empty.
  double mass(std::size_t bin) const;
  /// Probability density estimate (mass / bin width).
  double density(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t dropped_ = 0;
};

/// Empirical CDF over a sample; value() evaluates F(x), quantile() inverts it.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  std::size_t size() const { return sorted_.size(); }
  /// F(x) = fraction of samples <= x.
  double value(double x) const;
  /// Smallest sample s with F(s) >= p; p must be in (0, 1].
  double quantile(double p) const;
  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Mean of a span (0 for an empty span is a precondition violation).
double mean(std::span<const double> values);

/// A two-sided confidence interval for a sample mean.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;

  double half_width() const { return (hi - lo) / 2.0; }
};

/// Percentile-bootstrap confidence interval for the mean of `samples`:
/// resample with replacement `resamples` times and take the
/// ((1−confidence)/2, (1+confidence)/2) quantiles of the resampled means.
/// Requires a non-empty sample, confidence in (0, 1), and resamples >= 10.
/// Deterministic given `rng`.
ConfidenceInterval bootstrap_mean_ci(std::span<const double> samples, double confidence,
                                     std::size_t resamples, class Rng& rng);

}  // namespace mcs::common
