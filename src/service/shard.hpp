// Geo-sharding of campaign rounds (ROADMAP item 1): partition one city-wide
// multi-task round into per-shard sub-auctions by geo::GridMap cell, run each
// shard independently, and merge the per-shard MechanismOutcomes back into
// one round outcome.
//
// Why this is sound: the multi-task mechanism (Algorithms 4 + 5) is
// separable across tasks. A user only ever affects the greedy cover through
// the tasks in her declared set, so when every user's task set lies inside
// one shard, the flat greedy run is exactly an interleaving of the per-shard
// runs — same picks, same residual trajectories, same critical-bid
// bisections. The merge below reconstructs the flat outcome from the shard
// outcomes without recomputing anything:
//
//   * winners: shard winners mapped back to global ids and merged ascending
//     (the flat allocation's documented order);
//   * total_cost: re-summed over the merged winners in ascending-id order
//     with the flat instance's costs — the same summation, in the same
//     order, the flat path performs (MultiTaskView::cost_of);
//   * rewards: per-winner critical bids are shard-local quantities (the
//     without-i greedy only moves inside i's shard), remapped and merged in
//     winner order;
//   * telemetry: summed in shard-index order (deterministic totals).
//
// Determinism contract: sharded ≡ unsharded BIT-IDENTICALLY on
// straddler-free instances under CriticalBidRule::kBinarySearch, for any
// shard count and any worker count (pinned by tests/service_shard_test.cpp).
// Two documented exclusions:
//
//   * CriticalBidRule::kPaperIterationMin takes a minimum over the GLOBAL
//     without-i iteration sequence, which couples shards that share no task;
//     the service refuses it at shard_count > 1 (see service.hpp).
//   * An exact floating-point ratio tie between users in DIFFERENT shards
//     can flip one replayed bisection probe (the flat replay may tie-break
//     against a step the shard run never sees). Cross-shard ties are
//     measure-zero for real-valued bids; within a shard the lowest-id
//     tie-break is preserved exactly because partitioning keeps users in
//     ascending global-id order.
//
// Border-straddler protocol: a user whose declared task set spans multiple
// shards is assigned whole to ONE owning shard — the shard receiving the
// largest share of her declared contribution Σ_j q_i^j (summed in her task
// order), ties broken toward the LOWEST shard id. Her bid keeps its full
// cost but drops the task entries outside the owning shard: conservative
// for the platform (her usable contribution shrinks, she can only become
// less attractive) and strategy-preserving (the restriction depends only on
// task geography, never on her declared values' magnitudes relative to other
// users). With straddlers present, sharded outcomes legitimately differ from
// flat; the partition reports exactly which users were restricted.
#pragma once

#include <cstddef>
#include <vector>

#include "auction/engine.hpp"
#include "geo/grid.hpp"

namespace mcs::service {

/// How cells map to shards. Both policies are pure functions of the cell id
/// and the shard count — two processes with the same configuration always
/// agree on every assignment.
enum class ShardPolicy {
  /// shard = cell % shard_count. Spreads load evenly and is grid-agnostic;
  /// geographically it interleaves columns, so neighborhood-shaped task sets
  /// straddle more often than under kRowBands.
  kCellModulo,
  /// Contiguous horizontal bands of grid rows: shard = row · count / rows.
  /// Keeps neighborhoods together (fewer straddlers for mobility-derived
  /// task sets) at the price of load skew when demand concentrates in a band.
  kRowBands,
};

/// Deterministic cell → shard mapping over a fixed cell domain.
class ShardMap {
 public:
  /// kCellModulo over any non-negative cell domain. Requires count >= 1.
  explicit ShardMap(std::size_t shard_count);

  /// kRowBands over `grid`'s rows. Requires 1 <= count <= grid.rows().
  static ShardMap row_bands(const geo::GridMap& grid, std::size_t shard_count);

  std::size_t shard_count() const { return shard_count_; }
  ShardPolicy policy() const { return policy_; }

  /// Shard owning a cell; requires a valid (non-negative) cell id.
  std::size_t shard_of(geo::CellId cell) const;

 private:
  ShardMap(std::size_t shard_count, ShardPolicy policy, std::int32_t rows, std::int32_t cols);

  std::size_t shard_count_;
  ShardPolicy policy_;
  std::int32_t rows_ = 0;  ///< kRowBands only
  std::int32_t cols_ = 0;  ///< kRowBands only
};

/// One platform round as submitted to the campaign service: a multi-task
/// auction plus the grid cell each task is pinned to (aligned with
/// instance.requirement_pos) — the shard key.
struct GeoRound {
  auction::MultiTaskInstance instance;
  std::vector<geo::CellId> task_cells;
};

/// One shard's slice of a partitioned round: a self-contained sub-instance
/// whose local task/user ids map back to the round's global ids. Local order
/// preserves global order (the partition is stable), so within-shard
/// lowest-id tie-breaks match the flat run's.
struct ShardSlice {
  std::size_t shard = 0;
  auction::MultiTaskInstance instance;
  std::vector<auction::TaskIndex> global_tasks;  ///< local task → global task
  std::vector<auction::UserId> global_users;     ///< local user → global user
};

/// A partitioned round. Only shards owning at least one task materialize.
struct RoundPartition {
  std::vector<ShardSlice> shards;  ///< ascending by shard id
  /// Users whose declared task sets spanned more than one shard, ascending.
  /// Each was assigned to one owning shard per the straddler protocol.
  std::vector<auction::UserId> straddlers;
  /// Users whose declared task sets were empty; they can never win and are
  /// excluded from every shard.
  std::vector<auction::UserId> unassigned_users;
  /// Task entries dropped from straddlers' bids (tasks outside the owner).
  std::size_t dropped_task_entries = 0;
};

/// Splits a round into per-shard sub-auctions. Pure and deterministic:
/// depends only on the round and the map, never on thread counts or
/// scheduling. Requires task_cells aligned with the instance's tasks and
/// valid cell ids; the instance itself is validated by the mechanism run.
RoundPartition partition_round(const GeoRound& round, const ShardMap& map);

/// What a dead shard (kFailed / kTimedOut engine slot) does to the round.
enum class MergePolicy {
  /// A dead shard poisons the whole round: the merge returns kFailed (any
  /// shard failed) or kTimedOut with every dead shard's error aggregated,
  /// and no allocation. This is the bit-identity-preserving default — a
  /// healthy round merges exactly as if the policy knob did not exist.
  kPoisonRound,
  /// Surviving shards still produce a round: the merge returns kDegraded
  /// with the survivors' winners, the dead shards' ENTIRE task slates
  /// reported as uncovered (reusing the partial-coverage reporting channel),
  /// and rewards paid only for shards whose mechanism ran to completion
  /// feasibly. Sound because the shard is the unit of all-or-nothing: a
  /// feasible shard's critical bids are shard-local, so paying its winners
  /// is unaffected by other shards' deaths. If EVERY shard is dead the
  /// policy falls back to kPoisonRound semantics — there is nothing to
  /// salvage. Deterministic: the merged outcome is a pure function of the
  /// slots, never of retry timing or scheduling.
  kDegradedMerge,
};

/// Merges per-shard engine slots (aligned with partition.shards) back into
/// one round-level slot, reconstructing the flat outcome per the contract in
/// the file header. Status under kPoisonRound: any kFailed shard poisons the
/// round (then kTimedOut, then kDegraded), with ALL dead shards' errors
/// aggregated in shard order so operators see the full blast radius; rewards
/// are paid only when every shard is feasible, matching the flat mechanism's
/// all-or-nothing rule. Under kDegradedMerge a partially-dead round becomes
/// kDegraded per the MergePolicy contract above.
/// `flat` must be the round's original instance (for the cost re-summation);
/// `partial_coverage` must echo MechanismConfig::multi_task.partial_coverage
/// so infeasible rounds keep or drop the partial winner prefix exactly as
/// the flat run would.
auction::AuctionOutcome merge_outcomes(const auction::MultiTaskInstance& flat,
                                       const RoundPartition& partition,
                                       const std::vector<auction::AuctionOutcome>& slots,
                                       bool partial_coverage,
                                       MergePolicy policy = MergePolicy::kPoisonRound);

}  // namespace mcs::service
