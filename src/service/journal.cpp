#include "service/journal.hpp"

#include <charconv>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string_view>

#include "common/check.hpp"

namespace mcs::service {

namespace {

constexpr const char* kHeader = "mcs-service-journal-v1";

std::string format_double(double value) {
  char buffer[64];
  // %.17g round-trips every double exactly — replayed outcomes are
  // bit-identical to the computed ones.
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

[[noreturn]] void fail(std::size_t line_number, const std::string& message) {
  throw common::PreconditionError("service journal, line " + std::to_string(line_number) + ": " +
                                  message);
}

struct Line {
  std::size_t number = 0;
  std::vector<std::string> tokens;
  std::string raw_text;  ///< only for the `config` and `error` directives
  std::size_t end_offset = 0;
  bool terminated = false;  ///< false on a torn (no trailing '\n') last line
};

std::vector<Line> meaningful_lines(const std::string& text) {
  std::vector<Line> lines;
  std::size_t number = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    ++number;
    const auto newline = text.find('\n', pos);
    const bool terminated = newline != std::string::npos;
    const std::size_t end_offset = terminated ? newline + 1 : text.size();
    std::string raw = text.substr(pos, (terminated ? newline : text.size()) - pos);
    pos = end_offset;
    if (!raw.empty() && raw.back() == '\r') {
      raw.pop_back();
    }
    const auto first = raw.find_first_not_of(" \t");
    if (first == std::string::npos || raw[first] == '#') {
      continue;
    }
    const auto first_end = raw.find_first_of(" \t", first);
    const std::string keyword = raw.substr(first, first_end - first);
    Line line;
    line.number = number;
    line.end_offset = end_offset;
    line.terminated = terminated;
    if (keyword == "error" || keyword == "config") {
      const auto value = raw.find_first_not_of(" \t", first_end);
      line.tokens = {keyword};
      line.raw_text = value == std::string::npos ? "" : raw.substr(value);
    } else {
      std::string body = raw;
      const auto comment = body.find('#');
      if (comment != std::string::npos) {
        body.resize(comment);
      }
      std::istringstream fields(body);
      std::string token;
      while (fields >> token) {
        line.tokens.push_back(std::move(token));
      }
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

double parse_double(const std::string& token, std::size_t line_number) {
  double value{};
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    fail(line_number, "malformed number '" + token + "'");
  }
  return value;
}

std::uint64_t parse_u64(const std::string& token, std::size_t line_number) {
  std::uint64_t value{};
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    fail(line_number, "malformed count '" + token + "'");
  }
  return value;
}

std::int32_t parse_i32(const std::string& token, std::size_t line_number) {
  std::int64_t value{};
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || value < std::numeric_limits<std::int32_t>::min() ||
      value > std::numeric_limits<std::int32_t>::max()) {
    fail(line_number, "malformed id '" + token + "'");
  }
  return static_cast<std::int32_t>(value);
}

auction::AuctionStatus parse_status(const std::string& token, std::size_t line_number) {
  for (const auto status :
       {auction::AuctionStatus::kOk, auction::AuctionStatus::kDegraded,
        auction::AuctionStatus::kTimedOut, auction::AuctionStatus::kFailed}) {
    if (token == auction::to_string(status)) {
      return status;
    }
  }
  fail(line_number, "unknown status '" + token + "'");
}

std::string flatten_newlines(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return text;
}

/// Cursor over the meaningful lines of one block.
class BlockReader {
 public:
  BlockReader(const std::vector<Line>& lines, std::size_t index) : lines_(lines), index_(index) {}

  std::size_t index() const { return index_; }
  bool at_end() const { return index_ >= lines_.size(); }
  const Line& peek() const { return lines_[index_]; }

  const Line& expect(const std::string& keyword) {
    if (at_end()) {
      fail(lines_.empty() ? 1 : lines_.back().number + 1, "expected '" + keyword + "'");
    }
    const Line& line = lines_[index_++];
    if (line.tokens.front() != keyword) {
      fail(line.number, "expected '" + keyword + "', found '" + line.tokens.front() + "'");
    }
    return line;
  }

  std::size_t expect_count(const std::string& keyword) {
    const Line& line = expect(keyword);
    if (line.tokens.size() < 2) {
      fail(line.number, "expected '" + keyword + " <count> ...'");
    }
    return static_cast<std::size_t>(parse_u64(line.tokens[1], line.number));
  }

 private:
  const std::vector<Line>& lines_;
  std::size_t index_;
};

bool parse_flag(const Line& line) {
  if (line.tokens.size() != 2 || (line.tokens[1] != "0" && line.tokens[1] != "1")) {
    fail(line.number, "expected '" + line.tokens.front() + " 0|1'");
  }
  return line.tokens[1] == "1";
}

/// Parses one epoch block's body (everything between `begin epoch N` and its
/// `end` line, exclusive).
ServiceEpochRecord parse_epoch_body(BlockReader& reader, const Line& begin) {
  ServiceEpochRecord record;
  record.epoch = parse_u64(begin.tokens[2], begin.number);
  {
    const Line& line = reader.expect("status");
    if (line.tokens.size() != 2) {
      fail(line.number, "expected 'status <value>'");
    }
    record.status = parse_status(line.tokens[1], line.number);
  }
  const std::size_t arrival_count = reader.expect_count("arrivals");
  for (std::size_t k = 0; k < arrival_count; ++k) {
    const Line& line = reader.expect("arrival");
    if (line.tokens.size() != 4) {
      fail(line.number, "expected 'arrival <user> <cost> <pos>'");
    }
    auction::online::Arrival arrival;
    arrival.user = parse_i32(line.tokens[1], line.number);
    arrival.bid.cost = parse_double(line.tokens[2], line.number);
    arrival.bid.pos = parse_double(line.tokens[3], line.number);
    record.arrivals.push_back(arrival);
  }
  record.outcome.sample_size = reader.expect_count("sample");
  record.outcome.threshold_updates = reader.expect_count("updates");
  const std::size_t decision_count = reader.expect_count("decisions");
  for (std::size_t k = 0; k < decision_count; ++k) {
    const Line& line = reader.expect("decision");
    if (line.tokens.size() != 12) {
      fail(line.number,
           "expected 'decision <arrival> <user> sample|accept <stage> 0|1 "
           "<threshold> <qbar> <pbar> <cost> <alpha> <remaining>'");
    }
    auction::online::ArrivalDecision decision;
    decision.arrival = static_cast<std::size_t>(parse_u64(line.tokens[1], line.number));
    decision.user = parse_i32(line.tokens[2], line.number);
    if (line.tokens[3] == "sample") {
      decision.phase = auction::online::ArrivalPhase::kSample;
    } else if (line.tokens[3] == "accept") {
      decision.phase = auction::online::ArrivalPhase::kAccept;
    } else {
      fail(line.number, "unknown arrival phase '" + line.tokens[3] + "'");
    }
    decision.stage = static_cast<std::size_t>(parse_u64(line.tokens[4], line.number));
    if (line.tokens[5] != "0" && line.tokens[5] != "1") {
      fail(line.number, "expected accepted flag 0|1");
    }
    decision.accepted = line.tokens[5] == "1";
    decision.threshold = parse_double(line.tokens[6], line.number);
    decision.critical_contribution = parse_double(line.tokens[7], line.number);
    decision.reward.critical_pos = parse_double(line.tokens[8], line.number);
    decision.reward.cost = parse_double(line.tokens[9], line.number);
    decision.reward.alpha = parse_double(line.tokens[10], line.number);
    decision.budget_remaining = parse_double(line.tokens[11], line.number);
    record.outcome.decisions.push_back(decision);
  }
  {
    const Line& line = reader.expect("totals");
    if (line.tokens.size() != 6) {
      fail(line.number, "expected 'totals <cost> <worst_case> <q> <pos> 0|1'");
    }
    record.outcome.total_cost = parse_double(line.tokens[1], line.number);
    record.outcome.worst_case_payout = parse_double(line.tokens[2], line.number);
    record.outcome.achieved_contribution = parse_double(line.tokens[3], line.number);
    record.outcome.achieved_pos = parse_double(line.tokens[4], line.number);
    if (line.tokens[5] != "0" && line.tokens[5] != "1") {
      fail(line.number, "expected requirement-met flag 0|1");
    }
    record.outcome.requirement_met = line.tokens[5] == "1";
  }
  {
    const Line& line = reader.expect("winners");
    if (line.tokens.size() < 2) {
      fail(line.number, "expected 'winners <count> <ids>...'");
    }
    const auto count = parse_u64(line.tokens[1], line.number);
    if (line.tokens.size() != count + 2) {
      fail(line.number, "winner count does not match the listed ids");
    }
    for (std::size_t k = 0; k < count; ++k) {
      record.outcome.winners.push_back(parse_i32(line.tokens[k + 2], line.number));
    }
  }
  record.outcome.accepted = record.outcome.winners.size();
  if (!reader.at_end() && reader.peek().tokens.front() == "error") {
    record.error = reader.peek().raw_text;
    reader.expect("error");
  }
  return record;
}

}  // namespace

std::string to_text(const ServiceJournalRecord& record) {
  std::ostringstream out;
  out << "begin round " << record.round << "\n";
  out << "status " << auction::to_string(record.status) << "\n";
  out << "users " << record.users << "\n";
  out << "tasks " << record.tasks << "\n";
  out << "shards_run " << record.shards_run << "\n";
  out << "straddlers " << record.straddlers << "\n";
  out << "feasible " << (record.outcome.allocation.feasible ? 1 : 0) << "\n";
  out << "degraded " << (record.outcome.degraded ? 1 : 0) << "\n";
  out << "winners " << record.outcome.allocation.winners.size();
  for (auction::UserId winner : record.outcome.allocation.winners) {
    out << ' ' << winner;
  }
  out << "\n";
  out << "total_cost " << format_double(record.outcome.allocation.total_cost) << "\n";
  out << "uncovered " << record.outcome.uncovered_tasks.size();
  for (auction::TaskIndex task : record.outcome.uncovered_tasks) {
    out << ' ' << task;
  }
  out << "\n";
  out << "rewards " << record.outcome.rewards.size() << "\n";
  for (const auto& reward : record.outcome.rewards) {
    out << "reward " << reward.user << ' ' << format_double(reward.critical_contribution) << ' '
        << format_double(reward.reward.critical_pos) << ' ' << format_double(reward.reward.cost)
        << ' ' << format_double(reward.reward.alpha) << "\n";
  }
  if (!record.error.empty()) {
    out << "error " << flatten_newlines(record.error) << "\n";
  }
  out << "end round " << record.round << "\n";
  return out.str();
}

std::string to_text(const ServiceEpochRecord& record) {
  std::ostringstream out;
  out << "begin epoch " << record.epoch << "\n";
  out << "status " << auction::to_string(record.status) << "\n";
  out << "arrivals " << record.arrivals.size() << "\n";
  for (const auto& arrival : record.arrivals) {
    out << "arrival " << arrival.user << ' ' << format_double(arrival.bid.cost) << ' '
        << format_double(arrival.bid.pos) << "\n";
  }
  out << "sample " << record.outcome.sample_size << "\n";
  out << "updates " << record.outcome.threshold_updates << "\n";
  out << "decisions " << record.outcome.decisions.size() << "\n";
  for (const auto& decision : record.outcome.decisions) {
    out << "decision " << decision.arrival << ' ' << decision.user << ' '
        << (decision.phase == auction::online::ArrivalPhase::kSample ? "sample" : "accept") << ' '
        << decision.stage << ' ' << (decision.accepted ? 1 : 0) << ' '
        << format_double(decision.threshold) << ' '
        << format_double(decision.critical_contribution) << ' '
        << format_double(decision.reward.critical_pos) << ' '
        << format_double(decision.reward.cost) << ' ' << format_double(decision.reward.alpha)
        << ' ' << format_double(decision.budget_remaining) << "\n";
  }
  out << "totals " << format_double(record.outcome.total_cost) << ' '
      << format_double(record.outcome.worst_case_payout) << ' '
      << format_double(record.outcome.achieved_contribution) << ' '
      << format_double(record.outcome.achieved_pos) << ' '
      << (record.outcome.requirement_met ? 1 : 0) << "\n";
  out << "winners " << record.outcome.winners.size();
  for (auction::UserId winner : record.outcome.winners) {
    out << ' ' << winner;
  }
  out << "\n";
  if (!record.error.empty()) {
    out << "error " << flatten_newlines(record.error) << "\n";
  }
  out << "end epoch " << record.epoch << "\n";
  return out.str();
}

ReplayedServiceJournal parse_service_journal(const std::string& text) {
  const auto lines = meaningful_lines(text);
  if (lines.empty()) {
    // Empty (or comment-only) file: an empty journal, not corruption — a
    // writer that died before its first byte left nothing to recover.
    return {};
  }
  if (lines.front().tokens.size() != 1 || lines.front().tokens.front() != kHeader) {
    // A write torn inside the very first line leaves an unterminated strict
    // prefix of the header — a torn tail to drop, not corruption to throw.
    if (lines.size() == 1 && !lines.front().terminated && lines.front().tokens.size() == 1 &&
        std::string_view(kHeader).starts_with(lines.front().tokens.front())) {
      return {};
    }
    fail(lines.front().number, "missing mcs-service-journal-v1 header");
  }
  ReplayedServiceJournal result;
  if (!lines.front().terminated) {
    return result;  // torn header write: nothing valid yet
  }
  result.valid_bytes = lines.front().end_offset;
  std::size_t i = 1;
  if (i < lines.size() && lines[i].tokens.front() == "config") {
    if (!lines[i].terminated) {
      return result;
    }
    result.config = lines[i].raw_text;
    result.valid_bytes = lines[i].end_offset;
    ++i;
  }
  while (i < lines.size()) {
    BlockReader reader(lines, i);
    ServiceJournalRecord record;
    ServiceEpochRecord epoch;
    bool is_epoch = false;
    bool complete = true;
    try {
      const Line& begin = reader.expect("begin");
      if (begin.tokens.size() != 3 ||
          (begin.tokens[1] != "round" && begin.tokens[1] != "epoch")) {
        fail(begin.number, "expected 'begin round <n>' or 'begin epoch <n>'");
      }
      is_epoch = begin.tokens[1] == "epoch";
      if (is_epoch) {
        epoch = parse_epoch_body(reader, begin);
      } else {
      record.round = parse_u64(begin.tokens[2], begin.number);
      {
        const Line& line = reader.expect("status");
        if (line.tokens.size() != 2) {
          fail(line.number, "expected 'status <value>'");
        }
        record.status = parse_status(line.tokens[1], line.number);
      }
      record.users = reader.expect_count("users");
      record.tasks = reader.expect_count("tasks");
      record.shards_run = reader.expect_count("shards_run");
      record.straddlers = reader.expect_count("straddlers");
      record.outcome.allocation.feasible = parse_flag(reader.expect("feasible"));
      record.outcome.degraded = parse_flag(reader.expect("degraded"));
      {
        const Line& line = reader.expect("winners");
        if (line.tokens.size() < 2) {
          fail(line.number, "expected 'winners <count> <ids>...'");
        }
        const auto count = parse_u64(line.tokens[1], line.number);
        if (line.tokens.size() != count + 2) {
          fail(line.number, "winner count does not match the listed ids");
        }
        for (std::size_t k = 0; k < count; ++k) {
          record.outcome.allocation.winners.push_back(parse_i32(line.tokens[k + 2], line.number));
        }
      }
      {
        const Line& line = reader.expect("total_cost");
        if (line.tokens.size() != 2) {
          fail(line.number, "expected 'total_cost <value>'");
        }
        record.outcome.allocation.total_cost = parse_double(line.tokens[1], line.number);
      }
      {
        const Line& line = reader.expect("uncovered");
        if (line.tokens.size() < 2) {
          fail(line.number, "expected 'uncovered <count> <tasks>...'");
        }
        const auto count = parse_u64(line.tokens[1], line.number);
        if (line.tokens.size() != count + 2) {
          fail(line.number, "uncovered count does not match the listed tasks");
        }
        for (std::size_t k = 0; k < count; ++k) {
          record.outcome.uncovered_tasks.push_back(parse_i32(line.tokens[k + 2], line.number));
        }
      }
      const std::size_t reward_count = reader.expect_count("rewards");
      for (std::size_t k = 0; k < reward_count; ++k) {
        const Line& line = reader.expect("reward");
        if (line.tokens.size() != 6) {
          fail(line.number, "expected 'reward <user> <q> <p> <cost> <alpha>'");
        }
        auction::WinnerReward reward;
        reward.user = parse_i32(line.tokens[1], line.number);
        reward.critical_contribution = parse_double(line.tokens[2], line.number);
        reward.reward.critical_pos = parse_double(line.tokens[3], line.number);
        reward.reward.cost = parse_double(line.tokens[4], line.number);
        reward.reward.alpha = parse_double(line.tokens[5], line.number);
        record.outcome.rewards.push_back(reward);
      }
      if (!reader.at_end() && reader.peek().tokens.front() == "error") {
        record.error = reader.peek().raw_text;
        reader.expect("error");
      }
      }
      const char* kind = is_epoch ? "epoch" : "round";
      const std::uint64_t id = is_epoch ? epoch.epoch : record.round;
      const Line& end = reader.expect("end");
      if (end.tokens.size() != 3 || end.tokens[1] != kind ||
          parse_u64(end.tokens[2], end.number) != id) {
        fail(end.number,
             "expected 'end " + std::string(kind) + " " + std::to_string(id) + "'");
      }
      if (!end.terminated) {
        complete = false;  // torn final line: drop the block
      } else {
        result.valid_bytes = end.end_offset;
        i = reader.index();
      }
    } catch (const common::PreconditionError&) {
      // Corruption in the LAST block is a torn append and is dropped; any
      // complete block after the corruption point means real damage.
      bool more_blocks = false;
      for (std::size_t k = reader.index(); k < lines.size(); ++k) {
        if (lines[k].tokens.front() == "end" && lines[k].terminated) {
          more_blocks = true;
        }
      }
      if (more_blocks) {
        throw;
      }
      complete = false;
    }
    if (!complete) {
      break;
    }
    if (is_epoch) {
      if (epoch.epoch != result.epochs.size()) {
        fail(lines[i > 0 ? i - 1 : 0].number, "journal epochs are not contiguous from 0");
      }
      result.epochs.push_back(std::move(epoch));
    } else {
      const std::size_t expected = result.records.size();
      if (record.round != expected) {
        fail(lines[i > 0 ? i - 1 : 0].number, "journal rounds are not contiguous from 0");
      }
      result.records.push_back(std::move(record));
    }
  }
  return result;
}

ReplayedServiceJournal load_service_journal(const std::filesystem::path& path) {
  if (!std::filesystem::exists(path)) {
    return {};
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open service journal: " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_service_journal(buffer.str());
}

ServiceJournalWriter::ServiceJournalWriter(const std::filesystem::path& path,
                                           const std::string& config_fingerprint)
    : path_(path) {
  const bool fresh = !std::filesystem::exists(path) || std::filesystem::file_size(path) == 0;
  out_.open(path, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("cannot open service journal for appending: " + path.string());
  }
  if (fresh) {
    out_ << kHeader << "\n";
    if (!config_fingerprint.empty()) {
      out_ << "config " << config_fingerprint << "\n";
    }
    out_.flush();
  }
}

void ServiceJournalWriter::set_fault_injector(
    std::shared_ptr<const common::FaultInjector> injector) {
  fault_injector_ = std::move(injector);
}

void ServiceJournalWriter::append(const ServiceJournalRecord& record) {
  append_text(to_text(record), record.round);
}

void ServiceJournalWriter::append(const ServiceEpochRecord& record) {
  // Epochs share the kJournalAppend stream space with rounds (stream ==
  // epoch id): a chaos spec targeting stream N hits round N and epoch N
  // alike, which is what the injection tests want.
  append_text(to_text(record), record.epoch);
}

void ServiceJournalWriter::append_text(const std::string& text, std::uint64_t fault_stream) {
  // The fault fires BEFORE any byte reaches the file, modelling a full-disk
  // or I/O error on the append; the on-disk journal stays a valid prefix.
  common::fault_point(fault_injector_.get(), common::FailPoint::kJournalAppend, fault_stream, 0);
  out_ << text;
  out_.flush();
  if (!out_) {
    throw std::runtime_error("service journal append failed: " + path_.string());
  }
}

}  // namespace mcs::service
