// The geo-sharded campaign service (ROADMAP item 1): the platform-facing API
// redesigned from "call run_campaign and block" to a long-running handle.
// A CampaignService accepts rounds as requests:
//
//     service::CampaignService service(config);
//     const auto id = service.submit_round({instance, task_cells});
//     ... submit more rounds, do other work ...
//     const auto outcome = service.wait_outcome(id);      // or poll_outcome
//
// Rounds flow through a bounded submission queue into a single dispatcher
// thread, which partitions each round by geo cell (service/shard.hpp), runs
// the per-shard mechanisms through one auction::Engine batch — the engine's
// thread pool is where the concurrency lives; the dispatcher only
// orchestrates — and merges the shard outcomes back into one round outcome.
// Rounds complete strictly in submission order, which keeps the journal
// append-only and the telemetry stream ordered.
//
// API shape:
//   * submit_round blocks while the queue is full (backpressure, bounded
//     memory); try_submit_round refuses instead. Both assign sequential
//     round ids starting at 0 (after any journal-replayed rounds).
//   * poll_outcome / wait_outcome each deliver a round's outcome exactly
//     once: a delivered outcome leaves the service's buffer, so a sustained
//     campaign does not accumulate completed rounds without bound.
//   * stream_telemetry registers a sink invoked on the dispatcher thread
//     after every round, in round order — the push-based view for dashboards
//     and the load generator. Sinks must not call back into the service.
//
// Determinism contract (inherits shard.hpp's): with shard_count == 1 the
// service is a pass-through — every outcome is bit-identical to
// Engine::run_one_isolated on the same instance and config. With
// shard_count > 1 outcomes are bit-identical to the flat run on
// straddler-free rounds under CriticalBidRule::kBinarySearch; the
// constructor refuses kPaperIterationMin at shard_count > 1 because that
// rule couples shards through the global iteration sequence (see shard.hpp).
//
// Durability: with a journal_path configured, every computed round is
// appended to an mcs-service-journal-v1 file (service/journal.hpp). A
// service restarted on that journal serves the journaled rounds from disk —
// resubmitting the same campaign replays settled rounds bit-identically
// without recomputation, then computation resumes at the first un-journaled
// round. A journal written under a different configuration is refused.
//
// Online ingestion (ROADMAP item 1, continuous feed): with
// ServiceConfig::online enabled the service additionally accepts single
// arrivals —
//
//     service.submit_arrival({cost, pos});        // returns {epoch, index}
//     const auto epoch = service.flush_epoch();   // seal the open epoch
//     const auto out = service.wait_epoch(*epoch);
//
// Arrivals fold into the OPEN epoch until flush_epoch (or the
// max_epoch_arrivals auto-flush) seals it; a sealed epoch travels the same
// bounded queue and dispatcher as a round and runs the online threshold
// mechanism (auction/online/mechanism.hpp) over its arrivals in submission
// order. Epoch ids are their own sequence from 0, interleaved with round
// ids. Computed epochs are journaled as optional `begin epoch N` blocks of
// the same mcs-service-journal-v1 file and replay on restart exactly like
// rounds (arrival-list echo check included). poll_epoch/wait_epoch deliver
// exactly once with the same fail-fast id rules as poll/wait_outcome.
//
// Fault model (DESIGN.md §12): the paper's execution uncertainty lives at
// the USER level (PoS < 1); this service additionally survives
// INFRASTRUCTURE faults. The escalation ladder, cheapest rung first:
//
//   1. cooperative deadlines — the mechanism polls its own Deadline and
//      degrades (engine kTimedOut/kDegraded slots);
//   2. per-shard retry with bounded exponential backoff — a failed shard
//      re-runs up to retry.max_attempts times before the merge sees it;
//   3. MergePolicy::kDegradedMerge — a shard dead after its retries costs
//      only its own tasks, not the round (kPoisonRound stays the default);
//   4. stuck-round watchdog — a round wedged past watchdog_seconds is
//      abandoned (its runner parks until destruction) and published as
//      kTimedOut, and the dispatcher keeps serving subsequent rounds.
//
// A throwing/slow telemetry sink is quarantined after N consecutive
// failures; a failed journal append quarantines journaling for the rest of
// the service lifetime (the on-disk journal stays a valid replayable
// prefix). Every recovery path is observable (service.shard_retries,
// service.rounds_degraded, service.sinks_quarantined,
// service.watchdog_fires) and every fault schedule is a pure function of
// the ServiceConfig::fault_injector seed, so chaos runs replay bit-for-bit.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "auction/engine.hpp"
#include "auction/online/mechanism.hpp"
#include "common/deadline.hpp"
#include "common/fault_injection.hpp"
#include "obs/telemetry.hpp"
#include "service/journal.hpp"
#include "service/shard.hpp"

namespace mcs::service {

struct ServiceConfig {
  /// Cell → shard mapping. The default single shard is the pass-through
  /// configuration (no partitioning, bit-identical to the bare engine).
  ShardMap shards = ShardMap(1);
  /// Mechanism configuration applied to every shard of every round.
  auction::MechanismConfig mechanism;
  /// Bound on queued (submitted, not yet dispatched) rounds; submit_round
  /// blocks at the bound. Must be >= 1.
  std::size_t queue_capacity = 64;
  /// Engine worker threads; 0 shares the process-wide pool.
  std::size_t workers = 0;
  /// When non-empty, computed rounds are journaled here and a restart
  /// replays them (see the header comment's durability story).
  std::filesystem::path journal_path;

  /// What a shard that is still dead after its retries does to the round.
  /// kPoisonRound preserves PR-era bit-identity; kDegradedMerge salvages the
  /// surviving shards (see shard.hpp's MergePolicy contract).
  MergePolicy merge_policy = MergePolicy::kPoisonRound;

  /// Per-shard retry with bounded exponential backoff. Attempts are total
  /// (1 = no retry, today's behavior). Backoff sleeps are deadline-aware:
  /// with a watchdog configured, a retry never sleeps past the round's
  /// watchdog budget. Without a fault injector a deterministic mechanism
  /// failure fails identically on every attempt, so retries only change
  /// outcomes when the failure is injected (or genuinely transient).
  struct RetryPolicy {
    std::size_t max_attempts = 1;           ///< total attempts per shard, >= 1
    double initial_backoff_seconds = 0.005; ///< sleep before the first retry
    double backoff_multiplier = 2.0;        ///< growth per retry, >= 1
    double max_backoff_seconds = 0.1;       ///< backoff ceiling
  };
  RetryPolicy retry;

  /// Stuck-round watchdog: a round still running after this many seconds is
  /// abandoned and published as kTimedOut so the dispatcher keeps serving.
  /// 0 disables the watchdog — rounds then compute inline on the dispatcher
  /// thread, exactly the pre-watchdog code path. The abandoned runner parks
  /// until the service destructor (which waits for it), so the watchdog
  /// isolates the ROUND, not the engine's shared thread pool — cooperative
  /// mechanism deadlines remain the tool that protects the pool itself.
  double watchdog_seconds = 0.0;

  /// A telemetry sink failing (throwing, or exceeding sink_slow_seconds)
  /// this many CONSECUTIVE rounds is quarantined: skipped for the rest of
  /// the service lifetime (or until re-subscribed). 0 never quarantines;
  /// failures are still recorded on the round either way.
  std::size_t sink_quarantine_failures = 3;

  /// When positive, a sink call slower than this counts as a failure for
  /// quarantine purposes (a slow dashboard stalls every round: the
  /// dispatcher delivers sinks before outcomes become pollable).
  double sink_slow_seconds = 0.0;

  /// Deterministic fault injection (test/bench facility, never a production
  /// default). Null = disabled, costing one pointer test per fail point.
  /// Excluded from the journal fingerprint — a journal written under
  /// injection replays the outcomes the faults produced, which is the point
  /// of seed-replayable chaos runs.
  std::shared_ptr<common::FaultInjector> fault_injector;

  /// Continuous-feed online ingestion (see the header comment). Disabled by
  /// default — a service without it is byte-for-byte the round-only service,
  /// and its journal fingerprint is unchanged.
  struct OnlineIngest {
    bool enabled = false;
    /// Threshold-mechanism knobs applied to every epoch.
    auction::online::OnlineConfig mechanism;
    /// PoS requirement of each epoch's (single) task, in (0, 1).
    double requirement_pos = 0.9;
    /// An open epoch reaching this many arrivals is flushed automatically
    /// (bounded memory under a firehose). Must be >= 1.
    std::size_t max_epoch_arrivals = 4096;
  };
  OnlineIngest online;
};

/// Where a submitted arrival landed: its epoch and its arrival index (==
/// user id) within that epoch.
struct ArrivalTicket {
  EpochId epoch = 0;
  std::size_t index = 0;
};

/// The settled result of one flushed epoch, delivered exactly once.
struct EpochOutcome {
  EpochId epoch = 0;
  auction::AuctionStatus status = auction::AuctionStatus::kOk;
  /// The online mechanism's full decision log; default-constructed for
  /// kFailed.
  auction::online::OnlineOutcome outcome;
  std::string error;  ///< failure text; empty for kOk
  /// Dispatch-to-settle wall-clock seconds; ~0 for replayed epochs.
  double latency_seconds = 0.0;
  /// True when this outcome was served from the journal, not computed.
  bool replayed_from_journal = false;
  /// Non-empty when journaling this epoch failed (same quarantine story as
  /// rounds).
  std::string journal_error;

  bool ok() const { return status == auction::AuctionStatus::kOk; }
};

/// The settled result of one submitted round, delivered exactly once.
struct RoundOutcome {
  RoundId round = 0;
  auction::AuctionStatus status = auction::AuctionStatus::kOk;
  /// The merged mechanism outcome; default-constructed for
  /// kTimedOut/kFailed (same convention as auction::AuctionOutcome).
  auction::MechanismOutcome outcome;
  std::string error;  ///< failure text; empty for kOk/kDegraded
  std::size_t shards_run = 0;   ///< shards that owned at least one task
  std::size_t straddlers = 0;   ///< users restricted by the straddler protocol
  /// Dispatch-to-merge wall-clock seconds (compute only, not queue wait);
  /// ~0 for journal-replayed rounds; ~watchdog_seconds for abandoned rounds.
  double latency_seconds = 0.0;
  /// True when this outcome was served from the journal, not computed.
  bool replayed_from_journal = false;
  /// Extra shard attempts beyond each shard's first (0 without retries).
  std::size_t shard_retries = 0;
  /// Telemetry sinks that failed while delivering this round ("telemetry
  /// sink <id>: <error>"). The outcome itself is unaffected — a sink
  /// failure never poisons a round.
  std::vector<std::string> sink_errors;
  /// Non-empty when journaling this round failed; the round's outcome
  /// stands, but it (and every later round this lifetime) is not durable.
  std::string journal_error;

  /// True when `outcome` is meaningful (possibly degraded).
  bool ok() const {
    return status == auction::AuctionStatus::kOk || status == auction::AuctionStatus::kDegraded;
  }
};

/// What a telemetry sink sees after every round, in round order.
struct RoundTelemetry {
  RoundId round = 0;
  auction::AuctionStatus status = auction::AuctionStatus::kOk;
  std::size_t shards_run = 0;
  std::size_t straddlers = 0;
  std::size_t shard_retries = 0;
  double latency_seconds = 0.0;
  bool replayed_from_journal = false;
  /// The round's merged mechanism telemetry (all zeros while obs is off).
  obs::MechanismTelemetry mechanism;
};

/// One-line JSON object for a round's telemetry (stable keys; the
/// "mechanism" value is obs::to_json of the merged record).
std::string to_json(const RoundTelemetry& telemetry);

/// Monotonic counters over the service's lifetime (restarts reset them;
/// journal-replayed rounds count as completed AND replayed).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t replayed = 0;  ///< completed rounds served from the journal
  std::uint64_t failed = 0;    ///< completed rounds with status kFailed/kTimedOut
  std::uint64_t degraded = 0;  ///< completed rounds with status kDegraded
  std::uint64_t shard_retries = 0;    ///< extra shard attempts beyond the first
  std::uint64_t watchdog_fires = 0;   ///< rounds abandoned by the watchdog
  std::uint64_t sink_failures = 0;    ///< telemetry sink delivery failures
  std::uint64_t sinks_quarantined = 0;  ///< sinks isolated after repeat failure
  /// Rounds not durably journaled: the append failure that quarantined
  /// journaling plus every round skipped by the quarantine after it.
  std::uint64_t journal_append_failures = 0;
  std::uint64_t arrivals_submitted = 0;  ///< online arrivals accepted into epochs
  std::uint64_t epochs_flushed = 0;      ///< epochs sealed (manual or auto)
  std::uint64_t epochs_completed = 0;
  std::uint64_t epochs_replayed = 0;  ///< completed epochs served from the journal
  std::uint64_t epochs_failed = 0;    ///< completed epochs with status kFailed
};

/// Fingerprint of every ServiceConfig knob that shapes round outcomes (shard
/// map, mechanism) — what the journal's `config` line records. Thread/queue
/// knobs are deliberately excluded: outcomes are bit-identical across worker
/// and queue-capacity settings, so they may change between restarts.
std::string service_config_fingerprint(const ServiceConfig& config);

class CampaignService {
 public:
  /// Starts the dispatcher. Throws PreconditionError on an invalid
  /// configuration — including CriticalBidRule::kPaperIterationMin with
  /// shard_count > 1 (not shard-decomposable, see shard.hpp) — and when the
  /// configured journal was written under a different fingerprint.
  explicit CampaignService(const ServiceConfig& config);

  /// Drains every submitted round (completing, journaling, and streaming
  /// them), then stops the dispatcher. Undelivered outcomes are discarded —
  /// journaled rounds survive, in-memory ones do not.
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  const ServiceConfig& config() const { return config_; }

  /// Number of journaled rounds found at startup: submissions with ids below
  /// this are served from the journal instead of computed.
  std::size_t journaled_rounds() const { return journaled_.size(); }

  /// Submits a round and returns its id, blocking while the queue is full.
  /// task_cells must align with the instance's tasks when shard_count > 1;
  /// a single-shard service ignores them (may be empty).
  RoundId submit_round(GeoRound round);

  /// Non-blocking submit: nullopt when the queue is full.
  std::optional<RoundId> try_submit_round(GeoRound round);

  /// Delivers a completed round's outcome, or nullopt while it is still
  /// queued/running. Throws PreconditionError for an id never submitted or
  /// already delivered.
  std::optional<RoundOutcome> poll_outcome(RoundId round);

  /// Blocks until the round completes and delivers its outcome. Same
  /// id-validity rules as poll_outcome.
  RoundOutcome wait_outcome(RoundId round);

  /// Blocks until every submitted round and flushed epoch has completed
  /// (outcomes may still be undelivered). Arrivals in the open epoch are NOT
  /// waited on — flush first.
  void drain();

  /// Number of journaled epochs found at startup: flushed epochs with ids
  /// below this are served from the journal instead of computed.
  std::size_t journaled_epochs() const { return journaled_epochs_.size(); }

  /// Appends one arrival to the open epoch (online ingestion must be
  /// enabled). Returns where it landed; the arrival's user id within its
  /// epoch is the returned index. Auto-flushes when the open epoch reaches
  /// max_epoch_arrivals, which may block while the queue is full.
  ArrivalTicket submit_arrival(auction::SingleTaskBid bid);

  /// Seals the open epoch and queues it for the dispatcher, blocking while
  /// the queue is full; nullopt when the open epoch is empty. Arrivals still
  /// open at destruction are discarded without an outcome.
  std::optional<EpochId> flush_epoch();

  /// Delivers a completed epoch's outcome, or nullopt while it is still
  /// queued/running. Throws PreconditionError for an id never flushed or
  /// already delivered.
  std::optional<EpochOutcome> poll_epoch(EpochId epoch);

  /// Blocks until the epoch settles and delivers its outcome. Same
  /// id-validity rules as poll_epoch.
  EpochOutcome wait_epoch(EpochId epoch);

  using TelemetrySink = std::function<void(const RoundTelemetry&)>;

  /// Registers a sink; returns the subscription id for unsubscribe. The sink
  /// runs on the dispatcher thread after each round completes, in round
  /// order, BEFORE the outcome becomes pollable (so wait_outcome/drain
  /// returning guarantees every sink saw the round), and must not call back
  /// into the service.
  std::size_t stream_telemetry(TelemetrySink sink);

  /// Removes a subscription. A sink already invoked for an in-flight round
  /// may still be mid-call when this returns.
  void unsubscribe(std::size_t subscription);

  ServiceStats stats() const;

 private:
  struct Request {
    RoundId round = 0;
    GeoRound payload;
    /// Epoch requests reuse the same queue: is_epoch selects which of the
    /// two id sequences (and payloads) is live.
    bool is_epoch = false;
    EpochId epoch = 0;
    std::vector<auction::online::Arrival> arrivals;
  };

  struct Subscription {
    std::size_t id = 0;
    TelemetrySink sink;
    std::size_t consecutive_failures = 0;
    bool quarantined = false;
  };

  void dispatcher_loop();
  /// Runs compute, guarded by the watchdog when configured: on expiry the
  /// runner thread is abandoned (parked in abandoned_, joined at
  /// destruction) and a synthetic kTimedOut outcome is returned.
  RoundOutcome run_guarded(Request request);
  RoundOutcome compute(const Request& request);
  /// One shard's mechanism run through the kShardRun fail point and the
  /// retry/backoff loop. `hit` is the round's running kShardRun hit counter
  /// (with no faults and no retries, hit == shard slice index); `retries`
  /// accumulates extra attempts.
  auction::AuctionOutcome attempt_shard(const auction::MultiTaskInstance& instance, RoundId round,
                                        const common::Deadline& deadline, std::uint64_t& hit,
                                        std::size_t& retries) const;
  void journal_round(const RoundOutcome& outcome, std::size_t users, std::size_t tasks,
                     std::string& journal_error);
  void publish(RoundOutcome outcome);
  /// Seals the open epoch under `lock` (which must hold mutex_); shared by
  /// flush_epoch and the submit_arrival auto-flush. May wait for queue
  /// space, releasing the lock while it does.
  std::optional<EpochId> flush_epoch_locked(std::unique_lock<std::mutex>& lock);
  EpochOutcome compute_epoch(const Request& request);
  void journal_epoch(const EpochOutcome& outcome,
                     const std::vector<auction::online::Arrival>& arrivals,
                     std::string& journal_error);
  void publish_epoch(EpochOutcome outcome);

  ServiceConfig config_;
  auction::Engine engine_;
  std::vector<ServiceJournalRecord> journaled_;  ///< rounds replayed at startup
  std::vector<ServiceEpochRecord> journaled_epochs_;  ///< epochs replayed at startup
  std::unique_ptr<ServiceJournalWriter> journal_;
  /// Cleared by the first failed append: a skipped block would break the
  /// journal's contiguous-from-0 invariant, so one failure quarantines
  /// journaling for the rest of this lifetime (the file stays a valid,
  /// replayable prefix). Dispatcher-thread only.
  bool journal_healthy_ = true;
  /// Last value reported into the service.online_budget_remaining_milli
  /// gauge (the registry is delta-only). Dispatcher-thread only.
  std::int64_t last_budget_remaining_milli_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable queue_space_;   ///< signaled when the queue shrinks
  std::condition_variable queue_ready_;   ///< signaled when work or stop arrives
  std::condition_variable round_done_;    ///< signaled when a round completes
  std::deque<Request> queue_;
  std::map<RoundId, RoundOutcome> completed_;  ///< undelivered outcomes
  RoundId next_round_ = 0;       ///< id the next submission gets
  RoundId next_completed_ = 0;   ///< lowest id not yet completed
  /// Online ingestion state (all guarded by mutex_; empty while disabled).
  std::vector<auction::online::Arrival> open_epoch_;
  std::map<EpochId, EpochOutcome> completed_epochs_;  ///< undelivered epochs
  EpochId next_epoch_ = 0;            ///< id the next flush gets
  EpochId next_epoch_completed_ = 0;  ///< lowest epoch id not yet completed
  ServiceStats stats_;
  bool stopping_ = false;

  std::mutex sinks_mutex_;
  std::vector<Subscription> sinks_;
  std::size_t next_subscription_ = 0;

  /// Watchdog-abandoned round runners: dispatcher-thread only, joined by the
  /// destructor after the dispatcher (teardown waits for wedged rounds —
  /// bounded by the longest injected stall).
  std::vector<std::thread> abandoned_;

  std::thread dispatcher_;  ///< last member: joins before the rest tears down
};

}  // namespace mcs::service
