// The geo-sharded campaign service (ROADMAP item 1): the platform-facing API
// redesigned from "call run_campaign and block" to a long-running handle.
// A CampaignService accepts rounds as requests:
//
//     service::CampaignService service(config);
//     const auto id = service.submit_round({instance, task_cells});
//     ... submit more rounds, do other work ...
//     const auto outcome = service.wait_outcome(id);      // or poll_outcome
//
// Rounds flow through a bounded submission queue into a single dispatcher
// thread, which partitions each round by geo cell (service/shard.hpp), runs
// the per-shard mechanisms through one auction::Engine batch — the engine's
// thread pool is where the concurrency lives; the dispatcher only
// orchestrates — and merges the shard outcomes back into one round outcome.
// Rounds complete strictly in submission order, which keeps the journal
// append-only and the telemetry stream ordered.
//
// API shape:
//   * submit_round blocks while the queue is full (backpressure, bounded
//     memory); try_submit_round refuses instead. Both assign sequential
//     round ids starting at 0 (after any journal-replayed rounds).
//   * poll_outcome / wait_outcome each deliver a round's outcome exactly
//     once: a delivered outcome leaves the service's buffer, so a sustained
//     campaign does not accumulate completed rounds without bound.
//   * stream_telemetry registers a sink invoked on the dispatcher thread
//     after every round, in round order — the push-based view for dashboards
//     and the load generator. Sinks must not call back into the service.
//
// Determinism contract (inherits shard.hpp's): with shard_count == 1 the
// service is a pass-through — every outcome is bit-identical to
// Engine::run_one_isolated on the same instance and config. With
// shard_count > 1 outcomes are bit-identical to the flat run on
// straddler-free rounds under CriticalBidRule::kBinarySearch; the
// constructor refuses kPaperIterationMin at shard_count > 1 because that
// rule couples shards through the global iteration sequence (see shard.hpp).
//
// Durability: with a journal_path configured, every computed round is
// appended to an mcs-service-journal-v1 file (service/journal.hpp). A
// service restarted on that journal serves the journaled rounds from disk —
// resubmitting the same campaign replays settled rounds bit-identically
// without recomputation, then computation resumes at the first un-journaled
// round. A journal written under a different configuration is refused.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "auction/engine.hpp"
#include "obs/telemetry.hpp"
#include "service/journal.hpp"
#include "service/shard.hpp"

namespace mcs::service {

struct ServiceConfig {
  /// Cell → shard mapping. The default single shard is the pass-through
  /// configuration (no partitioning, bit-identical to the bare engine).
  ShardMap shards = ShardMap(1);
  /// Mechanism configuration applied to every shard of every round.
  auction::MechanismConfig mechanism;
  /// Bound on queued (submitted, not yet dispatched) rounds; submit_round
  /// blocks at the bound. Must be >= 1.
  std::size_t queue_capacity = 64;
  /// Engine worker threads; 0 shares the process-wide pool.
  std::size_t workers = 0;
  /// When non-empty, computed rounds are journaled here and a restart
  /// replays them (see the header comment's durability story).
  std::filesystem::path journal_path;
};

/// The settled result of one submitted round, delivered exactly once.
struct RoundOutcome {
  RoundId round = 0;
  auction::AuctionStatus status = auction::AuctionStatus::kOk;
  /// The merged mechanism outcome; default-constructed for
  /// kTimedOut/kFailed (same convention as auction::AuctionOutcome).
  auction::MechanismOutcome outcome;
  std::string error;  ///< failure text; empty for kOk/kDegraded
  std::size_t shards_run = 0;   ///< shards that owned at least one task
  std::size_t straddlers = 0;   ///< users restricted by the straddler protocol
  /// Dispatch-to-merge wall-clock seconds (compute only, not queue wait);
  /// ~0 for journal-replayed rounds.
  double latency_seconds = 0.0;
  /// True when this outcome was served from the journal, not computed.
  bool replayed_from_journal = false;

  /// True when `outcome` is meaningful (possibly degraded).
  bool ok() const {
    return status == auction::AuctionStatus::kOk || status == auction::AuctionStatus::kDegraded;
  }
};

/// What a telemetry sink sees after every round, in round order.
struct RoundTelemetry {
  RoundId round = 0;
  auction::AuctionStatus status = auction::AuctionStatus::kOk;
  std::size_t shards_run = 0;
  std::size_t straddlers = 0;
  double latency_seconds = 0.0;
  bool replayed_from_journal = false;
  /// The round's merged mechanism telemetry (all zeros while obs is off).
  obs::MechanismTelemetry mechanism;
};

/// One-line JSON object for a round's telemetry (stable keys; the
/// "mechanism" value is obs::to_json of the merged record).
std::string to_json(const RoundTelemetry& telemetry);

/// Monotonic counters over the service's lifetime (restarts reset them;
/// journal-replayed rounds count as completed AND replayed).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t replayed = 0;  ///< completed rounds served from the journal
  std::uint64_t failed = 0;    ///< completed rounds with status kFailed/kTimedOut
  std::uint64_t degraded = 0;  ///< completed rounds with status kDegraded
};

/// Fingerprint of every ServiceConfig knob that shapes round outcomes (shard
/// map, mechanism) — what the journal's `config` line records. Thread/queue
/// knobs are deliberately excluded: outcomes are bit-identical across worker
/// and queue-capacity settings, so they may change between restarts.
std::string service_config_fingerprint(const ServiceConfig& config);

class CampaignService {
 public:
  /// Starts the dispatcher. Throws PreconditionError on an invalid
  /// configuration — including CriticalBidRule::kPaperIterationMin with
  /// shard_count > 1 (not shard-decomposable, see shard.hpp) — and when the
  /// configured journal was written under a different fingerprint.
  explicit CampaignService(const ServiceConfig& config);

  /// Drains every submitted round (completing, journaling, and streaming
  /// them), then stops the dispatcher. Undelivered outcomes are discarded —
  /// journaled rounds survive, in-memory ones do not.
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  const ServiceConfig& config() const { return config_; }

  /// Number of journaled rounds found at startup: submissions with ids below
  /// this are served from the journal instead of computed.
  std::size_t journaled_rounds() const { return journaled_.size(); }

  /// Submits a round and returns its id, blocking while the queue is full.
  /// task_cells must align with the instance's tasks when shard_count > 1;
  /// a single-shard service ignores them (may be empty).
  RoundId submit_round(GeoRound round);

  /// Non-blocking submit: nullopt when the queue is full.
  std::optional<RoundId> try_submit_round(GeoRound round);

  /// Delivers a completed round's outcome, or nullopt while it is still
  /// queued/running. Throws PreconditionError for an id never submitted or
  /// already delivered.
  std::optional<RoundOutcome> poll_outcome(RoundId round);

  /// Blocks until the round completes and delivers its outcome. Same
  /// id-validity rules as poll_outcome.
  RoundOutcome wait_outcome(RoundId round);

  /// Blocks until every submitted round has completed (outcomes may still be
  /// undelivered).
  void drain();

  using TelemetrySink = std::function<void(const RoundTelemetry&)>;

  /// Registers a sink; returns the subscription id for unsubscribe. The sink
  /// runs on the dispatcher thread after each round completes, in round
  /// order, BEFORE the outcome becomes pollable (so wait_outcome/drain
  /// returning guarantees every sink saw the round), and must not call back
  /// into the service.
  std::size_t stream_telemetry(TelemetrySink sink);

  /// Removes a subscription. A sink already invoked for an in-flight round
  /// may still be mid-call when this returns.
  void unsubscribe(std::size_t subscription);

  ServiceStats stats() const;

 private:
  struct Request {
    RoundId round = 0;
    GeoRound payload;
  };

  void dispatcher_loop();
  RoundOutcome compute(const Request& request);
  void publish(RoundOutcome outcome);

  ServiceConfig config_;
  auction::Engine engine_;
  std::vector<ServiceJournalRecord> journaled_;  ///< rounds replayed at startup
  std::unique_ptr<ServiceJournalWriter> journal_;

  mutable std::mutex mutex_;
  std::condition_variable queue_space_;   ///< signaled when the queue shrinks
  std::condition_variable queue_ready_;   ///< signaled when work or stop arrives
  std::condition_variable round_done_;    ///< signaled when a round completes
  std::deque<Request> queue_;
  std::map<RoundId, RoundOutcome> completed_;  ///< undelivered outcomes
  RoundId next_round_ = 0;       ///< id the next submission gets
  RoundId next_completed_ = 0;   ///< lowest id not yet completed
  ServiceStats stats_;
  bool stopping_ = false;

  std::mutex sinks_mutex_;
  std::vector<std::pair<std::size_t, TelemetrySink>> sinks_;
  std::size_t next_subscription_ = 0;

  std::thread dispatcher_;  ///< last member: joins before the rest tears down
};

}  // namespace mcs::service
