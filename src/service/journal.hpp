// Append-only round-outcome journal (mcs-service-journal-v1): the campaign
// service's durability story. After every COMPUTED round the service appends
// one self-contained block holding the round's merged outcome; a service
// restarted on the same journal serves those rounds straight from disk
// (RoundOutcome::replayed_from_journal) instead of recomputing them, so a
// crashed traffic stream resumes with every settled round bit-identical
// (doubles are written with %.17g and round-trip exactly).
//
// Format, following the platform journal's text conventions ('#' comments
// and blank lines ignored; the `config` and `error` directives take the raw
// remainder of their line, with newlines in error text flattened to spaces):
//
//     mcs-service-journal-v1
//     config shards=4 policy=0 alpha=10 ...   # fingerprint of the service
//     begin round 0
//     status ok                      # ok | degraded | timed-out | failed
//     users 100                      # sanity echo of the submitted round
//     tasks 12
//     shards_run 4
//     straddlers 3
//     feasible 1
//     degraded 0
//     winners 3 1 5 9                # count, then ascending global user ids
//     total_cost 37.25
//     uncovered 0                    # count, then ascending task indices
//     rewards 3                      # count, then one `reward` line each
//     reward 1 0.51 0.4 12.5 10      # user q̄ p̄ cost alpha
//     error <raw text>               # only present when non-empty
//     end round 0
//
// Services with online ingestion enabled additionally journal one block per
// flushed epoch — OPTIONAL blocks in the PR-4 telemetry-line sense, so
// journals without them (every pre-online journal) parse unchanged:
//
//     begin epoch 0
//     status ok
//     arrivals 2                     # count, then one `arrival` line each
//     arrival 0 3.5 0.25             # user cost pos (submission order)
//     sample 1
//     updates 1                      # stage-boundary threshold relearns
//     decisions 2                    # count, then one `decision` line each
//     decision 0 0 sample 0 0 inf 0 0 0 0 50
//     decision 1 1 accept 1 1 0.082 0.41 0.33 5 10 33.2
//     totals 5 16.8 0.51 0.4 0      # cost worst_case q pos requirement_met
//     winners 1 1
//     end epoch 0
//
// Epoch ids are their own sequence, contiguous from 0, interleaved with
// round blocks in whatever order the service settled them.
//
// A block is only valid once its newline-terminated `end round N` (or
// `end epoch N`) line is
// present: a torn tail (the service died mid-append) is detected and dropped
// on replay, and the writer truncates to the valid prefix before appending.
// Corruption before the last complete block throws. The `config` line
// fingerprints every knob that shapes a round's outcome (shard map,
// mechanism config); replaying under a different configuration throws, since
// the journaled outcomes would not match what the service would compute.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "auction/engine.hpp"
#include "auction/online/mechanism.hpp"
#include "common/fault_injection.hpp"

namespace mcs::service {

/// Round identifier assigned by the service, sequential from 0.
using RoundId = std::uint64_t;

/// Epoch identifier of the online ingestion path, sequential from 0 (its own
/// sequence, independent of round ids).
using EpochId = std::uint64_t;

/// One journaled round: the merged outcome plus the round-shape echo used to
/// detect a diverging resubmission. Telemetry is deliberately not journaled
/// — it describes the run that computed the outcome, not the outcome.
struct ServiceJournalRecord {
  RoundId round = 0;
  auction::AuctionStatus status = auction::AuctionStatus::kOk;
  std::size_t users = 0;  ///< submitted round's user count
  std::size_t tasks = 0;  ///< submitted round's task count
  std::size_t shards_run = 0;
  std::size_t straddlers = 0;
  auction::MechanismOutcome outcome;
  std::string error;
};

/// One journaled online epoch (the continuous-feed ingestion path): the
/// submitted arrivals (the epoch's shape echo, and what a replay is checked
/// against) plus the full per-arrival decision log, so a restarted service
/// serves the epoch bit-identically without re-running the mechanism. Epoch
/// blocks are OPTIONAL lines of mcs-service-journal-v1 in the PR-4 telemetry
/// sense: journals without them (every pre-online journal) parse unchanged.
struct ServiceEpochRecord {
  EpochId epoch = 0;
  auction::AuctionStatus status = auction::AuctionStatus::kOk;
  /// The submitted arrivals in submission order (user id == arrival index).
  std::vector<auction::online::Arrival> arrivals;
  auction::online::OnlineOutcome outcome;
  std::string error;
};

/// Serializes one record as a journal block (without the file header).
std::string to_text(const ServiceJournalRecord& record);
std::string to_text(const ServiceEpochRecord& record);

/// A parsed service journal: complete records plus what a safe append needs.
struct ReplayedServiceJournal {
  std::vector<ServiceJournalRecord> records;  ///< ascending, contiguous from 0
  /// Online epochs, ascending and contiguous from 0 — their own sequence,
  /// interleaved with round blocks in file order. Empty for journals written
  /// before the online ingestion path existed.
  std::vector<ServiceEpochRecord> epochs;
  /// Byte length of the valid prefix; anything past it is a torn tail.
  std::size_t valid_bytes = 0;
  /// Raw `config` fingerprint; empty when the journal has none.
  std::string config;
};

/// Parses a full journal's text. Throws PreconditionError (with line number)
/// on a bad header or corruption before the last complete block; an
/// incomplete trailing block is silently dropped.
ReplayedServiceJournal parse_service_journal(const std::string& text);

/// Loads and parses a journal file. A missing file is an empty journal;
/// other I/O failures throw std::runtime_error naming the path.
ReplayedServiceJournal load_service_journal(const std::filesystem::path& path);

/// Appends records to a journal file, creating it (header + `config` line)
/// when absent or empty. Each append is flushed before returning.
class ServiceJournalWriter {
 public:
  explicit ServiceJournalWriter(const std::filesystem::path& path,
                                const std::string& config_fingerprint = {});

  /// Installs the kJournalAppend fail point (test/bench facility). The fault
  /// fires before any byte is written, so the journal stays a valid prefix.
  void set_fault_injector(std::shared_ptr<const common::FaultInjector> injector);

  void append(const ServiceJournalRecord& record);
  void append(const ServiceEpochRecord& record);

 private:
  void append_text(const std::string& text, std::uint64_t fault_stream);

  std::filesystem::path path_;
  std::ofstream out_;
  std::shared_ptr<const common::FaultInjector> fault_injector_;
};

}  // namespace mcs::service
