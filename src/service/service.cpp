#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace mcs::service {

namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Registry ids of the service's process-wide metrics, resolved once.
struct ServiceMetrics {
  obs::Registry::MetricId submitted;
  obs::Registry::MetricId completed;
  obs::Registry::MetricId replayed;
  obs::Registry::MetricId queue_depth;
  obs::Registry::MetricId shard_retries;
  obs::Registry::MetricId rounds_degraded;
  obs::Registry::MetricId sinks_quarantined;
  obs::Registry::MetricId watchdog_fires;
  obs::Registry::MetricId arrivals;
  obs::Registry::MetricId epochs_completed;
  obs::Registry::MetricId online_accepts;
  obs::Registry::MetricId online_threshold_updates;
  obs::Registry::MetricId online_budget_remaining;

  static const ServiceMetrics& get() {
    static const ServiceMetrics metrics{
        obs::Registry::global().metric("service.rounds_submitted"),
        obs::Registry::global().metric("service.rounds_completed"),
        obs::Registry::global().metric("service.rounds_replayed"),
        obs::Registry::global().metric("service.queue_depth"),
        obs::Registry::global().metric("service.shard_retries"),
        obs::Registry::global().metric("service.rounds_degraded"),
        obs::Registry::global().metric("service.sinks_quarantined"),
        obs::Registry::global().metric("service.watchdog_fires"),
        obs::Registry::global().metric("service.arrivals_submitted"),
        obs::Registry::global().metric("service.epochs_completed"),
        obs::Registry::global().metric("service.online_accepts"),
        obs::Registry::global().metric("service.online_threshold_updates"),
        obs::Registry::global().metric("service.online_budget_remaining_milli"),
    };
    return metrics;
  }
};

bool slot_dead(const auction::AuctionOutcome& slot) {
  return slot.status == auction::AuctionStatus::kFailed ||
         slot.status == auction::AuctionStatus::kTimedOut;
}

}  // namespace

std::string to_json(const RoundTelemetry& telemetry) {
  std::ostringstream out;
  out << "{\"round\":" << telemetry.round                        //
      << ",\"status\":\"" << auction::to_string(telemetry.status) << '"'  //
      << ",\"shards_run\":" << telemetry.shards_run              //
      << ",\"straddlers\":" << telemetry.straddlers              //
      << ",\"shard_retries\":" << telemetry.shard_retries        //
      << ",\"latency_seconds\":" << format_double(telemetry.latency_seconds)
      << ",\"replayed\":" << (telemetry.replayed_from_journal ? 1 : 0)
      << ",\"mechanism\":" << obs::to_json(telemetry.mechanism) << '}';
  return out.str();
}

std::string service_config_fingerprint(const ServiceConfig& config) {
  // Only knobs that shape outcomes; see the declaration for what is excluded
  // (everything covered by a bit-identity contract, plus queue/thread sizes).
  const auto& m = config.mechanism;
  std::ostringstream out;
  out << "shards=" << config.shards.shard_count()                          //
      << " shard_policy=" << static_cast<int>(config.shards.policy())      //
      << " alpha=" << format_double(m.alpha)                               //
      << " auction_seconds=" << format_double(m.time_budget_seconds)       //
      << " degrade=" << (m.degrade_on_timeout ? 1 : 0)                     //
      << " epsilon=" << format_double(m.single_task.epsilon)               //
      << " bisect_iters=" << m.single_task.binary_search_iterations        //
      << " rule=" << static_cast<int>(m.multi_task.critical_bid_rule)      //
      << " partial=" << (m.multi_task.partial_coverage ? 1 : 0);
  if (config.merge_policy != MergePolicy::kPoisonRound) {
    // Only non-default so every pre-MergePolicy journal (implicitly
    // kPoisonRound) keeps resuming. Retry/watchdog/sink knobs and the fault
    // injector are deliberately excluded: without injection they never
    // change a round's outcome, and WITH injection the journaled outcomes
    // are exactly what the seeded faults produced — replayable by design.
    out << " merge=" << static_cast<int>(config.merge_policy);
  }
  if (config.online.enabled) {
    // Only when enabled, so every round-only journal keeps resuming; every
    // knob that shapes an epoch's outcome is covered. max_epoch_arrivals is
    // excluded — it shapes epoch BOUNDARIES, which the arrival echo check
    // already pins per epoch.
    out << " online=1 budget=" << format_double(config.online.mechanism.budget)  //
        << " online_alpha=" << format_double(config.online.mechanism.alpha)      //
        << " phi=" << format_double(config.online.mechanism.sample_fraction)     //
        << " stages=" << config.online.mechanism.stages                          //
        << " req=" << format_double(config.online.requirement_pos);
  }
  return out.str();
}

CampaignService::CampaignService(const ServiceConfig& config)
    : config_(config), engine_(auction::EngineOptions{.workers = config.workers}) {
  MCS_EXPECTS(config.queue_capacity >= 1, "service queue needs capacity >= 1");
  MCS_EXPECTS(config.retry.max_attempts >= 1, "shard retry needs max_attempts >= 1");
  MCS_EXPECTS(config.retry.initial_backoff_seconds >= 0.0 &&
                  config.retry.max_backoff_seconds >= 0.0,
              "shard retry backoffs must be non-negative");
  MCS_EXPECTS(config.retry.backoff_multiplier >= 1.0,
              "shard retry backoff_multiplier must be >= 1 (backoff never shrinks)");
  MCS_EXPECTS(config.watchdog_seconds >= 0.0, "watchdog_seconds must be non-negative (0 = off)");
  MCS_EXPECTS(config.sink_slow_seconds >= 0.0, "sink_slow_seconds must be non-negative (0 = off)");
  if (config.online.enabled) {
    // Fail at construction, not at the first flush: the same checks
    // run_online_mechanism makes per epoch.
    MCS_EXPECTS(config.online.requirement_pos > 0.0 && config.online.requirement_pos < 1.0,
                "online requirement_pos must be in (0, 1)");
    MCS_EXPECTS(config.online.max_epoch_arrivals >= 1, "online max_epoch_arrivals must be >= 1");
    MCS_EXPECTS(config.online.mechanism.budget > 0.0, "online budget must be positive");
    MCS_EXPECTS(config.online.mechanism.alpha > 0.0, "online alpha must be positive");
    MCS_EXPECTS(config.online.mechanism.sample_fraction > 0.0 &&
                    config.online.mechanism.sample_fraction < 1.0,
                "online sample_fraction must be in (0, 1)");
    MCS_EXPECTS(config.online.mechanism.stages >= 1 && config.online.mechanism.stages <= 32,
                "online stages must be in [1, 32]");
  }
  MCS_EXPECTS(config.shards.shard_count() == 1 ||
                  config.mechanism.multi_task.critical_bid_rule !=
                      auction::CriticalBidRule::kPaperIterationMin,
              "CriticalBidRule::kPaperIterationMin is not shard-decomposable (its minimum "
              "ranges over the GLOBAL without-i iteration sequence); use kBinarySearch or a "
              "single shard");
  if (!config_.journal_path.empty()) {
    const auto fingerprint = service_config_fingerprint(config_);
    auto replayed = load_service_journal(config_.journal_path);
    if (replayed.config.empty()) {
      MCS_EXPECTS(replayed.records.empty() && replayed.epochs.empty(),
                  "service journal has rounds but no config fingerprint");
    } else {
      MCS_EXPECTS(replayed.config == fingerprint,
                  "service journal was written under a different service configuration; "
                  "replaying it would serve outcomes this service would not compute");
    }
    journaled_ = std::move(replayed.records);
    journaled_epochs_ = std::move(replayed.epochs);
    // Drop any torn tail before appending, as the platform journal does: the
    // next round's block must follow the last complete one.
    if (std::filesystem::exists(config_.journal_path) &&
        std::filesystem::file_size(config_.journal_path) > replayed.valid_bytes) {
      std::filesystem::resize_file(config_.journal_path, replayed.valid_bytes);
    }
    journal_ = std::make_unique<ServiceJournalWriter>(config_.journal_path, fingerprint);
    journal_->set_fault_injector(config_.fault_injector);
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

CampaignService::~CampaignService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_ready_.notify_all();
  dispatcher_.join();
  // Watchdog-abandoned runners finish (or sleep out their injected stalls)
  // here; their outcomes are discarded — the rounds already published as
  // kTimedOut. Joining after the dispatcher keeps abandoned_ single-owner.
  for (auto& runner : abandoned_) {
    runner.join();
  }
}

RoundId CampaignService::submit_round(GeoRound round) {
  std::unique_lock<std::mutex> lock(mutex_);
  queue_space_.wait(lock, [this] { return queue_.size() < config_.queue_capacity; });
  const RoundId id = next_round_++;
  Request request;
  request.round = id;
  request.payload = std::move(round);
  queue_.push_back(std::move(request));
  ++stats_.submitted;
  obs::Registry::global().add(ServiceMetrics::get().submitted, 1);
  obs::Registry::global().add(ServiceMetrics::get().queue_depth, 1);
  lock.unlock();
  queue_ready_.notify_one();
  return id;
}

std::optional<RoundId> CampaignService::try_submit_round(GeoRound round) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.size() >= config_.queue_capacity) {
    return std::nullopt;
  }
  const RoundId id = next_round_++;
  Request request;
  request.round = id;
  request.payload = std::move(round);
  queue_.push_back(std::move(request));
  ++stats_.submitted;
  obs::Registry::global().add(ServiceMetrics::get().submitted, 1);
  obs::Registry::global().add(ServiceMetrics::get().queue_depth, 1);
  lock.unlock();
  queue_ready_.notify_one();
  return id;
}

std::optional<RoundOutcome> CampaignService::poll_outcome(RoundId round) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Fail fast on ids this service can never deliver — waiting on one would
  // otherwise block forever (poll would spin forever), so the id checks are
  // part of the exactly-once contract, not just hygiene. The message names
  // the id and the valid range so the caller's bug is diagnosable.
  MCS_EXPECTS(round < next_round_,
              "poll_outcome: round " + std::to_string(round) +
                  " was never submitted (next round id is " + std::to_string(next_round_) + ")");
  const auto it = completed_.find(round);
  if (it != completed_.end()) {
    RoundOutcome outcome = std::move(it->second);
    completed_.erase(it);
    return outcome;
  }
  MCS_EXPECTS(round >= next_completed_,
              "poll_outcome: round " + std::to_string(round) +
                  "'s outcome was already delivered (outcomes deliver exactly once)");
  return std::nullopt;
}

RoundOutcome CampaignService::wait_outcome(RoundId round) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Checked BEFORE the wait: an id that was never submitted has no round to
  // complete, so waiting on it would block forever.
  MCS_EXPECTS(round < next_round_,
              "wait_outcome: round " + std::to_string(round) +
                  " was never submitted (next round id is " + std::to_string(next_round_) + ")");
  round_done_.wait(lock, [this, round] { return round < next_completed_; });
  const auto it = completed_.find(round);
  MCS_EXPECTS(it != completed_.end(),
              "wait_outcome: round " + std::to_string(round) +
                  "'s outcome was already delivered (outcomes deliver exactly once)");
  RoundOutcome outcome = std::move(it->second);
  completed_.erase(it);
  return outcome;
}

void CampaignService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  round_done_.wait(lock, [this] {
    return next_completed_ == next_round_ && next_epoch_completed_ == next_epoch_;
  });
}

ArrivalTicket CampaignService::submit_arrival(auction::SingleTaskBid bid) {
  std::unique_lock<std::mutex> lock(mutex_);
  MCS_EXPECTS(config_.online.enabled, "submit_arrival: online ingestion is not enabled");
  // The same bid validation ArrivalStream would apply, surfaced at the
  // ingestion edge so a bad arrival cannot poison its whole epoch.
  MCS_EXPECTS(bid.cost > 0.0, "submit_arrival: arrival cost must be positive");
  MCS_EXPECTS(bid.pos >= 0.0 && bid.pos <= 1.0, "submit_arrival: arrival PoS must be in [0, 1]");
  const ArrivalTicket ticket{next_epoch_, open_epoch_.size()};
  open_epoch_.push_back(
      auction::online::Arrival{static_cast<auction::UserId>(open_epoch_.size()), bid});
  ++stats_.arrivals_submitted;
  obs::Registry::global().add(ServiceMetrics::get().arrivals, 1);
  if (open_epoch_.size() >= config_.online.max_epoch_arrivals) {
    flush_epoch_locked(lock);  // bounded memory under a firehose
  }
  return ticket;
}

std::optional<EpochId> CampaignService::flush_epoch() {
  std::unique_lock<std::mutex> lock(mutex_);
  MCS_EXPECTS(config_.online.enabled, "flush_epoch: online ingestion is not enabled");
  return flush_epoch_locked(lock);
}

std::optional<EpochId> CampaignService::flush_epoch_locked(std::unique_lock<std::mutex>& lock) {
  if (open_epoch_.empty()) {
    return std::nullopt;
  }
  queue_space_.wait(lock, [this] { return queue_.size() < config_.queue_capacity; });
  if (open_epoch_.empty()) {
    return std::nullopt;  // a concurrent flush sealed it while we waited
  }
  Request request;
  request.is_epoch = true;
  request.epoch = next_epoch_++;
  request.arrivals = std::move(open_epoch_);
  open_epoch_.clear();
  const EpochId id = request.epoch;
  queue_.push_back(std::move(request));
  ++stats_.epochs_flushed;
  obs::Registry::global().add(ServiceMetrics::get().queue_depth, 1);
  lock.unlock();
  queue_ready_.notify_one();
  return id;
}

std::optional<EpochOutcome> CampaignService::poll_epoch(EpochId epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  MCS_EXPECTS(epoch < next_epoch_,
              "poll_epoch: epoch " + std::to_string(epoch) +
                  " was never flushed (next epoch id is " + std::to_string(next_epoch_) + ")");
  const auto it = completed_epochs_.find(epoch);
  if (it != completed_epochs_.end()) {
    EpochOutcome outcome = std::move(it->second);
    completed_epochs_.erase(it);
    return outcome;
  }
  MCS_EXPECTS(epoch >= next_epoch_completed_,
              "poll_epoch: epoch " + std::to_string(epoch) +
                  "'s outcome was already delivered (outcomes deliver exactly once)");
  return std::nullopt;
}

EpochOutcome CampaignService::wait_epoch(EpochId epoch) {
  std::unique_lock<std::mutex> lock(mutex_);
  MCS_EXPECTS(epoch < next_epoch_,
              "wait_epoch: epoch " + std::to_string(epoch) +
                  " was never flushed (next epoch id is " + std::to_string(next_epoch_) + ")");
  round_done_.wait(lock, [this, epoch] { return epoch < next_epoch_completed_; });
  const auto it = completed_epochs_.find(epoch);
  MCS_EXPECTS(it != completed_epochs_.end(),
              "wait_epoch: epoch " + std::to_string(epoch) +
                  "'s outcome was already delivered (outcomes deliver exactly once)");
  EpochOutcome outcome = std::move(it->second);
  completed_epochs_.erase(it);
  return outcome;
}

std::size_t CampaignService::stream_telemetry(TelemetrySink sink) {
  MCS_EXPECTS(sink != nullptr, "stream_telemetry needs a callable sink");
  std::lock_guard<std::mutex> lock(sinks_mutex_);
  const std::size_t id = next_subscription_++;
  sinks_.push_back(Subscription{id, std::move(sink), 0, false});
  return id;
}

void CampaignService::unsubscribe(std::size_t subscription) {
  std::lock_guard<std::mutex> lock(sinks_mutex_);
  for (std::size_t k = 0; k < sinks_.size(); ++k) {
    if (sinks_[k].id == subscription) {
      sinks_.erase(sinks_.begin() + static_cast<std::ptrdiff_t>(k));
      return;
    }
  }
  throw common::PreconditionError("unsubscribe: unknown telemetry subscription");
}

ServiceStats CampaignService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void CampaignService::dispatcher_loop() {
  for (;;) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping, and every submitted round has been served
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      obs::Registry::global().add(ServiceMetrics::get().queue_depth, -1);
    }
    queue_space_.notify_one();

    if (request.is_epoch) {
      // Epochs compute inline on the dispatcher: the online mechanism is a
      // single O(n log n) pass, so the watchdog/retry ladder that guards
      // round computation would be pure overhead here.
      EpochOutcome out = compute_epoch(request);
      journal_epoch(out, request.arrivals, out.journal_error);
      publish_epoch(std::move(out));
      continue;
    }

    // The round's journaled shape must be captured before run_guarded takes
    // ownership of the request (the watchdog path moves it into the runner).
    const RoundId round = request.round;
    const std::size_t users = request.payload.instance.num_users();
    const std::size_t tasks = request.payload.instance.num_tasks();

    RoundOutcome out;
    try {
      // A dropped handoff still publishes: the round fails LOUDLY — every
      // submitted id stays pollable exactly once, never silently lost.
      common::fault_point(config_.fault_injector.get(), common::FailPoint::kQueueHandoff, round,
                          0);
      out = run_guarded(std::move(request));
    } catch (const std::exception& e) {
      out = RoundOutcome{};
      out.round = round;
      out.status = auction::AuctionStatus::kFailed;
      out.error = e.what();
    }

    journal_round(out, users, tasks, out.journal_error);
    publish(std::move(out));
  }
}

RoundOutcome CampaignService::run_guarded(Request request) {
  // Journal-replayed rounds are instant and never wedge; the watchdog only
  // guards computed rounds.
  if (config_.watchdog_seconds <= 0.0 || request.round < journaled_.size()) {
    return compute(request);
  }

  struct GuardedRun {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    Request request;
    RoundOutcome outcome;
  };
  auto run = std::make_shared<GuardedRun>();
  const RoundId round = request.round;
  run->request = std::move(request);

  // One thread per guarded round, not a second pool: the runner only
  // orchestrates (the engine's pool still does the work), and a wedged
  // runner must be abandonable without poisoning any reusable worker.
  std::thread runner([this, run] {
    RoundOutcome outcome;
    try {
      outcome = compute(run->request);
    } catch (const std::exception& e) {
      outcome.round = run->request.round;
      outcome.status = auction::AuctionStatus::kFailed;
      outcome.error = e.what();
    }
    std::lock_guard<std::mutex> lock(run->m);
    run->outcome = std::move(outcome);
    run->done = true;
    run->cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(run->m);
  const bool finished =
      run->cv.wait_for(lock, std::chrono::duration<double>(config_.watchdog_seconds),
                       [&run] { return run->done; });
  lock.unlock();
  if (finished) {
    runner.join();
    return std::move(run->outcome);
  }

  // Watchdog fires: abandon the runner (it keeps the shared GuardedRun state
  // alive and is joined at destruction) and synthesize the round's outcome.
  // The escalation ladder's last rung — cooperative deadlines and retries
  // both failed to bring the round home in time.
  abandoned_.push_back(std::move(runner));
  {
    std::lock_guard<std::mutex> stats_lock(mutex_);
    ++stats_.watchdog_fires;
  }
  obs::Registry::global().add(ServiceMetrics::get().watchdog_fires, 1);

  RoundOutcome out;
  out.round = round;
  out.status = auction::AuctionStatus::kTimedOut;
  out.error = "watchdog: round still running after " +
              format_double(config_.watchdog_seconds) + "s; runner abandoned";
  out.latency_seconds = config_.watchdog_seconds;
  return out;
}

RoundOutcome CampaignService::compute(const Request& request) {
  RoundOutcome out;
  out.round = request.round;

  // Durability: a round already settled in the journal is served from disk,
  // bit-identically, without recomputation — unless the resubmitted round's
  // shape diverges from what was journaled, which means the caller is not
  // replaying the same campaign.
  if (request.round < journaled_.size()) {
    try {
      common::fault_point(config_.fault_injector.get(), common::FailPoint::kJournalReplay,
                          request.round, 0);
    } catch (const std::exception& e) {
      // A replay that cannot be read fails the round rather than silently
      // recomputing it — the journaled outcome is the settled truth.
      out.status = auction::AuctionStatus::kFailed;
      out.error = e.what();
      return out;
    }
    const auto& record = journaled_[static_cast<std::size_t>(request.round)];
    if (record.users != request.payload.instance.num_users() ||
        record.tasks != request.payload.instance.num_tasks()) {
      out.status = auction::AuctionStatus::kFailed;
      out.error = "journal replay mismatch: round " + std::to_string(request.round) +
                  " was journaled with " + std::to_string(record.users) + " users / " +
                  std::to_string(record.tasks) + " tasks but resubmitted with " +
                  std::to_string(request.payload.instance.num_users()) + " / " +
                  std::to_string(request.payload.instance.num_tasks());
      return out;
    }
    out.status = record.status;
    out.outcome = record.outcome;
    out.error = record.error;
    out.shards_run = record.shards_run;
    out.straddlers = record.straddlers;
    out.replayed_from_journal = true;
    return out;
  }

  const auto start = std::chrono::steady_clock::now();
  // The serial per-shard path exists for fault coverage: the kShardRun fail
  // point and the retry loop need each shard attempt individually
  // addressable. Engine batches are documented bit-identical to serial
  // per-instance runs, so taking it never changes a healthy outcome; the
  // batch fast path is kept for the common fault-free, no-retry service so
  // PR 6 behavior stays byte-for-byte the same code.
  const bool serial_shards =
      config_.fault_injector != nullptr || config_.retry.max_attempts > 1;
  // Retry backoffs never sleep past the watchdog: a retry that cannot start
  // before the round is abandoned is pure waste.
  const auto deadline = common::Deadline::from_budget(config_.watchdog_seconds);
  try {
    if (config_.shards.shard_count() == 1) {
      // Pass-through: bit-identical to the bare engine by construction.
      auction::AuctionOutcome slot;
      if (serial_shards) {
        std::uint64_t hit = 0;
        std::size_t retries = 0;
        slot = attempt_shard(request.payload.instance, request.round, deadline, hit, retries);
        out.shard_retries = retries;
      } else {
        slot = engine_.run_one_isolated(request.payload.instance, config_.mechanism);
      }
      out.status = slot.status;
      out.outcome = std::move(slot.outcome);
      out.error = std::move(slot.error);
      out.shards_run = 1;
    } else {
      auto partition = partition_round(request.payload, config_.shards);
      out.straddlers = partition.straddlers.size();
      if (partition.shards.empty()) {
        // No shard owns a task (a zero-task round): run flat so the outcome
        // matches whatever the mechanism says about the degenerate instance.
        auto slot = engine_.run_one_isolated(request.payload.instance, config_.mechanism);
        out.status = slot.status;
        out.outcome = std::move(slot.outcome);
        out.error = std::move(slot.error);
        out.shards_run = 0;
      } else {
        std::vector<auction::AuctionOutcome> slots;
        if (serial_shards) {
          // Shards run in slice order, so with no faults and no retries the
          // round's kShardRun hit index IS the slice index — how a schedule
          // targets "round r, shard s" (see fault_injection.hpp).
          slots.reserve(partition.shards.size());
          std::uint64_t hit = 0;
          std::size_t retries = 0;
          for (const auto& slice : partition.shards) {
            slots.push_back(
                attempt_shard(slice.instance, request.round, deadline, hit, retries));
          }
          out.shard_retries = retries;
        } else {
          std::vector<auction::MultiTaskInstance> batch;
          batch.reserve(partition.shards.size());
          for (auto& slice : partition.shards) {
            batch.push_back(std::move(slice.instance));
          }
          slots = engine_.run_isolated(batch, config_.mechanism);
        }
        auto merged =
            merge_outcomes(request.payload.instance, partition, slots,
                           config_.mechanism.multi_task.partial_coverage, config_.merge_policy);
        out.status = merged.status;
        out.outcome = std::move(merged.outcome);
        out.error = std::move(merged.error);
        out.shards_run = partition.shards.size();
      }
    }
  } catch (const std::exception& e) {
    // Partitioning rejected the round (e.g. task_cells misaligned with the
    // instance) — poison this round only, like the engine's isolated path.
    out.status = auction::AuctionStatus::kFailed;
    out.outcome = auction::MechanismOutcome{};
    out.error = e.what();
  }
  out.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return out;
}

auction::AuctionOutcome CampaignService::attempt_shard(
    const auction::MultiTaskInstance& instance, RoundId round, const common::Deadline& deadline,
    std::uint64_t& hit, std::size_t& retries) const {
  auction::AuctionOutcome slot;
  double backoff = config_.retry.initial_backoff_seconds;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      common::fault_point(config_.fault_injector.get(), common::FailPoint::kShardRun, round,
                          hit++);
      slot = engine_.run_one_isolated(instance, config_.mechanism);
    } catch (const std::exception& e) {
      // An injected shard failure lands exactly where a real one would: a
      // dead slot for the merge policy to rule on.
      slot = auction::AuctionOutcome{};
      slot.status = auction::AuctionStatus::kFailed;
      slot.error = e.what();
    }
    if (!slot_dead(slot) || attempt + 1 >= config_.retry.max_attempts) {
      return slot;
    }
    const double remaining = deadline.remaining_seconds();
    if (remaining <= 0.0) {
      return slot;  // the watchdog is about to fire; don't burn its budget
    }
    const double sleep_seconds =
        std::isfinite(remaining) ? std::min(backoff, remaining) : backoff;
    if (sleep_seconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
    }
    backoff = std::min(backoff * config_.retry.backoff_multiplier,
                       config_.retry.max_backoff_seconds);
    ++retries;
  }
}

EpochOutcome CampaignService::compute_epoch(const Request& request) {
  EpochOutcome out;
  out.epoch = request.epoch;

  // Durability mirrors rounds: a journaled epoch is served from disk,
  // bit-identically, unless the re-fed arrivals diverge from what was
  // journaled (%.17g round-trips, so exact equality is the right test).
  if (request.epoch < journaled_epochs_.size()) {
    const auto& record = journaled_epochs_[static_cast<std::size_t>(request.epoch)];
    bool matches = record.arrivals.size() == request.arrivals.size();
    for (std::size_t k = 0; matches && k < record.arrivals.size(); ++k) {
      matches = record.arrivals[k].user == request.arrivals[k].user &&
                record.arrivals[k].bid.cost == request.arrivals[k].bid.cost &&
                record.arrivals[k].bid.pos == request.arrivals[k].bid.pos;
    }
    if (!matches) {
      out.status = auction::AuctionStatus::kFailed;
      out.error = "journal replay mismatch: epoch " + std::to_string(request.epoch) +
                  " was journaled with " + std::to_string(record.arrivals.size()) +
                  " arrivals that do not match the " + std::to_string(request.arrivals.size()) +
                  " re-fed ones";
      return out;
    }
    out.status = record.status;
    out.outcome = record.outcome;
    out.error = record.error;
    out.replayed_from_journal = true;
    return out;
  }

  const auto start = std::chrono::steady_clock::now();
  try {
    const auction::online::ArrivalStream stream(config_.online.requirement_pos,
                                                request.arrivals);
    out.outcome = auction::online::run_online_mechanism(stream, config_.online.mechanism);
  } catch (const std::exception& e) {
    // A rejected epoch poisons itself only, like a failed round.
    out.status = auction::AuctionStatus::kFailed;
    out.outcome = auction::online::OnlineOutcome{};
    out.error = e.what();
  }
  out.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return out;
}

void CampaignService::journal_epoch(const EpochOutcome& outcome,
                                    const std::vector<auction::online::Arrival>& arrivals,
                                    std::string& journal_error) {
  if (!journal_ || outcome.replayed_from_journal) {
    return;
  }
  // A failed replay (arrival mismatch) is NOT replayed_from_journal, but its
  // block already exists on disk — appending again would duplicate the id
  // and break the journal's contiguous-from-0 invariant on the next load.
  if (outcome.epoch < journaled_epochs_.size()) {
    return;
  }
  if (!journal_healthy_) {
    journal_error = "journal quarantined by an earlier append failure; epoch not journaled";
    return;
  }
  ServiceEpochRecord record;
  record.epoch = outcome.epoch;
  record.status = outcome.status;
  record.arrivals = arrivals;
  record.outcome = outcome.outcome;
  record.error = outcome.error;
  try {
    journal_->append(record);
  } catch (const std::exception& e) {
    // Same quarantine as rounds: epochs and rounds share the file, so one
    // failed append stops BOTH sequences from appending (each would
    // otherwise grow a gap).
    journal_healthy_ = false;
    journal_error = std::string("journal append failed: ") + e.what();
  }
}

void CampaignService::publish_epoch(EpochOutcome outcome) {
  obs::Registry::global().add(ServiceMetrics::get().online_accepts,
                              static_cast<std::int64_t>(outcome.outcome.accepted));
  obs::Registry::global().add(ServiceMetrics::get().online_threshold_updates,
                              static_cast<std::int64_t>(outcome.outcome.threshold_updates));
  // Gauge (additive deltas, dispatcher-thread only): the last settled
  // epoch's unspent worst-case budget, in milli-units so the integer
  // registry keeps three decimals.
  const auto remaining_milli = static_cast<std::int64_t>(
      (config_.online.mechanism.budget - outcome.outcome.worst_case_payout) * 1000.0);
  obs::Registry::global().add(ServiceMetrics::get().online_budget_remaining,
                              remaining_milli - last_budget_remaining_milli_);
  last_budget_remaining_milli_ = remaining_milli;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MCS_ENSURES(outcome.epoch == next_epoch_completed_, "epochs must complete in flush order");
    ++stats_.epochs_completed;
    if (!outcome.journal_error.empty()) {
      ++stats_.journal_append_failures;
    }
    if (outcome.replayed_from_journal) {
      ++stats_.epochs_replayed;
    }
    if (!outcome.ok()) {
      ++stats_.epochs_failed;
    }
    completed_epochs_.emplace(outcome.epoch, std::move(outcome));
    ++next_epoch_completed_;
    obs::Registry::global().add(ServiceMetrics::get().epochs_completed, 1);
  }
  round_done_.notify_all();
}

void CampaignService::journal_round(const RoundOutcome& outcome, std::size_t users,
                                    std::size_t tasks, std::string& journal_error) {
  if (!journal_ || outcome.replayed_from_journal) {
    return;
  }
  // A replay-mismatch failure carries an id whose block is already on disk;
  // appending it again would duplicate the id and break the journal's
  // contiguous-from-0 invariant on the next load.
  if (outcome.round < journaled_.size()) {
    return;
  }
  if (!journal_healthy_) {
    // Quarantined by an earlier failed append: the skipped block keeps the
    // on-disk prefix contiguous, and the lost durability stays visible on
    // every affected round.
    journal_error = "journal quarantined by an earlier append failure; round not journaled";
    return;
  }
  ServiceJournalRecord record;
  record.round = outcome.round;
  record.status = outcome.status;
  record.users = users;
  record.tasks = tasks;
  record.shards_run = outcome.shards_run;
  record.straddlers = outcome.straddlers;
  record.outcome = outcome.outcome;
  record.error = outcome.error;
  try {
    journal_->append(record);
  } catch (const std::exception& e) {
    // One failed append quarantines journaling for this lifetime: a skipped
    // block would break the journal's contiguous-from-0 invariant and brick
    // every later replay. The file keeps its valid prefix; the round's
    // outcome stands, just not durably.
    journal_healthy_ = false;
    journal_error = std::string("journal append failed: ") + e.what();
  }
}

void CampaignService::publish(RoundOutcome outcome) {
  RoundTelemetry telemetry;
  telemetry.round = outcome.round;
  telemetry.status = outcome.status;
  telemetry.shards_run = outcome.shards_run;
  telemetry.straddlers = outcome.straddlers;
  telemetry.shard_retries = outcome.shard_retries;
  telemetry.latency_seconds = outcome.latency_seconds;
  telemetry.replayed_from_journal = outcome.replayed_from_journal;
  telemetry.mechanism = outcome.outcome.telemetry;

  // Sinks run BEFORE the outcome becomes pollable, so a caller returning
  // from wait_outcome/drain knows every sink already saw the round — anyone
  // tearing down sink state after a drain cannot race a late delivery. They
  // run outside mutex_ so a slow dashboard cannot stall poll/submit;
  // copying the list keeps unsubscribe-during-delivery safe (the documented
  // caveat: an in-flight call to a just-removed sink may still finish).
  // Quarantined sinks are skipped entirely.
  struct SinkCall {
    std::size_t id = 0;
    TelemetrySink sink;
  };
  std::vector<SinkCall> calls;
  {
    std::lock_guard<std::mutex> lock(sinks_mutex_);
    for (const auto& sub : sinks_) {
      if (!sub.quarantined) {
        calls.push_back(SinkCall{sub.id, sub.sink});
      }
    }
  }
  // Each delivery is wrapped: a throwing (or, with sink_slow_seconds, a
  // slow) sink records an error on the round instead of propagating out of
  // the dispatcher thread, and its failure streak feeds the quarantine. The
  // kSinkDispatch hit index is the sink's ordinal in this round's delivery
  // list, so a schedule can target "round r, second sink".
  struct SinkResult {
    std::size_t id = 0;
    bool failed = false;
  };
  std::vector<SinkResult> results;
  results.reserve(calls.size());
  for (std::size_t ordinal = 0; ordinal < calls.size(); ++ordinal) {
    std::string error;
    const auto begin = std::chrono::steady_clock::now();
    try {
      common::fault_point(config_.fault_injector.get(), common::FailPoint::kSinkDispatch,
                          outcome.round, ordinal);
      calls[ordinal].sink(telemetry);
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown exception";
    }
    if (error.empty() && config_.sink_slow_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
      if (elapsed > config_.sink_slow_seconds) {
        error = "sink exceeded " + format_double(config_.sink_slow_seconds) + "s time budget";
      }
    }
    if (!error.empty()) {
      outcome.sink_errors.push_back("telemetry sink " + std::to_string(calls[ordinal].id) +
                                    ": " + error);
    }
    results.push_back(SinkResult{calls[ordinal].id, !error.empty()});
  }

  // Streaks write back by id under the lock — a sink unsubscribed (or
  // replaced) mid-delivery is simply skipped.
  std::uint64_t sink_failures = 0;
  std::uint64_t newly_quarantined = 0;
  if (!results.empty()) {
    std::lock_guard<std::mutex> lock(sinks_mutex_);
    for (const auto& result : results) {
      const auto it = std::find_if(sinks_.begin(), sinks_.end(),
                                   [&result](const Subscription& s) { return s.id == result.id; });
      if (it == sinks_.end()) {
        continue;
      }
      if (!result.failed) {
        it->consecutive_failures = 0;
        continue;
      }
      ++sink_failures;
      ++it->consecutive_failures;
      if (config_.sink_quarantine_failures > 0 && !it->quarantined &&
          it->consecutive_failures >= config_.sink_quarantine_failures) {
        it->quarantined = true;
        ++newly_quarantined;
      }
    }
  }
  if (newly_quarantined > 0) {
    obs::Registry::global().add(ServiceMetrics::get().sinks_quarantined,
                                static_cast<std::int64_t>(newly_quarantined));
  }
  if (outcome.shard_retries > 0) {
    obs::Registry::global().add(ServiceMetrics::get().shard_retries,
                                static_cast<std::int64_t>(outcome.shard_retries));
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    MCS_ENSURES(outcome.round == next_completed_, "rounds must complete in submission order");
    ++stats_.completed;
    stats_.shard_retries += outcome.shard_retries;
    stats_.sink_failures += sink_failures;
    stats_.sinks_quarantined += newly_quarantined;
    if (!outcome.journal_error.empty()) {
      ++stats_.journal_append_failures;
    }
    if (outcome.replayed_from_journal) {
      ++stats_.replayed;
      obs::Registry::global().add(ServiceMetrics::get().replayed, 1);
    }
    if (outcome.status == auction::AuctionStatus::kDegraded) {
      ++stats_.degraded;
      obs::Registry::global().add(ServiceMetrics::get().rounds_degraded, 1);
    } else if (!outcome.ok()) {
      ++stats_.failed;
    }
    completed_.emplace(outcome.round, std::move(outcome));
    ++next_completed_;
    obs::Registry::global().add(ServiceMetrics::get().completed, 1);
  }
  round_done_.notify_all();
}

}  // namespace mcs::service
