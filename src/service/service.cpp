#include "service/service.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace mcs::service {

namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Registry ids of the service's process-wide metrics, resolved once.
struct ServiceMetrics {
  obs::Registry::MetricId submitted;
  obs::Registry::MetricId completed;
  obs::Registry::MetricId replayed;
  obs::Registry::MetricId queue_depth;

  static const ServiceMetrics& get() {
    static const ServiceMetrics metrics{
        obs::Registry::global().metric("service.rounds_submitted"),
        obs::Registry::global().metric("service.rounds_completed"),
        obs::Registry::global().metric("service.rounds_replayed"),
        obs::Registry::global().metric("service.queue_depth"),
    };
    return metrics;
  }
};

}  // namespace

std::string to_json(const RoundTelemetry& telemetry) {
  std::ostringstream out;
  out << "{\"round\":" << telemetry.round                        //
      << ",\"status\":\"" << auction::to_string(telemetry.status) << '"'  //
      << ",\"shards_run\":" << telemetry.shards_run              //
      << ",\"straddlers\":" << telemetry.straddlers              //
      << ",\"latency_seconds\":" << format_double(telemetry.latency_seconds)
      << ",\"replayed\":" << (telemetry.replayed_from_journal ? 1 : 0)
      << ",\"mechanism\":" << obs::to_json(telemetry.mechanism) << '}';
  return out.str();
}

std::string service_config_fingerprint(const ServiceConfig& config) {
  // Only knobs that shape outcomes; see the declaration for what is excluded
  // (everything covered by a bit-identity contract, plus queue/thread sizes).
  const auto& m = config.mechanism;
  std::ostringstream out;
  out << "shards=" << config.shards.shard_count()                          //
      << " shard_policy=" << static_cast<int>(config.shards.policy())      //
      << " alpha=" << format_double(m.alpha)                               //
      << " auction_seconds=" << format_double(m.time_budget_seconds)       //
      << " degrade=" << (m.degrade_on_timeout ? 1 : 0)                     //
      << " epsilon=" << format_double(m.single_task.epsilon)               //
      << " bisect_iters=" << m.single_task.binary_search_iterations        //
      << " rule=" << static_cast<int>(m.multi_task.critical_bid_rule)      //
      << " partial=" << (m.multi_task.partial_coverage ? 1 : 0);
  return out.str();
}

CampaignService::CampaignService(const ServiceConfig& config)
    : config_(config), engine_(auction::EngineOptions{.workers = config.workers}) {
  MCS_EXPECTS(config.queue_capacity >= 1, "service queue needs capacity >= 1");
  MCS_EXPECTS(config.shards.shard_count() == 1 ||
                  config.mechanism.multi_task.critical_bid_rule !=
                      auction::CriticalBidRule::kPaperIterationMin,
              "CriticalBidRule::kPaperIterationMin is not shard-decomposable (its minimum "
              "ranges over the GLOBAL without-i iteration sequence); use kBinarySearch or a "
              "single shard");
  if (!config_.journal_path.empty()) {
    const auto fingerprint = service_config_fingerprint(config_);
    auto replayed = load_service_journal(config_.journal_path);
    if (replayed.config.empty()) {
      MCS_EXPECTS(replayed.records.empty(),
                  "service journal has rounds but no config fingerprint");
    } else {
      MCS_EXPECTS(replayed.config == fingerprint,
                  "service journal was written under a different service configuration; "
                  "replaying it would serve outcomes this service would not compute");
    }
    journaled_ = std::move(replayed.records);
    // Drop any torn tail before appending, as the platform journal does: the
    // next round's block must follow the last complete one.
    if (std::filesystem::exists(config_.journal_path) &&
        std::filesystem::file_size(config_.journal_path) > replayed.valid_bytes) {
      std::filesystem::resize_file(config_.journal_path, replayed.valid_bytes);
    }
    journal_ = std::make_unique<ServiceJournalWriter>(config_.journal_path, fingerprint);
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

CampaignService::~CampaignService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_ready_.notify_all();
  dispatcher_.join();
}

RoundId CampaignService::submit_round(GeoRound round) {
  std::unique_lock<std::mutex> lock(mutex_);
  queue_space_.wait(lock, [this] { return queue_.size() < config_.queue_capacity; });
  const RoundId id = next_round_++;
  queue_.push_back(Request{id, std::move(round)});
  ++stats_.submitted;
  obs::Registry::global().add(ServiceMetrics::get().submitted, 1);
  obs::Registry::global().add(ServiceMetrics::get().queue_depth, 1);
  lock.unlock();
  queue_ready_.notify_one();
  return id;
}

std::optional<RoundId> CampaignService::try_submit_round(GeoRound round) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.size() >= config_.queue_capacity) {
    return std::nullopt;
  }
  const RoundId id = next_round_++;
  queue_.push_back(Request{id, std::move(round)});
  ++stats_.submitted;
  obs::Registry::global().add(ServiceMetrics::get().submitted, 1);
  obs::Registry::global().add(ServiceMetrics::get().queue_depth, 1);
  lock.unlock();
  queue_ready_.notify_one();
  return id;
}

std::optional<RoundOutcome> CampaignService::poll_outcome(RoundId round) {
  std::lock_guard<std::mutex> lock(mutex_);
  MCS_EXPECTS(round < next_round_, "poll_outcome: round was never submitted");
  const auto it = completed_.find(round);
  if (it != completed_.end()) {
    RoundOutcome outcome = std::move(it->second);
    completed_.erase(it);
    return outcome;
  }
  MCS_EXPECTS(round >= next_completed_, "poll_outcome: outcome was already delivered");
  return std::nullopt;
}

RoundOutcome CampaignService::wait_outcome(RoundId round) {
  std::unique_lock<std::mutex> lock(mutex_);
  MCS_EXPECTS(round < next_round_, "wait_outcome: round was never submitted");
  round_done_.wait(lock, [this, round] { return round < next_completed_; });
  const auto it = completed_.find(round);
  MCS_EXPECTS(it != completed_.end(), "wait_outcome: outcome was already delivered");
  RoundOutcome outcome = std::move(it->second);
  completed_.erase(it);
  return outcome;
}

void CampaignService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  round_done_.wait(lock, [this] { return next_completed_ == next_round_; });
}

std::size_t CampaignService::stream_telemetry(TelemetrySink sink) {
  MCS_EXPECTS(sink != nullptr, "stream_telemetry needs a callable sink");
  std::lock_guard<std::mutex> lock(sinks_mutex_);
  const std::size_t id = next_subscription_++;
  sinks_.emplace_back(id, std::move(sink));
  return id;
}

void CampaignService::unsubscribe(std::size_t subscription) {
  std::lock_guard<std::mutex> lock(sinks_mutex_);
  for (std::size_t k = 0; k < sinks_.size(); ++k) {
    if (sinks_[k].first == subscription) {
      sinks_.erase(sinks_.begin() + static_cast<std::ptrdiff_t>(k));
      return;
    }
  }
  throw common::PreconditionError("unsubscribe: unknown telemetry subscription");
}

ServiceStats CampaignService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void CampaignService::dispatcher_loop() {
  for (;;) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping, and every submitted round has been served
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      obs::Registry::global().add(ServiceMetrics::get().queue_depth, -1);
    }
    queue_space_.notify_one();
    publish(compute(request));
  }
}

RoundOutcome CampaignService::compute(const Request& request) {
  RoundOutcome out;
  out.round = request.round;

  // Durability: a round already settled in the journal is served from disk,
  // bit-identically, without recomputation — unless the resubmitted round's
  // shape diverges from what was journaled, which means the caller is not
  // replaying the same campaign.
  if (request.round < journaled_.size()) {
    const auto& record = journaled_[static_cast<std::size_t>(request.round)];
    if (record.users != request.payload.instance.num_users() ||
        record.tasks != request.payload.instance.num_tasks()) {
      out.status = auction::AuctionStatus::kFailed;
      out.error = "journal replay mismatch: round " + std::to_string(request.round) +
                  " was journaled with " + std::to_string(record.users) + " users / " +
                  std::to_string(record.tasks) + " tasks but resubmitted with " +
                  std::to_string(request.payload.instance.num_users()) + " / " +
                  std::to_string(request.payload.instance.num_tasks());
      return out;
    }
    out.status = record.status;
    out.outcome = record.outcome;
    out.error = record.error;
    out.shards_run = record.shards_run;
    out.straddlers = record.straddlers;
    out.replayed_from_journal = true;
    return out;
  }

  const auto start = std::chrono::steady_clock::now();
  try {
    if (config_.shards.shard_count() == 1) {
      // Pass-through: bit-identical to the bare engine by construction.
      auto slot = engine_.run_one_isolated(request.payload.instance, config_.mechanism);
      out.status = slot.status;
      out.outcome = std::move(slot.outcome);
      out.error = std::move(slot.error);
      out.shards_run = 1;
    } else {
      auto partition = partition_round(request.payload, config_.shards);
      out.straddlers = partition.straddlers.size();
      if (partition.shards.empty()) {
        // No shard owns a task (a zero-task round): run flat so the outcome
        // matches whatever the mechanism says about the degenerate instance.
        auto slot = engine_.run_one_isolated(request.payload.instance, config_.mechanism);
        out.status = slot.status;
        out.outcome = std::move(slot.outcome);
        out.error = std::move(slot.error);
        out.shards_run = 0;
      } else {
        std::vector<auction::MultiTaskInstance> batch;
        batch.reserve(partition.shards.size());
        for (auto& slice : partition.shards) {
          batch.push_back(std::move(slice.instance));
        }
        const auto slots = engine_.run_isolated(batch, config_.mechanism);
        auto merged = merge_outcomes(request.payload.instance, partition, slots,
                                     config_.mechanism.multi_task.partial_coverage);
        out.status = merged.status;
        out.outcome = std::move(merged.outcome);
        out.error = std::move(merged.error);
        out.shards_run = partition.shards.size();
      }
    }
  } catch (const std::exception& e) {
    // Partitioning rejected the round (e.g. task_cells misaligned with the
    // instance) — poison this round only, like the engine's isolated path.
    out.status = auction::AuctionStatus::kFailed;
    out.outcome = auction::MechanismOutcome{};
    out.error = e.what();
  }
  out.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  if (journal_) {
    ServiceJournalRecord record;
    record.round = out.round;
    record.status = out.status;
    record.users = request.payload.instance.num_users();
    record.tasks = request.payload.instance.num_tasks();
    record.shards_run = out.shards_run;
    record.straddlers = out.straddlers;
    record.outcome = out.outcome;
    record.error = out.error;
    journal_->append(record);
  }
  return out;
}

void CampaignService::publish(RoundOutcome outcome) {
  RoundTelemetry telemetry;
  telemetry.round = outcome.round;
  telemetry.status = outcome.status;
  telemetry.shards_run = outcome.shards_run;
  telemetry.straddlers = outcome.straddlers;
  telemetry.latency_seconds = outcome.latency_seconds;
  telemetry.replayed_from_journal = outcome.replayed_from_journal;
  telemetry.mechanism = outcome.outcome.telemetry;

  // Sinks run BEFORE the outcome becomes pollable, so a caller returning
  // from wait_outcome/drain knows every sink already saw the round — anyone
  // tearing down sink state after a drain cannot race a late delivery. They
  // run outside mutex_ so a slow dashboard cannot stall poll/submit;
  // copying the list keeps unsubscribe-during-delivery safe (the documented
  // caveat: an in-flight call to a just-removed sink may still finish).
  std::vector<std::pair<std::size_t, TelemetrySink>> sinks;
  {
    std::lock_guard<std::mutex> lock(sinks_mutex_);
    sinks = sinks_;
  }
  for (const auto& [_, sink] : sinks) {
    sink(telemetry);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    MCS_ENSURES(outcome.round == next_completed_, "rounds must complete in submission order");
    ++stats_.completed;
    if (outcome.replayed_from_journal) {
      ++stats_.replayed;
      obs::Registry::global().add(ServiceMetrics::get().replayed, 1);
    }
    if (outcome.status == auction::AuctionStatus::kDegraded) {
      ++stats_.degraded;
    } else if (!outcome.ok()) {
      ++stats_.failed;
    }
    completed_.emplace(outcome.round, std::move(outcome));
    ++next_completed_;
    obs::Registry::global().add(ServiceMetrics::get().completed, 1);
  }
  round_done_.notify_all();
}

}  // namespace mcs::service
