#include "service/shard.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::service {

// ---------------------------------------------------------------------------
// ShardMap
// ---------------------------------------------------------------------------

ShardMap::ShardMap(std::size_t shard_count)
    : ShardMap(shard_count, ShardPolicy::kCellModulo, 0, 0) {}

ShardMap::ShardMap(std::size_t shard_count, ShardPolicy policy, std::int32_t rows,
                   std::int32_t cols)
    : shard_count_(shard_count), policy_(policy), rows_(rows), cols_(cols) {
  MCS_EXPECTS(shard_count >= 1, "shard map needs at least one shard");
}

ShardMap ShardMap::row_bands(const geo::GridMap& grid, std::size_t shard_count) {
  MCS_EXPECTS(shard_count >= 1 && shard_count <= static_cast<std::size_t>(grid.rows()),
              "row-band sharding needs 1 <= shards <= grid rows");
  return ShardMap(shard_count, ShardPolicy::kRowBands, grid.rows(), grid.cols());
}

std::size_t ShardMap::shard_of(geo::CellId cell) const {
  MCS_EXPECTS(cell >= 0, "shard_of requires a valid cell id");
  switch (policy_) {
    case ShardPolicy::kCellModulo:
      return static_cast<std::size_t>(cell) % shard_count_;
    case ShardPolicy::kRowBands: {
      const auto row = static_cast<std::size_t>(cell / cols_);
      MCS_EXPECTS(row < static_cast<std::size_t>(rows_), "cell id outside the sharded grid");
      return row * shard_count_ / static_cast<std::size_t>(rows_);
    }
  }
  throw common::PreconditionError("unknown shard policy");
}

// ---------------------------------------------------------------------------
// partition_round
// ---------------------------------------------------------------------------

RoundPartition partition_round(const GeoRound& round, const ShardMap& map) {
  const auto& instance = round.instance;
  const std::size_t num_tasks = instance.num_tasks();
  MCS_EXPECTS(round.task_cells.size() == num_tasks,
              "GeoRound task_cells must align with the instance's tasks");

  RoundPartition partition;

  // Tasks first: every task lands in exactly one shard, and slices keep
  // tasks in ascending global order so global→local index maps are monotone
  // (a user's ascending task list stays ascending after remapping).
  std::vector<std::size_t> task_shard(num_tasks);
  std::vector<std::size_t> slice_of(map.shard_count(), static_cast<std::size_t>(-1));
  std::vector<auction::TaskIndex> local_task(num_tasks, -1);
  for (std::size_t j = 0; j < num_tasks; ++j) {
    task_shard[j] = map.shard_of(round.task_cells[j]);
  }
  for (std::size_t shard = 0; shard < map.shard_count(); ++shard) {
    bool owns_task = false;
    for (std::size_t j = 0; j < num_tasks; ++j) {
      owns_task = owns_task || task_shard[j] == shard;
    }
    if (!owns_task) {
      continue;
    }
    slice_of[shard] = partition.shards.size();
    ShardSlice slice;
    slice.shard = shard;
    partition.shards.push_back(std::move(slice));
  }
  for (std::size_t j = 0; j < num_tasks; ++j) {
    auto& slice = partition.shards[slice_of[task_shard[j]]];
    local_task[j] = static_cast<auction::TaskIndex>(slice.global_tasks.size());
    slice.global_tasks.push_back(static_cast<auction::TaskIndex>(j));
    slice.instance.requirement_pos.push_back(instance.requirement_pos[j]);
  }

  // Users second, in ascending global id order, so each slice's local user
  // order preserves global order and within-shard lowest-id tie-breaks match
  // the flat run's.
  struct ShardWeight {
    std::size_t shard = 0;
    double contribution = 0.0;
  };
  std::vector<ShardWeight> touched;  // reused across users; |task set| is small
  for (std::size_t i = 0; i < instance.num_users(); ++i) {
    const auto& bid = instance.users[i];
    const auto user = static_cast<auction::UserId>(i);
    if (bid.tasks.empty()) {
      partition.unassigned_users.push_back(user);
      continue;
    }
    touched.clear();
    for (std::size_t k = 0; k < bid.tasks.size(); ++k) {
      const std::size_t shard = task_shard[static_cast<std::size_t>(bid.tasks[k])];
      const double q = common::contribution_from_pos(bid.pos[k]);
      auto it = std::find_if(touched.begin(), touched.end(),
                             [shard](const ShardWeight& w) { return w.shard == shard; });
      if (it == touched.end()) {
        touched.push_back({shard, q});
      } else {
        it->contribution += q;
      }
    }
    // Straddler protocol: owner = largest declared-contribution share, ties
    // toward the lowest shard id (strict > keeps the first — and therefore
    // lowest-id — of any later equal-weight shard from taking over after the
    // sort below).
    std::sort(touched.begin(), touched.end(),
              [](const ShardWeight& a, const ShardWeight& b) { return a.shard < b.shard; });
    std::size_t owner = touched.front().shard;
    double best = touched.front().contribution;
    for (std::size_t k = 1; k < touched.size(); ++k) {
      if (touched[k].contribution > best) {
        best = touched[k].contribution;
        owner = touched[k].shard;
      }
    }
    if (touched.size() > 1) {
      partition.straddlers.push_back(user);
    }

    auto& slice = partition.shards[slice_of[owner]];
    auction::MultiTaskUserBid local;
    local.cost = bid.cost;
    for (std::size_t k = 0; k < bid.tasks.size(); ++k) {
      const auto task = static_cast<std::size_t>(bid.tasks[k]);
      if (task_shard[task] == owner) {
        local.tasks.push_back(local_task[task]);
        local.pos.push_back(bid.pos[k]);
      } else {
        ++partition.dropped_task_entries;
      }
    }
    slice.instance.users.push_back(std::move(local));
    slice.global_users.push_back(user);
  }
  return partition;
}

// ---------------------------------------------------------------------------
// merge_outcomes
// ---------------------------------------------------------------------------

namespace {

/// Winners of every shard slot mapped to global ids and sorted ascending —
/// the flat allocation's documented order.
std::vector<auction::UserId> merged_winners(const RoundPartition& partition,
                                            const std::vector<auction::AuctionOutcome>& slots) {
  std::vector<auction::UserId> winners;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const auto& slice = partition.shards[s];
    for (auction::UserId local : slots[s].outcome.allocation.winners) {
      winners.push_back(slice.global_users[static_cast<std::size_t>(local)]);
    }
  }
  std::sort(winners.begin(), winners.end());
  return winners;
}

/// A slot whose mechanism never produced an outcome: failed or timed out.
bool slot_dead(const auction::AuctionOutcome& slot) {
  return slot.status == auction::AuctionStatus::kFailed ||
         slot.status == auction::AuctionStatus::kTimedOut;
}

/// Every dead shard's error, "shard <id>: <error>" joined with "; " in shard
/// order — with a single dead shard this is exactly the pre-aggregation
/// string, so journaled errors from older builds stay comparable.
std::string aggregate_dead_errors(const RoundPartition& partition,
                                  const std::vector<auction::AuctionOutcome>& slots) {
  std::string error;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (!slot_dead(slots[s])) {
      continue;
    }
    if (!error.empty()) {
      error += "; ";
    }
    error += "shard " + std::to_string(partition.shards[s].shard) + ": " + slots[s].error;
  }
  return error;
}

}  // namespace

auction::AuctionOutcome merge_outcomes(const auction::MultiTaskInstance& flat,
                                       const RoundPartition& partition,
                                       const std::vector<auction::AuctionOutcome>& slots,
                                       bool partial_coverage, MergePolicy policy) {
  MCS_EXPECTS(slots.size() == partition.shards.size(),
              "merge_outcomes needs one slot per partition shard");
  auction::AuctionOutcome merged;

  bool any_failed = false;
  std::size_t dead_shards = 0;
  for (const auto& slot : slots) {
    any_failed = any_failed || slot.status == auction::AuctionStatus::kFailed;
    if (slot_dead(slot)) {
      ++dead_shards;
    }
  }

  // Poisoned round: kFailed beats kTimedOut (a malformed shard instance is a
  // caller bug worth surfacing over a blown deadline) and the error carries
  // EVERY dead shard in shard order — the full blast radius, not just the
  // first casualty. kDegradedMerge lands here too when no shard survived.
  if (dead_shards > 0 &&
      (policy == MergePolicy::kPoisonRound || dead_shards == slots.size())) {
    merged.status = any_failed ? auction::AuctionStatus::kFailed
                               : auction::AuctionStatus::kTimedOut;
    merged.error = aggregate_dead_errors(partition, slots);
    return merged;
  }

  // Telemetry totals merge in shard-index order — deterministic whatever the
  // engine's scheduling; timings are per-shard sums, not the flat run's.
  // Dead slots contribute whatever their partial run recorded.
  for (const auto& slot : slots) {
    merged.outcome.telemetry += slot.outcome.telemetry;
  }

  if (dead_shards > 0) {
    // kDegradedMerge with at least one survivor: salvage the surviving
    // shards. The shard is the unit of all-or-nothing — a feasible shard's
    // winners and critical-bid rewards are shard-local, so they stand
    // unchanged; an infeasible survivor follows the flat partial_coverage
    // rule (report its partial winners, pay nobody); a dead shard's entire
    // task slate is uncovered.
    merged.outcome.degraded = true;
    merged.outcome.allocation.feasible = false;
    merged.error = aggregate_dead_errors(partition, slots);
    for (std::size_t s = 0; s < slots.size(); ++s) {
      const auto& slice = partition.shards[s];
      if (slot_dead(slots[s])) {
        merged.outcome.uncovered_tasks.insert(merged.outcome.uncovered_tasks.end(),
                                              slice.global_tasks.begin(),
                                              slice.global_tasks.end());
        continue;
      }
      const bool feasible = slots[s].outcome.allocation.feasible;
      if (feasible || partial_coverage) {
        for (auction::UserId local : slots[s].outcome.allocation.winners) {
          merged.outcome.allocation.winners.push_back(
              slice.global_users[static_cast<std::size_t>(local)]);
        }
      }
      if (!feasible) {
        if (partial_coverage) {
          for (auction::TaskIndex local : slots[s].outcome.uncovered_tasks) {
            merged.outcome.uncovered_tasks.push_back(
                slice.global_tasks[static_cast<std::size_t>(local)]);
          }
        } else {
          // All-or-nothing shard that fell short: nothing committed, so the
          // whole slice counts as uncovered.
          merged.outcome.uncovered_tasks.insert(merged.outcome.uncovered_tasks.end(),
                                                slice.global_tasks.begin(),
                                                slice.global_tasks.end());
        }
        continue;
      }
      for (const auto& reward : slots[s].outcome.rewards) {
        auction::WinnerReward remapped = reward;
        remapped.user = slice.global_users[static_cast<std::size_t>(reward.user)];
        merged.outcome.rewards.push_back(remapped);
      }
    }
    std::sort(merged.outcome.allocation.winners.begin(),
              merged.outcome.allocation.winners.end());
    std::sort(merged.outcome.uncovered_tasks.begin(), merged.outcome.uncovered_tasks.end());
    std::sort(merged.outcome.rewards.begin(), merged.outcome.rewards.end(),
              [](const auction::WinnerReward& a, const auction::WinnerReward& b) {
                return a.user < b.user;
              });
    merged.outcome.allocation.total_cost =
        merged.outcome.allocation.winners.empty()
            ? 0.0
            : flat.cost_of(merged.outcome.allocation.winners);
    merged.status = auction::AuctionStatus::kDegraded;
    if (merged.outcome.telemetry.enabled) {
      merged.outcome.telemetry.degraded_events =
          std::max<std::uint64_t>(merged.outcome.telemetry.degraded_events, 1);
    }
    return merged;
  }

  bool all_feasible = true;
  bool any_degraded = false;
  for (const auto& slot : slots) {
    all_feasible = all_feasible && slot.outcome.allocation.feasible;
    any_degraded = any_degraded || slot.outcome.degraded;
  }

  if (all_feasible) {
    merged.outcome.allocation.feasible = true;
    merged.outcome.allocation.winners = merged_winners(partition, slots);
    // Same summation, same (ascending-id) order as the flat
    // MultiTaskView::cost_of — bit-identical, not merely close.
    merged.outcome.allocation.total_cost = flat.cost_of(merged.outcome.allocation.winners);
    merged.outcome.rewards.reserve(merged.outcome.allocation.winners.size());
    for (std::size_t s = 0; s < slots.size(); ++s) {
      const auto& slice = partition.shards[s];
      for (const auto& reward : slots[s].outcome.rewards) {
        auction::WinnerReward remapped = reward;
        remapped.user = slice.global_users[static_cast<std::size_t>(reward.user)];
        merged.outcome.rewards.push_back(remapped);
      }
    }
    std::sort(merged.outcome.rewards.begin(), merged.outcome.rewards.end(),
              [](const auction::WinnerReward& a, const auction::WinnerReward& b) {
                return a.user < b.user;
              });
    merged.outcome.degraded = any_degraded;
  } else if (partial_coverage) {
    // Flat keep_partial semantics: report the partial winner set and the
    // uncovered tasks, pay nobody.
    merged.outcome.allocation.feasible = false;
    merged.outcome.allocation.winners = merged_winners(partition, slots);
    merged.outcome.allocation.total_cost =
        merged.outcome.allocation.winners.empty()
            ? 0.0
            : flat.cost_of(merged.outcome.allocation.winners);
    for (std::size_t s = 0; s < slots.size(); ++s) {
      const auto& slice = partition.shards[s];
      for (auction::TaskIndex local : slots[s].outcome.uncovered_tasks) {
        merged.outcome.uncovered_tasks.push_back(
            slice.global_tasks[static_cast<std::size_t>(local)]);
      }
    }
    std::sort(merged.outcome.uncovered_tasks.begin(), merged.outcome.uncovered_tasks.end());
    merged.outcome.degraded = !merged.outcome.allocation.winners.empty() || any_degraded;
  } else {
    // Flat all-or-nothing semantics: an infeasible instance yields the
    // default infeasible outcome — the feasible shards' winners are
    // discarded, exactly as the flat greedy would never have committed them.
    merged.outcome.allocation = auction::Allocation{};
    merged.outcome.degraded = false;
  }

  merged.status = merged.outcome.degraded ? auction::AuctionStatus::kDegraded
                                          : auction::AuctionStatus::kOk;
  if (merged.outcome.telemetry.enabled && merged.outcome.degraded) {
    // Re-derive the round-level degraded_events count the flat run would
    // report (one per degraded mechanism run, not one per degraded shard).
    merged.outcome.telemetry.degraded_events =
        std::max<std::uint64_t>(merged.outcome.telemetry.degraded_events, 1);
  }
  return merged;
}

}  // namespace mcs::service
