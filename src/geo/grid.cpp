#include "geo/grid.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace mcs::geo {

namespace {
constexpr double kEarthRadiusM = 6371000.0;

double deg_to_rad(double deg) { return deg * std::numbers::pi / 180.0; }

/// Meters per degree of latitude (constant on a sphere).
constexpr double kMetersPerDegLat = 2.0 * std::numbers::pi * kEarthRadiusM / 360.0;

double meters_per_deg_lon(double lat_deg) {
  return kMetersPerDegLat * std::cos(deg_to_rad(lat_deg));
}
}  // namespace

double distance_m(const LatLon& a, const LatLon& b) {
  const double lat1 = deg_to_rad(a.lat);
  const double lat2 = deg_to_rad(b.lat);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon - a.lon);
  const double s = std::sin(dlat / 2.0) * std::sin(dlat / 2.0) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2.0) * std::sin(dlon / 2.0);
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(s)));
}

bool BoundingBox::contains(const LatLon& p) const {
  return p.lat >= south_west.lat && p.lat <= north_east.lat && p.lon >= south_west.lon &&
         p.lon <= north_east.lon;
}

double BoundingBox::width_m() const {
  const double mid_lat = (south_west.lat + north_east.lat) / 2.0;
  return (north_east.lon - south_west.lon) * meters_per_deg_lon(mid_lat);
}

double BoundingBox::height_m() const {
  return (north_east.lat - south_west.lat) * kMetersPerDegLat;
}

BoundingBox shanghai_bounding_box() {
  // Urban Shanghai, roughly 75 km x 55 km; matches the paper's 2 km gridding
  // scale (a few hundred to ~1000 cells).
  return BoundingBox{.south_west = {30.95, 121.10}, .north_east = {31.45, 121.90}};
}

GridMap::GridMap(BoundingBox box, double cell_side_m) : box_(box), cell_side_m_(cell_side_m) {
  MCS_EXPECTS(box.south_west.lat < box.north_east.lat && box.south_west.lon < box.north_east.lon,
              "bounding box must be non-degenerate");
  MCS_EXPECTS(cell_side_m > 0.0, "cell side must be positive");
  rows_ = std::max<std::int32_t>(1, static_cast<std::int32_t>(box.height_m() / cell_side_m));
  cols_ = std::max<std::int32_t>(1, static_cast<std::int32_t>(box.width_m() / cell_side_m));
  lat_step_ = (box.north_east.lat - box.south_west.lat) / rows_;
  lon_step_ = (box.north_east.lon - box.south_west.lon) / cols_;
}

CellId GridMap::cell_of(const LatLon& p) const {
  auto row = static_cast<std::int32_t>(std::floor((p.lat - box_.south_west.lat) / lat_step_));
  auto col = static_cast<std::int32_t>(std::floor((p.lon - box_.south_west.lon) / lon_step_));
  row = std::clamp(row, 0, rows_ - 1);
  col = std::clamp(col, 0, cols_ - 1);
  return cell_at(row, col);
}

LatLon GridMap::center_of(CellId cell) const {
  MCS_EXPECTS(valid(cell), "invalid cell id");
  const auto row = row_of(cell);
  const auto col = col_of(cell);
  return LatLon{.lat = box_.south_west.lat + (row + 0.5) * lat_step_,
                .lon = box_.south_west.lon + (col + 0.5) * lon_step_};
}

std::int32_t GridMap::row_of(CellId cell) const {
  MCS_EXPECTS(valid(cell), "invalid cell id");
  return cell / cols_;
}

std::int32_t GridMap::col_of(CellId cell) const {
  MCS_EXPECTS(valid(cell), "invalid cell id");
  return cell % cols_;
}

CellId GridMap::cell_at(std::int32_t row, std::int32_t col) const {
  MCS_EXPECTS(row >= 0 && row < rows_ && col >= 0 && col < cols_, "cell coordinates out of range");
  return row * cols_ + col;
}

bool GridMap::valid(CellId cell) const { return cell >= 0 && cell < cell_count(); }

std::int32_t GridMap::chebyshev(CellId a, CellId b) const {
  const auto dr = std::abs(row_of(a) - row_of(b));
  const auto dc = std::abs(col_of(a) - col_of(b));
  return std::max(dr, dc);
}

std::vector<CellId> GridMap::neighborhood(CellId cell, std::int32_t radius) const {
  MCS_EXPECTS(valid(cell), "invalid cell id");
  MCS_EXPECTS(radius >= 0, "radius must be non-negative");
  const auto row = row_of(cell);
  const auto col = col_of(cell);
  std::vector<CellId> cells;
  for (std::int32_t r = std::max(0, row - radius); r <= std::min(rows_ - 1, row + radius); ++r) {
    for (std::int32_t c = std::max(0, col - radius); c <= std::min(cols_ - 1, col + radius); ++c) {
      cells.push_back(cell_at(r, c));
    }
  }
  return cells;
}

}  // namespace mcs::geo
