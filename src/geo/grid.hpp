// Geographic substrate: lat/lon points, a bounding box, and the 2 km × 2 km
// grid the paper lays over the map of Shanghai (Section IV-A). Grid cells are
// the "locations" of the mobility model; sensing tasks are pinned to cells.
#pragma once

#include <cstdint>
#include <vector>

namespace mcs::geo {

/// WGS-84 latitude/longitude in degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;

  friend bool operator==(const LatLon&, const LatLon&) = default;
};

/// Great-circle distance in meters (haversine).
double distance_m(const LatLon& a, const LatLon& b);

/// Axis-aligned geographic bounding box.
struct BoundingBox {
  LatLon south_west;
  LatLon north_east;

  bool contains(const LatLon& p) const;
  double width_m() const;   ///< east-west extent at the box's mid latitude
  double height_m() const;  ///< north-south extent
};

/// Approximate bounding box of urban Shanghai used across the experiments.
BoundingBox shanghai_bounding_box();

/// Index of a grid cell; cells are numbered row-major, row 0 at the south.
using CellId = std::int32_t;
inline constexpr CellId kInvalidCell = -1;

/// Uniform grid over a bounding box with square cells of a given side length.
/// The last row/column absorb any remainder so the grid exactly covers the
/// box. Points outside the box clamp to the nearest boundary cell, matching
/// how trace points just outside the urban box are binned in practice.
class GridMap {
 public:
  /// Requires a non-degenerate box and positive cell side.
  GridMap(BoundingBox box, double cell_side_m);

  std::int32_t rows() const { return rows_; }
  std::int32_t cols() const { return cols_; }
  std::int32_t cell_count() const { return rows_ * cols_; }
  double cell_side_m() const { return cell_side_m_; }
  const BoundingBox& box() const { return box_; }
  /// Angular size of a cell, useful for jittering points inside a cell.
  double lat_step_deg() const { return lat_step_; }
  double lon_step_deg() const { return lon_step_; }

  CellId cell_of(const LatLon& p) const;
  /// Geographic center of a cell; requires a valid id.
  LatLon center_of(CellId cell) const;
  std::int32_t row_of(CellId cell) const;
  std::int32_t col_of(CellId cell) const;
  CellId cell_at(std::int32_t row, std::int32_t col) const;
  bool valid(CellId cell) const;

  /// Chebyshev (king-move) distance between two cells in cell units.
  std::int32_t chebyshev(CellId a, CellId b) const;

  /// All cells within Chebyshev radius r of `cell` (including itself),
  /// clipped to the grid.
  std::vector<CellId> neighborhood(CellId cell, std::int32_t radius) const;

 private:
  BoundingBox box_;
  double cell_side_m_;
  std::int32_t rows_;
  std::int32_t cols_;
  double lat_step_;
  double lon_step_;
};

}  // namespace mcs::geo
