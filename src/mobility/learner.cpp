#include "mobility/learner.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mcs::mobility {

double MarkovModel::probability(geo::CellId from, geo::CellId to) const {
  if (!std::binary_search(locations_.begin(), locations_.end(), to)) {
    return 0.0;
  }
  const auto l = static_cast<double>(locations_.size());
  double numerator = alpha_;
  double denominator = alpha_ * l;
  const auto row_it = counts_.find(from);
  if (row_it != counts_.end()) {
    const auto it = row_it->second.find(to);
    if (it != row_it->second.end()) {
      numerator += static_cast<double>(it->second);
    }
  }
  const auto total_it = row_totals_.find(from);
  if (total_it != row_totals_.end()) {
    denominator += static_cast<double>(total_it->second);
  }
  if (denominator <= 0.0) {
    return 0.0;  // no data and no smoothing: the row is undefined
  }
  return numerator / denominator;
}

std::vector<std::pair<geo::CellId, double>> MarkovModel::row(geo::CellId from) const {
  std::vector<std::pair<geo::CellId, double>> entries;
  entries.reserve(locations_.size());
  for (geo::CellId to : locations_) {
    const double p = probability(from, to);
    if (p > 0.0) {
      entries.emplace_back(to, p);
    }
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;
  });
  return entries;
}

std::vector<std::pair<geo::CellId, double>> MarkovModel::top_k(geo::CellId from,
                                                               std::size_t k) const {
  auto entries = row(from);
  if (entries.size() > k) {
    entries.resize(k);
  }
  return entries;
}

MarkovLearner::MarkovLearner(double laplace_alpha) : alpha_(laplace_alpha) {
  MCS_EXPECTS(laplace_alpha >= 0.0, "smoothing constant must be non-negative");
}

MarkovModel MarkovLearner::fit(const TransitionCounts& counts) const {
  MarkovModel model;
  model.alpha_ = alpha_;
  model.locations_ = counts.locations();
  for (geo::CellId from : model.locations_) {
    auto row = counts.row(from);
    if (row.empty()) {
      continue;
    }
    auto& dest = model.counts_[from];
    std::size_t total = 0;
    for (const auto& [to, count] : row) {
      dest[to] = count;
      total += count;
    }
    model.row_totals_[from] = total;
  }
  return model;
}

}  // namespace mcs::mobility
