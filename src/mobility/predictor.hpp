// Next-location prediction and its evaluation (Fig 3 of the paper): per-taxi
// Markov models are trained on a prefix of each trace and scored on the
// held-out suffix by top-k accuracy — the fraction of held-out transitions
// whose true destination appears among the k most likely predicted cells.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "mobility/learner.hpp"
#include "trace/columnfile.hpp"
#include "trace/dataset.hpp"

namespace mcs::mobility {

/// Per-taxi mobility models learned from a dataset.
class FleetModel {
 public:
  FleetModel() = default;

  /// Trains one model per taxi on the fraction `train_fraction` (in (0, 1])
  /// of that taxi's visit sequence; the remainder is retained as the
  /// evaluation holdout.
  FleetModel(const trace::TraceDataset& dataset, const geo::GridMap& grid,
             const MarkovLearner& learner, double train_fraction = 1.0);

  /// Streaming twin: trains from an mmap-backed column file without ever
  /// materializing TraceEvents — only each taxi's location lanes are paged
  /// in. Identical models to training on the equivalent TraceDataset (the
  /// column file stores the same rows in the same order).
  FleetModel(const trace::MappedTraceDataset& dataset, const geo::GridMap& grid,
             const MarkovLearner& learner, double train_fraction = 1.0);

  const std::vector<trace::TaxiId>& taxis() const { return taxis_; }
  /// The learned model of one taxi; throws when the taxi is unknown.
  const MarkovModel& model(trace::TaxiId taxi) const;
  /// Held-out visit sequence of one taxi (empty when train_fraction = 1).
  const std::vector<geo::CellId>& holdout(trace::TaxiId taxi) const;

 private:
  std::vector<trace::TaxiId> taxis_;
  std::map<trace::TaxiId, MarkovModel> models_;
  std::map<trace::TaxiId, std::vector<geo::CellId>> holdouts_;
};

/// Accuracy at one value of k.
struct TopKAccuracy {
  std::size_t k = 0;
  std::size_t correct = 0;
  std::size_t total = 0;

  double accuracy() const { return total == 0 ? 0.0 : static_cast<double>(correct) / total; }
};

/// Evaluates top-k accuracy over every held-out transition of the fleet, for
/// each requested k (the paper sweeps k = 3..15).
std::vector<TopKAccuracy> evaluate_topk_accuracy(const FleetModel& fleet,
                                                 const std::vector<std::size_t>& ks);

}  // namespace mcs::mobility
