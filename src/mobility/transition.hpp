// Transition-count accumulation for the first-order Markov mobility model
// (Section IV-B): x_ij counts how often a user moved from location i to
// location j; x_i is the row total. Storage is sparse because each taxi only
// ever visits a small fraction of the grid.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "geo/grid.hpp"

namespace mcs::mobility {

/// Sparse per-user transition counts over grid cells.
class TransitionCounts {
 public:
  /// Records one observed move from `from` to `to`.
  void add(geo::CellId from, geo::CellId to, std::size_t count = 1);

  /// Accumulates all consecutive pairs of a visit sequence.
  void add_sequence(std::span<const geo::CellId> cells);

  /// x_ij; zero when never observed.
  std::size_t count(geo::CellId from, geo::CellId to) const;

  /// x_i = Σ_j x_ij.
  std::size_t row_total(geo::CellId from) const;

  /// Total number of recorded transitions.
  std::size_t total() const { return total_; }

  /// The user's location set: every cell that appears as a source or a
  /// destination. Sorted ascending. This is the `l` of the paper's Laplace
  /// smoothing formula.
  std::vector<geo::CellId> locations() const;

  /// Observed destinations from `from` with their counts, sorted by cell id.
  std::vector<std::pair<geo::CellId, std::size_t>> row(geo::CellId from) const;

 private:
  std::map<geo::CellId, std::map<geo::CellId, std::size_t>> counts_;
  std::map<geo::CellId, std::size_t> row_totals_;
  std::map<geo::CellId, bool> seen_;  // value unused; key set = location set
  std::size_t total_ = 0;
};

}  // namespace mcs::mobility
