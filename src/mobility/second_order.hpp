// Second-order Markov mobility model — an ablation of the paper's modelling
// choice. The paper predicts the next location from the current one alone
// (first-order); conditioning on the previous TWO locations can capture
// direction of travel, but squares the state space and thins the per-row
// counts. This module fits a second-order model with Laplace smoothing and
// backoff: a (prev, current) pair never observed in training falls back to
// the first-order row. `bench/ablation_markov_order` compares top-k accuracy
// of the two orders on the same holdout.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "mobility/learner.hpp"
#include "mobility/predictor.hpp"
#include "trace/dataset.hpp"

namespace mcs::mobility {

/// Per-user second-order Markov model over grid cells with first-order
/// backoff for unseen history pairs.
class SecondOrderModel {
 public:
  SecondOrderModel() = default;

  /// Fits from a visit sequence. `laplace_alpha` smooths both orders.
  SecondOrderModel(std::span<const geo::CellId> cells, double laplace_alpha);

  const std::vector<geo::CellId>& locations() const { return first_order_.locations(); }

  /// Smoothed P(next | prev, current); falls back to the first-order row
  /// when (prev, current) was never observed as a history.
  double probability(geo::CellId prev, geo::CellId current, geo::CellId next) const;

  /// The k most likely next cells given the two-cell history, descending
  /// (ties by cell id).
  std::vector<std::pair<geo::CellId, double>> top_k(geo::CellId prev, geo::CellId current,
                                                    std::size_t k) const;

  /// True when the history pair has observed continuations (no backoff).
  bool has_history(geo::CellId prev, geo::CellId current) const;

 private:
  using History = std::pair<geo::CellId, geo::CellId>;

  double alpha_ = 1.0;
  MarkovModel first_order_;
  std::map<History, std::map<geo::CellId, std::size_t>> counts_;
  std::map<History, std::size_t> row_totals_;
};

/// Accuracy of first- vs second-order prediction on the same holdout
/// transitions of a dataset (per-taxi models, shared train fraction).
struct OrderComparison {
  std::vector<TopKAccuracy> first_order;   ///< aligned with the ks argument
  std::vector<TopKAccuracy> second_order;
  std::size_t backoff_uses = 0;  ///< holdout predictions that fell back
  std::size_t predictions = 0;
};

OrderComparison compare_model_orders(const trace::TraceDataset& dataset,
                                     const geo::GridMap& grid, double laplace_alpha,
                                     double train_fraction,
                                     const std::vector<std::size_t>& ks);

}  // namespace mcs::mobility
