#include "mobility/transition.hpp"

#include "common/check.hpp"

namespace mcs::mobility {

void TransitionCounts::add(geo::CellId from, geo::CellId to, std::size_t count) {
  MCS_EXPECTS(from >= 0 && to >= 0, "cell ids must be valid");
  MCS_EXPECTS(count > 0, "transition count must be positive");
  counts_[from][to] += count;
  row_totals_[from] += count;
  seen_[from] = true;
  seen_[to] = true;
  total_ += count;
}

void TransitionCounts::add_sequence(std::span<const geo::CellId> cells) {
  for (std::size_t k = 1; k < cells.size(); ++k) {
    add(cells[k - 1], cells[k]);
  }
}

std::size_t TransitionCounts::count(geo::CellId from, geo::CellId to) const {
  const auto row_it = counts_.find(from);
  if (row_it == counts_.end()) {
    return 0;
  }
  const auto it = row_it->second.find(to);
  return it == row_it->second.end() ? 0 : it->second;
}

std::size_t TransitionCounts::row_total(geo::CellId from) const {
  const auto it = row_totals_.find(from);
  return it == row_totals_.end() ? 0 : it->second;
}

std::vector<geo::CellId> TransitionCounts::locations() const {
  std::vector<geo::CellId> cells;
  cells.reserve(seen_.size());
  for (const auto& [cell, _] : seen_) {
    cells.push_back(cell);
  }
  return cells;
}

std::vector<std::pair<geo::CellId, std::size_t>> TransitionCounts::row(geo::CellId from) const {
  std::vector<std::pair<geo::CellId, std::size_t>> entries;
  const auto row_it = counts_.find(from);
  if (row_it == counts_.end()) {
    return entries;
  }
  entries.reserve(row_it->second.size());
  for (const auto& [to, count] : row_it->second) {
    entries.emplace_back(to, count);
  }
  return entries;
}

}  // namespace mcs::mobility
