#include "mobility/stationary.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mcs::mobility {

StationaryResult stationary_distribution(const MarkovModel& model, double tolerance,
                                         std::size_t max_iterations) {
  const auto& locations = model.locations();
  MCS_EXPECTS(!locations.empty(), "model has no locations");
  MCS_EXPECTS(tolerance > 0.0, "tolerance must be positive");
  MCS_EXPECTS(max_iterations >= 1, "need at least one iteration");
  const std::size_t l = locations.size();

  // Dense row-stochastic transition matrix over the location set.
  std::vector<double> transition(l * l);
  for (std::size_t from = 0; from < l; ++from) {
    for (std::size_t to = 0; to < l; ++to) {
      transition[from * l + to] = model.probability(locations[from], locations[to]);
    }
  }

  std::vector<double> pi(l, 1.0 / static_cast<double>(l));
  std::vector<double> next(l);
  StationaryResult result;
  for (result.iterations = 1; result.iterations <= max_iterations; ++result.iterations) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t from = 0; from < l; ++from) {
      const double mass = pi[from];
      if (mass <= 0.0) {
        continue;
      }
      const double* row = transition.data() + from * l;
      for (std::size_t to = 0; to < l; ++to) {
        next[to] += mass * row[to];
      }
    }
    double residual = 0.0;
    for (std::size_t k = 0; k < l; ++k) {
      residual += std::fabs(next[k] - pi[k]);
    }
    pi.swap(next);
    result.residual = residual;
    if (residual <= tolerance) {
      result.converged = true;
      break;
    }
  }

  result.distribution.reserve(l);
  for (std::size_t k = 0; k < l; ++k) {
    result.distribution.emplace_back(locations[k], pi[k]);
  }
  std::sort(result.distribution.begin(), result.distribution.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) {
                return a.second > b.second;
              }
              return a.first < b.first;
            });
  return result;
}

}  // namespace mcs::mobility
