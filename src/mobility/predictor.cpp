#include "mobility/predictor.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mcs::mobility {

namespace {

/// Shared training loop of both FleetModel constructors: `cells_of` yields
/// one taxi's visit sequence, whatever storage it streams from.
template <typename CellsFn>
void train_fleet(const std::vector<trace::TaxiId>& ids, CellsFn&& cells_of,
                 const MarkovLearner& learner, double train_fraction,
                 std::vector<trace::TaxiId>& taxis,
                 std::map<trace::TaxiId, MarkovModel>& models,
                 std::map<trace::TaxiId, std::vector<geo::CellId>>& holdouts) {
  MCS_EXPECTS(train_fraction > 0.0 && train_fraction <= 1.0,
              "train fraction must lie in (0, 1]");
  for (trace::TaxiId taxi : ids) {
    const auto cells = cells_of(taxi);
    if (cells.size() < 2) {
      continue;
    }
    const auto split = std::max<std::size_t>(
        2, static_cast<std::size_t>(static_cast<double>(cells.size()) * train_fraction));
    const auto train_end = std::min(split, cells.size());

    TransitionCounts counts;
    counts.add_sequence(std::span<const geo::CellId>(cells.data(), train_end));
    taxis.push_back(taxi);
    models[taxi] = learner.fit(counts);
    // The holdout keeps the last training cell so its first transition
    // (train_end - 1 -> train_end) is scored too.
    if (train_end < cells.size()) {
      holdouts[taxi].assign(cells.begin() + static_cast<std::ptrdiff_t>(train_end) - 1,
                            cells.end());
    }
  }
}

}  // namespace

FleetModel::FleetModel(const trace::TraceDataset& dataset, const geo::GridMap& grid,
                       const MarkovLearner& learner, double train_fraction) {
  train_fleet(
      dataset.taxi_ids(),
      [&](trace::TaxiId taxi) { return dataset.cell_sequence(taxi, grid); }, learner,
      train_fraction, taxis_, models_, holdouts_);
}

FleetModel::FleetModel(const trace::MappedTraceDataset& dataset, const geo::GridMap& grid,
                       const MarkovLearner& learner, double train_fraction) {
  train_fleet(
      dataset.taxi_ids(),
      [&](trace::TaxiId taxi) { return dataset.cell_sequence(taxi, grid); }, learner,
      train_fraction, taxis_, models_, holdouts_);
}

const MarkovModel& FleetModel::model(trace::TaxiId taxi) const {
  const auto it = models_.find(taxi);
  MCS_EXPECTS(it != models_.end(), "unknown taxi id");
  return it->second;
}

const std::vector<geo::CellId>& FleetModel::holdout(trace::TaxiId taxi) const {
  static const std::vector<geo::CellId> kEmpty;
  const auto it = holdouts_.find(taxi);
  return it == holdouts_.end() ? kEmpty : it->second;
}

std::vector<TopKAccuracy> evaluate_topk_accuracy(const FleetModel& fleet,
                                                 const std::vector<std::size_t>& ks) {
  MCS_EXPECTS(!ks.empty(), "need at least one k to evaluate");
  std::vector<TopKAccuracy> results;
  results.reserve(ks.size());
  for (std::size_t k : ks) {
    results.push_back({k, 0, 0});
  }

  for (trace::TaxiId taxi : fleet.taxis()) {
    const auto& cells = fleet.holdout(taxi);
    if (cells.size() < 2) {
      continue;
    }
    const auto& model = fleet.model(taxi);
    for (std::size_t step = 1; step < cells.size(); ++step) {
      const geo::CellId from = cells[step - 1];
      const geo::CellId actual = cells[step];
      // One ranked row query serves every k.
      const auto ranked = model.row(from);
      std::size_t rank = ranked.size();  // "not found" sentinel
      for (std::size_t r = 0; r < ranked.size(); ++r) {
        if (ranked[r].first == actual) {
          rank = r;
          break;
        }
      }
      for (auto& result : results) {
        ++result.total;
        if (rank < result.k) {
          ++result.correct;
        }
      }
    }
  }
  return results;
}

}  // namespace mcs::mobility
