// Multi-slot PoS: task deadlines.
//
// The paper interprets a user's PoS as her probability of reaching the task
// location "in the next time slot". Real campaigns give tasks deadlines of
// several slots, and a Markov mobility model prices that directly: the PoS
// for a task with a d-slot deadline is the probability of VISITING the task
// cell within d steps of the chain,
//     PoS_d(start → target) = 1 − P(no visit in steps 1..d),
// computed by an absorption dynamic program over the model's location set.
// Longer deadlines raise every PoS, which is exactly what makes the paper's
// tighter requirement settings (Table III at T = 0.8) feasible without
// capping — quantified in bench/ablation_deadline.
#pragma once

#include <cstddef>
#include <vector>

#include "mobility/learner.hpp"

namespace mcs::mobility {

/// Probability that the chain started at `start` visits `target` within
/// `steps` transitions (steps >= 1). Returns 0 when the target is outside
/// the model's location set. `start` may equal `target`; only future visits
/// count (step >= 1), matching the paper's "reach the location next slot"
/// reading at steps = 1.
double multi_step_visit_pos(const MarkovModel& model, geo::CellId start, geo::CellId target,
                            std::size_t steps);

/// Visit probabilities within `steps` transitions for every cell in the
/// model's location set, as (cell, PoS) pairs sorted by descending PoS
/// (ties by cell id). Equivalent to calling multi_step_visit_pos per cell.
std::vector<std::pair<geo::CellId, double>> multi_step_visit_row(const MarkovModel& model,
                                                                 geo::CellId start,
                                                                 std::size_t steps);

}  // namespace mcs::mobility
