// Stationary analysis of a learned mobility model: where does a user spend
// her time in the long run? The stationary distribution π (πP = π) ranks a
// user's cells by long-run occupancy — the model-based counterpart of the
// raw visit counts, useful for choosing task locations, pricing long
// deadlines, and sanity-checking a learned chain against its ground truth.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "mobility/learner.hpp"

namespace mcs::mobility {

struct StationaryResult {
  /// (cell, long-run probability), descending by probability (ties by id).
  /// Probabilities sum to 1 over the model's location set.
  std::vector<std::pair<geo::CellId, double>> distribution;
  /// L1 change of the final power-iteration step; convergence means <= tol.
  double residual = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Computes the stationary distribution of the model's smoothed chain by
/// power iteration from the uniform distribution. With Laplace smoothing
/// a > 0 the chain is irreducible and aperiodic on the location set, so the
/// limit exists and is unique; with a = 0 the iteration may oscillate or
/// depend on the start — `converged` reports honestly either way. Requires a
/// model with at least one location.
StationaryResult stationary_distribution(const MarkovModel& model, double tolerance = 1e-10,
                                         std::size_t max_iterations = 10000);

}  // namespace mcs::mobility
