#include "mobility/second_order.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mcs::mobility {

SecondOrderModel::SecondOrderModel(std::span<const geo::CellId> cells, double laplace_alpha)
    : alpha_(laplace_alpha) {
  MCS_EXPECTS(laplace_alpha >= 0.0, "smoothing constant must be non-negative");
  TransitionCounts first_counts;
  first_counts.add_sequence(cells);
  first_order_ = MarkovLearner(laplace_alpha).fit(first_counts);
  for (std::size_t k = 2; k < cells.size(); ++k) {
    const History history{cells[k - 2], cells[k - 1]};
    ++counts_[history][cells[k]];
    ++row_totals_[history];
  }
}

bool SecondOrderModel::has_history(geo::CellId prev, geo::CellId current) const {
  return row_totals_.contains(History{prev, current});
}

double SecondOrderModel::probability(geo::CellId prev, geo::CellId current,
                                     geo::CellId next) const {
  const History history{prev, current};
  const auto total_it = row_totals_.find(history);
  if (total_it == row_totals_.end()) {
    return first_order_.probability(current, next);
  }
  const auto& locations = first_order_.locations();
  if (!std::binary_search(locations.begin(), locations.end(), next)) {
    return 0.0;
  }
  const auto l = static_cast<double>(locations.size());
  double numerator = alpha_;
  const double denominator = static_cast<double>(total_it->second) + alpha_ * l;
  const auto row_it = counts_.find(history);
  const auto it = row_it->second.find(next);
  if (it != row_it->second.end()) {
    numerator += static_cast<double>(it->second);
  }
  if (denominator <= 0.0) {
    return 0.0;
  }
  return numerator / denominator;
}

std::vector<std::pair<geo::CellId, double>> SecondOrderModel::top_k(geo::CellId prev,
                                                                    geo::CellId current,
                                                                    std::size_t k) const {
  std::vector<std::pair<geo::CellId, double>> entries;
  for (geo::CellId next : first_order_.locations()) {
    const double p = probability(prev, current, next);
    if (p > 0.0) {
      entries.emplace_back(next, p);
    }
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;
  });
  if (entries.size() > k) {
    entries.resize(k);
  }
  return entries;
}

OrderComparison compare_model_orders(const trace::TraceDataset& dataset,
                                     const geo::GridMap& grid, double laplace_alpha,
                                     double train_fraction,
                                     const std::vector<std::size_t>& ks) {
  MCS_EXPECTS(!ks.empty(), "need at least one k to evaluate");
  MCS_EXPECTS(train_fraction > 0.0 && train_fraction < 1.0,
              "order comparison needs a non-trivial holdout");
  OrderComparison comparison;
  for (std::size_t k : ks) {
    comparison.first_order.push_back({k, 0, 0});
    comparison.second_order.push_back({k, 0, 0});
  }

  for (trace::TaxiId taxi : dataset.taxi_ids()) {
    const auto cells = dataset.cell_sequence(taxi, grid);
    if (cells.size() < 4) {
      continue;
    }
    const auto split = std::max<std::size_t>(
        3, static_cast<std::size_t>(static_cast<double>(cells.size()) * train_fraction));
    const auto train_end = std::min(split, cells.size() - 1);

    TransitionCounts first_counts;
    first_counts.add_sequence(std::span<const geo::CellId>(cells.data(), train_end));
    const MarkovModel first = MarkovLearner(laplace_alpha).fit(first_counts);
    const SecondOrderModel second(std::span<const geo::CellId>(cells.data(), train_end),
                                  laplace_alpha);

    // Score every holdout transition with two cells of history available.
    for (std::size_t step = train_end; step + 1 <= cells.size() - 1; ++step) {
      const geo::CellId prev = cells[step - 1];
      const geo::CellId current = cells[step];
      const geo::CellId actual = cells[step + 1];
      ++comparison.predictions;
      if (!second.has_history(prev, current)) {
        ++comparison.backoff_uses;
      }

      const auto first_row = first.row(current);
      std::size_t first_rank = first_row.size();
      for (std::size_t r = 0; r < first_row.size(); ++r) {
        if (first_row[r].first == actual) {
          first_rank = r;
          break;
        }
      }
      const auto second_row = second.top_k(prev, current, first_row.size());
      std::size_t second_rank = second_row.size();
      for (std::size_t r = 0; r < second_row.size(); ++r) {
        if (second_row[r].first == actual) {
          second_rank = r;
          break;
        }
      }
      for (std::size_t index = 0; index < ks.size(); ++index) {
        ++comparison.first_order[index].total;
        ++comparison.second_order[index].total;
        if (first_rank < ks[index]) {
          ++comparison.first_order[index].correct;
        }
        if (second_rank < ks[index]) {
          ++comparison.second_order[index].correct;
        }
      }
    }
  }
  return comparison;
}

}  // namespace mcs::mobility
