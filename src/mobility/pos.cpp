#include "mobility/pos.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "mobility/multistep.hpp"

namespace mcs::mobility {

namespace {
void check_config(const UserDerivationConfig& config) {
  MCS_EXPECTS(config.min_task_set >= 1, "task sets must be non-empty");
  MCS_EXPECTS(config.min_task_set <= config.max_task_set, "task-set size range must be ordered");
  MCS_EXPECTS(config.min_pos >= 0.0 && config.min_pos < 1.0, "PoS floor must lie in [0, 1)");
  MCS_EXPECTS(config.lookahead_steps >= 1, "deadline must be at least one slot");
}
}  // namespace

std::optional<MobilityUser> derive_user_at(const FleetModel& fleet, trace::TaxiId taxi,
                                           geo::CellId current_cell,
                                           const UserDerivationConfig& config,
                                           common::Rng& rng) {
  check_config(config);
  const auto& model = fleet.model(taxi);
  const auto size = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(config.min_task_set),
                      static_cast<std::int64_t>(config.max_task_set)));
  auto ranked = config.lookahead_steps == 1
                    ? model.top_k(current_cell, size)
                    : multi_step_visit_row(model, current_cell, config.lookahead_steps);
  if (ranked.size() > size) {
    ranked.resize(size);
  }
  std::erase_if(ranked, [&](const auto& entry) { return entry.second < config.min_pos; });
  if (ranked.empty()) {
    return std::nullopt;
  }
  return MobilityUser{taxi, current_cell, std::move(ranked)};
}

std::vector<MobilityUser> derive_users(const FleetModel& fleet, const UserDerivationConfig& config,
                                       common::Rng& rng) {
  check_config(config);
  std::vector<MobilityUser> users;
  users.reserve(fleet.taxis().size());
  for (trace::TaxiId taxi : fleet.taxis()) {
    const auto& locations = fleet.model(taxi).locations();
    if (locations.empty()) {
      continue;
    }
    const auto start_index = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(locations.size()) - 1));
    auto user = derive_user_at(fleet, taxi, locations[start_index], config, rng);
    if (user.has_value()) {
      users.push_back(std::move(*user));
    }
  }
  return users;
}

double user_pos_for_cell(const MobilityUser& user, geo::CellId cell) {
  for (const auto& [task_cell, pos] : user.task_pos) {
    if (task_cell == cell) {
      return pos;
    }
  }
  return 0.0;
}

std::vector<double> all_pos_values(const std::vector<MobilityUser>& users) {
  std::vector<double> values;
  for (const auto& user : users) {
    for (const auto& [_, pos] : user.task_pos) {
      values.push_back(pos);
    }
  }
  return values;
}

}  // namespace mcs::mobility
