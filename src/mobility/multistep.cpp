#include "mobility/multistep.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mcs::mobility {

namespace {

/// Index of a cell within the model's sorted location set, or npos.
std::size_t location_index(const std::vector<geo::CellId>& locations, geo::CellId cell) {
  const auto it = std::lower_bound(locations.begin(), locations.end(), cell);
  if (it == locations.end() || *it != cell) {
    return static_cast<std::size_t>(-1);
  }
  return static_cast<std::size_t>(it - locations.begin());
}

}  // namespace

double multi_step_visit_pos(const MarkovModel& model, geo::CellId start, geo::CellId target,
                            std::size_t steps) {
  MCS_EXPECTS(steps >= 1, "deadline must be at least one slot");
  const auto& locations = model.locations();
  const std::size_t target_index = location_index(locations, target);
  if (target_index == static_cast<std::size_t>(-1)) {
    return 0.0;
  }
  const std::size_t l = locations.size();

  // Row-stochastic transition matrix restricted to the location set.
  // (Cached per call; location sets are small — tens of cells.)
  std::vector<double> transition(l * l);
  for (std::size_t from = 0; from < l; ++from) {
    for (std::size_t to = 0; to < l; ++to) {
      transition[from * l + to] = model.probability(locations[from], locations[to]);
    }
  }

  // Absorption DP: `alive[c]` is the probability of being at cell c having
  // never visited the target. Mass stepping onto the target is absorbed
  // into `visited`.
  std::vector<double> alive(l, 0.0);
  const std::size_t start_index = location_index(locations, start);
  if (start_index == static_cast<std::size_t>(-1)) {
    // A start outside the model support has no learned dynamics; treat the
    // first step via the smoothed row, which probability() already handles
    // by returning the uniform smoothed mass only for known sources. With an
    // unknown source every row entry is 0 -> PoS 0.
    return 0.0;
  }
  alive[start_index] = 1.0;

  double visited = 0.0;
  std::vector<double> next(l);
  for (std::size_t step = 0; step < steps; ++step) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t from = 0; from < l; ++from) {
      if (alive[from] <= 0.0) {
        continue;
      }
      const double mass = alive[from];
      const double* row = transition.data() + from * l;
      for (std::size_t to = 0; to < l; ++to) {
        next[to] += mass * row[to];
      }
    }
    visited += next[target_index];
    next[target_index] = 0.0;
    alive.swap(next);
  }
  return std::min(1.0, visited);
}

std::vector<std::pair<geo::CellId, double>> multi_step_visit_row(const MarkovModel& model,
                                                                 geo::CellId start,
                                                                 std::size_t steps) {
  std::vector<std::pair<geo::CellId, double>> row;
  row.reserve(model.locations().size());
  for (geo::CellId cell : model.locations()) {
    row.emplace_back(cell, multi_step_visit_pos(model, start, cell, steps));
  }
  std::sort(row.begin(), row.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;
  });
  return row;
}

}  // namespace mcs::mobility
