// Maximum-likelihood Markov model with Laplace smoothing (Section IV-B).
//
// The paper estimates the transition probability from location i to j as
//     P_ij = x_ij / (x_i + l)
// where l is the number of locations the user visits; this is additive
// smoothing that reserves l/(x_i + l) probability mass for unobserved moves.
// We implement the generalized form
//     P_ij = (x_ij + a·[j ∈ L]) / (x_i + a·l)
// with smoothing constant a (a = 1 reproduces classic Laplace; the ablation
// bench sweeps a). The model's support is the user's location set L.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "mobility/transition.hpp"

namespace mcs::mobility {

/// A learned per-user Markov mobility model over the user's location set.
class MarkovModel {
 public:
  MarkovModel() = default;

  /// The user's location set (model support), ascending.
  const std::vector<geo::CellId>& locations() const { return locations_; }

  /// Smoothed P(next = to | current = from). `to` outside the location set
  /// has probability zero; `from` never observed as a source still yields the
  /// uniform smoothed row (a / (a·l) = 1/l) when smoothing is positive.
  double probability(geo::CellId from, geo::CellId to) const;

  /// The k most likely next cells from `from`, by descending probability
  /// (ties by ascending cell id). Fewer than k entries when the location set
  /// is smaller than k.
  std::vector<std::pair<geo::CellId, double>> top_k(geo::CellId from, std::size_t k) const;

  /// Full smoothed row distribution from `from`, descending by probability.
  std::vector<std::pair<geo::CellId, double>> row(geo::CellId from) const;

 private:
  friend class MarkovLearner;

  std::vector<geo::CellId> locations_;
  double alpha_ = 1.0;
  // Raw counts retained; probabilities computed on demand so that the
  // smoothing constant is honest about unobserved cells.
  std::map<geo::CellId, std::map<geo::CellId, std::size_t>> counts_;
  std::map<geo::CellId, std::size_t> row_totals_;
};

/// Fits MarkovModel instances from transition counts.
class MarkovLearner {
 public:
  /// `laplace_alpha` >= 0; zero disables smoothing (pure MLE).
  explicit MarkovLearner(double laplace_alpha = 1.0);

  double laplace_alpha() const { return alpha_; }

  MarkovModel fit(const TransitionCounts& counts) const;

 private:
  double alpha_;
};

}  // namespace mcs::mobility
