// PoS derivation (Section IV-A): a user's probability of success for a
// location-pinned sensing task is her predicted probability of reaching that
// location in the next time slot, read off her learned Markov model. The
// task-set builder reproduces the paper's workload: each taxi gets a random
// starting location and her task set is the 10–20 cells she is most likely to
// reach next.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "mobility/predictor.hpp"

namespace mcs::mobility {

/// A mobile user derived from a taxi's mobility model: her current cell and
/// the PoS for each cell in her task set (descending PoS).
struct MobilityUser {
  trace::TaxiId taxi = 0;
  geo::CellId current_cell = geo::kInvalidCell;
  std::vector<std::pair<geo::CellId, double>> task_pos;  ///< (task cell, PoS)
};

/// Parameters of the user derivation.
struct UserDerivationConfig {
  std::size_t min_task_set = 10;  ///< paper Table II: tasks per user in [10, 20]
  std::size_t max_task_set = 20;
  /// Drop candidate task cells with PoS below this floor; keeps degenerate
  /// never-reached cells out of task sets.
  double min_pos = 1e-4;
  /// Task deadline in slots. 1 reproduces the paper (PoS = next-slot
  /// probability); larger values price the PoS as the probability of
  /// visiting the cell within this many slots (mobility/multistep.hpp).
  std::size_t lookahead_steps = 1;
};

/// Derives the user a taxi presents when standing at `current_cell`: her task
/// set is her top-[min,max] predicted next cells (the size drawn from `rng`),
/// trimmed by the PoS floor. Returns nullopt when no admissible task cell
/// remains.
std::optional<MobilityUser> derive_user_at(const FleetModel& fleet, trace::TaxiId taxi,
                                           geo::CellId current_cell,
                                           const UserDerivationConfig& config,
                                           common::Rng& rng);

/// Derives one user per taxi in the fleet. Each taxi's starting cell is drawn
/// uniformly from her location set and her task set holds her
/// top-[min,max] predicted next cells. Taxis whose model yields fewer than
/// one admissible task cell are skipped. Deterministic given `rng`.
std::vector<MobilityUser> derive_users(const FleetModel& fleet, const UserDerivationConfig& config,
                                       common::Rng& rng);

/// PoS of one user for one cell (0 when the cell is not in her task set).
double user_pos_for_cell(const MobilityUser& user, geo::CellId cell);

/// Collects every PoS value across all users' task sets — the sample behind
/// the paper's Fig 4 PDF.
std::vector<double> all_pos_values(const std::vector<MobilityUser>& users);

}  // namespace mcs::mobility
