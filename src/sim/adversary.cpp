#include "sim/adversary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "auction/multi_task/mechanism.hpp"
#include "auction/single_task/mechanism.hpp"
#include "common/check.hpp"
#include "common/math.hpp"
#include "sim/metrics.hpp"

namespace mcs::sim {

namespace {

// SplitMix64 finalizer — the same pure-coordinate hashing discipline
// common::FaultInjector uses, so attack streams replay bit-for-bit
// independent of thread interleaving or materialization order.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t chain(std::uint64_t h, std::uint64_t v) { return mix(h ^ mix(v)); }

double utility_of(const auction::SingleTaskInstance& truth,
                  const auction::MechanismOutcome& outcome, auction::UserId user) {
  if (!outcome.allocation.contains(user)) {
    return 0.0;
  }
  return outcome.reward_of(user).reward.expected_utility(truth.bids[user].pos);
}

double utility_of(const auction::MultiTaskInstance& truth,
                  const auction::MechanismOutcome& outcome, auction::UserId user) {
  if (!outcome.allocation.contains(user)) {
    return 0.0;
  }
  return outcome.reward_of(user).reward.expected_utility(
      truth.users[user].any_success_probability());
}

void check_members(std::size_t num_users, const std::vector<auction::UserId>& members) {
  MCS_EXPECTS(!members.empty(), "a coalition needs at least one member");
  for (std::size_t i = 0; i < members.size(); ++i) {
    MCS_EXPECTS(members[i] >= 0 && static_cast<std::size_t>(members[i]) < num_users,
                "coalition member out of range");
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      MCS_EXPECTS(members[i] != members[j], "coalition members must be distinct");
    }
  }
}

auction::MultiTaskInstance replace_user(const auction::MultiTaskInstance& base,
                                        auction::UserId user,
                                        const auction::MultiTaskUserBid& bid) {
  auction::MultiTaskInstance out = base;
  out.users[user] = bid;
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pure attack streams
// ---------------------------------------------------------------------------

common::Rng attack_stream(std::uint64_t seed, AttackAxis axis, std::uint64_t round) {
  return common::Rng(chain(chain(mix(seed), static_cast<std::uint64_t>(axis)), round));
}

common::Rng attack_user_stream(std::uint64_t seed, AttackAxis axis, std::uint64_t round,
                               auction::UserId user) {
  const auto u = static_cast<std::uint64_t>(static_cast<std::int64_t>(user));
  return common::Rng(
      chain(chain(chain(mix(seed), static_cast<std::uint64_t>(axis)), round), u));
}

// ---------------------------------------------------------------------------
// Attack configuration & per-round schedule
// ---------------------------------------------------------------------------

void AttackConfig::validate() const {
  privacy.validate();
  MCS_EXPECTS(cell_failures.event_prob >= 0.0 && cell_failures.event_prob < 1.0,
              "cell-failure event probability must lie in [0, 1)");
  if (cell_failures.event_prob > 0.0) {
    MCS_EXPECTS(!cell_failures.cells.empty(),
                "a positive event probability needs candidate cells");
  }
}

AttackSchedule make_attack_schedule(const AttackConfig& config, std::size_t rounds) {
  config.validate();
  AttackSchedule schedule;
  schedule.seed = config.seed;
  schedule.events.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    auto rng = attack_stream(config.seed, AttackAxis::kCellFailure, r);
    schedule.events.push_back(draw_cell_failure(config.cell_failures, rng));
  }
  return schedule;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> schedule_fail_at(
    const AttackSchedule& schedule, const std::function<std::size_t(geo::CellId)>& shard_of) {
  MCS_EXPECTS(static_cast<bool>(shard_of), "schedule_fail_at needs a shard map");
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fail_at;
  for (std::size_t r = 0; r < schedule.events.size(); ++r) {
    const auto& event = schedule.events[r];
    if (event.occurred) {
      fail_at.emplace_back(static_cast<std::uint64_t>(r),
                           static_cast<std::uint64_t>(shard_of(event.cell)));
    }
  }
  return fail_at;
}

common::Rng report_stream(const AttackConfig& config, std::uint64_t round,
                          auction::UserId user) {
  return attack_user_stream(config.seed, AttackAxis::kPrivacy, round, user);
}

auction::SingleTaskInstance noised_reports(const AttackConfig& config,
                                           const auction::SingleTaskInstance& instance,
                                           std::uint64_t round) {
  config.validate();
  auction::SingleTaskInstance noised = instance;
  if (!config.privacy.enabled()) {
    return noised;
  }
  for (std::size_t u = 0; u < noised.bids.size(); ++u) {
    auto rng = report_stream(config, round, static_cast<auction::UserId>(u));
    noised.bids[u].pos = privatize_pos(noised.bids[u].pos, config.privacy, rng);
  }
  return noised;
}

auction::MultiTaskInstance noised_reports(const AttackConfig& config,
                                          const auction::MultiTaskInstance& instance,
                                          std::uint64_t round) {
  config.validate();
  auction::MultiTaskInstance noised = instance;
  if (!config.privacy.enabled()) {
    return noised;
  }
  for (std::size_t u = 0; u < noised.users.size(); ++u) {
    auto rng = report_stream(config, round, static_cast<auction::UserId>(u));
    for (auto& pos : noised.users[u].pos) {
      pos = privatize_pos(pos, config.privacy, rng);
    }
  }
  return noised;
}

// ---------------------------------------------------------------------------
// Sybil probes
// ---------------------------------------------------------------------------

namespace {

double split_pos(double pos, std::size_t clones) {
  const double q = common::contribution_from_pos(pos);
  return common::pos_from_contribution(q / static_cast<double>(clones));
}

}  // namespace

SingleTaskSybilSplit split_identity(const auction::SingleTaskInstance& instance,
                                    auction::UserId user, std::size_t clones) {
  MCS_EXPECTS(user >= 0 && static_cast<std::size_t>(user) < instance.num_users(),
              "sybil target out of range");
  MCS_EXPECTS(clones >= 2, "an identity split needs at least 2 clones");
  SingleTaskSybilSplit split;
  split.instance = instance;
  const auction::SingleTaskBid clone{instance.bids[user].cost / static_cast<double>(clones),
                                     split_pos(instance.bids[user].pos, clones)};
  split.instance.bids[user] = clone;
  split.identities.push_back(user);
  for (std::size_t k = 1; k < clones; ++k) {
    split.identities.push_back(static_cast<auction::UserId>(split.instance.bids.size()));
    split.instance.bids.push_back(clone);
  }
  return split;
}

MultiTaskSybilSplit split_identity(const auction::MultiTaskInstance& instance,
                                   auction::UserId user, std::size_t clones) {
  MCS_EXPECTS(user >= 0 && static_cast<std::size_t>(user) < instance.num_users(),
              "sybil target out of range");
  MCS_EXPECTS(clones >= 2, "an identity split needs at least 2 clones");
  MultiTaskSybilSplit split;
  split.instance = instance;
  auction::MultiTaskUserBid clone = instance.users[user];
  clone.cost /= static_cast<double>(clones);
  for (auto& pos : clone.pos) {
    pos = split_pos(pos, clones);
  }
  split.instance.users[user] = clone;
  split.identities.push_back(user);
  for (std::size_t k = 1; k < clones; ++k) {
    split.identities.push_back(static_cast<auction::UserId>(split.instance.users.size()));
    split.instance.users.push_back(clone);
  }
  return split;
}

DeviationProbe probe_sybil_split(const auction::SingleTaskInstance& truth,
                                 auction::UserId user, std::size_t clones,
                                 const auction::MechanismConfig& config, double tolerance) {
  DeviationProbe probe;
  const auto honest = auction::single_task::run_mechanism(truth, config);
  probe.truthful_utility = utility_of(truth, honest, user);
  const auto split = split_identity(truth, user, clones);
  const auto attacked = auction::single_task::run_mechanism(split.instance, config);
  for (const auto id : split.identities) {
    probe.deviated_utility += utility_of(split.instance, attacked, id);
  }
  probe.gain = probe.deviated_utility - probe.truthful_utility;
  probe.profitable = probe.gain > tolerance;
  return probe;
}

DeviationProbe probe_sybil_split(const auction::MultiTaskInstance& truth,
                                 auction::UserId user, std::size_t clones,
                                 const auction::MechanismConfig& config, double tolerance) {
  DeviationProbe probe;
  const auto honest = auction::multi_task::run_mechanism(truth, config);
  probe.truthful_utility = utility_of(truth, honest, user);
  const auto split = split_identity(truth, user, clones);
  const auto attacked = auction::multi_task::run_mechanism(split.instance, config);
  for (const auto id : split.identities) {
    probe.deviated_utility += utility_of(split.instance, attacked, id);
  }
  probe.gain = probe.deviated_utility - probe.truthful_utility;
  probe.profitable = probe.gain > tolerance;
  return probe;
}

// ---------------------------------------------------------------------------
// Coalition probes
// ---------------------------------------------------------------------------

double joint_expected_utility(const auction::SingleTaskInstance& truth,
                              const auction::SingleTaskInstance& declared,
                              std::span<const auction::UserId> members,
                              const auction::MechanismConfig& config) {
  MCS_EXPECTS(truth.num_users() == declared.num_users(),
              "truth and declared instances must have the same users");
  const auto outcome = auction::single_task::run_mechanism(declared, config);
  double joint = 0.0;
  for (const auto member : members) {
    joint += utility_of(truth, outcome, member);
  }
  return joint;
}

double joint_expected_utility(const auction::MultiTaskInstance& truth,
                              const auction::MultiTaskInstance& declared,
                              std::span<const auction::UserId> members,
                              const auction::MechanismConfig& config) {
  MCS_EXPECTS(truth.num_users() == declared.num_users(),
              "truth and declared instances must have the same users");
  const auto outcome = auction::multi_task::run_mechanism(declared, config);
  double joint = 0.0;
  for (const auto member : members) {
    joint += utility_of(truth, outcome, member);
  }
  return joint;
}

CoalitionProbe probe_coalition_shading(const auction::SingleTaskInstance& truth,
                                       std::vector<auction::UserId> members,
                                       std::span<const double> shade_grid,
                                       const auction::MechanismConfig& config,
                                       double tolerance) {
  check_members(truth.num_users(), members);
  CoalitionProbe probe;
  probe.members = std::move(members);
  probe.truthful_joint_utility =
      joint_expected_utility(truth, truth, probe.members, config);
  probe.best_joint_utility = probe.truthful_joint_utility;
  for (const double shade : shade_grid) {
    MCS_EXPECTS(shade > 0.0, "coalition shades must be positive");
    auction::SingleTaskInstance declared = truth;
    for (const auto member : probe.members) {
      declared = declared.with_declared_contribution(member,
                                                     shade * truth.contribution(member));
    }
    const double joint = joint_expected_utility(truth, declared, probe.members, config);
    if (joint > probe.best_joint_utility) {
      probe.best_joint_utility = joint;
      probe.best_shade = shade;
    }
  }
  probe.gain = probe.best_joint_utility - probe.truthful_joint_utility;
  probe.profitable = probe.gain > tolerance;
  return probe;
}

CoalitionProbe probe_coalition_shading(const auction::MultiTaskInstance& truth,
                                       std::vector<auction::UserId> members,
                                       std::span<const double> shade_grid,
                                       const auction::MechanismConfig& config,
                                       double tolerance) {
  check_members(truth.num_users(), members);
  CoalitionProbe probe;
  probe.members = std::move(members);
  probe.truthful_joint_utility =
      joint_expected_utility(truth, truth, probe.members, config);
  probe.best_joint_utility = probe.truthful_joint_utility;
  for (const double shade : shade_grid) {
    MCS_EXPECTS(shade > 0.0, "coalition shades must be positive");
    auction::MultiTaskInstance declared = truth;
    for (const auto member : probe.members) {
      declared = declared.with_declared_total_contribution(
          member, shade * truth.users[member].total_contribution());
    }
    const double joint = joint_expected_utility(truth, declared, probe.members, config);
    if (joint > probe.best_joint_utility) {
      probe.best_joint_utility = joint;
      probe.best_shade = shade;
    }
  }
  probe.gain = probe.best_joint_utility - probe.truthful_joint_utility;
  probe.profitable = probe.gain > tolerance;
  return probe;
}

// ---------------------------------------------------------------------------
// Reputation-weighted feedback loop
// ---------------------------------------------------------------------------

auction::MultiTaskInstance scale_declared_contributions(
    const auction::MultiTaskInstance& declared, std::span<const double> weights) {
  MCS_EXPECTS(weights.size() == declared.num_users(),
              "one prior weight per user is required");
  auction::MultiTaskInstance weighted = declared;
  for (std::size_t u = 0; u < weighted.users.size(); ++u) {
    const double w = weights[u];
    MCS_EXPECTS(w > 0.0 && w <= 1.0, "prior weights must lie in (0, 1]");
    if (w == 1.0) {
      continue;
    }
    for (auto& pos : weighted.users[u].pos) {
      pos = common::pos_from_contribution(w * common::contribution_from_pos(pos));
    }
  }
  return weighted;
}

std::vector<FeedbackRound> run_reputation_feedback(const auction::MultiTaskInstance& truth,
                                                   const auction::MultiTaskInstance& declared,
                                                   const FeedbackConfig& config,
                                                   const PriorWeightFn& prior,
                                                   const RoundObservation& observe) {
  MCS_EXPECTS(truth.num_users() == declared.num_users() &&
                  truth.num_tasks() == declared.num_tasks(),
              "truth and declared instances must have the same shape");
  std::vector<FeedbackRound> rounds;
  rounds.reserve(config.rounds);
  for (std::size_t r = 0; r < config.rounds; ++r) {
    std::vector<double> weights(declared.num_users(), 1.0);
    if (prior) {
      for (std::size_t u = 0; u < weights.size(); ++u) {
        weights[u] = prior(static_cast<auction::UserId>(u));
      }
    }
    const auto weighted = scale_declared_contributions(declared, weights);
    const auto outcome = auction::multi_task::run_mechanism(weighted, config.mechanism);

    FeedbackRound row;
    row.round = r;
    row.feasible = outcome.allocation.feasible;
    row.winners = outcome.allocation.winners;
    row.total_cost = outcome.allocation.total_cost;
    // Execution realizes from the TRUE types on the round's pure stream —
    // winners ascending, one bernoulli each, so the draw order is fixed.
    auto rng = attack_stream(config.seed, AttackAxis::kReputation, r);
    row.winner_success.reserve(row.winners.size());
    for (const auto winner : row.winners) {
      const bool success = rng.bernoulli(truth.users[winner].any_success_probability());
      row.winner_success.push_back(success);
      if (observe) {
        observe(winner, declared.users[winner].any_success_probability(), success);
      }
    }
    rounds.push_back(std::move(row));
  }
  return rounds;
}

// ---------------------------------------------------------------------------
// Hostile instance generator
// ---------------------------------------------------------------------------

const char* to_string(HostileShape shape) {
  switch (shape) {
    case HostileShape::kRandom:
      return "random";
    case HostileShape::kTiedCosts:
      return "tied-costs";
    case HostileShape::kNearBoundary:
      return "near-boundary";
    case HostileShape::kZeroPosTail:
      return "zero-pos-tail";
    case HostileShape::kMixedMagnitude:
      return "mixed-magnitude";
  }
  return "unknown";
}

namespace {

common::Rng shape_stream(std::uint64_t seed, HostileShape shape, std::uint64_t salt) {
  return attack_stream(seed, AttackAxis::kInstance,
                       chain(static_cast<std::uint64_t>(shape), salt));
}

double shaped_cost(HostileShape shape, common::Rng& rng) {
  switch (shape) {
    case HostileShape::kTiedCosts:
      return 5.0;
    case HostileShape::kMixedMagnitude:
      return std::pow(10.0, rng.uniform(-3.0, 3.0));
    default:
      return rng.uniform(1.0, 10.0);
  }
}

/// Fraction of the population's total contribution the requirement demands;
/// kNearBoundary pins it at 95% so the noised/shaded instance teeters on
/// infeasibility.
double coverage_fraction(HostileShape shape, common::Rng& rng) {
  return shape == HostileShape::kNearBoundary ? 0.95 : rng.uniform(0.3, 0.7);
}

bool in_zero_tail(HostileShape shape, std::size_t user, std::size_t users) {
  return shape == HostileShape::kZeroPosTail && user >= (2 * users) / 3;
}

}  // namespace

auction::SingleTaskInstance hostile_single_task(std::size_t users, HostileShape shape,
                                                std::uint64_t seed) {
  MCS_EXPECTS(users >= 3, "hostile instances need at least 3 users");
  auto rng = shape_stream(seed, shape, users);
  auction::SingleTaskInstance instance;
  instance.bids.reserve(users);
  double total_q = 0.0;
  for (std::size_t u = 0; u < users; ++u) {
    auction::SingleTaskBid bid;
    bid.cost = shaped_cost(shape, rng);
    bid.pos = in_zero_tail(shape, u, users) ? 0.0 : rng.uniform(0.05, 0.6);
    total_q += common::contribution_from_pos(bid.pos);
    instance.bids.push_back(bid);
  }
  instance.requirement_pos =
      common::pos_from_contribution(coverage_fraction(shape, rng) * total_q);
  instance.validate();
  return instance;
}

auction::MultiTaskInstance hostile_multi_task(std::size_t users, std::size_t tasks,
                                              HostileShape shape, std::uint64_t seed) {
  MCS_EXPECTS(users >= 3 && tasks >= 1, "hostile instances need >= 3 users and a task");
  // Users 0..t-1 seed one task each so every task has a non-zero contributor
  // even under kZeroPosTail (the tail is the LAST third of the users).
  MCS_EXPECTS(tasks <= (2 * users) / 3,
              "hostile multi-task instances need tasks <= 2/3 of the users");
  auto rng = shape_stream(seed, shape, chain(users, tasks));
  auction::MultiTaskInstance instance;
  instance.users.reserve(users);
  for (std::size_t u = 0; u < users; ++u) {
    auction::MultiTaskUserBid bid;
    bid.cost = shaped_cost(shape, rng);
    const auto first = static_cast<auction::TaskIndex>(u % tasks);
    bid.tasks.push_back(first);
    const auto extra = static_cast<std::size_t>(
        rng.uniform_int(0, std::min<std::int64_t>(2, static_cast<std::int64_t>(tasks) - 1)));
    for (std::size_t e = 0; e < extra; ++e) {
      const auto task = static_cast<auction::TaskIndex>(
          rng.uniform_int(0, static_cast<std::int64_t>(tasks) - 1));
      if (std::find(bid.tasks.begin(), bid.tasks.end(), task) == bid.tasks.end()) {
        bid.tasks.push_back(task);
      }
    }
    std::sort(bid.tasks.begin(), bid.tasks.end());
    const bool zero = in_zero_tail(shape, u, users);
    bid.pos.reserve(bid.tasks.size());
    for (std::size_t j = 0; j < bid.tasks.size(); ++j) {
      bid.pos.push_back(zero ? 0.0 : rng.uniform(0.05, 0.5));
    }
    instance.users.push_back(std::move(bid));
  }
  instance.requirement_pos.resize(tasks);
  std::vector<auction::UserId> everyone(users);
  for (std::size_t u = 0; u < users; ++u) {
    everyone[u] = static_cast<auction::UserId>(u);
  }
  for (std::size_t j = 0; j < tasks; ++j) {
    const double total =
        instance.achieved_contribution(everyone, static_cast<auction::TaskIndex>(j));
    instance.requirement_pos[j] =
        common::pos_from_contribution(coverage_fraction(shape, rng) * total);
  }
  instance.validate();
  return instance;
}

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

void SweepConfig::validate() const {
  MCS_EXPECTS(instances > 0, "the sweep needs at least one instance per point");
  MCS_EXPECTS(users >= 3 && tasks >= 1 && tasks <= (2 * users) / 3,
              "sweep users/tasks must satisfy the hostile-generator bounds");
  MCS_EXPECTS(!compute_opt || users <= 20, "brute-force OPT needs users <= 20");
  MCS_EXPECTS(alpha > 0.0, "alpha must be positive");
  MCS_EXPECTS(tolerance > 0.0, "tolerance must be positive");
  for (const double eps : epsilons) {
    MCS_EXPECTS(eps > 0.0 && std::isfinite(eps), "swept epsilons must be positive");
  }
  for (const double p : event_probs) {
    MCS_EXPECTS(p >= 0.0 && p < 1.0, "event probabilities must lie in [0, 1)");
  }
  for (const double s : shade_grid) {
    MCS_EXPECTS(s > 0.0, "coalition shades must be positive");
  }
  for (const std::size_t k : coalition_sizes) {
    MCS_EXPECTS(k >= 2 && k <= users, "coalition sizes must lie in [2, users]");
  }
  for (const std::size_t k : sybil_clones) {
    MCS_EXPECTS(k >= 2, "sybil splits need at least 2 clones");
  }
}

namespace {

bool rewards_identical(const std::vector<auction::WinnerReward>& a,
                       const std::vector<auction::WinnerReward>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].user != b[i].user ||
        a[i].critical_contribution != b[i].critical_contribution ||
        a[i].reward.critical_pos != b[i].reward.critical_pos ||
        a[i].reward.cost != b[i].reward.cost || a[i].reward.alpha != b[i].reward.alpha) {
      return false;
    }
  }
  return true;
}

bool outcomes_identical(const auction::MechanismOutcome& a,
                        const auction::MechanismOutcome& b) {
  return a.allocation.feasible == b.allocation.feasible &&
         a.allocation.winners == b.allocation.winners &&
         a.allocation.total_cost == b.allocation.total_cost &&
         a.degraded == b.degraded && a.uncovered_tasks == b.uncovered_tasks &&
         rewards_identical(a.rewards, b.rewards);
}

/// Per-run state of the sweep: the fast and oracle configurations plus the
/// divergence counters every auction in the sweep reports into.
struct SweepContext {
  const SweepConfig& cfg;
  auction::MechanismConfig fast;
  auction::MechanismConfig oracle;
  SweepResult* result = nullptr;

  auction::MechanismOutcome run(const auction::SingleTaskInstance& instance) {
    const auto out = auction::single_task::run_mechanism(instance, fast);
    ++result->auctions_run;
    if (cfg.check_fast_paths &&
        !outcomes_identical(out, auction::single_task::run_mechanism(instance, oracle))) {
      ++result->fast_oracle_mismatches;
    }
    return out;
  }

  auction::MechanismOutcome run(const auction::MultiTaskInstance& instance) {
    const auto out = auction::multi_task::run_mechanism(instance, fast);
    ++result->auctions_run;
    if (cfg.check_fast_paths &&
        !outcomes_identical(out, auction::multi_task::run_mechanism(instance, oracle))) {
      ++result->fast_oracle_mismatches;
    }
    return out;
  }
};

auction::MechanismConfig fast_config(const SweepConfig& cfg) {
  auction::MechanismConfig config;
  config.alpha = cfg.alpha;
  return config;  // defaults ARE the fast paths: kDpReuse, kColumns, kLazy, masked
}

auction::MechanismConfig oracle_config(const SweepConfig& cfg) {
  auction::MechanismConfig config;
  config.alpha = cfg.alpha;
  config.single_task.probe_strategy = auction::ProbeStrategy::kFullSolve;
  config.single_task.dp_kernel = auction::DpKernel::kScalarOracle;
  config.multi_task.winner_determination = auction::GreedyAlgorithm::kReferenceScan;
  config.multi_task.masked_rewards = false;
  return config;
}

/// Brute-force OPT cost over all 2^n subsets; +inf when nothing covers.
double opt_cost(const auction::SingleTaskInstance& instance) {
  const std::size_t n = instance.num_users();
  const double required = instance.requirement_contribution();
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    double cost = 0.0;
    double q = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      if (mask & (1ULL << u)) {
        cost += instance.bids[u].cost;
        q += instance.contribution(static_cast<auction::UserId>(u));
      }
    }
    if (common::approx_ge(q, required) && cost < best) {
      best = cost;
    }
  }
  return best;
}

double opt_cost(const auction::MultiTaskInstance& instance) {
  const std::size_t n = instance.num_users();
  const auto required = instance.requirement_contributions();
  double best = std::numeric_limits<double>::infinity();
  std::vector<double> achieved(required.size());
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    double cost = 0.0;
    std::fill(achieved.begin(), achieved.end(), 0.0);
    for (std::size_t u = 0; u < n; ++u) {
      if (mask & (1ULL << u)) {
        const auto& bid = instance.users[u];
        cost += bid.cost;
        for (std::size_t j = 0; j < bid.tasks.size(); ++j) {
          achieved[static_cast<std::size_t>(bid.tasks[j])] +=
              common::contribution_from_pos(bid.pos[j]);
        }
      }
    }
    bool covers = cost < best;
    for (std::size_t j = 0; covers && j < required.size(); ++j) {
      covers = common::approx_ge(achieved[j], required[j]);
    }
    if (covers) {
      best = cost;
    }
  }
  return best;
}

/// True-type coverage of a winner set: fraction of the tasks whose TRUE
/// achieved PoS meets the truthful requirement.
double true_coverage(const auction::SingleTaskInstance& truth,
                     const std::vector<auction::UserId>& winners) {
  return common::approx_ge(achieved_pos(truth, winners), truth.requirement_pos) ? 1.0 : 0.0;
}

double true_coverage(const auction::MultiTaskInstance& truth,
                     const std::vector<auction::UserId>& winners) {
  const auto achieved = achieved_pos(truth, winners);
  std::size_t hit = 0;
  for (std::size_t j = 0; j < achieved.size(); ++j) {
    if (common::approx_ge(achieved[j], truth.requirement_pos[j])) {
      ++hit;
    }
  }
  return achieved.empty() ? 0.0 : static_cast<double>(hit) / static_cast<double>(achieved.size());
}

/// The strategic-deviation grid of user `u` in the single-task family: a
/// deviated declared PoS routed through the SAME report-noise realization
/// (common random numbers), compared against (a) the noised-truthful play and
/// (b) the clean-truthful envelope.
struct ProbeAccumulator {
  PrivacyPoint* pt = nullptr;
  SweepResult* result = nullptr;
  bool baseline = false;  ///< ε disabled: violations are theorem violations
  double tolerance = 1e-6;
  double sum_violation_gain = 0.0;

  void record(double deviated, double truthful, double clean) {
    ++pt->sp_probes;
    const double gain = deviated - truthful;
    if (gain > tolerance) {
      ++pt->sp_violations;
      sum_violation_gain += gain;
      pt->max_sp_gain = std::max(pt->max_sp_gain, gain);
      if (baseline) {
        ++result->truthful_sp_violations;
      }
    }
    pt->max_envelope_excess = std::max(pt->max_envelope_excess, deviated - clean);
  }
};

struct PointAverages {
  double sum_cost_ratio = 0.0;
  std::size_t cost_samples = 0;
  double sum_opt_ratio = 0.0;
  std::size_t opt_samples = 0;
  double sum_coverage = 0.0;
  std::size_t coverage_samples = 0;

  void finish(PrivacyPoint& pt) const {
    pt.cost_ratio_vs_truthful = cost_samples ? sum_cost_ratio / cost_samples : 0.0;
    pt.approx_ratio_vs_opt = opt_samples ? sum_opt_ratio / opt_samples : 0.0;
    pt.coverage_rate = coverage_samples ? sum_coverage / coverage_samples : 0.0;
  }
};

void finish_point(PrivacyPoint& pt, const ProbeAccumulator& acc, const PointAverages& avg) {
  pt.sp_violation_rate =
      pt.sp_probes ? static_cast<double>(pt.sp_violations) / pt.sp_probes : 0.0;
  pt.ir_violation_rate =
      pt.ir_winners ? static_cast<double>(pt.ir_violations) / pt.ir_winners : 0.0;
  pt.mean_sp_gain = pt.sp_violations ? acc.sum_violation_gain / pt.sp_violations : 0.0;
  avg.finish(pt);
}

void record_ir(const std::vector<double>& utilities, PrivacyPoint& pt, SweepResult& result,
               bool baseline, double tolerance) {
  for (const double u : utilities) {
    ++pt.ir_winners;
    if (u < -tolerance) {
      ++pt.ir_violations;
      if (baseline) {
        ++result.truthful_ir_violations;
      }
    }
  }
}

std::vector<PrivacyPoint> privacy_axis_single(SweepContext& ctx) {
  const auto& cfg = ctx.cfg;
  std::vector<double> eps_grid = {0.0};  // the truthful baseline
  eps_grid.insert(eps_grid.end(), cfg.epsilons.begin(), cfg.epsilons.end());

  std::vector<PrivacyPoint> points;
  for (const double eps : eps_grid) {
    PrivacyPoint pt;
    pt.epsilon = eps;
    const bool baseline = eps <= 0.0;
    ProbeAccumulator acc{&pt, ctx.result, baseline, cfg.tolerance};
    PointAverages avg;
    AttackConfig atk;
    atk.seed = cfg.seed;
    atk.privacy.epsilon = eps;
    atk.privacy.mechanism = cfg.mechanism;

    for (std::size_t i = 0; i < cfg.instances; ++i) {
      const auto shape = kHostileShapes[i % kHostileShapes.size()];
      const auto truth = hostile_single_task(cfg.users, shape, cfg.seed + i);
      const auto noised = noised_reports(atk, truth, i);
      const auto outcome = ctx.run(noised);

      if (outcome.allocation.feasible) {
        record_ir(expected_utilities(truth, outcome), pt, *ctx.result, baseline,
                  cfg.tolerance);
        avg.sum_coverage += true_coverage(truth, outcome.allocation.winners);
        ++avg.coverage_samples;
        const auto honest = ctx.run(truth);
        if (honest.allocation.feasible && honest.allocation.total_cost > 0.0) {
          avg.sum_cost_ratio += outcome.allocation.total_cost / honest.allocation.total_cost;
          ++avg.cost_samples;
        }
        if (cfg.compute_opt) {
          const double opt = opt_cost(truth);
          if (std::isfinite(opt) && opt > 0.0) {
            avg.sum_opt_ratio += outcome.allocation.total_cost / opt;
            ++avg.opt_samples;
          }
        }
      } else {
        ++pt.infeasible_noised;
      }

      for (std::size_t u = 0; u < cfg.users; ++u) {
        const auto user = static_cast<auction::UserId>(u);
        const double u_truthful = utility_of(truth, outcome, user);
        // The envelope: the user's exact true report, un-noised, with the
        // others' noised reports held fixed. SP of the underlying mechanism
        // says NO deviation (noised or not) beats this.
        const auto clean = noised.with_declared_pos(user, truth.bids[user].pos);
        const double u_clean = utility_of(truth, ctx.run(clean), user);
        for (std::size_t trial = 0; trial < cfg.misreport_trials; ++trial) {
          auto dev_rng =
              attack_user_stream(cfg.seed, AttackAxis::kMisreport, (i << 16) | trial, user);
          double declared = dev_rng.uniform(0.0, 0.95);
          if (!baseline) {
            auto noise = report_stream(atk, i, user);
            declared = privatize_pos(declared, atk.privacy, noise);
          }
          const auto deviated = noised.with_declared_pos(user, declared);
          acc.record(utility_of(truth, ctx.run(deviated), user), u_truthful, u_clean);
        }
      }
    }
    finish_point(pt, acc, avg);
    points.push_back(pt);
  }
  return points;
}

std::vector<PrivacyPoint> privacy_axis_multi(SweepContext& ctx) {
  const auto& cfg = ctx.cfg;
  std::vector<double> eps_grid = {0.0};
  eps_grid.insert(eps_grid.end(), cfg.epsilons.begin(), cfg.epsilons.end());

  std::vector<PrivacyPoint> points;
  for (const double eps : eps_grid) {
    PrivacyPoint pt;
    pt.epsilon = eps;
    const bool baseline = eps <= 0.0;
    ProbeAccumulator acc{&pt, ctx.result, baseline, cfg.tolerance};
    PointAverages avg;
    AttackConfig atk;
    atk.seed = cfg.seed ^ 0x6d756c7469ULL;  // decorrelate from the single-task axis
    atk.privacy.epsilon = eps;
    atk.privacy.mechanism = cfg.mechanism;

    for (std::size_t i = 0; i < cfg.instances; ++i) {
      const auto shape = kHostileShapes[i % kHostileShapes.size()];
      const auto truth = hostile_multi_task(cfg.users, cfg.tasks, shape, cfg.seed + i);
      const auto noised = noised_reports(atk, truth, i);
      const auto outcome = ctx.run(noised);

      if (outcome.allocation.feasible) {
        record_ir(expected_utilities(truth, outcome), pt, *ctx.result, baseline,
                  cfg.tolerance);
        avg.sum_coverage += true_coverage(truth, outcome.allocation.winners);
        ++avg.coverage_samples;
        const auto honest = ctx.run(truth);
        if (honest.allocation.feasible && honest.allocation.total_cost > 0.0) {
          avg.sum_cost_ratio += outcome.allocation.total_cost / honest.allocation.total_cost;
          ++avg.cost_samples;
        }
        if (cfg.compute_opt) {
          const double opt = opt_cost(truth);
          if (std::isfinite(opt) && opt > 0.0) {
            avg.sum_opt_ratio += outcome.allocation.total_cost / opt;
            ++avg.opt_samples;
          }
        }
      } else {
        ++pt.infeasible_noised;
      }

      for (std::size_t u = 0; u < cfg.users; ++u) {
        const auto user = static_cast<auction::UserId>(u);
        const double u_truthful = utility_of(truth, outcome, user);
        const auto clean = replace_user(noised, user, truth.users[user]);
        const double u_clean = utility_of(truth, ctx.run(clean), user);
        const double true_total = truth.users[user].total_contribution();
        for (std::size_t trial = 0; trial < cfg.misreport_trials; ++trial) {
          auto dev_rng =
              attack_user_stream(cfg.seed, AttackAxis::kMisreport, (i << 16) | trial, user);
          // Deviate in contribution space (scale the whole declared vector),
          // then push the deviated vector through the SAME noise stream the
          // truthful report would have seen.
          const double scale = dev_rng.uniform(0.1, 1.9);
          auto deviated_bid =
              truth.with_declared_total_contribution(user, scale * true_total).users[user];
          if (!baseline) {
            auto noise = report_stream(atk, i, user);
            for (auto& pos : deviated_bid.pos) {
              pos = privatize_pos(pos, atk.privacy, noise);
            }
          }
          const auto deviated = replace_user(noised, user, deviated_bid);
          acc.record(utility_of(truth, ctx.run(deviated), user), u_truthful, u_clean);
        }
      }
    }
    finish_point(pt, acc, avg);
    points.push_back(pt);
  }
  return points;
}

std::vector<FailurePoint> failure_axis(SweepContext& ctx) {
  const auto& cfg = ctx.cfg;
  std::vector<geo::CellId> task_cells(cfg.tasks);
  for (std::size_t j = 0; j < cfg.tasks; ++j) {
    task_cells[j] = static_cast<geo::CellId>(j);
  }

  std::vector<FailurePoint> points;
  for (const double event_prob : cfg.event_probs) {
    FailurePoint pt;
    pt.event_prob = event_prob;
    pt.rounds = cfg.failure_rounds;
    AttackConfig atk;
    atk.seed = cfg.seed ^ 0x77656174686572ULL;
    atk.cell_failures.event_prob = event_prob;
    atk.cell_failures.cells = task_cells;
    const auto schedule = make_attack_schedule(atk, cfg.failure_rounds);

    double sum_coverage = 0.0;
    std::size_t hit = 0;
    std::size_t task_samples = 0;
    for (std::size_t r = 0; r < cfg.failure_rounds; ++r) {
      const auto& event = schedule.events[r];
      if (event.occurred) {
        ++pt.events;
      }
      const auto truth =
          hostile_multi_task(cfg.users, cfg.tasks, HostileShape::kRandom, cfg.seed + 7000 + r);
      const auto outcome = ctx.run(truth);
      if (!outcome.allocation.feasible) {
        continue;
      }
      for (std::size_t j = 0; j < cfg.tasks; ++j) {
        const auto task = static_cast<auction::TaskIndex>(j);
        const double achieved = achieved_pos_with_cell_failure(
            truth, outcome.allocation.winners, task, task_cells, event);
        const double required = truth.requirement_pos[j];
        sum_coverage += std::min(achieved / required, 1.0);
        if (common::approx_ge(achieved, required)) {
          ++hit;
        }
        ++task_samples;
      }
    }
    pt.mean_coverage = task_samples ? sum_coverage / task_samples : 0.0;
    pt.requirement_hit_rate = task_samples ? static_cast<double>(hit) / task_samples : 0.0;
    points.push_back(pt);
  }
  return points;
}

/// The first `size` winners of the truthful run, padded with the lowest-id
/// losers when the winner set is smaller than the coalition.
std::vector<auction::UserId> pick_members(const auction::Allocation& allocation,
                                          std::size_t size, std::size_t users) {
  std::vector<auction::UserId> members(
      allocation.winners.begin(),
      allocation.winners.begin() +
          static_cast<std::ptrdiff_t>(std::min(size, allocation.winners.size())));
  for (std::size_t u = 0; members.size() < size && u < users; ++u) {
    const auto id = static_cast<auction::UserId>(u);
    if (std::find(members.begin(), members.end(), id) == members.end()) {
      members.push_back(id);
    }
  }
  std::sort(members.begin(), members.end());
  return members;
}

std::vector<CollusionPoint> collusion_axis(SweepContext& ctx) {
  const auto& cfg = ctx.cfg;
  std::vector<CollusionPoint> points;

  for (const std::size_t size : cfg.coalition_sizes) {
    CollusionPoint pt;
    pt.kind = "coalition";
    pt.size = size;
    double sum_gain = 0.0;
    std::size_t profitable = 0;
    for (std::size_t i = 0; i < cfg.instances; ++i) {
      const auto shape = kHostileShapes[i % kHostileShapes.size()];
      const auto st = hostile_single_task(cfg.users, shape, cfg.seed + 9000 + i);
      const auto st_probe = probe_coalition_shading(
          st, pick_members(ctx.run(st).allocation, size, cfg.users), cfg.shade_grid,
          ctx.fast, cfg.tolerance);
      const auto mt = hostile_multi_task(cfg.users, cfg.tasks, shape, cfg.seed + 9000 + i);
      const auto mt_probe = probe_coalition_shading(
          mt, pick_members(ctx.run(mt).allocation, size, cfg.users), cfg.shade_grid,
          ctx.fast, cfg.tolerance);
      for (const auto& probe : {st_probe, mt_probe}) {
        ++pt.probes;
        if (probe.profitable) {
          ++profitable;
          sum_gain += probe.gain;
          pt.max_gain = std::max(pt.max_gain, probe.gain);
        }
      }
    }
    pt.profitable_rate = pt.probes ? static_cast<double>(profitable) / pt.probes : 0.0;
    pt.mean_gain = profitable ? sum_gain / profitable : 0.0;
    points.push_back(pt);
  }

  for (const std::size_t clones : cfg.sybil_clones) {
    CollusionPoint pt;
    pt.kind = "sybil";
    pt.size = clones;
    double sum_gain = 0.0;
    std::size_t profitable = 0;
    for (std::size_t i = 0; i < cfg.instances; ++i) {
      const auto shape = kHostileShapes[i % kHostileShapes.size()];
      const auto st = hostile_single_task(cfg.users, shape, cfg.seed + 9500 + i);
      const auto st_out = ctx.run(st);
      const auto mt = hostile_multi_task(cfg.users, cfg.tasks, shape, cfg.seed + 9500 + i);
      const auto mt_out = ctx.run(mt);
      std::vector<DeviationProbe> probes;
      if (!st_out.allocation.winners.empty()) {
        probes.push_back(probe_sybil_split(st, st_out.allocation.winners.front(), clones,
                                           ctx.fast, cfg.tolerance));
      }
      if (!mt_out.allocation.winners.empty()) {
        probes.push_back(probe_sybil_split(mt, mt_out.allocation.winners.front(), clones,
                                           ctx.fast, cfg.tolerance));
      }
      for (const auto& probe : probes) {
        ++pt.probes;
        if (probe.profitable) {
          ++profitable;
          sum_gain += probe.gain;
          pt.max_gain = std::max(pt.max_gain, probe.gain);
        }
      }
    }
    pt.profitable_rate = pt.probes ? static_cast<double>(profitable) / pt.probes : 0.0;
    pt.mean_gain = profitable ? sum_gain / profitable : 0.0;
    points.push_back(pt);
  }
  return points;
}

}  // namespace

SweepResult run_adversarial_sweep(const SweepConfig& config) {
  config.validate();
  SweepResult result;
  SweepContext ctx{config, fast_config(config), oracle_config(config), &result};
  result.single_task = privacy_axis_single(ctx);
  result.multi_task = privacy_axis_multi(ctx);
  result.failures = failure_axis(ctx);
  result.collusion = collusion_axis(ctx);
  return result;
}

SweepConfig quick_sweep_config() {
  SweepConfig cfg;
  cfg.instances = 2;
  cfg.users = 10;
  cfg.tasks = 4;
  cfg.misreport_trials = 1;
  cfg.epsilons = {0.5, 2.0};
  cfg.event_probs = {0.0, 0.5};
  cfg.failure_rounds = 8;
  cfg.coalition_sizes = {2};
  cfg.shade_grid = {0.5, 0.9, 1.25};
  cfg.sybil_clones = {2};
  return cfg;
}

}  // namespace mcs::sim
