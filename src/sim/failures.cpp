#include "sim/failures.hpp"

#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::sim {

namespace {
void check_model(const FailureModel& model) {
  MCS_EXPECTS(model.outage_prob >= 0.0 && model.outage_prob < 1.0,
              "outage probability must lie in [0, 1)");
  MCS_EXPECTS(model.hardware_prob >= 0.0 && model.hardware_prob < 1.0,
              "hardware failure probability must lie in [0, 1)");
}
}  // namespace

FailureRun simulate_with_failures(const auction::MultiTaskInstance& instance,
                                  const std::vector<auction::UserId>& winners,
                                  const FailureModel& model, common::Rng& rng) {
  check_model(model);
  FailureRun run;
  run.outage = rng.bernoulli(model.outage_prob);
  run.winner_hardware_ok.reserve(winners.size());
  run.winner_any_success.reserve(winners.size());
  run.task_completed.assign(instance.num_tasks(), false);
  for (auction::UserId winner : winners) {
    MCS_EXPECTS(winner >= 0 && static_cast<std::size_t>(winner) < instance.users.size(),
                "winner id out of range");
    const bool hardware_ok = !rng.bernoulli(model.hardware_prob);
    run.winner_hardware_ok.push_back(hardware_ok);
    bool any = false;
    if (!run.outage && hardware_ok) {
      const auto& bid = instance.users[static_cast<std::size_t>(winner)];
      for (std::size_t k = 0; k < bid.tasks.size(); ++k) {
        if (rng.bernoulli(bid.pos[k])) {
          any = true;
          run.task_completed[static_cast<std::size_t>(bid.tasks[k])] = true;
        }
      }
    }
    run.winner_any_success.push_back(any);
  }
  return run;
}

double achieved_pos_with_failures(const auction::MultiTaskInstance& instance,
                                  const std::vector<auction::UserId>& winners,
                                  auction::TaskIndex task, const FailureModel& model) {
  check_model(model);
  // Σ_i -ln(1 - (1-h)·p_i) over winners covering the task, then compose with
  // the round-level outage.
  double effective_q = 0.0;
  for (auction::UserId winner : winners) {
    MCS_EXPECTS(winner >= 0 && static_cast<std::size_t>(winner) < instance.users.size(),
                "winner id out of range");
    const double p = instance.users[static_cast<std::size_t>(winner)].pos_for(task);
    effective_q += common::contribution_from_pos((1.0 - model.hardware_prob) * p);
  }
  return (1.0 - model.outage_prob) * common::pos_from_contribution(effective_q);
}

CellFailureEvent draw_cell_failure(const CellFailureModel& model, common::Rng& rng) {
  MCS_EXPECTS(model.event_prob >= 0.0 && model.event_prob < 1.0,
              "cell-failure event probability must lie in [0, 1)");
  MCS_EXPECTS(model.event_prob == 0.0 || !model.cells.empty(),
              "cell-failure model needs candidate cells when event_prob > 0");
  CellFailureEvent event;
  event.occurred = rng.bernoulli(model.event_prob);
  if (event.occurred) {
    const auto pick =
        rng.uniform_int(0, static_cast<std::int64_t>(model.cells.size()) - 1);
    event.cell = model.cells[static_cast<std::size_t>(pick)];
  }
  return event;
}

FailureRun simulate_with_cell_failure(const auction::MultiTaskInstance& instance,
                                      const std::vector<auction::UserId>& winners,
                                      const std::vector<geo::CellId>& task_cells,
                                      const CellFailureEvent& event, common::Rng& rng) {
  MCS_EXPECTS(task_cells.size() == instance.num_tasks(),
              "task_cells must align with the instance's tasks");
  FailureRun run;
  run.winner_hardware_ok.assign(winners.size(), true);  // no hardware axis here
  run.winner_any_success.reserve(winners.size());
  run.task_completed.assign(instance.num_tasks(), false);
  for (auction::UserId winner : winners) {
    MCS_EXPECTS(winner >= 0 && static_cast<std::size_t>(winner) < instance.users.size(),
                "winner id out of range");
    const auto& bid = instance.users[static_cast<std::size_t>(winner)];
    bool any = false;
    for (std::size_t k = 0; k < bid.tasks.size(); ++k) {
      // Draw FIRST, then mask: the rng stream is identical with and without
      // the event, so paired runs differ only inside the failed cell.
      const bool attempt_ok = rng.bernoulli(bid.pos[k]);
      const auto task = static_cast<std::size_t>(bid.tasks[k]);
      const bool cell_ok = !event.occurred || task_cells[task] != event.cell;
      if (attempt_ok && cell_ok) {
        any = true;
        run.task_completed[task] = true;
      }
    }
    run.winner_any_success.push_back(any);
  }
  return run;
}

double achieved_pos_with_cell_failure(const auction::MultiTaskInstance& instance,
                                      const std::vector<auction::UserId>& winners,
                                      auction::TaskIndex task,
                                      const std::vector<geo::CellId>& task_cells,
                                      const CellFailureEvent& event) {
  MCS_EXPECTS(task_cells.size() == instance.num_tasks(),
              "task_cells must align with the instance's tasks");
  MCS_EXPECTS(task >= 0 && static_cast<std::size_t>(task) < instance.num_tasks(),
              "task index out of range");
  if (event.occurred && task_cells[static_cast<std::size_t>(task)] == event.cell) {
    return 0.0;
  }
  double q = 0.0;
  for (auction::UserId winner : winners) {
    MCS_EXPECTS(winner >= 0 && static_cast<std::size_t>(winner) < instance.users.size(),
                "winner id out of range");
    q += common::contribution_from_pos(
        instance.users[static_cast<std::size_t>(winner)].pos_for(task));
  }
  return common::pos_from_contribution(q);
}

double compensated_requirement(double target, const FailureModel& model) {
  check_model(model);
  MCS_EXPECTS(target > 0.0 && target < 1.0, "target PoS must lie in (0, 1)");
  const double survivable = target / (1.0 - model.outage_prob);
  MCS_EXPECTS(survivable < 1.0,
              "target is unreachable: it exceeds the outage survival probability");
  // Declared coverage Q' must satisfy (1-h)·Q' >= -ln(1 - target/(1-o)).
  const double required_effective_q = common::contribution_from_pos(survivable);
  const double declared_q = required_effective_q / (1.0 - model.hardware_prob);
  return common::pos_from_contribution(declared_q);
}

}  // namespace mcs::sim
