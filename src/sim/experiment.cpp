#include "sim/experiment.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mcs::sim {

Workload::Workload(const WorkloadConfig& config)
    : config_(config),
      city_(config.city),
      dataset_(trace::generate_trace(city_)),
      fleet_(dataset_, city_.grid(), mobility::MarkovLearner(config.laplace_alpha),
             config.train_fraction) {
  common::Rng rng(config.user_seed);
  users_ = mobility::derive_users(fleet_, config.users, rng);
}

WorkloadConfig default_bench_workload() {
  WorkloadConfig config;
  config.city.num_taxis = 250;
  config.city.num_days = 12;
  config.city.trips_per_day = 25;
  return config;
}

std::vector<auction::AuctionInstance> sample_round_batch(const Workload& workload,
                                                         std::size_t rounds,
                                                         std::size_t num_tasks,
                                                         std::size_t num_users,
                                                         const ScenarioParams& params,
                                                         common::Rng& rng) {
  std::vector<auction::AuctionInstance> batch;
  batch.reserve(rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    auto scenario =
        build_feasible_multi_task(workload.users(), num_tasks, num_users, params, rng, 30);
    if (!scenario.has_value()) {
      continue;
    }
    batch.emplace_back(std::move(scenario->instance));
  }
  return batch;
}

std::vector<auction::MechanismOutcome> run_round_batch(
    const auction::Engine& engine, const std::vector<auction::AuctionInstance>& batch,
    const auction::MechanismConfig& config) {
  return engine.run(batch, config);
}

std::size_t stream_round_chunks(
    const Workload& workload, const auction::Engine& engine, std::size_t rounds,
    std::size_t num_tasks, std::size_t num_users, const ScenarioParams& params,
    common::Rng& rng, std::size_t chunk_size, const auction::MechanismConfig& config,
    const std::function<void(const auction::AuctionInstance&, const auction::MechanismOutcome&)>&
        sink) {
  MCS_EXPECTS(chunk_size > 0, "chunk size must be positive");
  std::size_t delivered = 0;
  std::vector<auction::AuctionInstance> chunk;
  chunk.reserve(std::min(rounds, chunk_size));
  std::size_t sampled = 0;
  while (sampled < rounds) {
    // Sample the next chunk with the exact per-round draws of the batched
    // sampler (same builder, same retry budget, same rng stream).
    chunk.clear();
    while (sampled < rounds && chunk.size() < chunk_size) {
      ++sampled;
      auto scenario =
          build_feasible_multi_task(workload.users(), num_tasks, num_users, params, rng, 30);
      if (!scenario.has_value()) {
        continue;
      }
      chunk.emplace_back(std::move(scenario->instance));
    }
    if (chunk.empty()) {
      continue;
    }
    const auto outcomes = engine.run(chunk, config);
    for (std::size_t k = 0; k < chunk.size(); ++k) {
      sink(chunk[k], outcomes[k]);
    }
    delivered += chunk.size();
  }
  return delivered;
}

}  // namespace mcs::sim
