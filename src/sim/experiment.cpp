#include "sim/experiment.hpp"

#include "common/rng.hpp"

namespace mcs::sim {

Workload::Workload(const WorkloadConfig& config)
    : config_(config),
      city_(config.city),
      dataset_(trace::generate_trace(city_)),
      fleet_(dataset_, city_.grid(), mobility::MarkovLearner(config.laplace_alpha),
             config.train_fraction) {
  common::Rng rng(config.user_seed);
  users_ = mobility::derive_users(fleet_, config.users, rng);
}

WorkloadConfig default_bench_workload() {
  WorkloadConfig config;
  config.city.num_taxis = 250;
  config.city.num_days = 12;
  config.city.trips_per_day = 25;
  return config;
}

}  // namespace mcs::sim
