#include "sim/experiment.hpp"

#include "common/rng.hpp"

namespace mcs::sim {

Workload::Workload(const WorkloadConfig& config)
    : config_(config),
      city_(config.city),
      dataset_(trace::generate_trace(city_)),
      fleet_(dataset_, city_.grid(), mobility::MarkovLearner(config.laplace_alpha),
             config.train_fraction) {
  common::Rng rng(config.user_seed);
  users_ = mobility::derive_users(fleet_, config.users, rng);
}

WorkloadConfig default_bench_workload() {
  WorkloadConfig config;
  config.city.num_taxis = 250;
  config.city.num_days = 12;
  config.city.trips_per_day = 25;
  return config;
}

std::vector<auction::AuctionInstance> sample_round_batch(const Workload& workload,
                                                         std::size_t rounds,
                                                         std::size_t num_tasks,
                                                         std::size_t num_users,
                                                         const ScenarioParams& params,
                                                         common::Rng& rng) {
  std::vector<auction::AuctionInstance> batch;
  batch.reserve(rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    auto scenario =
        build_feasible_multi_task(workload.users(), num_tasks, num_users, params, rng, 30);
    if (!scenario.has_value()) {
      continue;
    }
    batch.emplace_back(std::move(scenario->instance));
  }
  return batch;
}

std::vector<auction::MechanismOutcome> run_round_batch(
    const auction::Engine& engine, const std::vector<auction::AuctionInstance>& batch,
    const auction::MechanismConfig& config) {
  return engine.run(batch, config);
}

}  // namespace mcs::sim
