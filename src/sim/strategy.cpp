#include "sim/strategy.hpp"

#include <algorithm>

#include "auction/single_task/fptas.hpp"
#include "auction/multi_task/greedy.hpp"
#include "common/check.hpp"

namespace mcs::sim {

std::vector<MisreportPoint> sweep_declared_pos(
    const auction::SingleTaskInstance& truth, auction::UserId user,
    const std::vector<double>& declared_grid, const auction::MechanismConfig& config) {
  MCS_EXPECTS(user >= 0 && static_cast<std::size_t>(user) < truth.bids.size(),
              "user id out of range");
  const double true_pos = truth.bids[static_cast<std::size_t>(user)].pos;

  std::vector<MisreportPoint> sweep;
  sweep.reserve(declared_grid.size());
  for (double declared : declared_grid) {
    const auto instance = truth.with_declared_pos(user, declared);
    MisreportPoint point;
    point.declared = declared;
    const auto allocation =
        auction::single_task::solve_fptas(instance, config.single_task.epsilon);
    point.won = allocation.feasible && allocation.contains(user);
    if (point.won) {
      const auction::single_task::RewardOptions options{
          .alpha = config.alpha,
          .epsilon = config.single_task.epsilon,
          .binary_search_iterations = config.single_task.binary_search_iterations};
      const auto reward = auction::single_task::compute_reward(instance, user, options);
      // The reward is settled against the user's TRUE success probability.
      point.expected_utility = reward.reward.expected_utility(true_pos);
    }
    sweep.push_back(point);
  }
  return sweep;
}

std::vector<MisreportPoint> sweep_declared_contribution(
    const auction::MultiTaskInstance& truth, auction::UserId user,
    const std::vector<double>& declared_grid, const auction::MechanismConfig& config) {
  MCS_EXPECTS(user >= 0 && static_cast<std::size_t>(user) < truth.num_users(),
              "user id out of range");
  const double true_any =
      truth.users[static_cast<std::size_t>(user)].any_success_probability();

  std::vector<MisreportPoint> sweep;
  sweep.reserve(declared_grid.size());
  for (double declared : declared_grid) {
    const auto instance = truth.with_declared_total_contribution(user, declared);
    MisreportPoint point;
    point.declared = declared;
    const auto result = auction::multi_task::solve_greedy(instance);
    point.won = result.allocation.feasible && result.allocation.contains(user);
    if (point.won) {
      const auction::multi_task::RewardOptions options{
          .alpha = config.alpha, .rule = config.multi_task.critical_bid_rule};
      const auto reward = auction::multi_task::compute_reward(instance, user, options);
      point.expected_utility = reward.reward.expected_utility(true_any);
    }
    sweep.push_back(point);
  }
  return sweep;
}

bool truthful_is_optimal(const std::vector<MisreportPoint>& sweep, double truthful_utility,
                         double tolerance) {
  return std::all_of(sweep.begin(), sweep.end(), [&](const MisreportPoint& point) {
    return point.expected_utility <= truthful_utility + tolerance;
  });
}

}  // namespace mcs::sim
