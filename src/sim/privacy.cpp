#include "sim/privacy.hpp"

#include <cmath>
#include <variant>

#include "common/check.hpp"
#include "common/math.hpp"

namespace mcs::sim {

const char* to_string(PrivacyMechanism mechanism) {
  switch (mechanism) {
    case PrivacyMechanism::kLaplace:
      return "laplace";
    case PrivacyMechanism::kRandomizedResponse:
      return "randomized-response";
  }
  return "unknown";
}

void PrivacyModel::validate() const {
  MCS_EXPECTS(pos_cap > 0.0 && pos_cap < 1.0, "privacy pos_cap must lie in (0, 1)");
  MCS_EXPECTS(response_bins >= 2, "randomized response needs at least 2 bins");
  if (enabled()) {
    MCS_EXPECTS(std::isfinite(epsilon), "a positive privacy epsilon must be finite");
  }
}

double laplace_scale(const PrivacyModel& model) {
  model.validate();
  MCS_EXPECTS(model.enabled(), "laplace_scale needs a positive epsilon");
  return 1.0 / model.epsilon;
}

double sample_laplace(common::Rng& rng, double scale) {
  MCS_EXPECTS(scale > 0.0, "laplace scale must be positive");
  // Inverse CDF: u uniform in [-0.5, 0.5), noise = -b·sgn(u)·ln(1 - 2|u|).
  // The u = -0.5 endpoint maps to -infinity; the caller's clamp absorbs it.
  const double u = rng.uniform01() - 0.5;
  const double magnitude = -scale * std::log1p(-2.0 * std::abs(u));
  return u < 0.0 ? -magnitude : magnitude;
}

double randomized_response_keep_probability(const PrivacyModel& model) {
  model.validate();
  MCS_EXPECTS(model.enabled(), "randomized response needs a positive epsilon");
  const double lift = std::exp(model.epsilon);
  return lift / (lift + static_cast<double>(model.response_bins) - 1.0);
}

double privatize_pos(double pos, const PrivacyModel& model, common::Rng& rng) {
  model.validate();
  MCS_EXPECTS(pos >= 0.0 && pos <= 1.0, "a PoS report must lie in [0, 1]");
  if (!model.enabled()) {
    return pos;
  }
  if (model.mechanism == PrivacyMechanism::kLaplace) {
    const double noised = pos + sample_laplace(rng, laplace_scale(model));
    return common::clamp(noised, 0.0, model.pos_cap);
  }
  // k-ary randomized response over equal bins of [0, pos_cap]: truthful
  // reports land in their own bin's center, replaced reports in a uniformly
  // random OTHER bin's center.
  const auto bins = model.response_bins;
  const double width = model.pos_cap / static_cast<double>(bins);
  const auto own = static_cast<std::size_t>(
      std::min(static_cast<double>(bins - 1), std::floor(pos / width)));
  std::size_t reported = own;
  if (!rng.bernoulli(randomized_response_keep_probability(model))) {
    const auto other = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bins) - 2));
    reported = other >= own ? other + 1 : other;
  }
  return (static_cast<double>(reported) + 0.5) * width;
}

auction::SingleTaskInstance privatize_reports(const auction::SingleTaskInstance& instance,
                                              const PrivacyModel& model, common::Rng& rng) {
  model.validate();
  auction::SingleTaskInstance noised = instance;
  if (!model.enabled()) {
    return noised;
  }
  for (auto& bid : noised.bids) {
    bid.pos = privatize_pos(bid.pos, model, rng);
  }
  return noised;
}

auction::MultiTaskInstance privatize_reports(const auction::MultiTaskInstance& instance,
                                             const PrivacyModel& model, common::Rng& rng) {
  model.validate();
  auction::MultiTaskInstance noised = instance;
  if (!model.enabled()) {
    return noised;
  }
  for (auto& user : noised.users) {
    for (auto& pos : user.pos) {
      pos = privatize_pos(pos, model, rng);
    }
  }
  return noised;
}

auction::AuctionInstance privatize_reports(const auction::AuctionInstance& instance,
                                           const PrivacyModel& model, common::Rng& rng) {
  return std::visit(
      [&](const auto& typed) -> auction::AuctionInstance {
        return privatize_reports(typed, model, rng);
      },
      instance);
}

}  // namespace mcs::sim
