#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.hpp"
#include "common/distributions.hpp"
#include "common/math.hpp"

namespace mcs::sim {

namespace {

/// Applies ScenarioParams::requirement_cap_fraction to a built single-task
/// instance (no-op when the cap is disabled).
void cap_requirement(auction::SingleTaskInstance& instance, const ScenarioParams& params) {
  if (params.requirement_cap_fraction <= 0.0) {
    return;
  }
  double total_q = 0.0;
  for (const auto& bid : instance.bids) {
    total_q += common::contribution_from_pos(bid.pos);
  }
  const double achievable = common::pos_from_contribution(total_q);
  instance.requirement_pos =
      std::max(params.requirement_floor,
               std::min(instance.requirement_pos, params.requirement_cap_fraction * achievable));
}

std::vector<double> achievable_pos_per_task(const auction::MultiTaskInstance& instance) {
  std::vector<auction::UserId> everyone(instance.num_users());
  for (std::size_t k = 0; k < everyone.size(); ++k) {
    everyone[k] = static_cast<auction::UserId>(k);
  }
  std::vector<double> achievable(instance.num_tasks());
  for (std::size_t j = 0; j < instance.num_tasks(); ++j) {
    achievable[j] = instance.achieved_pos(everyone, static_cast<auction::TaskIndex>(j));
  }
  return achievable;
}

}  // namespace

double sample_cost(const ScenarioParams& params, common::Rng& rng) {
  MCS_EXPECTS(params.cost_variance >= 0.0, "cost variance must be non-negative");
  MCS_EXPECTS(params.cost_floor > 0.0, "cost floor must be positive");
  const double stddev = std::sqrt(params.cost_variance);
  if (stddev == 0.0) {
    return std::max(params.cost_mean, params.cost_floor);
  }
  return common::sample_truncated_normal(rng, params.cost_mean, stddev, params.cost_floor,
                                         params.cost_mean + 12.0 * stddev);
}

std::vector<geo::CellId> popular_cells(const std::vector<mobility::MobilityUser>& pool) {
  std::map<geo::CellId, std::size_t> frequency;
  for (const auto& user : pool) {
    for (const auto& [cell, _] : user.task_pos) {
      ++frequency[cell];
    }
  }
  std::vector<geo::CellId> cells;
  cells.reserve(frequency.size());
  for (const auto& [cell, _] : frequency) {
    cells.push_back(cell);
  }
  std::sort(cells.begin(), cells.end(), [&](geo::CellId a, geo::CellId b) {
    if (frequency[a] != frequency[b]) {
      return frequency[a] > frequency[b];
    }
    return a < b;
  });
  return cells;
}

std::optional<SingleTaskScenario> build_single_task(
    const std::vector<mobility::MobilityUser>& pool, geo::CellId task_cell,
    std::size_t num_users, const ScenarioParams& params, common::Rng& rng) {
  MCS_EXPECTS(num_users > 0, "scenario needs at least one user");

  std::vector<std::size_t> candidates;
  for (std::size_t k = 0; k < pool.size(); ++k) {
    if (mobility::user_pos_for_cell(pool[k], task_cell) > 0.0) {
      candidates.push_back(k);
    }
  }
  if (candidates.size() < num_users) {
    return std::nullopt;
  }
  const auto picks = common::sample_without_replacement(rng, candidates.size(), num_users);

  SingleTaskScenario scenario;
  scenario.task_cell = task_cell;
  scenario.instance.requirement_pos = params.pos_requirement;
  scenario.instance.bids.reserve(num_users);
  scenario.participants.reserve(num_users);
  for (std::size_t pick : picks) {
    const std::size_t user_index = candidates[pick];
    scenario.participants.push_back(user_index);
    scenario.instance.bids.push_back(
        {sample_cost(params, rng), mobility::user_pos_for_cell(pool[user_index], task_cell)});
  }
  cap_requirement(scenario.instance, params);
  return scenario;
}

std::optional<MultiTaskScenario> build_multi_task_at(
    const std::vector<mobility::MobilityUser>& pool, std::vector<geo::CellId> task_cells,
    std::size_t num_users, const ScenarioParams& params, common::Rng& rng) {
  MCS_EXPECTS(!task_cells.empty(), "scenario needs at least one task");
  MCS_EXPECTS(num_users > 0, "scenario needs at least one user");

  // Task index lookup must be deterministic and sorted for the bids.
  std::map<geo::CellId, auction::TaskIndex> task_index;
  for (std::size_t j = 0; j < task_cells.size(); ++j) {
    const auto [_, inserted] =
        task_index.emplace(task_cells[j], static_cast<auction::TaskIndex>(j));
    MCS_EXPECTS(inserted, "task cells must be distinct");
  }
  const std::size_t num_tasks = task_cells.size();

  std::vector<std::size_t> candidates;
  for (std::size_t k = 0; k < pool.size(); ++k) {
    const auto& user = pool[k];
    const bool touches = std::any_of(user.task_pos.begin(), user.task_pos.end(),
                                     [&](const auto& entry) {
                                       return task_index.contains(entry.first);
                                     });
    if (touches) {
      candidates.push_back(k);
    }
  }
  if (candidates.size() < num_users) {
    return std::nullopt;
  }
  const auto picks = common::sample_without_replacement(rng, candidates.size(), num_users);

  MultiTaskScenario scenario;
  scenario.task_cells = std::move(task_cells);
  scenario.instance.requirement_pos.assign(num_tasks, params.pos_requirement);
  scenario.instance.users.reserve(num_users);
  scenario.participants.reserve(num_users);
  for (std::size_t pick : picks) {
    const std::size_t user_index = candidates[pick];
    const auto& user = pool[user_index];
    // The declared task set is the intersection of the user's predicted
    // cells with the platform's tasks, in ascending task order.
    std::vector<std::pair<auction::TaskIndex, double>> entries;
    for (const auto& [cell, pos] : user.task_pos) {
      const auto it = task_index.find(cell);
      if (it != task_index.end()) {
        entries.emplace_back(it->second, pos);
      }
    }
    std::sort(entries.begin(), entries.end());
    auction::MultiTaskUserBid bid;
    bid.cost = sample_cost(params, rng);
    for (const auto& [task, pos] : entries) {
      bid.tasks.push_back(task);
      bid.pos.push_back(pos);
    }
    scenario.participants.push_back(user_index);
    scenario.instance.users.push_back(std::move(bid));
  }
  if (params.requirement_cap_fraction > 0.0) {
    cap_requirements_to_achievable(scenario.instance, params.requirement_cap_fraction,
                                   params.requirement_floor);
  }
  return scenario;
}

std::optional<MultiTaskScenario> build_multi_task(
    const std::vector<mobility::MobilityUser>& pool, std::size_t num_tasks,
    std::size_t num_users, const ScenarioParams& params, common::Rng& rng) {
  MCS_EXPECTS(num_tasks > 0, "scenario needs at least one task");
  const auto ranked_cells = popular_cells(pool);
  if (ranked_cells.size() < num_tasks) {
    return std::nullopt;
  }
  std::vector<geo::CellId> task_cells(
      ranked_cells.begin(), ranked_cells.begin() + static_cast<std::ptrdiff_t>(num_tasks));
  return build_multi_task_at(pool, std::move(task_cells), num_users, params, rng);
}

auction::MultiTaskInstance prefix_users(const auction::MultiTaskInstance& instance,
                                        std::size_t n) {
  MCS_EXPECTS(n > 0 && n <= instance.num_users(), "prefix size out of range");
  auction::MultiTaskInstance prefix;
  prefix.requirement_pos = instance.requirement_pos;
  prefix.users.assign(instance.users.begin(),
                      instance.users.begin() + static_cast<std::ptrdiff_t>(n));
  return prefix;
}

void cap_requirements_to_achievable(auction::MultiTaskInstance& instance, double fraction,
                                    double floor) {
  MCS_EXPECTS(fraction > 0.0 && fraction < 1.0, "cap fraction must lie in (0, 1)");
  MCS_EXPECTS(floor > 0.0 && floor < 1.0, "requirement floor must lie in (0, 1)");
  const auto achievable = achievable_pos_per_task(instance);
  for (std::size_t j = 0; j < instance.num_tasks(); ++j) {
    instance.requirement_pos[j] =
        std::max(floor, std::min(instance.requirement_pos[j], fraction * achievable[j]));
  }
}

void scale_requirements_by_achievable(auction::MultiTaskInstance& instance, double t_fraction,
                                      double fraction, double floor) {
  MCS_EXPECTS(t_fraction > 0.0 && t_fraction <= 1.0, "sweep level must lie in (0, 1]");
  MCS_EXPECTS(fraction > 0.0 && fraction < 1.0, "cap fraction must lie in (0, 1)");
  MCS_EXPECTS(floor > 0.0 && floor < 1.0, "requirement floor must lie in (0, 1)");
  const auto achievable = achievable_pos_per_task(instance);
  for (std::size_t j = 0; j < instance.num_tasks(); ++j) {
    instance.requirement_pos[j] =
        std::min(0.999, std::max(floor, t_fraction * fraction * achievable[j]));
  }
}

std::optional<MultiTaskScenario> build_feasible_multi_task(
    const std::vector<mobility::MobilityUser>& pool, std::size_t num_tasks,
    std::size_t num_users, const ScenarioParams& params, common::Rng& rng, int max_attempts) {
  MCS_EXPECTS(max_attempts > 0, "need at least one attempt");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto scenario = build_multi_task(pool, num_tasks, num_users, params, rng);
    if (!scenario.has_value()) {
      return std::nullopt;  // structural shortage: retrying cannot help
    }
    if (scenario->instance.is_feasible()) {
      return scenario;
    }
  }
  return std::nullopt;
}

}  // namespace mcs::sim
