// Reward budgeting: choosing the reward scaling factor α.
//
// The paper introduces α as a free knob "that can be adjusted according to
// the budget constraint of the platform" (Section III-B) but never says how.
// This module supplies the missing calculation. A winner with critical PoS
// p̄, cost c, and true success probability p costs the platform, in
// expectation,
//     E[payment] = p·((1-p̄)·α + c) + (1-p)·(-p̄·α + c) = (p - p̄)·α + c,
// i.e. her cost plus her information rent (p - p̄)·α. Summing over winners,
//     E[payout](α) = Σ c_i + α · Σ (p_i - p̄_i)
// is affine and increasing in α, so the largest α fitting a budget B is
//     α* = (B - Σ c_i) / Σ (p_i - p̄_i).
//
// Caveat the API makes explicit: the platform does not know the true p_i.
// Under truthful play the declared PoS equal the true ones, so evaluating
// the formula on declared values is exact in equilibrium; the worst case
// over all type profiles replaces p_i by 1 (a winner can never be paid more
// than (1-p̄_i)·α + c_i).
#pragma once

#include "auction/instance.hpp"

namespace mcs::sim {

/// Decomposition of a mechanism outcome's expected platform payout.
struct PayoutEstimate {
  double total_cost = 0.0;        ///< Σ c_i over winners (paid regardless of α)
  double rent_per_alpha = 0.0;    ///< Σ (p_i - p̄_i): marginal payout per unit α
  double worst_case_per_alpha = 0.0;  ///< Σ (1 - p̄_i): ceiling slope

  double expected_payout(double alpha) const { return total_cost + alpha * rent_per_alpha; }
  double worst_case_payout(double alpha) const {
    return total_cost + alpha * worst_case_per_alpha;
  }
};

/// Estimates the payout of a single-task outcome using the instance's PoS
/// values as the winners' true success probabilities (exact under truthful
/// play). The outcome's rewards must belong to the instance.
PayoutEstimate estimate_payout(const auction::SingleTaskInstance& instance,
                               const auction::MechanismOutcome& outcome);

/// Same for a multi-task outcome; a winner's success probability is her
/// any-task probability 1 - Π(1 - p_i^j).
PayoutEstimate estimate_payout(const auction::MultiTaskInstance& instance,
                               const auction::MechanismOutcome& outcome);

/// Largest α whose expected payout fits `budget`, or 0 when even α → 0
/// exceeds it (the costs alone bust the budget). When the winners have no
/// information rent (rent_per_alpha = 0), any α fits and `alpha_cap` is
/// returned. Requires budget > 0 and alpha_cap > 0.
double alpha_for_budget(const PayoutEstimate& estimate, double budget,
                        double alpha_cap = 1e6);

/// Conservative variant using the worst-case slope (no trust in declared
/// PoS).
double alpha_for_budget_worst_case(const PayoutEstimate& estimate, double budget,
                                   double alpha_cap = 1e6);

}  // namespace mcs::sim
