// ε-differentially-private PoS report noising — the privacy half of the
// adversarial scenario sweep (ROADMAP item 2, after "Incentive Mechanism for
// Uncertain Tasks under Differential Privacy", Jiang et al.).
//
// The paper's mechanisms assume the platform sees each user's declared PoS
// exactly. A privacy-conscious deployment instead perturbs every report
// before winner determination — either the platform adds calibrated noise
// before publishing the auction's outcome, or the users randomize locally.
// Both are modelled here as a report channel:
//
//   * kLaplace            — additive Laplace(1/ε) noise, clamped back into
//                           [0, pos_cap] (the classic ε-DP mechanism for a
//                           sensitivity-1 numeric report);
//   * kRandomizedResponse — k-ary randomized response over `response_bins`
//                           equal PoS bins: keep one's own bin with
//                           probability e^ε / (e^ε + k - 1), otherwise report
//                           a uniformly random other bin (ε-local-DP).
//
// The mechanisms then run on the PRIVATIZED reports while utilities, coverage
// and execution all follow the TRUE types — which is exactly how strategy-
// proofness and the approximation guarantee degrade (sim/adversary.hpp
// measures the envelope; see DESIGN.md §14).
//
// Determinism: every noising call consumes draws from the caller's Rng in a
// fixed order (one report = one privatize_pos call), so the same seed yields
// a bit-identical privatized instance. sim::adversary derives pure
// per-(seed, round, user) streams on top for replayable attack schedules.
#pragma once

#include <cstdint>

#include "auction/engine.hpp"
#include "auction/instance.hpp"
#include "common/rng.hpp"

namespace mcs::sim {

enum class PrivacyMechanism {
  kLaplace,
  kRandomizedResponse,
};

const char* to_string(PrivacyMechanism mechanism);

/// The report channel's parameters; epsilon <= 0 disables (identity channel).
struct PrivacyModel {
  /// Privacy budget ε per report. Smaller ε = stronger privacy = more noise.
  /// Non-positive values disable the channel entirely.
  double epsilon = 0.0;
  PrivacyMechanism mechanism = PrivacyMechanism::kLaplace;
  /// Privatized reports are clamped into [0, pos_cap]: a report of exactly 1
  /// would declare certain success (infinite contribution), which no noise
  /// channel should be able to fabricate.
  double pos_cap = 0.995;
  /// Bin count of the randomized-response channel (ignored by kLaplace).
  std::size_t response_bins = 16;

  bool enabled() const { return epsilon > 0.0; }

  /// Throws PreconditionError unless pos_cap ∈ (0, 1), response_bins >= 2,
  /// and epsilon is finite when positive.
  void validate() const;
};

/// Laplace noise scale b = Δ/ε for the unit-sensitivity PoS report.
double laplace_scale(const PrivacyModel& model);

/// One Laplace(0, scale) draw via inverse-CDF sampling (one uniform01).
double sample_laplace(common::Rng& rng, double scale);

/// Keep-own-bin probability e^ε / (e^ε + k - 1) of the k-ary randomized
/// response channel.
double randomized_response_keep_probability(const PrivacyModel& model);

/// Pushes one PoS report through the channel. Disabled models return the
/// report unchanged (and consume no draws). Laplace consumes one uniform01;
/// randomized response consumes one bernoulli plus, on replacement, one
/// uniform_int. The result always lies in [0, pos_cap].
double privatize_pos(double pos, const PrivacyModel& model, common::Rng& rng);

/// Privatized copy of an instance: every declared PoS pushed through the
/// channel in id order (multi-task: per user, task-list order). Requirements,
/// costs, and task sets are untouched — only the reports are noisy.
auction::SingleTaskInstance privatize_reports(const auction::SingleTaskInstance& instance,
                                              const PrivacyModel& model, common::Rng& rng);
auction::MultiTaskInstance privatize_reports(const auction::MultiTaskInstance& instance,
                                             const PrivacyModel& model, common::Rng& rng);
auction::AuctionInstance privatize_reports(const auction::AuctionInstance& instance,
                                           const PrivacyModel& model, common::Rng& rng);

}  // namespace mcs::sim
