// Shared experiment plumbing for the benches and examples: one call builds
// the full pipeline of the paper's evaluation — synthetic city, trace,
// per-taxi mobility models, and the derived mobile-user population that the
// scenario builders sample auction participants from — plus the round-batch
// helpers that feed streams of sampled auctions to auction::Engine.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "auction/engine.hpp"
#include "mobility/pos.hpp"
#include "sim/scenario.hpp"
#include "trace/generator.hpp"

namespace mcs::sim {

/// Configuration of the evaluation workload.
struct WorkloadConfig {
  trace::CityConfig city;
  double laplace_alpha = 1.0;       ///< Markov learner smoothing
  double train_fraction = 1.0;      ///< use < 1 to keep a prediction holdout
  mobility::UserDerivationConfig users;
  std::uint64_t user_seed = 7;      ///< seed of the user derivation draws
};

/// The materialized workload: city model, generated trace, learned fleet
/// models, and derived user population.
class Workload {
 public:
  explicit Workload(const WorkloadConfig& config);

  const WorkloadConfig& config() const { return config_; }
  const trace::CityModel& city() const { return city_; }
  const trace::TraceDataset& dataset() const { return dataset_; }
  const mobility::FleetModel& fleet() const { return fleet_; }
  const std::vector<mobility::MobilityUser>& users() const { return users_; }

 private:
  WorkloadConfig config_;
  trace::CityModel city_;
  trace::TraceDataset dataset_;
  mobility::FleetModel fleet_;
  std::vector<mobility::MobilityUser> users_;
};

/// The workload the bench binaries share (paper-default parameters, sized to
/// finish in seconds rather than minutes).
WorkloadConfig default_bench_workload();

/// Samples up to `rounds` feasible multi-task auctions from the workload's
/// user population — the stream a running platform would hold, one auction
/// per campaign round, each on the `num_tasks` most popular cells with a
/// fresh bidder sample. Returns fewer when the population cannot support the
/// count (deterministic given `rng`).
std::vector<auction::AuctionInstance> sample_round_batch(const Workload& workload,
                                                         std::size_t rounds,
                                                         std::size_t num_tasks,
                                                         std::size_t num_users,
                                                         const ScenarioParams& params,
                                                         common::Rng& rng);

/// Submits a sampled round batch to the engine under one shared config;
/// outcomes align with the batch (see Engine::run for the determinism
/// contract).
std::vector<auction::MechanismOutcome> run_round_batch(
    const auction::Engine& engine, const std::vector<auction::AuctionInstance>& batch,
    const auction::MechanismConfig& config = {});

/// Streaming twin of sample_round_batch + run_round_batch: samples and runs
/// the `rounds` auctions in chunks of `chunk_size`, handing each (instance,
/// outcome) pair to `sink` as its chunk completes and recycling the chunk
/// storage. Peak memory is one chunk of instances plus outcomes regardless
/// of the round count — the long-campaign path that a materialized batch
/// cannot serve. Every auction is independent and the sampler draws from
/// `rng` in exactly the batch order, so the streamed outcomes are identical
/// to one big sample_round_batch/run_round_batch pass. Returns the number of
/// rounds actually delivered (like sample_round_batch, fewer when the
/// population cannot support the count).
///
/// chunk_size contract (pinned by sim_experiment_test): chunk_size == 0
/// throws PreconditionError — a zero chunk can never make progress, so it is
/// a caller bug, not a degenerate request. chunk_size > rounds is CLAMPED,
/// not an error: the stream simply delivers everything in one chunk (memory
/// is reserved for min(rounds, chunk_size), so an oversized chunk does not
/// over-allocate). rounds == 0 is a no-op returning 0.
std::size_t stream_round_chunks(
    const Workload& workload, const auction::Engine& engine, std::size_t rounds,
    std::size_t num_tasks, std::size_t num_users, const ScenarioParams& params,
    common::Rng& rng, std::size_t chunk_size, const auction::MechanismConfig& config,
    const std::function<void(const auction::AuctionInstance&, const auction::MechanismOutcome&)>&
        sink);

}  // namespace mcs::sim
