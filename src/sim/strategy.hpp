// Strategy (misreport) experiments: sweep one user's declared PoS while her
// true type stays fixed, and record the expected utility the mechanism hands
// her at each declaration. Strategy-proofness (Theorems 1 and 4) predicts the
// truthful declaration is always a maximizer; the VCG counter-example of
// Section III-A shows the opposite for a VCG-like payment.
#pragma once

#include <vector>

#include "auction/single_task/mechanism.hpp"
#include "auction/multi_task/mechanism.hpp"

namespace mcs::sim {

/// Utility observed at one declared value.
struct MisreportPoint {
  double declared = 0.0;  ///< declared PoS (single) or total contribution (multi)
  bool won = false;
  double expected_utility = 0.0;  ///< with respect to the user's TRUE type
};

/// Sweeps user `user`'s declared PoS over `declared_grid` in the single-task
/// mechanism. The instance holds the true types.
std::vector<MisreportPoint> sweep_declared_pos(
    const auction::SingleTaskInstance& truth, auction::UserId user,
    const std::vector<double>& declared_grid, const auction::MechanismConfig& config);

/// Sweeps user `user`'s declared TOTAL contribution (her PoS vector scaled in
/// contribution space) over `declared_grid` in the multi-task mechanism.
std::vector<MisreportPoint> sweep_declared_contribution(
    const auction::MultiTaskInstance& truth, auction::UserId user,
    const std::vector<double>& declared_grid, const auction::MechanismConfig& config);

/// True when no point in the sweep beats the truthful utility by more than
/// `tolerance` — the empirical strategy-proofness check.
bool truthful_is_optimal(const std::vector<MisreportPoint>& sweep, double truthful_utility,
                         double tolerance = 1e-6);

}  // namespace mcs::sim
