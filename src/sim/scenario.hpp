// Scenario builders: turn the mobility substrate's user population into
// auction instances with the paper's workload parameters (Tables II and III).
// Tasks are grid cells; a user's PoS for a task is her predicted probability
// of reaching that cell in the next time slot; costs are drawn from the
// paper's N(15, 5) model truncated to positive values.
#pragma once

#include <optional>

#include "auction/instance.hpp"
#include "common/rng.hpp"
#include "mobility/pos.hpp"

namespace mcs::sim {

/// Default simulation parameters (paper Table II).
struct ScenarioParams {
  double pos_requirement = 0.8;  ///< T (every task in the multi-task case)
  double cost_mean = 15.0;
  double cost_variance = 5.0;
  /// Costs are truncated below at this floor: the mechanisms require
  /// strictly positive costs and a negative sensing cost is meaningless.
  double cost_floor = 0.5;
  /// When > 0, each task's requirement is capped at this fraction of the PoS
  /// achievable by the full sampled user set: T_j = min(pos_requirement,
  /// fraction × achievable_j). The paper's sweeps start at user counts whose
  /// sampled populations cannot reach T = 0.8 on every task with
  /// single-slot mobility PoS; the cap keeps every sweep point feasible while
  /// preserving the requirement's role (see EXPERIMENTS.md). 0 disables.
  double requirement_cap_fraction = 0.0;
  /// Floor on a capped requirement so it stays a valid probability.
  double requirement_floor = 0.01;
};

/// A built single-task scenario: the auction instance plus which population
/// users the bids belong to (bid k belongs to participants[k]).
struct SingleTaskScenario {
  auction::SingleTaskInstance instance;
  geo::CellId task_cell = geo::kInvalidCell;
  std::vector<std::size_t> participants;  ///< indices into the user pool
};

/// A built multi-task scenario.
struct MultiTaskScenario {
  auction::MultiTaskInstance instance;
  std::vector<geo::CellId> task_cells;    ///< aligned with instance tasks
  std::vector<std::size_t> participants;  ///< indices into the user pool
};

/// Ranks cells by how many users in the pool carry them in their task sets,
/// descending — the natural candidates for platform tasks since each has
/// many potential contributors.
std::vector<geo::CellId> popular_cells(const std::vector<mobility::MobilityUser>& pool);

/// Builds a single-task scenario on `task_cell` with `num_users` bidders
/// sampled uniformly (without replacement) from the pool members whose task
/// sets contain the cell. Returns nullopt when fewer than `num_users`
/// candidates exist. Deterministic given `rng`.
std::optional<SingleTaskScenario> build_single_task(
    const std::vector<mobility::MobilityUser>& pool, geo::CellId task_cell,
    std::size_t num_users, const ScenarioParams& params, common::Rng& rng);

/// Builds a multi-task single-minded scenario on an explicit list of task
/// cells (ascending duplicates rejected) with `num_users` bidders sampled
/// from pool members whose task sets intersect the chosen tasks. Each
/// bidder's declared task set is that intersection. Returns nullopt when
/// fewer than `num_users` candidates exist. The instance may still be
/// infeasible; callers decide how to handle that.
std::optional<MultiTaskScenario> build_multi_task_at(
    const std::vector<mobility::MobilityUser>& pool, std::vector<geo::CellId> task_cells,
    std::size_t num_users, const ScenarioParams& params, common::Rng& rng);

/// Convenience overload: tasks are the `num_tasks` most popular cells.
std::optional<MultiTaskScenario> build_multi_task(
    const std::vector<mobility::MobilityUser>& pool, std::size_t num_tasks,
    std::size_t num_users, const ScenarioParams& params, common::Rng& rng);

/// Retries `build_multi_task` with fresh samples until the instance is
/// feasible, up to `max_attempts`; returns nullopt when none was feasible.
std::optional<MultiTaskScenario> build_feasible_multi_task(
    const std::vector<mobility::MobilityUser>& pool, std::size_t num_tasks,
    std::size_t num_users, const ScenarioParams& params, common::Rng& rng,
    int max_attempts = 20);

/// Samples a cost from the scenario's truncated normal cost model.
double sample_cost(const ScenarioParams& params, common::Rng& rng);

/// The instance restricted to its first `n` users (all tasks retained).
/// Nested prefixes model the paper's "increase the number of users" sweeps:
/// requirements fixed on the smallest prefix stay feasible for every larger
/// one.
auction::MultiTaskInstance prefix_users(const auction::MultiTaskInstance& instance,
                                        std::size_t n);

/// Caps every task requirement at `fraction` × the PoS achievable by the
/// instance's full user set (floored at `floor`). Used to anchor sweep
/// requirements at a feasible level; see EXPERIMENTS.md.
void cap_requirements_to_achievable(auction::MultiTaskInstance& instance, double fraction,
                                    double floor = 0.01);

/// Sets every task requirement to `t_fraction` × `fraction` × its achievable
/// PoS (floored). Interprets a swept requirement level T as a fraction of
/// each task's achievable PoS — the Fig 8/9 treatment on the synthetic
/// population (see EXPERIMENTS.md).
void scale_requirements_by_achievable(auction::MultiTaskInstance& instance, double t_fraction,
                                      double fraction = 0.95, double floor = 0.01);

}  // namespace mcs::sim
