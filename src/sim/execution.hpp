// Execution engine: after an auction closes, each winner attempts her
// task(s); success is Bernoulli in her TRUE PoS. The engine realizes
// outcomes, settles execution-contingent rewards, and estimates achieved
// task PoS empirically (to cross-check the analytic values in metrics.hpp).
#pragma once

#include <vector>

#include "auction/instance.hpp"
#include "common/rng.hpp"

namespace mcs::sim {

/// One realized run of a single-task auction's winners.
struct SingleTaskRun {
  std::vector<bool> winner_success;  ///< aligned with the allocation's winners
  bool task_completed = false;       ///< at least one winner succeeded
};

/// One realized run of a multi-task auction's winners.
struct MultiTaskRun {
  /// winner_task_success[w][k]: did winner w complete the k-th task of her
  /// own task set?
  std::vector<std::vector<bool>> winner_task_success;
  std::vector<bool> winner_any_success;  ///< completed >= 1 of her tasks
  std::vector<bool> task_completed;      ///< per instance task
};

/// Simulates one execution of the winners of a single-task auction.
SingleTaskRun simulate(const auction::SingleTaskInstance& instance,
                       const std::vector<auction::UserId>& winners, common::Rng& rng);

/// Simulates one execution of the winners of a multi-task auction.
MultiTaskRun simulate(const auction::MultiTaskInstance& instance,
                      const std::vector<auction::UserId>& winners, common::Rng& rng);

/// Fraction of `runs` executions in which the task was completed — the
/// empirical achieved PoS of the single task.
double empirical_task_pos(const auction::SingleTaskInstance& instance,
                          const std::vector<auction::UserId>& winners, std::size_t runs,
                          common::Rng& rng);

/// Per-task empirical achieved PoS over `runs` executions.
std::vector<double> empirical_task_pos(const auction::MultiTaskInstance& instance,
                                       const std::vector<auction::UserId>& winners,
                                       std::size_t runs, common::Rng& rng);

/// Settles one realized run: the platform's total payout under the outcome's
/// EC rewards (success branch for winners who completed, failure branch
/// otherwise). `any_success` is aligned with the outcome's winners.
double settle_payout(const auction::MechanismOutcome& outcome,
                     const std::vector<bool>& any_success);

}  // namespace mcs::sim
