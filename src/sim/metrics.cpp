#include "sim/metrics.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math.hpp"
#include "common/stats.hpp"

namespace mcs::sim {

double achieved_pos(const auction::SingleTaskInstance& instance,
                    const std::vector<auction::UserId>& winners) {
  return common::pos_from_contribution(instance.contribution_of(winners));
}

std::vector<double> achieved_pos(const auction::MultiTaskInstance& instance,
                                 const std::vector<auction::UserId>& winners) {
  std::vector<double> pos(instance.num_tasks());
  for (std::size_t j = 0; j < pos.size(); ++j) {
    pos[j] = instance.achieved_pos(winners, static_cast<auction::TaskIndex>(j));
  }
  return pos;
}

double average_achieved_pos(const auction::MultiTaskInstance& instance,
                            const std::vector<auction::UserId>& winners) {
  const auto pos = achieved_pos(instance, winners);
  MCS_EXPECTS(!pos.empty(), "instance has no tasks");
  return common::mean(pos);
}

std::vector<double> expected_utilities(const auction::SingleTaskInstance& instance,
                                       const auction::MechanismOutcome& outcome) {
  std::vector<double> utilities;
  utilities.reserve(outcome.rewards.size());
  for (const auto& winner : outcome.rewards) {
    const double true_pos = instance.bids[static_cast<std::size_t>(winner.user)].pos;
    utilities.push_back(winner.reward.expected_utility(true_pos));
  }
  return utilities;
}

std::vector<double> expected_utilities(const auction::MultiTaskInstance& instance,
                                       const auction::MechanismOutcome& outcome) {
  std::vector<double> utilities;
  utilities.reserve(outcome.rewards.size());
  for (const auto& winner : outcome.rewards) {
    const double true_any =
        instance.users[static_cast<std::size_t>(winner.user)].any_success_probability();
    utilities.push_back(winner.reward.expected_utility(true_any));
  }
  return utilities;
}

bool individually_rational(const std::vector<double>& utilities, double tolerance) {
  return std::all_of(utilities.begin(), utilities.end(),
                     [&](double u) { return u >= -tolerance; });
}

}  // namespace mcs::sim
