// Cost verification — the assumption behind the paper's tractability move,
// made concrete (Section III-A and future work, Section VI).
//
// The paper restricts strategic behaviour to the PoS dimension by assuming
// the platform can verify declared costs ("monitor the indicators related to
// cost ... and punish the users who lie"). This module models that
// verification: after execution the platform audits each winner with
// probability `audit_prob`; a caught misreport forfeits the declared-cost
// margin and pays a fine of `penalty_factor` × |declared − true|.
//
// Expected utility of declaring cost ĉ (true cost c, true PoS p), given the
// declaration wins and the critical PoS under that declaration is p̄(ĉ):
//     EU(ĉ) = (p − p̄(ĉ))·α + (1 − a)·(ĉ − c) − a·φ·|ĉ − c|
//
// Two manipulation channels follow:
//   * the MARGIN channel (pocketing ĉ − c): deterred exactly when
//         φ ≥ (1 − a) / a        (deterrence_threshold)
//     since the expected margin of any lie is then non-positive;
//   * the ALLOCATION channel (shifting one's own critical PoS p̄ by changing
//     the declared cost): NOT deterred by any finite fine — the selection
//     boundary in (PoS, cost) space is piecewise and nonlinear (Fig 2), so an
//     arbitrarily small cost misreport can jump p̄ by a constant while the
//     fine scales with |ĉ − c|.
// This is an honest negative result that supports the paper's modelling
// choice: probabilistic auditing with fines is NOT enough; the platform must
// verify costs outright (use the measured cost, ignoring declarations),
// which is what "cost verification" must mean for Theorem 1/4 to hold for
// the full type. The sweep API mirrors sim/strategy.hpp and exposes both
// channels; tests/sim_verification_test.cpp demonstrates each.
#pragma once

#include <vector>

#include "auction/single_task/mechanism.hpp"

namespace mcs::sim {

/// The platform's audit-and-fine policy.
struct CostAuditModel {
  double audit_prob = 0.5;     ///< a ∈ (0, 1]
  double penalty_factor = 2.0; ///< φ ≥ 0, fine per unit of cost misreport
};

/// Smallest penalty factor that deters the MARGIN channel of cost misreports
/// at a given audit probability: φ* = (1 − a) / a. (The allocation channel
/// is immune to fines; see the header comment.)
double deterrence_threshold(double audit_prob);

/// Utility observed at one declared cost.
struct CostMisreportPoint {
  double declared_cost = 0.0;
  bool won = false;
  double expected_utility = 0.0;  ///< under the audit model, w.r.t. true type
};

/// Sweeps user `user`'s declared cost over `declared_grid` in the single-task
/// mechanism; every other field of her type stays truthful. The instance
/// holds the true types.
std::vector<CostMisreportPoint> sweep_declared_cost(
    const auction::SingleTaskInstance& truth, auction::UserId user,
    const std::vector<double>& declared_grid,
    const auction::MechanismConfig& config, const CostAuditModel& audit);

}  // namespace mcs::sim
