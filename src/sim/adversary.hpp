// Seed-replayable attack harness — the adversarial half of the scenario
// sweep (ROADMAP item 2). The paper proves strategyproofness and individual
// rationality for isolated, truthfully-reporting users under independent
// execution uncertainty; this layer wraps any auction with exactly the
// hostile conditions that trust model excludes and MEASURES what survives:
//
//   (a) ε-DP PoS report noising (sim/privacy.hpp) — the mechanism runs on
//       privatized reports while utilities and coverage follow true types;
//   (b) correlated mass failures — per-round weather events drawn through
//       sim::draw_cell_failure, exportable as common::FaultInjector fail_at
//       coordinates so a weather event also kills the owning service shard;
//   (c) Sybil / collusion probes — identity splitting and coalition bid
//       shading with joint-utility accounting against the TRUE types;
//   (d) reputation-weighted PoS priors — a multi-round loop that discounts
//       declared contributions by a caller-supplied prior (the concrete
//       weighting lives in platform/reputation.hpp, which closes the loop
//       with a ReputationTracker; the layering keeps sim below platform).
//
// Determinism contract (pinned by tests/sim_adversary_test.cpp): every draw
// comes from a stream that is a PURE function of (seed, attack axis, round
// [, user]) — the FaultInjector discipline — so an attack schedule replays
// bit-for-bit, per-round realizations are independent of how many rounds
// were materialized before them, and a single user's noise can be replayed
// in isolation (which is what the strategic-deviation probes need: a
// deviation re-noises the deviated report with the SAME draws, i.e. common
// random numbers across the deviation grid).
//
// run_adversarial_sweep drives all of it through BOTH single-task probe
// strategies, BOTH DP kernels, and BOTH greedy algorithms, counting any
// fast-vs-oracle divergence — hostile-shaped inputs are exactly what the
// differential suites' samplers never generate. See DESIGN.md §14 and the
// EXPERIMENTS.md "Adversarial & privacy sweep" chapter.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "auction/engine.hpp"
#include "auction/instance.hpp"
#include "common/rng.hpp"
#include "sim/failures.hpp"
#include "sim/privacy.hpp"

namespace mcs::sim {

// ---------------------------------------------------------------------------
// Pure attack streams
// ---------------------------------------------------------------------------

/// The independent randomness lanes of the harness. Streams derived for
/// different axes never correlate even at equal (seed, round).
enum class AttackAxis : std::uint64_t {
  kPrivacy = 1,     ///< per-(round, user) report noising
  kCellFailure,     ///< per-round weather event draw
  kSybil,           ///< sybil target / clone-count draws
  kCoalition,       ///< coalition membership / shade draws
  kReputation,      ///< per-round execution draws of the feedback loop
  kInstance,        ///< hostile instance generation
  kMisreport,       ///< strategic-deviation grids of the property probes
};

/// Rng seeded by a pure hash of (seed, axis, round): any thread, any
/// materialization order, same stream.
common::Rng attack_stream(std::uint64_t seed, AttackAxis axis, std::uint64_t round);

/// Per-user refinement, pure in (seed, axis, round, user) — the lane the
/// report channel uses so one user's noise replays in isolation.
common::Rng attack_user_stream(std::uint64_t seed, AttackAxis axis, std::uint64_t round,
                               auction::UserId user);

// ---------------------------------------------------------------------------
// Attack configuration & per-round schedule
// ---------------------------------------------------------------------------

struct AttackConfig {
  std::uint64_t seed = 0x5eedULL;
  /// Report channel applied to every declared PoS before the mechanism runs.
  PrivacyModel privacy;
  /// Per-round weather events (empty cells + zero prob = disabled).
  CellFailureModel cell_failures;

  void validate() const;
};

/// The materialized per-round attack realizations. Same config.seed → same
/// schedule, bit for bit; round r's entry never depends on how many rounds
/// were drawn before it.
struct AttackSchedule {
  std::uint64_t seed = 0;
  std::vector<CellFailureEvent> events;  ///< one per round
};

AttackSchedule make_attack_schedule(const AttackConfig& config, std::size_t rounds);

/// Composes the schedule with common::FaultInjector: one (round, shard)
/// fail_at coordinate per realized weather event, `shard_of` mapping the
/// struck cell to its owning shard (service::ShardMap::shard_of in the
/// sharded service; any pure map works). Feed the result into a
/// FailPointSpec::fail_at on kShardRun and the weather event also takes down
/// the shard that owns the cell — the blast-radius composition the chaos
/// bench measures.
std::vector<std::pair<std::uint64_t, std::uint64_t>> schedule_fail_at(
    const AttackSchedule& schedule, const std::function<std::size_t(geo::CellId)>& shard_of);

/// The report stream of (round, user) under this config — the lane both the
/// instance noising and the deviation probes draw from.
common::Rng report_stream(const AttackConfig& config, std::uint64_t round,
                          auction::UserId user);

/// The platform's view of a round: every user's declared PoS pushed through
/// the privacy channel on her own report_stream. Pure in (config, round,
/// instance); a disabled channel returns the instance unchanged.
auction::SingleTaskInstance noised_reports(const AttackConfig& config,
                                           const auction::SingleTaskInstance& instance,
                                           std::uint64_t round);
auction::MultiTaskInstance noised_reports(const AttackConfig& config,
                                          const auction::MultiTaskInstance& instance,
                                          std::uint64_t round);

// ---------------------------------------------------------------------------
// Sybil probes: identity splitting
// ---------------------------------------------------------------------------

/// `user` replaced by `clones` identities that jointly replicate her type:
/// each clone carries cost c/k and a PoS vector scaled to contribution q/k
/// per task, so combined cost and combined contribution are conserved. Clone
/// 0 keeps the original id; clones 1..k-1 are appended at the end (ids n,
/// n+1, ...), so every other user keeps her id.
struct SingleTaskSybilSplit {
  auction::SingleTaskInstance instance;
  std::vector<auction::UserId> identities;
};
struct MultiTaskSybilSplit {
  auction::MultiTaskInstance instance;
  std::vector<auction::UserId> identities;
};

SingleTaskSybilSplit split_identity(const auction::SingleTaskInstance& instance,
                                    auction::UserId user, std::size_t clones);
MultiTaskSybilSplit split_identity(const auction::MultiTaskInstance& instance,
                                   auction::UserId user, std::size_t clones);

/// Outcome of one strategic deviation probe, accounted against TRUE types.
struct DeviationProbe {
  double truthful_utility = 0.0;  ///< expected utility of the honest play
  double deviated_utility = 0.0;  ///< joint expected utility of the attack
  double gain = 0.0;              ///< deviated - truthful
  bool profitable = false;        ///< gain > tolerance
};

/// Does splitting into `clones` identities beat bidding honestly as one?
/// The sybils' joint utility sums each clone's EC expected utility at her
/// true (split) success probability — payment superadditivity under identity
/// splitting is exactly false-name vulnerability.
DeviationProbe probe_sybil_split(const auction::SingleTaskInstance& truth,
                                 auction::UserId user, std::size_t clones,
                                 const auction::MechanismConfig& config,
                                 double tolerance = 1e-6);
DeviationProbe probe_sybil_split(const auction::MultiTaskInstance& truth,
                                 auction::UserId user, std::size_t clones,
                                 const auction::MechanismConfig& config,
                                 double tolerance = 1e-6);

// ---------------------------------------------------------------------------
// Coalition probes: joint bid shading
// ---------------------------------------------------------------------------

/// Joint expected utility of `members` when the mechanism runs on `declared`
/// while their true types live in `truth` (same shape): losers contribute 0,
/// winners contribute (p_true - p̄)·α. The bookkeeping unit of every
/// coalition probe.
double joint_expected_utility(const auction::SingleTaskInstance& truth,
                              const auction::SingleTaskInstance& declared,
                              std::span<const auction::UserId> members,
                              const auction::MechanismConfig& config);
double joint_expected_utility(const auction::MultiTaskInstance& truth,
                              const auction::MultiTaskInstance& declared,
                              std::span<const auction::UserId> members,
                              const auction::MechanismConfig& config);

struct CoalitionProbe {
  std::vector<auction::UserId> members;
  double truthful_joint_utility = 0.0;
  double best_joint_utility = 0.0;
  double best_shade = 1.0;  ///< the grid point that maximized joint utility
  double gain = 0.0;
  bool profitable = false;
};

/// Sweeps a UNIFORM contribution-space shade s over the grid: every member's
/// declared contribution (total, for multi-task) becomes s·q. Individual SP
/// says no member gains ALONE; the probe measures whether the coalition's
/// JOINT utility can beat the truthful joint utility — the paper makes no
/// group-strategyproofness claim, so this is a measurement, not a test
/// oracle.
CoalitionProbe probe_coalition_shading(const auction::SingleTaskInstance& truth,
                                       std::vector<auction::UserId> members,
                                       std::span<const double> shade_grid,
                                       const auction::MechanismConfig& config,
                                       double tolerance = 1e-6);
CoalitionProbe probe_coalition_shading(const auction::MultiTaskInstance& truth,
                                       std::vector<auction::UserId> members,
                                       std::span<const double> shade_grid,
                                       const auction::MechanismConfig& config,
                                       double tolerance = 1e-6);

// ---------------------------------------------------------------------------
// Reputation-weighted PoS priors (multi-round feedback)
// ---------------------------------------------------------------------------

/// Multiplicative contribution-space discount for one user, queried before
/// each round's winner determination. platform::reputation_weight supplies
/// the concrete tracker-backed weighting; tests can pass any pure function.
using PriorWeightFn = std::function<double(auction::UserId)>;

/// Per-winner settlement feedback: the user declared `declared_any_success`
/// overall and either delivered or not. Wire to ReputationTracker::record to
/// close the loop.
using RoundObservation =
    std::function<void(auction::UserId, double declared_any_success, bool succeeded)>;

struct FeedbackConfig {
  std::size_t rounds = 16;
  std::uint64_t seed = 1;  ///< execution draws (AttackAxis::kReputation)
  auction::MechanismConfig mechanism;
};

struct FeedbackRound {
  std::size_t round = 0;
  bool feasible = false;
  std::vector<auction::UserId> winners;
  std::vector<bool> winner_success;  ///< realized any-task success, true types
  double total_cost = 0.0;
};

/// Copy of `declared` with every user's declared contribution vector scaled
/// by weights[user] in contribution space (direction preserved). Weights
/// must lie in (0, 1] — a prior can discount a declaration, never inflate
/// it past what the user claimed.
auction::MultiTaskInstance scale_declared_contributions(
    const auction::MultiTaskInstance& declared, std::span<const double> weights);

/// The loop: each round applies `prior` to the DECLARED reports, runs the
/// mechanism on the weighted instance, realizes execution from the TRUE
/// types (one Bernoulli per winner on her true any-success probability,
/// drawn from the round's pure kReputation stream), and feeds every winner's
/// (declared, realized) pair to `observe` — whose tracker the next round's
/// `prior` reads. Systematic over-claimers thus lose winner-determination
/// weight round over round instead of riding their inflated declarations
/// forever.
std::vector<FeedbackRound> run_reputation_feedback(const auction::MultiTaskInstance& truth,
                                                   const auction::MultiTaskInstance& declared,
                                                   const FeedbackConfig& config,
                                                   const PriorWeightFn& prior,
                                                   const RoundObservation& observe);

// ---------------------------------------------------------------------------
// Hostile instance generator (shared by the sweep, the differential
// adversarial_equivalence_test, and the property fuzz)
// ---------------------------------------------------------------------------

enum class HostileShape {
  kRandom,           ///< the differential suites' baseline distribution
  kTiedCosts,        ///< every cost identical — pure tie-break pressure
  kNearBoundary,     ///< requirement at ~95% of the population's capacity
  kZeroPosTail,      ///< a third of the users declare PoS 0 (dead weight)
  kMixedMagnitude,   ///< costs spanning 1e-3 .. 1e3 in one instance
};
inline constexpr std::array<HostileShape, 5> kHostileShapes = {
    HostileShape::kRandom, HostileShape::kTiedCosts, HostileShape::kNearBoundary,
    HostileShape::kZeroPosTail, HostileShape::kMixedMagnitude};

const char* to_string(HostileShape shape);

auction::SingleTaskInstance hostile_single_task(std::size_t users, HostileShape shape,
                                                std::uint64_t seed);
auction::MultiTaskInstance hostile_multi_task(std::size_t users, std::size_t tasks,
                                              HostileShape shape, std::uint64_t seed);

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

struct SweepConfig {
  std::uint64_t seed = 20260808ULL;
  std::size_t instances = 6;   ///< instances per axis point
  std::size_t users = 14;      ///< <= 20 when compute_opt (brute-force OPT)
  std::size_t tasks = 5;
  std::size_t misreport_trials = 3;  ///< strategic deviations per user
  std::vector<double> epsilons = {0.25, 0.5, 1.0, 2.0, 4.0};
  PrivacyMechanism mechanism = PrivacyMechanism::kLaplace;
  std::vector<double> event_probs = {0.0, 0.2, 0.4, 0.7};
  std::size_t failure_rounds = 40;
  std::vector<std::size_t> coalition_sizes = {2, 3};
  std::vector<double> shade_grid = {0.25, 0.5, 0.75, 0.9, 1.1, 1.25, 1.5};
  std::vector<std::size_t> sybil_clones = {2, 3};
  double alpha = 10.0;
  /// Run every auction under the fast configuration AND the oracle
  /// configuration (kDpReuse/kColumns/kLazy vs kFullSolve/kScalarOracle/
  /// kReferenceScan) and count divergences — must stay 0.
  bool check_fast_paths = true;
  /// Brute-force OPT on the truthful instance (requires users <= 20).
  bool compute_opt = true;
  /// SP/IR slack: the critical-bid bisection's precision envelope (the same
  /// 1e-5 st_property_test allows), NOT a strategic-gain threshold.
  double tolerance = 1e-5;

  void validate() const;
};

/// One ε grid point of the privacy axis, per mechanism family.
struct PrivacyPoint {
  double epsilon = 0.0;  ///< 0 encodes the disabled (truthful) baseline
  std::size_t sp_probes = 0;
  std::size_t sp_violations = 0;   ///< a deviation beat the noised-truthful play
  std::size_t ir_winners = 0;
  std::size_t ir_violations = 0;   ///< a winner's true expected utility < 0
  double sp_violation_rate = 0.0;
  double ir_violation_rate = 0.0;
  double mean_sp_gain = 0.0;  ///< over violating probes; 0 when none
  double max_sp_gain = 0.0;
  /// Max over probes of (deviated utility - clean-truthful envelope). The
  /// envelope argument for a noised SP mechanism: a deviation routed through
  /// the same noise can never beat reporting one's true type un-noised. For
  /// the single-task FPTAS this holds exactly (the property fuzz asserts
  /// <= tolerance). For multi-task, per-task noise REDISTRIBUTES a user's
  /// contribution across tasks — a direction change the greedy cover's
  /// truthfulness argument does not cover — so noised rows can measure a
  /// genuinely positive excess (see DESIGN.md §14). The ε = 0 baseline rows
  /// stay <= tolerance in both families.
  double max_envelope_excess = 0.0;
  double approx_ratio_vs_opt = 0.0;       ///< mean, noised winners at true costs / OPT(truth)
  double cost_ratio_vs_truthful = 0.0;    ///< mean, noised run / truthful run
  double coverage_rate = 0.0;  ///< fraction of tasks truly covered by noised winners
  std::size_t infeasible_noised = 0;
};

struct FailurePoint {
  double event_prob = 0.0;
  std::size_t rounds = 0;
  std::size_t events = 0;  ///< realized weather events in the schedule
  double mean_coverage = 0.0;         ///< mean per-task achieved/required (capped at 1)
  double requirement_hit_rate = 0.0;  ///< fraction of tasks still meeting T post-event
};

struct CollusionPoint {
  std::string kind;  ///< "coalition" or "sybil"
  std::size_t size = 0;
  std::size_t probes = 0;
  double profitable_rate = 0.0;
  double mean_gain = 0.0;  ///< over profitable probes; 0 when none
  double max_gain = 0.0;
};

struct SweepResult {
  std::vector<PrivacyPoint> single_task;
  std::vector<PrivacyPoint> multi_task;
  std::vector<FailurePoint> failures;
  std::vector<CollusionPoint> collusion;
  /// Hostile-input differential: auctions where the fast configuration and
  /// the oracle configuration disagreed anywhere in the outcome. Must be 0.
  std::size_t fast_oracle_mismatches = 0;
  std::size_t auctions_run = 0;
  /// ε-disabled truthful baseline violations. Theorems 1/4 say exactly 0.
  std::size_t truthful_sp_violations = 0;
  std::size_t truthful_ir_violations = 0;
};

SweepResult run_adversarial_sweep(const SweepConfig& config);

/// The tiny configuration perf_smoke_test runs in-process every ctest pass
/// and bench/adversarial_sweep --quick reuses — seconds, not minutes.
SweepConfig quick_sweep_config();

}  // namespace mcs::sim
