// Failure injection — the paper's other future-work axis (Section VI):
// execution uncertainty beyond mobility. The paper names unreliable network
// connections and sensor/hardware failure as additional causes of task
// failure; this module injects them on top of the mobility PoS:
//   * `outage_prob`  — a round-level correlated failure (e.g. a network
//     outage): with this probability EVERY task attempt in the round fails;
//   * `hardware_prob` — an independent per-winner-per-round failure (device
//     breaks, sensor glitch): all of that winner's attempts fail.
// A task attempt then succeeds with probability (1-outage)·(1-hardware)·p.
//
// Because these failure sources are invisible to the declared PoS, a
// platform that requests requirement T will observe a lower achieved PoS.
// `compensated_requirement` computes the inflated requirement T' the
// platform should impose on declared coverage so that the post-failure
// achieved PoS still meets the original target.
#pragma once

#include <vector>

#include "auction/instance.hpp"
#include "common/rng.hpp"
#include "geo/grid.hpp"

namespace mcs::sim {

/// Injected failure sources; zeros disable.
struct FailureModel {
  double outage_prob = 0.0;    ///< round-correlated failure in [0, 1)
  double hardware_prob = 0.0;  ///< per-winner independent failure in [0, 1)
};

/// One realized round of a multi-task auction's winners under failures.
struct FailureRun {
  bool outage = false;
  std::vector<bool> winner_hardware_ok;  ///< aligned with winners
  std::vector<bool> winner_any_success;
  std::vector<bool> task_completed;
};

/// Simulates one execution round with injected failures.
FailureRun simulate_with_failures(const auction::MultiTaskInstance& instance,
                                  const std::vector<auction::UserId>& winners,
                                  const FailureModel& model, common::Rng& rng);

/// Analytic achieved PoS of a task under the failure model:
///   (1 - outage) · (1 - Π_i (1 - (1 - hardware)·p_i)).
double achieved_pos_with_failures(const auction::MultiTaskInstance& instance,
                                  const std::vector<auction::UserId>& winners,
                                  auction::TaskIndex task, const FailureModel& model);

/// The PoS requirement T' to impose on DECLARED coverage so that the
/// post-failure achieved PoS meets `target`. Exact in the outage dimension;
/// the hardware dimension uses the contribution-scaling identity
/// q' = q / (1 - h), which is exact when each task is covered by many
/// small-PoS users (the paper's regime) and conservative otherwise is NOT
/// guaranteed — see the docs. Throws PreconditionError when the target is
/// unreachable (target >= 1 - outage).
double compensated_requirement(double target, const FailureModel& model);

// ---------------------------------------------------------------------------
// Correlated cell failures (ROADMAP item 4): a localized weather event —
// storm, flood, cell-tower outage — zeroes the realized PoS of EVERY task
// pinned to one grid cell for one round. Unlike `outage_prob` (city-wide)
// and `hardware_prob` (per-winner), this failure is correlated by GEOGRAPHY,
// which is exactly the shape the geo-sharded service's MergePolicy knob must
// survive: a cell maps to one shard, so a weather event is also the
// per-shard blast-radius scenario (EXPERIMENTS.md compares kPoisonRound vs
// kDegradedMerge coverage under it).
// ---------------------------------------------------------------------------

/// Per-round weather-event model; zeros disable.
struct CellFailureModel {
  double event_prob = 0.0;        ///< P(an event hits this round), in [0, 1)
  /// Candidate cells the event strikes, uniformly; must be non-empty when
  /// event_prob > 0.
  std::vector<geo::CellId> cells;
};

/// One round's realized weather event.
struct CellFailureEvent {
  bool occurred = false;
  geo::CellId cell = 0;  ///< meaningful only when occurred
};

/// Draws whether (and where) a weather event strikes this round. Consumes
/// exactly one bernoulli draw plus, on occurrence, one uniform_int — callers
/// interleaving other draws stay aligned across event/no-event seeds only if
/// they draw the event first (the convention sim code follows).
CellFailureEvent draw_cell_failure(const CellFailureModel& model, common::Rng& rng);

/// Simulates one execution round under a (possibly absent) weather event:
/// task attempts on tasks in the failed cell fail outright, everything else
/// succeeds with the declared PoS. task_cells must align with the instance's
/// tasks. The per-attempt bernoulli draws are consumed IDENTICALLY whether
/// or not the event occurred, so paired comparisons across merge policies
/// (or against a no-event run) see the same realized randomness everywhere
/// outside the failed cell.
FailureRun simulate_with_cell_failure(const auction::MultiTaskInstance& instance,
                                      const std::vector<auction::UserId>& winners,
                                      const std::vector<geo::CellId>& task_cells,
                                      const CellFailureEvent& event, common::Rng& rng);

/// Analytic achieved PoS of a task under a realized weather event: 0 when
/// the task's cell failed, the usual 1 - Π(1 - p_i) otherwise.
double achieved_pos_with_cell_failure(const auction::MultiTaskInstance& instance,
                                      const std::vector<auction::UserId>& winners,
                                      auction::TaskIndex task,
                                      const std::vector<geo::CellId>& task_cells,
                                      const CellFailureEvent& event);

}  // namespace mcs::sim
