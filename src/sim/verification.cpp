#include "sim/verification.hpp"

#include <cmath>

#include "auction/single_task/fptas.hpp"
#include "common/check.hpp"

namespace mcs::sim {

double deterrence_threshold(double audit_prob) {
  MCS_EXPECTS(audit_prob > 0.0 && audit_prob <= 1.0, "audit probability must lie in (0, 1]");
  return (1.0 - audit_prob) / audit_prob;
}

std::vector<CostMisreportPoint> sweep_declared_cost(
    const auction::SingleTaskInstance& truth, auction::UserId user,
    const std::vector<double>& declared_grid,
    const auction::MechanismConfig& config, const CostAuditModel& audit) {
  MCS_EXPECTS(user >= 0 && static_cast<std::size_t>(user) < truth.bids.size(),
              "user id out of range");
  MCS_EXPECTS(audit.audit_prob >= 0.0 && audit.audit_prob <= 1.0,
              "audit probability must lie in [0, 1]");
  MCS_EXPECTS(audit.penalty_factor >= 0.0, "penalty factor must be non-negative");
  const double true_cost = truth.bids[static_cast<std::size_t>(user)].cost;
  const double true_pos = truth.bids[static_cast<std::size_t>(user)].pos;

  std::vector<CostMisreportPoint> sweep;
  sweep.reserve(declared_grid.size());
  for (double declared : declared_grid) {
    MCS_EXPECTS(declared > 0.0, "declared costs must be strictly positive");
    auto instance = truth;
    instance.bids[static_cast<std::size_t>(user)].cost = declared;

    CostMisreportPoint point;
    point.declared_cost = declared;
    const auto allocation =
        auction::single_task::solve_fptas(instance, config.single_task.epsilon);
    point.won = allocation.feasible && allocation.contains(user);
    if (point.won) {
      const auction::single_task::RewardOptions options{
          .alpha = config.alpha,
          .epsilon = config.single_task.epsilon,
          .binary_search_iterations = config.single_task.binary_search_iterations};
      const auto reward = auction::single_task::compute_reward(instance, user, options);
      // The EC reward reimburses the DECLARED cost; the margin (ĉ - c)
      // survives an audit-free round and costs φ·|ĉ - c| when caught.
      const double pos_term = reward.reward.expected_utility(true_pos);
      const double margin = declared - true_cost;
      point.expected_utility = pos_term + (1.0 - audit.audit_prob) * margin -
                               audit.audit_prob * audit.penalty_factor * std::fabs(margin);
    }
    sweep.push_back(point);
  }
  return sweep;
}

}  // namespace mcs::sim
