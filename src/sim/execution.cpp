#include "sim/execution.hpp"

#include "common/check.hpp"

namespace mcs::sim {

SingleTaskRun simulate(const auction::SingleTaskInstance& instance,
                       const std::vector<auction::UserId>& winners, common::Rng& rng) {
  SingleTaskRun run;
  run.winner_success.reserve(winners.size());
  for (auction::UserId winner : winners) {
    MCS_EXPECTS(winner >= 0 && static_cast<std::size_t>(winner) < instance.bids.size(),
                "winner id out of range");
    const bool success = rng.bernoulli(instance.bids[static_cast<std::size_t>(winner)].pos);
    run.winner_success.push_back(success);
    run.task_completed = run.task_completed || success;
  }
  return run;
}

MultiTaskRun simulate(const auction::MultiTaskInstance& instance,
                      const std::vector<auction::UserId>& winners, common::Rng& rng) {
  MultiTaskRun run;
  run.winner_task_success.reserve(winners.size());
  run.winner_any_success.reserve(winners.size());
  run.task_completed.assign(instance.num_tasks(), false);
  for (auction::UserId winner : winners) {
    MCS_EXPECTS(winner >= 0 && static_cast<std::size_t>(winner) < instance.users.size(),
                "winner id out of range");
    const auto& bid = instance.users[static_cast<std::size_t>(winner)];
    std::vector<bool> successes;
    successes.reserve(bid.tasks.size());
    bool any = false;
    for (std::size_t k = 0; k < bid.tasks.size(); ++k) {
      const bool success = rng.bernoulli(bid.pos[k]);
      successes.push_back(success);
      any = any || success;
      if (success) {
        run.task_completed[static_cast<std::size_t>(bid.tasks[k])] = true;
      }
    }
    run.winner_task_success.push_back(std::move(successes));
    run.winner_any_success.push_back(any);
  }
  return run;
}

double empirical_task_pos(const auction::SingleTaskInstance& instance,
                          const std::vector<auction::UserId>& winners, std::size_t runs,
                          common::Rng& rng) {
  MCS_EXPECTS(runs > 0, "need at least one run");
  std::size_t completed = 0;
  for (std::size_t r = 0; r < runs; ++r) {
    if (simulate(instance, winners, rng).task_completed) {
      ++completed;
    }
  }
  return static_cast<double>(completed) / static_cast<double>(runs);
}

std::vector<double> empirical_task_pos(const auction::MultiTaskInstance& instance,
                                       const std::vector<auction::UserId>& winners,
                                       std::size_t runs, common::Rng& rng) {
  MCS_EXPECTS(runs > 0, "need at least one run");
  std::vector<std::size_t> completed(instance.num_tasks(), 0);
  for (std::size_t r = 0; r < runs; ++r) {
    const auto run = simulate(instance, winners, rng);
    for (std::size_t j = 0; j < completed.size(); ++j) {
      if (run.task_completed[j]) {
        ++completed[j];
      }
    }
  }
  std::vector<double> pos(completed.size());
  for (std::size_t j = 0; j < completed.size(); ++j) {
    pos[j] = static_cast<double>(completed[j]) / static_cast<double>(runs);
  }
  return pos;
}

double settle_payout(const auction::MechanismOutcome& outcome,
                     const std::vector<bool>& any_success) {
  MCS_EXPECTS(any_success.size() == outcome.rewards.size(),
              "success flags must align with the outcome's winners");
  double payout = 0.0;
  for (std::size_t k = 0; k < outcome.rewards.size(); ++k) {
    const auto& reward = outcome.rewards[k].reward;
    payout += any_success[k] ? reward.on_success() : reward.on_failure();
  }
  return payout;
}

}  // namespace mcs::sim
