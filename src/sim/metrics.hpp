// Analytic evaluation metrics of the paper's Section IV: achieved task PoS
// under a winner set, winners' expected utilities, and individual-rationality
// checks — all computed in closed form from true types (the Bernoulli engine
// in execution.hpp provides the empirical cross-check).
#pragma once

#include <vector>

#include "auction/instance.hpp"

namespace mcs::sim {

/// Achieved PoS of the single task under a winner set: 1 - Π (1 - p_i).
double achieved_pos(const auction::SingleTaskInstance& instance,
                    const std::vector<auction::UserId>& winners);

/// Achieved PoS of every task under a winner set (multi-task).
std::vector<double> achieved_pos(const auction::MultiTaskInstance& instance,
                                 const std::vector<auction::UserId>& winners);

/// Average of the per-task achieved PoS (the paper's Fig 7 aggregates the
/// multi-task case this way).
double average_achieved_pos(const auction::MultiTaskInstance& instance,
                            const std::vector<auction::UserId>& winners);

/// Expected utilities of the outcome's winners, aligned with its rewards:
/// (p_i - p̄_i)·α with p_i the user's true success probability (single task:
/// her PoS; multi-task: the probability she completes at least one task).
std::vector<double> expected_utilities(const auction::SingleTaskInstance& instance,
                                       const auction::MechanismOutcome& outcome);
std::vector<double> expected_utilities(const auction::MultiTaskInstance& instance,
                                       const auction::MechanismOutcome& outcome);

/// True when every winner's expected utility is >= -tolerance (individual
/// rationality, Theorems 1 and 4).
bool individually_rational(const std::vector<double>& utilities, double tolerance = 1e-9);

}  // namespace mcs::sim
