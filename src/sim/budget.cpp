#include "sim/budget.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mcs::sim {

namespace {

PayoutEstimate accumulate(const std::vector<auction::WinnerReward>& rewards,
                          const std::vector<double>& success_probabilities) {
  PayoutEstimate estimate;
  for (std::size_t k = 0; k < rewards.size(); ++k) {
    const auto& reward = rewards[k].reward;
    estimate.total_cost += reward.cost;
    estimate.rent_per_alpha += success_probabilities[k] - reward.critical_pos;
    estimate.worst_case_per_alpha += 1.0 - reward.critical_pos;
  }
  return estimate;
}

double solve_alpha(double budget, double base, double slope, double alpha_cap) {
  MCS_EXPECTS(budget > 0.0, "budget must be positive");
  MCS_EXPECTS(alpha_cap > 0.0, "alpha cap must be positive");
  if (base >= budget) {
    return 0.0;  // the winners' costs alone exceed the budget
  }
  if (slope <= 0.0) {
    return alpha_cap;  // no rent: any α fits
  }
  return std::min(alpha_cap, (budget - base) / slope);
}

}  // namespace

PayoutEstimate estimate_payout(const auction::SingleTaskInstance& instance,
                               const auction::MechanismOutcome& outcome) {
  std::vector<double> probabilities;
  probabilities.reserve(outcome.rewards.size());
  for (const auto& reward : outcome.rewards) {
    MCS_EXPECTS(reward.user >= 0 &&
                    static_cast<std::size_t>(reward.user) < instance.bids.size(),
                "outcome does not belong to this instance");
    probabilities.push_back(instance.bids[static_cast<std::size_t>(reward.user)].pos);
  }
  return accumulate(outcome.rewards, probabilities);
}

PayoutEstimate estimate_payout(const auction::MultiTaskInstance& instance,
                               const auction::MechanismOutcome& outcome) {
  std::vector<double> probabilities;
  probabilities.reserve(outcome.rewards.size());
  for (const auto& reward : outcome.rewards) {
    MCS_EXPECTS(reward.user >= 0 &&
                    static_cast<std::size_t>(reward.user) < instance.num_users(),
                "outcome does not belong to this instance");
    probabilities.push_back(
        instance.users[static_cast<std::size_t>(reward.user)].any_success_probability());
  }
  return accumulate(outcome.rewards, probabilities);
}

double alpha_for_budget(const PayoutEstimate& estimate, double budget, double alpha_cap) {
  return solve_alpha(budget, estimate.total_cost, estimate.rent_per_alpha, alpha_cap);
}

double alpha_for_budget_worst_case(const PayoutEstimate& estimate, double budget,
                                   double alpha_cap) {
  return solve_alpha(budget, estimate.total_cost, estimate.worst_case_per_alpha, alpha_cap);
}

}  // namespace mcs::sim
