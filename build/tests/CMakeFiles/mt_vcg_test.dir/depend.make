# Empty dependencies file for mt_vcg_test.
# This may be replaced when dependencies are built.
