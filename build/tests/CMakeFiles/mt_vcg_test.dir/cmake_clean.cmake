file(REMOVE_RECURSE
  "CMakeFiles/mt_vcg_test.dir/mt_vcg_test.cpp.o"
  "CMakeFiles/mt_vcg_test.dir/mt_vcg_test.cpp.o.d"
  "mt_vcg_test"
  "mt_vcg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_vcg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
