# Empty dependencies file for st_reward_test.
# This may be replaced when dependencies are built.
