file(REMOVE_RECURSE
  "CMakeFiles/st_reward_test.dir/st_reward_test.cpp.o"
  "CMakeFiles/st_reward_test.dir/st_reward_test.cpp.o.d"
  "st_reward_test"
  "st_reward_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_reward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
