file(REMOVE_RECURSE
  "CMakeFiles/mt_greedy_test.dir/mt_greedy_test.cpp.o"
  "CMakeFiles/mt_greedy_test.dir/mt_greedy_test.cpp.o.d"
  "mt_greedy_test"
  "mt_greedy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
