# Empty dependencies file for mt_greedy_test.
# This may be replaced when dependencies are built.
