file(REMOVE_RECURSE
  "CMakeFiles/auction_bounds_test.dir/auction_bounds_test.cpp.o"
  "CMakeFiles/auction_bounds_test.dir/auction_bounds_test.cpp.o.d"
  "auction_bounds_test"
  "auction_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
