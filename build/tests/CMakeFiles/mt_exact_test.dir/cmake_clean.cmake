file(REMOVE_RECURSE
  "CMakeFiles/mt_exact_test.dir/mt_exact_test.cpp.o"
  "CMakeFiles/mt_exact_test.dir/mt_exact_test.cpp.o.d"
  "mt_exact_test"
  "mt_exact_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
