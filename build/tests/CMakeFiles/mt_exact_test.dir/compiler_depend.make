# Empty compiler generated dependencies file for mt_exact_test.
# This may be replaced when dependencies are built.
