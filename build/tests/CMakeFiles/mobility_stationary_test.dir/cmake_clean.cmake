file(REMOVE_RECURSE
  "CMakeFiles/mobility_stationary_test.dir/mobility_stationary_test.cpp.o"
  "CMakeFiles/mobility_stationary_test.dir/mobility_stationary_test.cpp.o.d"
  "mobility_stationary_test"
  "mobility_stationary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_stationary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
