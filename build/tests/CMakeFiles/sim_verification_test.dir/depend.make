# Empty dependencies file for sim_verification_test.
# This may be replaced when dependencies are built.
