file(REMOVE_RECURSE
  "CMakeFiles/sim_verification_test.dir/sim_verification_test.cpp.o"
  "CMakeFiles/sim_verification_test.dir/sim_verification_test.cpp.o.d"
  "sim_verification_test"
  "sim_verification_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_verification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
