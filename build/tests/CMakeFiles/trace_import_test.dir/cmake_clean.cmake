file(REMOVE_RECURSE
  "CMakeFiles/trace_import_test.dir/trace_import_test.cpp.o"
  "CMakeFiles/trace_import_test.dir/trace_import_test.cpp.o.d"
  "trace_import_test"
  "trace_import_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
