file(REMOVE_RECURSE
  "CMakeFiles/st_min_greedy_test.dir/st_min_greedy_test.cpp.o"
  "CMakeFiles/st_min_greedy_test.dir/st_min_greedy_test.cpp.o.d"
  "st_min_greedy_test"
  "st_min_greedy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_min_greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
