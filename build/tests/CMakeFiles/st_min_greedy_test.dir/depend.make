# Empty dependencies file for st_min_greedy_test.
# This may be replaced when dependencies are built.
