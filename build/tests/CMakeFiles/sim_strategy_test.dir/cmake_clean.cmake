file(REMOVE_RECURSE
  "CMakeFiles/sim_strategy_test.dir/sim_strategy_test.cpp.o"
  "CMakeFiles/sim_strategy_test.dir/sim_strategy_test.cpp.o.d"
  "sim_strategy_test"
  "sim_strategy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
