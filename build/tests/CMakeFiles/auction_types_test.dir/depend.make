# Empty dependencies file for auction_types_test.
# This may be replaced when dependencies are built.
