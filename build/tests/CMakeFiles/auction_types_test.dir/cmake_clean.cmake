file(REMOVE_RECURSE
  "CMakeFiles/auction_types_test.dir/auction_types_test.cpp.o"
  "CMakeFiles/auction_types_test.dir/auction_types_test.cpp.o.d"
  "auction_types_test"
  "auction_types_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
