# Empty dependencies file for common_distributions_test.
# This may be replaced when dependencies are built.
