file(REMOVE_RECURSE
  "CMakeFiles/common_distributions_test.dir/common_distributions_test.cpp.o"
  "CMakeFiles/common_distributions_test.dir/common_distributions_test.cpp.o.d"
  "common_distributions_test"
  "common_distributions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_distributions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
