# Empty dependencies file for mobility_second_order_test.
# This may be replaced when dependencies are built.
