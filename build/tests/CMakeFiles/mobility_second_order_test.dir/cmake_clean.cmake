file(REMOVE_RECURSE
  "CMakeFiles/mobility_second_order_test.dir/mobility_second_order_test.cpp.o"
  "CMakeFiles/mobility_second_order_test.dir/mobility_second_order_test.cpp.o.d"
  "mobility_second_order_test"
  "mobility_second_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_second_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
