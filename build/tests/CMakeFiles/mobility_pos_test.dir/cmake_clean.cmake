file(REMOVE_RECURSE
  "CMakeFiles/mobility_pos_test.dir/mobility_pos_test.cpp.o"
  "CMakeFiles/mobility_pos_test.dir/mobility_pos_test.cpp.o.d"
  "mobility_pos_test"
  "mobility_pos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_pos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
