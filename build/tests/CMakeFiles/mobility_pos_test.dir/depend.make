# Empty dependencies file for mobility_pos_test.
# This may be replaced when dependencies are built.
