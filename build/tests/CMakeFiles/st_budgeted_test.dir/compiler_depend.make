# Empty compiler generated dependencies file for st_budgeted_test.
# This may be replaced when dependencies are built.
