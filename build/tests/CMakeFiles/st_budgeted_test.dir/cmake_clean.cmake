file(REMOVE_RECURSE
  "CMakeFiles/st_budgeted_test.dir/st_budgeted_test.cpp.o"
  "CMakeFiles/st_budgeted_test.dir/st_budgeted_test.cpp.o.d"
  "st_budgeted_test"
  "st_budgeted_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_budgeted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
