file(REMOVE_RECURSE
  "CMakeFiles/mobility_transition_test.dir/mobility_transition_test.cpp.o"
  "CMakeFiles/mobility_transition_test.dir/mobility_transition_test.cpp.o.d"
  "mobility_transition_test"
  "mobility_transition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_transition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
