# Empty compiler generated dependencies file for st_exact_test.
# This may be replaced when dependencies are built.
