file(REMOVE_RECURSE
  "CMakeFiles/st_exact_test.dir/st_exact_test.cpp.o"
  "CMakeFiles/st_exact_test.dir/st_exact_test.cpp.o.d"
  "st_exact_test"
  "st_exact_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
