
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/st_exact_test.cpp" "tests/CMakeFiles/st_exact_test.dir/st_exact_test.cpp.o" "gcc" "tests/CMakeFiles/st_exact_test.dir/st_exact_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcs_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcs_auction.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcs_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcs_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
