# Empty dependencies file for st_dp_knapsack_test.
# This may be replaced when dependencies are built.
