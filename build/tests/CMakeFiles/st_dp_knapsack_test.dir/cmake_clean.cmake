file(REMOVE_RECURSE
  "CMakeFiles/st_dp_knapsack_test.dir/st_dp_knapsack_test.cpp.o"
  "CMakeFiles/st_dp_knapsack_test.dir/st_dp_knapsack_test.cpp.o.d"
  "st_dp_knapsack_test"
  "st_dp_knapsack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_dp_knapsack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
