file(REMOVE_RECURSE
  "CMakeFiles/platform_reputation_test.dir/platform_reputation_test.cpp.o"
  "CMakeFiles/platform_reputation_test.dir/platform_reputation_test.cpp.o.d"
  "platform_reputation_test"
  "platform_reputation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_reputation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
