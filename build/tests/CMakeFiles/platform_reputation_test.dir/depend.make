# Empty dependencies file for platform_reputation_test.
# This may be replaced when dependencies are built.
