file(REMOVE_RECURSE
  "CMakeFiles/mobility_multistep_test.dir/mobility_multistep_test.cpp.o"
  "CMakeFiles/mobility_multistep_test.dir/mobility_multistep_test.cpp.o.d"
  "mobility_multistep_test"
  "mobility_multistep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_multistep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
