file(REMOVE_RECURSE
  "CMakeFiles/sim_budget_test.dir/sim_budget_test.cpp.o"
  "CMakeFiles/sim_budget_test.dir/sim_budget_test.cpp.o.d"
  "sim_budget_test"
  "sim_budget_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
