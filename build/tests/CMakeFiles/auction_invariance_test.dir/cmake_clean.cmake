file(REMOVE_RECURSE
  "CMakeFiles/auction_invariance_test.dir/auction_invariance_test.cpp.o"
  "CMakeFiles/auction_invariance_test.dir/auction_invariance_test.cpp.o.d"
  "auction_invariance_test"
  "auction_invariance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_invariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
