# Empty dependencies file for auction_invariance_test.
# This may be replaced when dependencies are built.
