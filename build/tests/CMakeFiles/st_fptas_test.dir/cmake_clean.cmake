file(REMOVE_RECURSE
  "CMakeFiles/st_fptas_test.dir/st_fptas_test.cpp.o"
  "CMakeFiles/st_fptas_test.dir/st_fptas_test.cpp.o.d"
  "st_fptas_test"
  "st_fptas_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_fptas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
