# Empty dependencies file for st_fptas_test.
# This may be replaced when dependencies are built.
