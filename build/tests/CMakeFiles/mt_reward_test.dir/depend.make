# Empty dependencies file for mt_reward_test.
# This may be replaced when dependencies are built.
