file(REMOVE_RECURSE
  "CMakeFiles/mt_reward_test.dir/mt_reward_test.cpp.o"
  "CMakeFiles/mt_reward_test.dir/mt_reward_test.cpp.o.d"
  "mt_reward_test"
  "mt_reward_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_reward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
