file(REMOVE_RECURSE
  "CMakeFiles/st_mechanism_test.dir/st_mechanism_test.cpp.o"
  "CMakeFiles/st_mechanism_test.dir/st_mechanism_test.cpp.o.d"
  "st_mechanism_test"
  "st_mechanism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_mechanism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
