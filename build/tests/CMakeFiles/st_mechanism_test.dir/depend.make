# Empty dependencies file for st_mechanism_test.
# This may be replaced when dependencies are built.
