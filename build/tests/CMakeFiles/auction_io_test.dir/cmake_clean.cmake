file(REMOVE_RECURSE
  "CMakeFiles/auction_io_test.dir/auction_io_test.cpp.o"
  "CMakeFiles/auction_io_test.dir/auction_io_test.cpp.o.d"
  "auction_io_test"
  "auction_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
