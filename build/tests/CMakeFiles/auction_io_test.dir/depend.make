# Empty dependencies file for auction_io_test.
# This may be replaced when dependencies are built.
