file(REMOVE_RECURSE
  "CMakeFiles/mt_mechanism_test.dir/mt_mechanism_test.cpp.o"
  "CMakeFiles/mt_mechanism_test.dir/mt_mechanism_test.cpp.o.d"
  "mt_mechanism_test"
  "mt_mechanism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_mechanism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
