# Empty dependencies file for mt_mechanism_test.
# This may be replaced when dependencies are built.
