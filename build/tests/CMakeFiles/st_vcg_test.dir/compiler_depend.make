# Empty compiler generated dependencies file for st_vcg_test.
# This may be replaced when dependencies are built.
