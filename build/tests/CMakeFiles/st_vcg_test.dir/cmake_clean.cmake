file(REMOVE_RECURSE
  "CMakeFiles/st_vcg_test.dir/st_vcg_test.cpp.o"
  "CMakeFiles/st_vcg_test.dir/st_vcg_test.cpp.o.d"
  "st_vcg_test"
  "st_vcg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_vcg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
