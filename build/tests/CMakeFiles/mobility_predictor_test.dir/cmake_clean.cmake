file(REMOVE_RECURSE
  "CMakeFiles/mobility_predictor_test.dir/mobility_predictor_test.cpp.o"
  "CMakeFiles/mobility_predictor_test.dir/mobility_predictor_test.cpp.o.d"
  "mobility_predictor_test"
  "mobility_predictor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
