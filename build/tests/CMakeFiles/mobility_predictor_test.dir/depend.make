# Empty dependencies file for mobility_predictor_test.
# This may be replaced when dependencies are built.
