file(REMOVE_RECURSE
  "CMakeFiles/mobility_learner_test.dir/mobility_learner_test.cpp.o"
  "CMakeFiles/mobility_learner_test.dir/mobility_learner_test.cpp.o.d"
  "mobility_learner_test"
  "mobility_learner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
