# Empty dependencies file for mobility_learner_test.
# This may be replaced when dependencies are built.
