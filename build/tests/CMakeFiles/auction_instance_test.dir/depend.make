# Empty dependencies file for auction_instance_test.
# This may be replaced when dependencies are built.
