file(REMOVE_RECURSE
  "CMakeFiles/auction_instance_test.dir/auction_instance_test.cpp.o"
  "CMakeFiles/auction_instance_test.dir/auction_instance_test.cpp.o.d"
  "auction_instance_test"
  "auction_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
