# Empty dependencies file for mt_budgeted_test.
# This may be replaced when dependencies are built.
