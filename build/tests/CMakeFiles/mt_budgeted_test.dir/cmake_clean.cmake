file(REMOVE_RECURSE
  "CMakeFiles/mt_budgeted_test.dir/mt_budgeted_test.cpp.o"
  "CMakeFiles/mt_budgeted_test.dir/mt_budgeted_test.cpp.o.d"
  "mt_budgeted_test"
  "mt_budgeted_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_budgeted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
