file(REMOVE_RECURSE
  "CMakeFiles/trace_dataset_test.dir/trace_dataset_test.cpp.o"
  "CMakeFiles/trace_dataset_test.dir/trace_dataset_test.cpp.o.d"
  "trace_dataset_test"
  "trace_dataset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
