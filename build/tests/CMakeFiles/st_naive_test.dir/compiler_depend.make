# Empty compiler generated dependencies file for st_naive_test.
# This may be replaced when dependencies are built.
