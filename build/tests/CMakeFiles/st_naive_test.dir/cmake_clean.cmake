file(REMOVE_RECURSE
  "CMakeFiles/st_naive_test.dir/st_naive_test.cpp.o"
  "CMakeFiles/st_naive_test.dir/st_naive_test.cpp.o.d"
  "st_naive_test"
  "st_naive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_naive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
