# Empty dependencies file for fig5b_multi_task_users.
# This may be replaced when dependencies are built.
