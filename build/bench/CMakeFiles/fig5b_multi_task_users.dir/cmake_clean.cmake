file(REMOVE_RECURSE
  "CMakeFiles/fig5b_multi_task_users.dir/fig5b_multi_task_users.cpp.o"
  "CMakeFiles/fig5b_multi_task_users.dir/fig5b_multi_task_users.cpp.o.d"
  "fig5b_multi_task_users"
  "fig5b_multi_task_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_multi_task_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
