# Empty dependencies file for perf_mechanisms.
# This may be replaced when dependencies are built.
