file(REMOVE_RECURSE
  "CMakeFiles/perf_mechanisms.dir/perf_mechanisms.cpp.o"
  "CMakeFiles/perf_mechanisms.dir/perf_mechanisms.cpp.o.d"
  "perf_mechanisms"
  "perf_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
