# Empty compiler generated dependencies file for fig5c_multi_task_tasks.
# This may be replaced when dependencies are built.
