file(REMOVE_RECURSE
  "CMakeFiles/fig5c_multi_task_tasks.dir/fig5c_multi_task_tasks.cpp.o"
  "CMakeFiles/fig5c_multi_task_tasks.dir/fig5c_multi_task_tasks.cpp.o.d"
  "fig5c_multi_task_tasks"
  "fig5c_multi_task_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_multi_task_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
