# Empty compiler generated dependencies file for fig2_selection_boundary.
# This may be replaced when dependencies are built.
