file(REMOVE_RECURSE
  "CMakeFiles/fig2_selection_boundary.dir/fig2_selection_boundary.cpp.o"
  "CMakeFiles/fig2_selection_boundary.dir/fig2_selection_boundary.cpp.o.d"
  "fig2_selection_boundary"
  "fig2_selection_boundary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_selection_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
