file(REMOVE_RECURSE
  "CMakeFiles/fig8_users_vs_requirement.dir/fig8_users_vs_requirement.cpp.o"
  "CMakeFiles/fig8_users_vs_requirement.dir/fig8_users_vs_requirement.cpp.o.d"
  "fig8_users_vs_requirement"
  "fig8_users_vs_requirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_users_vs_requirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
