# Empty dependencies file for fig8_users_vs_requirement.
# This may be replaced when dependencies are built.
