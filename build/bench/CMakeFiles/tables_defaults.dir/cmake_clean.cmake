file(REMOVE_RECURSE
  "CMakeFiles/tables_defaults.dir/tables_defaults.cpp.o"
  "CMakeFiles/tables_defaults.dir/tables_defaults.cpp.o.d"
  "tables_defaults"
  "tables_defaults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables_defaults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
