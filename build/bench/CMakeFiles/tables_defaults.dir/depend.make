# Empty dependencies file for tables_defaults.
# This may be replaced when dependencies are built.
