file(REMOVE_RECURSE
  "CMakeFiles/ablation_critical_bid.dir/ablation_critical_bid.cpp.o"
  "CMakeFiles/ablation_critical_bid.dir/ablation_critical_bid.cpp.o.d"
  "ablation_critical_bid"
  "ablation_critical_bid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_critical_bid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
