# Empty compiler generated dependencies file for ablation_critical_bid.
# This may be replaced when dependencies are built.
