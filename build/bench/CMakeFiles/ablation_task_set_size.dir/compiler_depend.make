# Empty compiler generated dependencies file for ablation_task_set_size.
# This may be replaced when dependencies are built.
