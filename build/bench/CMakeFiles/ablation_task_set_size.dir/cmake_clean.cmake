file(REMOVE_RECURSE
  "CMakeFiles/ablation_task_set_size.dir/ablation_task_set_size.cpp.o"
  "CMakeFiles/ablation_task_set_size.dir/ablation_task_set_size.cpp.o.d"
  "ablation_task_set_size"
  "ablation_task_set_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_task_set_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
