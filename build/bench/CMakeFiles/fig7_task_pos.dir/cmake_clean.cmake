file(REMOVE_RECURSE
  "CMakeFiles/fig7_task_pos.dir/fig7_task_pos.cpp.o"
  "CMakeFiles/fig7_task_pos.dir/fig7_task_pos.cpp.o.d"
  "fig7_task_pos"
  "fig7_task_pos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_task_pos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
