# Empty compiler generated dependencies file for fig7_task_pos.
# This may be replaced when dependencies are built.
