# Empty dependencies file for fig3_prediction_accuracy.
# This may be replaced when dependencies are built.
