# Empty dependencies file for fig6_utility_cdf.
# This may be replaced when dependencies are built.
