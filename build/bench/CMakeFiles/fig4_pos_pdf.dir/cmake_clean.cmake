file(REMOVE_RECURSE
  "CMakeFiles/fig4_pos_pdf.dir/fig4_pos_pdf.cpp.o"
  "CMakeFiles/fig4_pos_pdf.dir/fig4_pos_pdf.cpp.o.d"
  "fig4_pos_pdf"
  "fig4_pos_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pos_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
