# Empty dependencies file for fig4_pos_pdf.
# This may be replaced when dependencies are built.
