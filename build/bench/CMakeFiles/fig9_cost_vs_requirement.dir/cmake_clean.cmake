file(REMOVE_RECURSE
  "CMakeFiles/fig9_cost_vs_requirement.dir/fig9_cost_vs_requirement.cpp.o"
  "CMakeFiles/fig9_cost_vs_requirement.dir/fig9_cost_vs_requirement.cpp.o.d"
  "fig9_cost_vs_requirement"
  "fig9_cost_vs_requirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cost_vs_requirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
