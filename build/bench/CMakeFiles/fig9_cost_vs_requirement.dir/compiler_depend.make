# Empty compiler generated dependencies file for fig9_cost_vs_requirement.
# This may be replaced when dependencies are built.
