file(REMOVE_RECURSE
  "CMakeFiles/ablation_markov_order.dir/ablation_markov_order.cpp.o"
  "CMakeFiles/ablation_markov_order.dir/ablation_markov_order.cpp.o.d"
  "ablation_markov_order"
  "ablation_markov_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_markov_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
