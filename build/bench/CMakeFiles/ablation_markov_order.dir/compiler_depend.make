# Empty compiler generated dependencies file for ablation_markov_order.
# This may be replaced when dependencies are built.
