# Empty compiler generated dependencies file for bounds_check.
# This may be replaced when dependencies are built.
