file(REMOVE_RECURSE
  "CMakeFiles/bounds_check.dir/bounds_check.cpp.o"
  "CMakeFiles/bounds_check.dir/bounds_check.cpp.o.d"
  "bounds_check"
  "bounds_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
