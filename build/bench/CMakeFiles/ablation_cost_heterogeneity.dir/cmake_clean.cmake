file(REMOVE_RECURSE
  "CMakeFiles/ablation_cost_heterogeneity.dir/ablation_cost_heterogeneity.cpp.o"
  "CMakeFiles/ablation_cost_heterogeneity.dir/ablation_cost_heterogeneity.cpp.o.d"
  "ablation_cost_heterogeneity"
  "ablation_cost_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cost_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
