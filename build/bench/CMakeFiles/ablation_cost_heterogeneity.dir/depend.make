# Empty dependencies file for ablation_cost_heterogeneity.
# This may be replaced when dependencies are built.
