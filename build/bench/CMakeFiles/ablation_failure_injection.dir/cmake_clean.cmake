file(REMOVE_RECURSE
  "CMakeFiles/ablation_failure_injection.dir/ablation_failure_injection.cpp.o"
  "CMakeFiles/ablation_failure_injection.dir/ablation_failure_injection.cpp.o.d"
  "ablation_failure_injection"
  "ablation_failure_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_failure_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
