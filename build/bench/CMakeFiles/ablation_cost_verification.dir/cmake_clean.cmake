file(REMOVE_RECURSE
  "CMakeFiles/ablation_cost_verification.dir/ablation_cost_verification.cpp.o"
  "CMakeFiles/ablation_cost_verification.dir/ablation_cost_verification.cpp.o.d"
  "ablation_cost_verification"
  "ablation_cost_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cost_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
