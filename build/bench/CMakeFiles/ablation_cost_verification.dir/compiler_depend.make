# Empty compiler generated dependencies file for ablation_cost_verification.
# This may be replaced when dependencies are built.
