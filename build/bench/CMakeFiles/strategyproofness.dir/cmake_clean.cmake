file(REMOVE_RECURSE
  "CMakeFiles/strategyproofness.dir/strategyproofness.cpp.o"
  "CMakeFiles/strategyproofness.dir/strategyproofness.cpp.o.d"
  "strategyproofness"
  "strategyproofness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategyproofness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
