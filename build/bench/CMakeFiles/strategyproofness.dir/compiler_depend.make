# Empty compiler generated dependencies file for strategyproofness.
# This may be replaced when dependencies are built.
