# Empty compiler generated dependencies file for fig5a_single_task_cost.
# This may be replaced when dependencies are built.
