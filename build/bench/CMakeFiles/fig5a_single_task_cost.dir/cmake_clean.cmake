file(REMOVE_RECURSE
  "CMakeFiles/fig5a_single_task_cost.dir/fig5a_single_task_cost.cpp.o"
  "CMakeFiles/fig5a_single_task_cost.dir/fig5a_single_task_cost.cpp.o.d"
  "fig5a_single_task_cost"
  "fig5a_single_task_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_single_task_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
