# Empty compiler generated dependencies file for example_auction_cli.
# This may be replaced when dependencies are built.
