file(REMOVE_RECURSE
  "CMakeFiles/example_auction_cli.dir/auction_cli.cpp.o"
  "CMakeFiles/example_auction_cli.dir/auction_cli.cpp.o.d"
  "example_auction_cli"
  "example_auction_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_auction_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
