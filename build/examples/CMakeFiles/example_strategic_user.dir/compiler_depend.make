# Empty compiler generated dependencies file for example_strategic_user.
# This may be replaced when dependencies are built.
