file(REMOVE_RECURSE
  "CMakeFiles/example_strategic_user.dir/strategic_user.cpp.o"
  "CMakeFiles/example_strategic_user.dir/strategic_user.cpp.o.d"
  "example_strategic_user"
  "example_strategic_user.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_strategic_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
