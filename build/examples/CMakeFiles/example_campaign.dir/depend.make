# Empty dependencies file for example_campaign.
# This may be replaced when dependencies are built.
