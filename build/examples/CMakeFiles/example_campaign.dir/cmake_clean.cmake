file(REMOVE_RECURSE
  "CMakeFiles/example_campaign.dir/campaign.cpp.o"
  "CMakeFiles/example_campaign.dir/campaign.cpp.o.d"
  "example_campaign"
  "example_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
