# Empty dependencies file for example_city_sensing.
# This may be replaced when dependencies are built.
