file(REMOVE_RECURSE
  "CMakeFiles/example_city_sensing.dir/city_sensing.cpp.o"
  "CMakeFiles/example_city_sensing.dir/city_sensing.cpp.o.d"
  "example_city_sensing"
  "example_city_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_city_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
