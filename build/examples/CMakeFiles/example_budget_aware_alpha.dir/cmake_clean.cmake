file(REMOVE_RECURSE
  "CMakeFiles/example_budget_aware_alpha.dir/budget_aware_alpha.cpp.o"
  "CMakeFiles/example_budget_aware_alpha.dir/budget_aware_alpha.cpp.o.d"
  "example_budget_aware_alpha"
  "example_budget_aware_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_budget_aware_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
