# Empty compiler generated dependencies file for example_budget_aware_alpha.
# This may be replaced when dependencies are built.
