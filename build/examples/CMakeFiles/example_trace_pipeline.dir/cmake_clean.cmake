file(REMOVE_RECURSE
  "CMakeFiles/example_trace_pipeline.dir/trace_pipeline.cpp.o"
  "CMakeFiles/example_trace_pipeline.dir/trace_pipeline.cpp.o.d"
  "example_trace_pipeline"
  "example_trace_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
