# Empty compiler generated dependencies file for example_trace_pipeline.
# This may be replaced when dependencies are built.
