
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/learner.cpp" "src/CMakeFiles/mcs_mobility.dir/mobility/learner.cpp.o" "gcc" "src/CMakeFiles/mcs_mobility.dir/mobility/learner.cpp.o.d"
  "/root/repo/src/mobility/multistep.cpp" "src/CMakeFiles/mcs_mobility.dir/mobility/multistep.cpp.o" "gcc" "src/CMakeFiles/mcs_mobility.dir/mobility/multistep.cpp.o.d"
  "/root/repo/src/mobility/pos.cpp" "src/CMakeFiles/mcs_mobility.dir/mobility/pos.cpp.o" "gcc" "src/CMakeFiles/mcs_mobility.dir/mobility/pos.cpp.o.d"
  "/root/repo/src/mobility/predictor.cpp" "src/CMakeFiles/mcs_mobility.dir/mobility/predictor.cpp.o" "gcc" "src/CMakeFiles/mcs_mobility.dir/mobility/predictor.cpp.o.d"
  "/root/repo/src/mobility/second_order.cpp" "src/CMakeFiles/mcs_mobility.dir/mobility/second_order.cpp.o" "gcc" "src/CMakeFiles/mcs_mobility.dir/mobility/second_order.cpp.o.d"
  "/root/repo/src/mobility/stationary.cpp" "src/CMakeFiles/mcs_mobility.dir/mobility/stationary.cpp.o" "gcc" "src/CMakeFiles/mcs_mobility.dir/mobility/stationary.cpp.o.d"
  "/root/repo/src/mobility/transition.cpp" "src/CMakeFiles/mcs_mobility.dir/mobility/transition.cpp.o" "gcc" "src/CMakeFiles/mcs_mobility.dir/mobility/transition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcs_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
