file(REMOVE_RECURSE
  "CMakeFiles/mcs_mobility.dir/mobility/learner.cpp.o"
  "CMakeFiles/mcs_mobility.dir/mobility/learner.cpp.o.d"
  "CMakeFiles/mcs_mobility.dir/mobility/multistep.cpp.o"
  "CMakeFiles/mcs_mobility.dir/mobility/multistep.cpp.o.d"
  "CMakeFiles/mcs_mobility.dir/mobility/pos.cpp.o"
  "CMakeFiles/mcs_mobility.dir/mobility/pos.cpp.o.d"
  "CMakeFiles/mcs_mobility.dir/mobility/predictor.cpp.o"
  "CMakeFiles/mcs_mobility.dir/mobility/predictor.cpp.o.d"
  "CMakeFiles/mcs_mobility.dir/mobility/second_order.cpp.o"
  "CMakeFiles/mcs_mobility.dir/mobility/second_order.cpp.o.d"
  "CMakeFiles/mcs_mobility.dir/mobility/stationary.cpp.o"
  "CMakeFiles/mcs_mobility.dir/mobility/stationary.cpp.o.d"
  "CMakeFiles/mcs_mobility.dir/mobility/transition.cpp.o"
  "CMakeFiles/mcs_mobility.dir/mobility/transition.cpp.o.d"
  "libmcs_mobility.a"
  "libmcs_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
