# Empty dependencies file for mcs_mobility.
# This may be replaced when dependencies are built.
