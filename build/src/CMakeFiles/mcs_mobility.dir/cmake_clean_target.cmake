file(REMOVE_RECURSE
  "libmcs_mobility.a"
)
