file(REMOVE_RECURSE
  "CMakeFiles/mcs_trace.dir/trace/dataset.cpp.o"
  "CMakeFiles/mcs_trace.dir/trace/dataset.cpp.o.d"
  "CMakeFiles/mcs_trace.dir/trace/generator.cpp.o"
  "CMakeFiles/mcs_trace.dir/trace/generator.cpp.o.d"
  "CMakeFiles/mcs_trace.dir/trace/import.cpp.o"
  "CMakeFiles/mcs_trace.dir/trace/import.cpp.o.d"
  "CMakeFiles/mcs_trace.dir/trace/io.cpp.o"
  "CMakeFiles/mcs_trace.dir/trace/io.cpp.o.d"
  "libmcs_trace.a"
  "libmcs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
