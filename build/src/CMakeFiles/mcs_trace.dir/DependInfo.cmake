
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/dataset.cpp" "src/CMakeFiles/mcs_trace.dir/trace/dataset.cpp.o" "gcc" "src/CMakeFiles/mcs_trace.dir/trace/dataset.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/CMakeFiles/mcs_trace.dir/trace/generator.cpp.o" "gcc" "src/CMakeFiles/mcs_trace.dir/trace/generator.cpp.o.d"
  "/root/repo/src/trace/import.cpp" "src/CMakeFiles/mcs_trace.dir/trace/import.cpp.o" "gcc" "src/CMakeFiles/mcs_trace.dir/trace/import.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/CMakeFiles/mcs_trace.dir/trace/io.cpp.o" "gcc" "src/CMakeFiles/mcs_trace.dir/trace/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcs_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
