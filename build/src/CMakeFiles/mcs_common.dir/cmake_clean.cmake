file(REMOVE_RECURSE
  "CMakeFiles/mcs_common.dir/common/check.cpp.o"
  "CMakeFiles/mcs_common.dir/common/check.cpp.o.d"
  "CMakeFiles/mcs_common.dir/common/csv.cpp.o"
  "CMakeFiles/mcs_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/mcs_common.dir/common/distributions.cpp.o"
  "CMakeFiles/mcs_common.dir/common/distributions.cpp.o.d"
  "CMakeFiles/mcs_common.dir/common/math.cpp.o"
  "CMakeFiles/mcs_common.dir/common/math.cpp.o.d"
  "CMakeFiles/mcs_common.dir/common/parallel.cpp.o"
  "CMakeFiles/mcs_common.dir/common/parallel.cpp.o.d"
  "CMakeFiles/mcs_common.dir/common/rng.cpp.o"
  "CMakeFiles/mcs_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/mcs_common.dir/common/stats.cpp.o"
  "CMakeFiles/mcs_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/mcs_common.dir/common/table.cpp.o"
  "CMakeFiles/mcs_common.dir/common/table.cpp.o.d"
  "libmcs_common.a"
  "libmcs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
