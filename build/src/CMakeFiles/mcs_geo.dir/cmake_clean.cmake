file(REMOVE_RECURSE
  "CMakeFiles/mcs_geo.dir/geo/grid.cpp.o"
  "CMakeFiles/mcs_geo.dir/geo/grid.cpp.o.d"
  "libmcs_geo.a"
  "libmcs_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
