
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/auction/bounds.cpp" "src/CMakeFiles/mcs_auction.dir/auction/bounds.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/bounds.cpp.o.d"
  "/root/repo/src/auction/instance.cpp" "src/CMakeFiles/mcs_auction.dir/auction/instance.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/instance.cpp.o.d"
  "/root/repo/src/auction/io.cpp" "src/CMakeFiles/mcs_auction.dir/auction/io.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/io.cpp.o.d"
  "/root/repo/src/auction/multi_task/budgeted.cpp" "src/CMakeFiles/mcs_auction.dir/auction/multi_task/budgeted.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/multi_task/budgeted.cpp.o.d"
  "/root/repo/src/auction/multi_task/exact.cpp" "src/CMakeFiles/mcs_auction.dir/auction/multi_task/exact.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/multi_task/exact.cpp.o.d"
  "/root/repo/src/auction/multi_task/greedy.cpp" "src/CMakeFiles/mcs_auction.dir/auction/multi_task/greedy.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/multi_task/greedy.cpp.o.d"
  "/root/repo/src/auction/multi_task/mechanism.cpp" "src/CMakeFiles/mcs_auction.dir/auction/multi_task/mechanism.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/multi_task/mechanism.cpp.o.d"
  "/root/repo/src/auction/multi_task/reward.cpp" "src/CMakeFiles/mcs_auction.dir/auction/multi_task/reward.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/multi_task/reward.cpp.o.d"
  "/root/repo/src/auction/multi_task/vcg.cpp" "src/CMakeFiles/mcs_auction.dir/auction/multi_task/vcg.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/multi_task/vcg.cpp.o.d"
  "/root/repo/src/auction/single_task/budgeted.cpp" "src/CMakeFiles/mcs_auction.dir/auction/single_task/budgeted.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/single_task/budgeted.cpp.o.d"
  "/root/repo/src/auction/single_task/dp_knapsack.cpp" "src/CMakeFiles/mcs_auction.dir/auction/single_task/dp_knapsack.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/single_task/dp_knapsack.cpp.o.d"
  "/root/repo/src/auction/single_task/exact.cpp" "src/CMakeFiles/mcs_auction.dir/auction/single_task/exact.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/single_task/exact.cpp.o.d"
  "/root/repo/src/auction/single_task/fptas.cpp" "src/CMakeFiles/mcs_auction.dir/auction/single_task/fptas.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/single_task/fptas.cpp.o.d"
  "/root/repo/src/auction/single_task/mechanism.cpp" "src/CMakeFiles/mcs_auction.dir/auction/single_task/mechanism.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/single_task/mechanism.cpp.o.d"
  "/root/repo/src/auction/single_task/min_greedy.cpp" "src/CMakeFiles/mcs_auction.dir/auction/single_task/min_greedy.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/single_task/min_greedy.cpp.o.d"
  "/root/repo/src/auction/single_task/naive.cpp" "src/CMakeFiles/mcs_auction.dir/auction/single_task/naive.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/single_task/naive.cpp.o.d"
  "/root/repo/src/auction/single_task/reward.cpp" "src/CMakeFiles/mcs_auction.dir/auction/single_task/reward.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/single_task/reward.cpp.o.d"
  "/root/repo/src/auction/single_task/vcg.cpp" "src/CMakeFiles/mcs_auction.dir/auction/single_task/vcg.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/single_task/vcg.cpp.o.d"
  "/root/repo/src/auction/types.cpp" "src/CMakeFiles/mcs_auction.dir/auction/types.cpp.o" "gcc" "src/CMakeFiles/mcs_auction.dir/auction/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
