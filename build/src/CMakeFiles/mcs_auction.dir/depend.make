# Empty dependencies file for mcs_auction.
# This may be replaced when dependencies are built.
