file(REMOVE_RECURSE
  "libmcs_auction.a"
)
