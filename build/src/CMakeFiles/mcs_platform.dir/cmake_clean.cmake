file(REMOVE_RECURSE
  "CMakeFiles/mcs_platform.dir/platform/platform.cpp.o"
  "CMakeFiles/mcs_platform.dir/platform/platform.cpp.o.d"
  "CMakeFiles/mcs_platform.dir/platform/reputation.cpp.o"
  "CMakeFiles/mcs_platform.dir/platform/reputation.cpp.o.d"
  "libmcs_platform.a"
  "libmcs_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
