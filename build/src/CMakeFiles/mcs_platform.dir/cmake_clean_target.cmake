file(REMOVE_RECURSE
  "libmcs_platform.a"
)
