# Empty dependencies file for mcs_platform.
# This may be replaced when dependencies are built.
