file(REMOVE_RECURSE
  "CMakeFiles/mcs_sim.dir/sim/budget.cpp.o"
  "CMakeFiles/mcs_sim.dir/sim/budget.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/sim/execution.cpp.o"
  "CMakeFiles/mcs_sim.dir/sim/execution.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/mcs_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/sim/failures.cpp.o"
  "CMakeFiles/mcs_sim.dir/sim/failures.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/mcs_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/sim/scenario.cpp.o"
  "CMakeFiles/mcs_sim.dir/sim/scenario.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/sim/strategy.cpp.o"
  "CMakeFiles/mcs_sim.dir/sim/strategy.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/sim/verification.cpp.o"
  "CMakeFiles/mcs_sim.dir/sim/verification.cpp.o.d"
  "libmcs_sim.a"
  "libmcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
