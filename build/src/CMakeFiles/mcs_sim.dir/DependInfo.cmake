
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/budget.cpp" "src/CMakeFiles/mcs_sim.dir/sim/budget.cpp.o" "gcc" "src/CMakeFiles/mcs_sim.dir/sim/budget.cpp.o.d"
  "/root/repo/src/sim/execution.cpp" "src/CMakeFiles/mcs_sim.dir/sim/execution.cpp.o" "gcc" "src/CMakeFiles/mcs_sim.dir/sim/execution.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/mcs_sim.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/mcs_sim.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/failures.cpp" "src/CMakeFiles/mcs_sim.dir/sim/failures.cpp.o" "gcc" "src/CMakeFiles/mcs_sim.dir/sim/failures.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/mcs_sim.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/mcs_sim.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/CMakeFiles/mcs_sim.dir/sim/scenario.cpp.o" "gcc" "src/CMakeFiles/mcs_sim.dir/sim/scenario.cpp.o.d"
  "/root/repo/src/sim/strategy.cpp" "src/CMakeFiles/mcs_sim.dir/sim/strategy.cpp.o" "gcc" "src/CMakeFiles/mcs_sim.dir/sim/strategy.cpp.o.d"
  "/root/repo/src/sim/verification.cpp" "src/CMakeFiles/mcs_sim.dir/sim/verification.cpp.o" "gcc" "src/CMakeFiles/mcs_sim.dir/sim/verification.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcs_auction.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcs_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcs_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
