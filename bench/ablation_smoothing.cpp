// Ablation — the Laplace smoothing constant of the Markov learner.
//
// The paper smooths transition estimates as P_ij = x_ij / (x_i + l) "due to
// the sparsity of data". We generalize to P_ij = (x_ij + a) / (x_i + a·l)
// and sweep a: a = 0 is the raw MLE (unseen moves get probability zero),
// larger a pulls rows toward uniform. Top-k ranking is monotone in x_ij for
// any a > 0, so prediction accuracy is flat across positive a — the constant
// matters for the PoS *values* (and thus auction contributions), not the
// ranking. The last column shows the mean predicted PoS of a user's best
// cell shrinking as a grows.
#include <iostream>

#include "bench_util.hpp"
#include "mobility/predictor.hpp"

int main() {
  using namespace mcs;

  common::TextTable table("Ablation: Laplace smoothing constant a",
                          {"a", "top-3 accuracy", "top-9 accuracy", "top-15 accuracy",
                           "mean top-1 PoS"});
  for (double alpha : {0.0, 0.1, 0.5, 1.0, 2.0, 5.0}) {
    sim::WorkloadConfig config = sim::default_bench_workload();
    config.laplace_alpha = alpha;
    config.train_fraction = 0.8;
    const sim::Workload workload(config);
    const auto results = mobility::evaluate_topk_accuracy(workload.fleet(), {3, 9, 15});

    common::RunningStats top_pos;
    for (const auto& user : workload.users()) {
      top_pos.add(user.task_pos.front().second);
    }
    table.add_row({bench::fmt(alpha, 1), bench::fmt(results[0].accuracy(), 4),
                   bench::fmt(results[1].accuracy(), 4), bench::fmt(results[2].accuracy(), 4),
                   bench::fmt(top_pos.mean(), 4)});
  }
  table.print(std::cout);
  std::cout << "(accuracy is ranking-based and thus insensitive to a > 0; the PoS scale"
            << " shrinks as a grows)\n";
  return 0;
}
