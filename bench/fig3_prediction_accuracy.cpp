// Fig 3 — Location Prediction Accuracy.
//
// Paper: per-taxi Markov models (Laplace smoothing) are trained on the trace;
// for each held-out transition the model predicts the 3..15 most likely next
// cells, and the accuracy is the fraction of transitions whose actual
// destination is in the predicted set. The paper reports ≈0.9 at 9 predicted
// locations. We reproduce the sweep on the synthetic trace substrate.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace mcs;

  sim::WorkloadConfig config = sim::default_bench_workload();
  config.train_fraction = 0.8;  // keep the tail of every trace as holdout
  const sim::Workload workload(config);

  std::vector<std::size_t> ks;
  for (std::size_t k = 3; k <= 15; ++k) {
    ks.push_back(k);
  }
  const auto results = mobility::evaluate_topk_accuracy(workload.fleet(), ks);

  common::TextTable table("Fig 3: location prediction accuracy vs #predicted locations",
                          {"#predicted", "accuracy", "#holdout transitions"});
  for (const auto& result : results) {
    table.add_row({std::to_string(result.k), common::TextTable::num(result.accuracy()),
                   std::to_string(result.total)});
  }
  bench::emit(table, "fig3_prediction_accuracy");
  std::cout << "(paper: accuracy ≈ 0.9 at 9 predicted locations)\n";
  return 0;
}
