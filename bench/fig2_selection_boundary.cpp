// Fig 2 — Selection Boundary of User 3 (paper Section III-A).
//
// In the four-user example (requirement 0.9; other users (3,0.7), (2,0.7),
// (4,0.8)) the paper plots, for user 3, the (PoS, cost) region in which the
// optimal allocation selects her: p ≥ 2/3 with c ≤ 3, or p ≥ 0.5 with c ≤ 1.
// The boundary is piecewise and nonlinear in (p, c) — the reason an
// execution-contingent reward cannot be made incentive compatible in BOTH
// dimensions with a monotone allocation, motivating the paper's (and our)
// restriction of strategic behaviour to the PoS dimension.
//
// We sweep user 3's cost and binary-search the minimum PoS at which the
// exact allocation selects her, printing the measured boundary next to the
// analytic one.
#include <iostream>
#include <string>

#include "auction/single_task/exact.hpp"
#include "common/table.hpp"

namespace {

using namespace mcs;

bool selected(double cost, double pos) {
  auction::SingleTaskInstance instance;
  instance.requirement_pos = 0.9;
  instance.bids = {{3.0, 0.7}, {2.0, 0.7}, {cost, pos}, {4.0, 0.8}};
  const auto result = auction::single_task::solve_exact(instance);
  return result.allocation.feasible && result.allocation.contains(2);
}

double boundary_pos(double cost) {
  if (!selected(cost, 0.999)) {
    return -1.0;  // never selected at this cost
  }
  double lo = 0.0;
  double hi = 0.999;
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (selected(cost, mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double analytic_boundary(double cost) {
  // Her candidate coalitions: with a 0.7-user (needs p >= 2/3, partner cost
  // 2), with the 0.8-user (needs p >= 0.5, partner cost 4), or alone
  // (needs p >= 0.9). She wins iff her best coalition beats the best
  // without her, cost 5 ({0,1}); ties go to the cost-5 incumbent set only
  // when strictly cheaper options vanish, and at equality either is optimal.
  if (cost < 1.0) {
    return 0.5;  // {2,3}: 4 + c < 5
  }
  if (cost < 3.0) {
    return 2.0 / 3.0;  // {1,2}: 2 + c < 5
  }
  if (cost < 5.0) {
    return 0.9;  // alone: c < 5
  }
  return -1.0;
}

}  // namespace

int main() {
  common::TextTable table("Fig 2: selection boundary of user 3 (cost, min winning PoS)",
                          {"cost c3", "measured boundary p*", "analytic p*"});
  for (double cost = 0.25; cost <= 5.5 + 1e-9; cost += 0.25) {
    const double measured = boundary_pos(cost);
    const double analytic = analytic_boundary(cost);
    table.add_row({common::TextTable::num(cost, 2),
                   measured < 0 ? std::string("never selected")
                                : common::TextTable::num(measured, 4),
                   analytic < 0 ? std::string("never selected")
                                : common::TextTable::num(analytic, 4)});
  }
  table.print(std::cout);
  std::cout << "note: at the exact tie costs c = 1, 3, 5 her coalition and the incumbent\n"
            << " {users 1, 2} cost the same, so the measured boundary may take either side.\n"
            << "(paper: selected iff p >= 2/3 and c <= 3, or p >= 0.5 and c <= 1 — a\n"
            << " piecewise boundary that is NOT a line, so one EC reward cannot align\n"
            << " incentives in both the PoS and cost dimensions)\n";
  return 0;
}
