// Ablation — the FPTAS approximation parameter ε.
//
// DESIGN.md calls out the scaling parameter μ_k = ε·c_k/k as the single-task
// mechanism's accuracy/runtime knob (Theorems 2-3: (1+ε)-approximation in
// O(n^4/ε) time). This bench sweeps ε on a fixed instance pool and reports
// the realized cost ratio to OPT and the winner-determination wall time.
#include <chrono>
#include <iostream>

#include "auction/single_task/exact.hpp"
#include "auction/single_task/fptas.hpp"
#include "bench_util.hpp"

int main() {
  using namespace mcs;
  using Clock = std::chrono::steady_clock;

  const auto workload = bench::make_workload();
  const auto params = bench::single_task_params();
  const auto cells = sim::popular_cells(workload.users());
  common::Rng rng(111);

  std::vector<auction::SingleTaskInstance> instances;
  std::vector<double> optima;
  bench::repeat_feasible_single(workload, cells.front(), 60, params, 15, rng,
                                [&](const sim::SingleTaskScenario& s) {
                                  instances.push_back(s.instance);
                                  optima.push_back(
                                      auction::single_task::solve_exact(s.instance)
                                          .allocation.total_cost);
                                });

  common::TextTable table("Ablation: FPTAS epsilon on 15 instances (n=60)",
                          {"epsilon", "mean cost / OPT", "max cost / OPT", "guarantee (1+eps)",
                           "time per call (ms)"});
  for (double epsilon : {0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    common::RunningStats ratio;
    const auto start = Clock::now();
    for (std::size_t k = 0; k < instances.size(); ++k) {
      const auto allocation = auction::single_task::solve_fptas(instances[k], epsilon);
      ratio.add(allocation.total_cost / optima[k]);
    }
    const auto elapsed = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    table.add_row({bench::fmt(epsilon, 2), bench::fmt(ratio.mean(), 5),
                   bench::fmt(ratio.max(), 5), bench::fmt(1.0 + epsilon, 2),
                   bench::fmt(elapsed / static_cast<double>(instances.size()), 3)});
  }
  table.print(std::cout);
  std::cout << "(realized ratios sit far below the worst-case guarantee; runtime grows as"
            << " epsilon shrinks)\n";
  return 0;
}
