// Shared plumbing for the figure-reproduction binaries: the common workload,
// repetition loops, and small formatting helpers. Header-only; each bench is
// its own executable.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iostream>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"

namespace mcs::bench {

/// The workload every figure bench shares (built once per binary).
inline sim::Workload make_workload() { return sim::Workload(sim::default_bench_workload()); }

/// Paper Table II defaults, plus the multi-task feasibility cap (see
/// EXPERIMENTS.md for why the cap is needed on the synthetic population).
inline sim::ScenarioParams single_task_params() {
  sim::ScenarioParams params;  // T = 0.8, costs ~ N(15, 5): the paper's values
  return params;
}

inline sim::ScenarioParams multi_task_params() {
  sim::ScenarioParams params;
  params.requirement_cap_fraction = 0.9;
  return params;
}

/// Draws feasible single-task scenarios until `builder` succeeded `reps`
/// times (or attempts run out) and feeds each to `consume`.
inline std::size_t repeat_feasible_single(
    const sim::Workload& workload, geo::CellId task_cell, std::size_t num_users,
    const sim::ScenarioParams& params, std::size_t reps, common::Rng& rng,
    const std::function<void(const sim::SingleTaskScenario&)>& consume) {
  std::size_t produced = 0;
  const std::size_t max_attempts = reps * 30;
  for (std::size_t attempt = 0; attempt < max_attempts && produced < reps; ++attempt) {
    const auto scenario =
        sim::build_single_task(workload.users(), task_cell, num_users, params, rng);
    if (!scenario.has_value() || !scenario->instance.is_feasible()) {
      continue;
    }
    consume(*scenario);
    ++produced;
  }
  return produced;
}

/// Same repetition loop for feasible multi-task scenarios.
inline std::size_t repeat_feasible_multi(
    const sim::Workload& workload, std::size_t num_tasks, std::size_t num_users,
    const sim::ScenarioParams& params, std::size_t reps, common::Rng& rng,
    const std::function<void(const sim::MultiTaskScenario&)>& consume) {
  std::size_t produced = 0;
  for (std::size_t attempt = 0; attempt < reps * 3 && produced < reps; ++attempt) {
    const auto scenario =
        sim::build_feasible_multi_task(workload.users(), num_tasks, num_users, params, rng, 30);
    if (!scenario.has_value()) {
      continue;
    }
    consume(*scenario);
    ++produced;
  }
  return produced;
}

/// Prints the table to stdout and, when the environment variable
/// MCS_BENCH_CSV_DIR names a directory, also writes <dir>/<name>.csv so the
/// figure data feeds straight into a plotting pipeline.
inline void emit(const common::TextTable& table, const std::string& name) {
  table.print(std::cout);
  if (const char* dir = std::getenv("MCS_BENCH_CSV_DIR"); dir != nullptr && *dir != '\0') {
    const auto path = std::filesystem::path(dir) / (name + ".csv");
    common::write_csv_file(path, table.to_csv_table());
    std::cout << "[csv written to " << path.string() << "]\n";
  }
}

inline std::string fmt(double value, int precision = 2) {
  return common::TextTable::num(value, precision);
}

inline std::string fmt_stats(const common::RunningStats& stats) {
  if (stats.count() == 0) {
    return "n/a";
  }
  return fmt(stats.mean());
}

}  // namespace mcs::bench
