// Ablation — cost verification (the paper's tractability assumption and
// future-work direction, Sections III-A and VI).
//
// The paper assumes the platform can verify declared costs and therefore
// designs for strategic PoS only. This bench quantifies what an
// audit-and-fine policy actually buys:
//   * the MARGIN channel (pocketing an inflated cost reimbursement) is
//     neutralized exactly at the closed-form penalty threshold φ* = (1-a)/a;
//   * the ALLOCATION channel (a cost misreport that shifts one's own
//     critical PoS across a Fig 2 boundary kink) survives every finite fine,
//     demonstrating that the paper's assumption requires outright cost
//     measurement rather than probabilistic auditing.
#include <iostream>

#include "common/table.hpp"
#include "sim/verification.hpp"

int main() {
  using namespace mcs;

  const auction::MechanismConfig config{.alpha = 10.0, .single_task = {.epsilon = 0.1}};

  // The stable-boundary instance from the test suite: user 1's critical PoS
  // is 0.5 for declared costs in (2, 3) and 2/3 in (3, 6).
  auction::SingleTaskInstance instance;
  instance.requirement_pos = 0.9;
  instance.bids = {{3.0, 0.7}, {2.8, 0.7}, {4.0, 0.5}, {6.0, 0.8}};

  std::cout << "audit probability a = 0.5  =>  margin deterrence threshold phi* = "
            << sim::deterrence_threshold(0.5) << "\n\n";

  common::TextTable margin("margin channel: user 1 (true cost 2.8) overstates to 2.95",
                           {"penalty phi", "truthful utility", "lie utility", "lie pays?"});
  for (double phi : {0.0, 0.5, 1.0, 1.5, 2.0, 4.0}) {
    const sim::CostAuditModel audit{.audit_prob = 0.5, .penalty_factor = phi};
    const auto truthful = sim::sweep_declared_cost(instance, 1, {2.8}, config, audit);
    const auto lie = sim::sweep_declared_cost(instance, 1, {2.95}, config, audit);
    margin.add_row({common::TextTable::num(phi, 1),
                    common::TextTable::num(truthful[0].expected_utility, 4),
                    common::TextTable::num(lie[0].expected_utility, 4),
                    lie[0].expected_utility > truthful[0].expected_utility + 1e-9 ? "YES"
                                                                                  : "no"});
  }
  margin.print(std::cout);
  std::cout << "(the margin stops paying exactly at phi* = 1)\n\n";

  // Allocation channel: true cost just above the kink at 3.
  auto kink = instance;
  kink.bids[1].cost = 3.1;
  common::TextTable allocation(
      "allocation channel: user 1 (true cost 3.1) understates to 2.9 across the kink",
      {"penalty phi", "truthful utility", "lie utility", "lie pays?"});
  for (double phi : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    const sim::CostAuditModel audit{.audit_prob = 0.5, .penalty_factor = phi};
    const auto truthful = sim::sweep_declared_cost(kink, 1, {3.1}, config, audit);
    const auto lie = sim::sweep_declared_cost(kink, 1, {2.9}, config, audit);
    allocation.add_row({common::TextTable::num(phi, 1),
                        common::TextTable::num(truthful[0].expected_utility, 4),
                        common::TextTable::num(lie[0].expected_utility, 4),
                        lie[0].expected_utility > truthful[0].expected_utility + 1e-9 ? "YES"
                                                                                      : "no"});
  }
  allocation.print(std::cout);
  std::cout << "(the critical-PoS jump across the Fig 2 kink is a constant gain while the\n"
            << " fine scales with the tiny misreport — moving the true cost closer to the\n"
            << " kink defeats ANY finite penalty. Outright cost measurement, as the paper\n"
            << " assumes, is required.)\n";
  return 0;
}
