// Load generator for the geo-sharded campaign service (ISSUE-6): drives
// sustained submit/wait traffic through service::CampaignService at
// n >= 100k users per round and records per-round p50/p99 compute latency
// and rounds/sec for a sweep of shard counts into
// bench/results/sharded_scaling.json.
//
// The workload is residue-pure by construction — task j sits in cell j and
// every user's task set stays inside ONE residue class mod the largest shard
// count — so every swept shard count divides the class modulus, no user ever
// straddles shards, and the shard.hpp determinism contract applies: every
// sharded run must produce outcomes bit-identical to the flat (1-shard) run,
// which this binary asserts round by round. The measured speedup is therefore
// an honest same-answer comparison, and on a single-core host it is purely
// algorithmic: sharding shrinks every per-winner without-i greedy solve from
// n users to ~n/S, which dominates the reward phase (DESIGN.md §11).
//
// Usage: service_load [--users N] [--tasks T] [--rounds R]
//                     [--shards S1,S2,...] [--chunk C] [--out FILE]
// The JSON record also goes to stdout and, when MCS_BENCH_JSON names a file,
// to that file (the bench/results convention).
//
// --chunk C streams the campaign instead of materializing it: rounds are
// generated, submitted, and drained C at a time, and only a per-round digest
// (winner ids + total cost) is retained for the cross-shard bit-identity
// check — peak memory is one chunk of rounds regardless of --rounds. Round
// generation is seeded per round index, so chunked and materialized runs
// drive byte-identical traffic. --chunk 0 (default) keeps the one-big-batch
// behaviour.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "service/service.hpp"

namespace {

using namespace mcs;

struct Options {
  std::size_t users = 100000;
  std::size_t tasks = 128;
  std::size_t rounds = 6;
  std::vector<std::size_t> shard_counts = {1, 4, 16};
  std::size_t chunk = 0;  ///< rounds in flight at once; 0 = all of them
  std::string out;
};

std::vector<std::size_t> parse_list(const std::string& text) {
  std::vector<std::size_t> values;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    values.push_back(static_cast<std::size_t>(std::stoull(token)));
  }
  return values;
}

Options parse_options(int argc, char** argv) {
  Options options;
  for (int k = 1; k + 1 < argc; k += 2) {
    const std::string flag = argv[k];
    const std::string value = argv[k + 1];
    if (flag == "--users") {
      options.users = static_cast<std::size_t>(std::stoull(value));
    } else if (flag == "--tasks") {
      options.tasks = static_cast<std::size_t>(std::stoull(value));
    } else if (flag == "--rounds") {
      options.rounds = static_cast<std::size_t>(std::stoull(value));
    } else if (flag == "--shards") {
      options.shard_counts = parse_list(value);
    } else if (flag == "--chunk") {
      options.chunk = static_cast<std::size_t>(std::stoull(value));
    } else if (flag == "--out") {
      options.out = value;
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      std::exit(2);
    }
  }
  return options;
}

/// One campaign round, residue-pure mod `groups`: task j in cell j, each
/// user's tasks all ≡ her group (mod groups). Requirements and PoS are tuned
/// so a round stays feasible with a winner set small enough that the reward
/// phase — winners × one without-i greedy each — dominates, which is the
/// regime sharding accelerates.
service::GeoRound make_round(const Options& options, std::size_t groups, std::uint64_t seed) {
  service::GeoRound round;
  round.instance.requirement_pos.assign(options.tasks, 0.35);
  round.task_cells.reserve(options.tasks);
  for (std::size_t j = 0; j < options.tasks; ++j) {
    round.task_cells.push_back(static_cast<geo::CellId>(j));
  }
  common::Rng rng(seed);
  round.instance.users.reserve(options.users);
  for (std::size_t i = 0; i < options.users; ++i) {
    auction::MultiTaskUserBid bid;
    bid.cost = rng.uniform(5.0, 25.0);
    const auto group = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(groups) - 1));
    for (std::size_t j = group; j < options.tasks; j += groups) {
      if (rng.uniform(0.0, 1.0) < 0.5) {
        bid.tasks.push_back(static_cast<auction::TaskIndex>(j));
        bid.pos.push_back(rng.uniform(0.1, 0.5));
      }
    }
    if (bid.tasks.empty()) {
      bid.tasks.push_back(static_cast<auction::TaskIndex>(group));
      bid.pos.push_back(rng.uniform(0.1, 0.5));
    }
    round.instance.users.push_back(std::move(bid));
  }
  return round;
}

double percentile(std::vector<double> sorted_values, double p) {
  std::sort(sorted_values.begin(), sorted_values.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_values.size() - 1) + 0.5);
  return sorted_values[std::min(rank, sorted_values.size() - 1)];
}

struct SweepResult {
  std::size_t shards = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double rounds_per_sec = 0.0;
  std::size_t winners = 0;  ///< round 0's winner count (identical across sweeps)
};

/// What the cross-shard bit-identity check needs from one round — keeping
/// the digest instead of the full RoundOutcome is what lets the chunked mode
/// bound memory by the chunk size.
struct RoundDigest {
  std::vector<auction::UserId> winners;
  double total_cost = 0.0;
};

int run(const Options& options) {
  const std::size_t groups =
      *std::max_element(options.shard_counts.begin(), options.shard_counts.end());
  const std::size_t chunk =
      options.chunk == 0 ? options.rounds : std::min(options.chunk, options.rounds);
  std::cerr << "driving " << options.rounds << " rounds of " << options.users << " users x "
            << options.tasks << " tasks (residue-pure mod " << groups << ", " << chunk
            << " in flight)\n";

  std::vector<SweepResult> sweeps;
  std::vector<RoundDigest> baseline;  // the flat (first) sweep's digests
  for (const std::size_t shard_count : options.shard_counts) {
    service::ServiceConfig config;
    config.shards = service::ShardMap(shard_count);
    config.queue_capacity = chunk;  // queue a full chunk: latency is compute-only
    service::CampaignService campaign_service(config);

    std::cerr << "shards=" << shard_count << ": ";
    std::vector<double> latencies;
    std::vector<RoundDigest> digests;
    std::size_t round0_winners = 0;
    double elapsed_seconds = 0.0;
    std::vector<service::GeoRound> rounds;
    rounds.reserve(chunk);
    for (std::size_t begin = 0; begin < options.rounds; begin += chunk) {
      const std::size_t end = std::min(begin + chunk, options.rounds);
      // Per-round seeds keep chunked and materialized traffic identical.
      rounds.clear();
      for (std::size_t r = begin; r < end; ++r) {
        rounds.push_back(make_round(options, groups, 1000 + r));
      }
      const auto start = std::chrono::steady_clock::now();
      for (const auto& round : rounds) {
        campaign_service.submit_round(round);
      }
      std::vector<service::RoundOutcome> outcomes;
      for (std::size_t r = begin; r < end; ++r) {
        outcomes.push_back(campaign_service.wait_outcome(r));
      }
      const std::chrono::duration<double> span = std::chrono::steady_clock::now() - start;
      elapsed_seconds += span.count();

      for (const auto& outcome : outcomes) {
        if (!outcome.ok()) {
          std::cerr << "round " << outcome.round << " failed: " << outcome.error << "\n";
          return 1;
        }
        if (outcome.straddlers != 0) {
          std::cerr << "round " << outcome.round << " had " << outcome.straddlers
                    << " straddlers; the workload must be residue-pure\n";
          return 1;
        }
        latencies.push_back(outcome.latency_seconds);
        digests.push_back({outcome.outcome.allocation.winners,
                           outcome.outcome.allocation.total_cost});
        if (outcome.round == 0) {
          round0_winners = outcome.outcome.allocation.winners.size();
        }
      }
    }
    // The determinism contract makes the sweeps comparable: every shard
    // count must produce the flat run's outcome bit for bit.
    if (baseline.empty()) {
      baseline = std::move(digests);
    } else {
      for (std::size_t r = 0; r < digests.size(); ++r) {
        if (baseline[r].winners != digests[r].winners ||
            baseline[r].total_cost != digests[r].total_cost) {
          std::cerr << "round " << r << " diverged from the flat run at shards="
                    << shard_count << "\n";
          return 1;
        }
      }
    }

    SweepResult sweep;
    sweep.shards = shard_count;
    sweep.p50_ms = percentile(latencies, 0.50) * 1e3;
    sweep.p99_ms = percentile(latencies, 0.99) * 1e3;
    sweep.rounds_per_sec = static_cast<double>(options.rounds) / elapsed_seconds;
    sweep.winners = round0_winners;
    sweeps.push_back(sweep);
    std::cerr << "p50 " << sweep.p50_ms << " ms, p99 " << sweep.p99_ms << " ms, "
              << sweep.rounds_per_sec << " rounds/sec\n";
  }

  const std::size_t cores = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::ostringstream json;
  json << "{\"bench\":\"sharded_service_scaling\",\"users\":" << options.users
       << ",\"tasks\":" << options.tasks << ",\"rounds\":" << options.rounds
       << ",\"available_cores\":" << cores << ",\"results\":[";
  for (std::size_t k = 0; k < sweeps.size(); ++k) {
    const auto& sweep = sweeps[k];
    json << (k > 0 ? "," : "") << "{\"shards\":" << sweep.shards
         << ",\"p50_latency_ms\":" << sweep.p50_ms << ",\"p99_latency_ms\":" << sweep.p99_ms
         << ",\"rounds_per_sec\":" << sweep.rounds_per_sec
         << ",\"round0_winners\":" << sweep.winners << ",\"straddlers\":0}";
  }
  json << "],\"outcomes\":\"bit-identical across all shard counts\"";
  if (sweeps.size() > 1 && sweeps.front().shards == 1 && sweeps.front().p50_ms > 0.0) {
    json << ",\"speedup_p50_" << sweeps.back().shards
         << "_vs_1\":" << sweeps.front().p50_ms / sweeps.back().p50_ms;
  }
  if (cores == 1) {
    json << ",\"speedup_note\":\"single-core host: the gain is algorithmic (per-winner "
            "without-i solves shrink from n to ~n/S users), not thread parallelism\"";
  }
  json << "}";

  std::cout << json.str() << "\n";
  for (const std::string& path : {options.out, [] {
         const char* env = std::getenv("MCS_BENCH_JSON");
         return std::string(env != nullptr ? env : "");
       }()}) {
    if (path.empty()) {
      continue;
    }
    std::ofstream out(path, std::ios::app);
    out << json.str() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(parse_options(argc, argv)); }
