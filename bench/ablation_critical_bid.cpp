// Ablation — the multi-task critical-bid rule (reproduction finding #1,
// EXPERIMENTS.md).
//
// Compares the paper-literal Algorithm 5 critical bid (minimum over the
// without-i run's per-iteration candidates) against this library's default
// binary-search rule (the actual win threshold, Myerson-style) on random
// multi-task instances:
//   * per-winner critical contributions under both rules (paper ≤ search,
//     since the iteration minimum understates the threshold);
//   * the platform's expected payout under each (understated critical bids
//     inflate critical PoS... the sign is instance-dependent; measured here);
//   * the count of instances where the paper rule admits a profitable
//     misreport while the search rule does not.
#include <iostream>

#include "auction/multi_task/greedy.hpp"
#include "auction/multi_task/reward.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/budget.hpp"

namespace {

using namespace mcs;

auction::MultiTaskInstance random_instance(std::uint64_t seed) {
  common::Rng rng(seed);
  auction::MultiTaskInstance instance;
  const auto t = static_cast<std::size_t>(rng.uniform_int(3, 5));
  instance.requirement_pos.assign(t, 0.5);
  const auto n = static_cast<std::size_t>(rng.uniform_int(8, 14));
  for (std::size_t i = 0; i < n; ++i) {
    auction::MultiTaskUserBid bid;
    bid.cost = rng.uniform(1.0, 10.0);
    for (std::size_t j = 0; j < t; ++j) {
      if (rng.bernoulli(0.6)) {
        bid.tasks.push_back(static_cast<auction::TaskIndex>(j));
        bid.pos.push_back(rng.uniform(0.05, 0.5));
      }
    }
    if (bid.tasks.empty()) {
      bid.tasks.push_back(0);
      bid.pos.push_back(rng.uniform(0.05, 0.5));
    }
    instance.users.push_back(std::move(bid));
  }
  return instance;
}

/// Best utility gain any user can realize by scaling her declared
/// contribution, under the given reward rule.
double best_gain(const auction::MultiTaskInstance& instance,
                 const auction::multi_task::RewardOptions& options) {
  const auto truthful = auction::multi_task::solve_greedy(instance);
  if (!truthful.allocation.feasible) {
    return 0.0;
  }
  double best = 0.0;
  for (auction::UserId user = 0; user < static_cast<auction::UserId>(instance.num_users());
       ++user) {
    const double true_any =
        instance.users[static_cast<std::size_t>(user)].any_success_probability();
    double base = 0.0;
    if (truthful.allocation.contains(user)) {
      base = auction::multi_task::compute_reward(instance, user, options)
                 .reward.expected_utility(true_any);
    }
    const double total = instance.users[static_cast<std::size_t>(user)].total_contribution();
    for (double scale : {0.5, 2.0, 5.0}) {
      const auto lied = instance.with_declared_total_contribution(user, total * scale);
      const auto allocation = auction::multi_task::solve_greedy(lied);
      double utility = 0.0;
      if (allocation.allocation.feasible && allocation.allocation.contains(user)) {
        utility = auction::multi_task::compute_reward(lied, user, options)
                      .reward.expected_utility(true_any);
      }
      best = std::max(best, utility - base);
    }
  }
  return best;
}

}  // namespace

int main() {
  constexpr int kInstances = 40;
  const auction::multi_task::RewardOptions paper_rule{
      .alpha = 10.0, .rule = auction::multi_task::CriticalBidRule::kPaperIterationMin};
  const auction::multi_task::RewardOptions search_rule{
      .alpha = 10.0, .rule = auction::multi_task::CriticalBidRule::kBinarySearch};

  common::RunningStats critical_gap;  // search q̄ minus paper q̄, per winner
  common::RunningStats payout_paper;
  common::RunningStats payout_search;
  int manipulable_paper = 0;
  int manipulable_search = 0;
  int feasible = 0;

  for (int k = 0; k < kInstances; ++k) {
    const auto instance = random_instance(1000 + static_cast<std::uint64_t>(k));
    const auto result = auction::multi_task::solve_greedy(instance);
    if (!result.allocation.feasible) {
      continue;
    }
    ++feasible;
    auction::MechanismOutcome outcome_paper;
    auction::MechanismOutcome outcome_search;
    outcome_paper.allocation = result.allocation;
    outcome_search.allocation = result.allocation;
    for (auction::UserId winner : result.allocation.winners) {
      const auto paper = auction::multi_task::compute_reward(instance, winner, paper_rule);
      const auto search = auction::multi_task::compute_reward(instance, winner, search_rule);
      critical_gap.add(search.critical_contribution - paper.critical_contribution);
      outcome_paper.rewards.push_back(paper);
      outcome_search.rewards.push_back(search);
    }
    payout_paper.add(mcs::sim::estimate_payout(instance, outcome_paper).expected_payout(10.0));
    payout_search.add(
        mcs::sim::estimate_payout(instance, outcome_search).expected_payout(10.0));
    manipulable_paper += best_gain(instance, paper_rule) > 1e-6 ? 1 : 0;
    manipulable_search += best_gain(instance, search_rule) > 1e-6 ? 1 : 0;
  }

  common::TextTable table("Ablation: Algorithm 5 critical bid vs binary-search rule",
                          {"metric", "paper rule", "binary search"});
  table.add_row({"manipulable instances (of " + std::to_string(feasible) + ")",
                 std::to_string(manipulable_paper), std::to_string(manipulable_search)});
  table.add_row({"mean expected payout (alpha=10)",
                 common::TextTable::num(payout_paper.mean(), 2),
                 common::TextTable::num(payout_search.mean(), 2)});
  table.add_row({"critical-bid gap q̄(search) - q̄(paper)",
                 "mean " + common::TextTable::num(critical_gap.mean(), 4),
                 "max " + common::TextTable::num(critical_gap.max(), 4)});
  table.print(std::cout);
  std::cout << "(the paper rule's understated critical bids leave " << manipulable_paper
            << " of " << feasible << " instances open to profitable PoS inflation; the\n"
            << " binary-search rule closes every one while changing payouts only slightly)\n";
  return 0;
}
