// Fig 5(c) — Multi-task social cost vs number of tasks (Table III setting 2:
// 30 users, tasks 10..50, cost mean 15, T = 0.8).
//
// Paper: social cost increases with the number of tasks (more users must be
// recruited), with greedy staying close to OPT throughout.
#include <iostream>

#include "auction/multi_task/exact.hpp"
#include "auction/multi_task/greedy.hpp"
#include "bench_util.hpp"

int main() {
  using namespace mcs;

  const auto workload = bench::make_workload();
  const auto params = bench::multi_task_params();
  constexpr std::size_t kUsers = 30;
  constexpr std::size_t kReps = 10;

  common::TextTable table("Fig 5(c): multi-task social cost vs #tasks (n=30)",
                          {"#tasks", "OPT", "Greedy (ours)", "ratio", "opt proven", "instances"});
  common::Rng rng(503);
  for (std::size_t t = 10; t <= 50; t += 10) {
    common::RunningStats opt;
    common::RunningStats greedy;
    std::size_t proven = 0;
    std::size_t runs = 0;
    const auto produced = bench::repeat_feasible_multi(
        workload, t, kUsers, params, kReps, rng, [&](const sim::MultiTaskScenario& scenario) {
          const auction::multi_task::ExactOptions options{.node_budget = 4'000'000};
          const auto exact = auction::multi_task::solve_exact(scenario.instance, options);
          const auto ours = auction::multi_task::solve_greedy(scenario.instance);
          opt.add(exact.allocation.total_cost);
          greedy.add(ours.allocation.total_cost);
          proven += exact.proven_optimal ? 1 : 0;
          ++runs;
        });
    const std::string ratio =
        (opt.count() > 0 && opt.mean() > 0.0) ? bench::fmt(greedy.mean() / opt.mean(), 3) : "n/a";
    table.add_row({std::to_string(t), bench::fmt_stats(opt), bench::fmt_stats(greedy), ratio,
                   std::to_string(proven) + "/" + std::to_string(runs),
                   std::to_string(produced)});
  }
  bench::emit(table, "fig5c_multi_task_tasks");
  std::cout << "(paper: social cost increases with #tasks; greedy ≈ OPT)\n";
  return 0;
}
