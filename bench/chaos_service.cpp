// Chaos harness for the campaign service (ISSUE-7): drives 100k-user rounds
// through service::CampaignService under seeded fault schedules and records
// survival rates and recovery latency into bench/results/chaos_service.json.
//
// Three sweeps, all replayable bit-for-bit from their seeds:
//
//   1. Shard-fault ladder — the same kShardRun failure probability under
//      {kPoisonRound/no-retry, kPoisonRound/retry=3, kDegradedMerge/retry=3},
//      same injector seed throughout, so the scenario deltas isolate each
//      recovery rung: retries turn transiently-dead rounds back into clean
//      ones, and degraded merge converts the remaining poisoned rounds into
//      partial coverage. Survival = rounds with a usable outcome (ok or
//      degraded); coverage = mean covered-task fraction with failed rounds
//      counting 0.
//
//   2. Watchdog — one injected stall far past the watchdog budget: the
//      stalled round's recovery latency (detect + abandon + publish) is
//      bounded by watchdog_seconds while the rounds behind it keep flowing.
//
//   3. Correlated cell failures (EXPERIMENTS.md) — sim::draw_cell_failure
//      picks a weather-struck cell per round; the owning shard is killed via
//      a fail_at schedule (cell → shard is ShardMap's modulo, so a weather
//      event IS the per-shard blast-radius scenario). Identical event
//      schedules under both merge policies compare coverage head to head.
//
// Usage: chaos_service [--users N] [--tasks T] [--rounds R] [--shards S]
//                      [--fail-prob P] [--seed SEED] [--out FILE]
// The JSON record also goes to stdout and, when MCS_BENCH_JSON names a file,
// to that file (the bench/results convention).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "service/service.hpp"
#include "sim/failures.hpp"

namespace {

using namespace mcs;

struct Options {
  std::size_t users = 100000;
  std::size_t tasks = 128;
  std::size_t rounds = 10;
  std::size_t shards = 8;
  double fail_prob = 0.08;
  std::uint64_t seed = 20260808;
  std::string out;
};

Options parse_options(int argc, char** argv) {
  Options options;
  for (int k = 1; k + 1 < argc; k += 2) {
    const std::string flag = argv[k];
    const std::string value = argv[k + 1];
    if (flag == "--users") {
      options.users = static_cast<std::size_t>(std::stoull(value));
    } else if (flag == "--tasks") {
      options.tasks = static_cast<std::size_t>(std::stoull(value));
    } else if (flag == "--rounds") {
      options.rounds = static_cast<std::size_t>(std::stoull(value));
    } else if (flag == "--shards") {
      options.shards = static_cast<std::size_t>(std::stoull(value));
    } else if (flag == "--fail-prob") {
      options.fail_prob = std::stod(value);
    } else if (flag == "--seed") {
      options.seed = std::stoull(value);
    } else if (flag == "--out") {
      options.out = value;
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      std::exit(2);
    }
  }
  return options;
}

/// Residue-pure round mod `shards` (task j in cell j, every user's task set
/// inside one residue class), so no user straddles shards and every shard
/// owns tasks — the kShardRun hit counter maps 1:1 onto shard ids when
/// nothing fails. Same workload shape as bench/service_load.
service::GeoRound make_round(std::size_t users, std::size_t tasks, std::size_t shards,
                             std::uint64_t seed) {
  service::GeoRound round;
  round.instance.requirement_pos.assign(tasks, 0.35);
  round.task_cells.reserve(tasks);
  for (std::size_t j = 0; j < tasks; ++j) {
    round.task_cells.push_back(static_cast<geo::CellId>(j));
  }
  common::Rng rng(seed);
  round.instance.users.reserve(users);
  for (std::size_t i = 0; i < users; ++i) {
    auction::MultiTaskUserBid bid;
    bid.cost = rng.uniform(5.0, 25.0);
    const auto group =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(shards) - 1));
    for (std::size_t j = group; j < tasks; j += shards) {
      if (rng.uniform(0.0, 1.0) < 0.5) {
        bid.tasks.push_back(static_cast<auction::TaskIndex>(j));
        bid.pos.push_back(rng.uniform(0.1, 0.5));
      }
    }
    if (bid.tasks.empty()) {
      bid.tasks.push_back(static_cast<auction::TaskIndex>(group));
      bid.pos.push_back(rng.uniform(0.1, 0.5));
    }
    round.instance.users.push_back(std::move(bid));
  }
  return round;
}

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  const auto rank =
      static_cast<std::size_t>(p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

/// Covered-task fraction of one settled round: failed/timed-out rounds cover
/// nothing, usable rounds cover everything minus their uncovered list.
double coverage_of(const service::RoundOutcome& outcome, std::size_t tasks) {
  if (!outcome.ok()) {
    return 0.0;
  }
  return static_cast<double>(tasks - outcome.outcome.uncovered_tasks.size()) /
         static_cast<double>(tasks);
}

struct ScenarioResult {
  std::string name;
  std::size_t rounds_ok = 0;
  std::size_t rounds_degraded = 0;
  std::size_t rounds_failed = 0;
  std::size_t shard_retries = 0;
  double survival_rate = 0.0;
  double mean_coverage = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

ScenarioResult run_scenario(const std::string& name, const Options& options,
                            const std::vector<service::GeoRound>& rounds,
                            service::MergePolicy policy, std::size_t max_attempts) {
  service::ServiceConfig config;
  config.shards = service::ShardMap(options.shards);
  config.queue_capacity = options.rounds;
  config.merge_policy = policy;
  config.retry.max_attempts = max_attempts;
  config.retry.initial_backoff_seconds = 0.001;
  auto injector = std::make_shared<common::FaultInjector>(options.seed);
  common::FailPointSpec shard_faults;
  shard_faults.fail_prob = options.fail_prob;
  injector->configure(common::FailPoint::kShardRun, shard_faults);
  config.fault_injector = injector;

  service::CampaignService campaign_service(config);
  for (const auto& round : rounds) {
    campaign_service.submit_round(round);
  }
  ScenarioResult result;
  result.name = name;
  std::vector<double> latencies;
  double coverage_sum = 0.0;
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    const auto outcome = campaign_service.wait_outcome(r);
    switch (outcome.status) {
      case auction::AuctionStatus::kOk:
        ++result.rounds_ok;
        break;
      case auction::AuctionStatus::kDegraded:
        ++result.rounds_degraded;
        break;
      default:
        ++result.rounds_failed;
        break;
    }
    coverage_sum += coverage_of(outcome, options.tasks);
    latencies.push_back(outcome.latency_seconds);
  }
  result.shard_retries = static_cast<std::size_t>(campaign_service.stats().shard_retries);
  result.survival_rate =
      static_cast<double>(result.rounds_ok + result.rounds_degraded) /
      static_cast<double>(rounds.size());
  result.mean_coverage = coverage_sum / static_cast<double>(rounds.size());
  result.p50_latency_ms = percentile(latencies, 0.50) * 1e3;
  result.p99_latency_ms = percentile(latencies, 0.99) * 1e3;
  std::cerr << name << ": survival " << result.survival_rate << ", coverage "
            << result.mean_coverage << ", retries " << result.shard_retries << ", p50 "
            << result.p50_latency_ms << " ms\n";
  return result;
}

struct WatchdogResult {
  double watchdog_seconds = 0.0;
  double stalled_recovery_ms = 0.0;  ///< latency of the abandoned round
  double healthy_p50_ms = 0.0;       ///< the rounds behind it keep flowing
  std::size_t watchdog_fires = 0;
};

WatchdogResult run_watchdog(const Options& options,
                            const std::vector<service::GeoRound>& rounds) {
  service::ServiceConfig config;
  config.shards = service::ShardMap(options.shards);
  config.queue_capacity = options.rounds;
  config.watchdog_seconds = 0.5;
  auto injector = std::make_shared<common::FaultInjector>(options.seed + 1);
  common::FailPointSpec stall;
  stall.stall_at = {{1, 0}};  // round 1's first shard wedges...
  stall.stall_seconds = 2.0;  // ...for 4x the watchdog budget
  injector->configure(common::FailPoint::kShardRun, stall);
  config.fault_injector = injector;

  WatchdogResult result;
  result.watchdog_seconds = config.watchdog_seconds;
  service::CampaignService campaign_service(config);
  for (const auto& round : rounds) {
    campaign_service.submit_round(round);
  }
  std::vector<double> healthy;
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    const auto outcome = campaign_service.wait_outcome(r);
    if (r == 1) {
      if (outcome.status != auction::AuctionStatus::kTimedOut) {
        std::cerr << "expected the stalled round to time out, got " << outcome.error << "\n";
        std::exit(1);
      }
      result.stalled_recovery_ms = outcome.latency_seconds * 1e3;
    } else {
      healthy.push_back(outcome.latency_seconds);
    }
  }
  result.healthy_p50_ms = percentile(healthy, 0.50) * 1e3;
  result.watchdog_fires = static_cast<std::size_t>(campaign_service.stats().watchdog_fires);
  std::cerr << "watchdog: stalled round recovered in " << result.stalled_recovery_ms
            << " ms (budget " << result.watchdog_seconds * 1e3 << " ms), healthy p50 "
            << result.healthy_p50_ms << " ms\n";
  return result;
}

struct CellFailureResult {
  std::size_t users = 0;
  std::size_t tasks = 0;
  std::size_t rounds = 0;
  double event_prob = 0.0;
  std::size_t events = 0;
  double mean_coverage_poison = 0.0;
  double mean_coverage_degraded = 0.0;
  double survival_poison = 0.0;
  double survival_degraded = 0.0;
};

/// The EXPERIMENTS.md comparison: per-round weather events (drawn once,
/// replayed under both policies) kill the shard owning the struck cell.
CellFailureResult run_cell_failures(const Options& options) {
  CellFailureResult result;
  result.users = std::max<std::size_t>(options.users / 5, 1000);
  result.tasks = 64;
  result.rounds = 20;
  result.event_prob = 0.35;

  const service::ShardMap shard_map(options.shards);
  sim::CellFailureModel model;
  model.event_prob = result.event_prob;
  for (std::size_t j = 0; j < result.tasks; ++j) {
    model.cells.push_back(static_cast<geo::CellId>(j));
  }
  // One event schedule for both policies: the drawn cell's owning shard dies
  // on its (only) attempt that round — retries off, so hit == shard id.
  common::Rng event_rng(options.seed + 2);
  common::FailPointSpec shard_faults;
  std::size_t events = 0;
  for (std::size_t r = 0; r < result.rounds; ++r) {
    const auto event = sim::draw_cell_failure(model, event_rng);
    if (event.occurred) {
      ++events;
      shard_faults.fail_at.push_back(
          {static_cast<std::uint64_t>(r),
           static_cast<std::uint64_t>(shard_map.shard_of(event.cell))});
    }
  }
  result.events = events;

  std::vector<service::GeoRound> rounds;
  rounds.reserve(result.rounds);
  for (std::size_t r = 0; r < result.rounds; ++r) {
    rounds.push_back(
        make_round(result.users, result.tasks, options.shards, options.seed + 100 + r));
  }

  for (const auto policy :
       {service::MergePolicy::kPoisonRound, service::MergePolicy::kDegradedMerge}) {
    service::ServiceConfig config;
    config.shards = shard_map;
    config.queue_capacity = result.rounds;
    config.merge_policy = policy;
    auto injector = std::make_shared<common::FaultInjector>(options.seed + 3);
    injector->configure(common::FailPoint::kShardRun, shard_faults);
    config.fault_injector = injector;
    service::CampaignService campaign_service(config);
    for (const auto& round : rounds) {
      campaign_service.submit_round(round);
    }
    double coverage_sum = 0.0;
    std::size_t usable = 0;
    for (std::size_t r = 0; r < result.rounds; ++r) {
      const auto outcome = campaign_service.wait_outcome(r);
      coverage_sum += coverage_of(outcome, result.tasks);
      usable += outcome.ok() ? 1 : 0;
    }
    const double coverage = coverage_sum / static_cast<double>(result.rounds);
    const double survival = static_cast<double>(usable) / static_cast<double>(result.rounds);
    if (policy == service::MergePolicy::kPoisonRound) {
      result.mean_coverage_poison = coverage;
      result.survival_poison = survival;
    } else {
      result.mean_coverage_degraded = coverage;
      result.survival_degraded = survival;
    }
  }
  std::cerr << "cell failures: " << events << "/" << result.rounds
            << " rounds struck; coverage poison " << result.mean_coverage_poison
            << " vs degraded " << result.mean_coverage_degraded << "\n";
  return result;
}

int run(const Options& options) {
  std::cerr << "generating " << options.rounds << " rounds of " << options.users << " users x "
            << options.tasks << " tasks over " << options.shards << " shards\n";
  std::vector<service::GeoRound> rounds;
  rounds.reserve(options.rounds);
  for (std::size_t r = 0; r < options.rounds; ++r) {
    rounds.push_back(make_round(options.users, options.tasks, options.shards, 1000 + r));
  }

  std::vector<ScenarioResult> scenarios;
  scenarios.push_back(run_scenario("poison_no_retry", options, rounds,
                                   service::MergePolicy::kPoisonRound, 1));
  scenarios.push_back(run_scenario("poison_retry3", options, rounds,
                                   service::MergePolicy::kPoisonRound, 3));
  scenarios.push_back(run_scenario("degraded_retry3", options, rounds,
                                   service::MergePolicy::kDegradedMerge, 3));
  const auto watchdog = run_watchdog(options, rounds);
  const auto cell_failures = run_cell_failures(options);

  const std::size_t cores = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::ostringstream json;
  json << "{\"bench\":\"chaos_service\",\"users\":" << options.users
       << ",\"tasks\":" << options.tasks << ",\"rounds\":" << options.rounds
       << ",\"shards\":" << options.shards << ",\"shard_fail_prob\":" << options.fail_prob
       << ",\"injector_seed\":" << options.seed << ",\"available_cores\":" << cores
       << ",\"scenarios\":[";
  for (std::size_t k = 0; k < scenarios.size(); ++k) {
    const auto& s = scenarios[k];
    json << (k > 0 ? "," : "") << "{\"name\":\"" << s.name << "\",\"rounds_ok\":" << s.rounds_ok
         << ",\"rounds_degraded\":" << s.rounds_degraded
         << ",\"rounds_failed\":" << s.rounds_failed << ",\"shard_retries\":" << s.shard_retries
         << ",\"survival_rate\":" << s.survival_rate
         << ",\"mean_coverage\":" << s.mean_coverage
         << ",\"p50_latency_ms\":" << s.p50_latency_ms
         << ",\"p99_latency_ms\":" << s.p99_latency_ms << "}";
  }
  json << "],\"watchdog\":{\"budget_ms\":" << watchdog.watchdog_seconds * 1e3
       << ",\"stalled_recovery_ms\":" << watchdog.stalled_recovery_ms
       << ",\"healthy_p50_ms\":" << watchdog.healthy_p50_ms
       << ",\"fires\":" << watchdog.watchdog_fires << "}";
  json << ",\"cell_failure\":{\"users\":" << cell_failures.users
       << ",\"tasks\":" << cell_failures.tasks << ",\"rounds\":" << cell_failures.rounds
       << ",\"event_prob\":" << cell_failures.event_prob
       << ",\"rounds_struck\":" << cell_failures.events
       << ",\"survival_poison\":" << cell_failures.survival_poison
       << ",\"survival_degraded\":" << cell_failures.survival_degraded
       << ",\"mean_coverage_poison\":" << cell_failures.mean_coverage_poison
       << ",\"mean_coverage_degraded\":" << cell_failures.mean_coverage_degraded << "}";
  json << ",\"replay\":\"same seed => same per-round statuses, bit for bit\"}";

  std::cout << json.str() << "\n";
  for (const std::string& path : {options.out, [] {
         const char* env = std::getenv("MCS_BENCH_JSON");
         return std::string(env != nullptr ? env : "");
       }()}) {
    if (path.empty()) {
      continue;
    }
    std::ofstream out(path, std::ios::app);
    out << json.str() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(parse_options(argc, argv)); }
