// Fig 4 — PDF of Predicted PoS.
//
// Paper: the empirical distribution of the users' predicted PoS values is
// concentrated in [0, 0.2] ("due to the scarcity of the location transition,
// most of the PoS's are very low"), motivating redundant task assignment.
// We print the histogram of every PoS in every derived user's task set.
#include <iostream>

#include "common/stats.hpp"
#include "bench_util.hpp"

int main() {
  using namespace mcs;

  const sim::Workload workload(sim::default_bench_workload());
  const auto values = mobility::all_pos_values(workload.users());

  common::Histogram histogram(0.0, 1.0, 20);
  histogram.add_all(values);

  common::TextTable table("Fig 4: PDF of predicted PoS",
                          {"PoS bin", "mass", "density", "count"});
  double mass_below_02 = 0.0;
  for (std::size_t bin = 0; bin < histogram.bins(); ++bin) {
    if (histogram.bin_hi(bin) <= 0.2 + 1e-12) {
      mass_below_02 += histogram.mass(bin);
    }
    if (histogram.count(bin) == 0) {
      continue;
    }
    table.add_row({"[" + common::TextTable::num(histogram.bin_lo(bin), 2) + ", " +
                       common::TextTable::num(histogram.bin_hi(bin), 2) + ")",
                   common::TextTable::num(histogram.mass(bin)),
                   common::TextTable::num(histogram.density(bin), 3),
                   std::to_string(histogram.count(bin))});
  }
  bench::emit(table, "fig4_pos_pdf");
  std::cout << "samples: " << values.size() << ", mass in [0, 0.2]: "
            << common::TextTable::num(mass_below_02)
            << "  (paper: most PoS mass falls in [0, 0.2])\n";
  return 0;
}
