// Fig 9 — Social cost vs PoS requirement (n = 100 users; 50 tasks in the
// multi-task case; requirement swept over [0.5, 0.9] step 0.05).
//
// Paper: since all costs come from one distribution, the social cost tracks
// the number of selected users (Fig 8): it grows with the requirement and
// grows fast at high requirements. The multi-task sweep applies the level T
// as a fraction of each task's achievable PoS, as in Fig 8 (EXPERIMENTS.md).
#include <iostream>

#include "auction/single_task/fptas.hpp"
#include "auction/multi_task/greedy.hpp"
#include "bench_util.hpp"

int main() {
  using namespace mcs;

  const auto workload = bench::make_workload();
  constexpr std::size_t kUsers = 100;
  constexpr std::size_t kTasks = 50;
  constexpr std::size_t kReps = 10;
  common::Rng rng(808);  // same seed as Fig 8: identical populations

  std::vector<auction::SingleTaskInstance> single_pop;
  const auto cells = sim::popular_cells(workload.users());
  bench::repeat_feasible_single(workload, cells.front(), kUsers, bench::single_task_params(),
                                kReps, rng, [&](const sim::SingleTaskScenario& s) {
                                  single_pop.push_back(s.instance);
                                });
  std::vector<auction::MultiTaskInstance> multi_pop;
  {
    const auto params = bench::single_task_params();
    for (std::size_t k = 0; k < kReps; ++k) {
      const auto scenario = sim::build_multi_task(workload.users(), kTasks, kUsers, params, rng);
      if (scenario.has_value()) {
        multi_pop.push_back(scenario->instance);
      }
    }
  }

  common::TextTable table("Fig 9: social cost vs PoS requirement (n=100, t=50)",
                          {"requirement T", "single-task social cost", "multi-task social cost"});
  for (double t_level = 0.5; t_level <= 0.9 + 1e-9; t_level += 0.05) {
    common::RunningStats single_cost;
    for (auto instance : single_pop) {
      instance.requirement_pos = t_level;
      const auto allocation = auction::single_task::solve_fptas(instance, 0.5);
      if (allocation.feasible) {
        single_cost.add(allocation.total_cost);
      }
    }
    common::RunningStats multi_cost;
    for (auto instance : multi_pop) {
      sim::scale_requirements_by_achievable(instance, t_level);
      const auto result = auction::multi_task::solve_greedy(instance);
      if (result.allocation.feasible) {
        multi_cost.add(result.allocation.total_cost);
      }
    }
    table.add_row({bench::fmt(t_level, 2), bench::fmt_stats(single_cost),
                   bench::fmt_stats(multi_cost)});
  }
  bench::emit(table, "fig9_cost_vs_requirement");
  std::cout << "(paper: social cost grows with the requirement, mirroring Fig 8)\n";
  return 0;
}
