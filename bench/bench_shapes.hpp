// The instance shapes of the multi-task scaling suite, shared between
// bench/perf_mechanisms (which measures them at n up to 400) and
// tests/perf_smoke_test (which asserts lazy ≡ reference on the same shapes
// at tiny n every ctest run). Header-only and dependency-light so the test
// target can include it without dragging the sim stack in.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "auction/instance.hpp"
#include "common/distributions.hpp"
#include "common/rng.hpp"

namespace mcs::bench_shapes {

/// The single-task scaling population: paper Table II costs (truncated
/// normal around 15), PoS in [0.02, 0.35], requirement 0.8. Shared between
/// bench/perf_mechanisms (which measures the critical-bid fast path against
/// the full-solve oracle at n up to 400) and tests/perf_smoke_test (which
/// asserts fast ≡ oracle on the same shape at tiny n every ctest run).
inline auction::SingleTaskInstance single_task_scaling_instance(std::size_t users,
                                                                std::uint64_t seed) {
  common::Rng rng(seed);
  auction::SingleTaskInstance instance;
  instance.requirement_pos = 0.8;
  instance.bids.reserve(users);
  for (std::size_t k = 0; k < users; ++k) {
    instance.bids.push_back({common::sample_truncated_normal(rng, 15.0, 2.24, 0.5, 40.0),
                             rng.uniform(0.02, 0.35)});
  }
  return instance;
}

/// The scaling-suite population: paper Table II costs (truncated normal
/// around 15), every task requiring PoS `requirement`, each user demanding a
/// random subset of up to 20 tasks with per-task PoS in [0.05, 0.4].
inline auction::MultiTaskInstance scaling_instance(std::size_t users, std::size_t tasks,
                                                   std::uint64_t seed,
                                                   double requirement = 0.8) {
  common::Rng rng(seed);
  auction::MultiTaskInstance instance;
  instance.requirement_pos.assign(tasks, requirement);
  instance.users.reserve(users);
  for (std::size_t i = 0; i < users; ++i) {
    auction::MultiTaskUserBid bid;
    bid.cost = common::sample_truncated_normal(rng, 15.0, 2.24, 0.5, 40.0);
    const auto size = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(std::min<std::size_t>(tasks, 20))));
    const auto chosen = common::sample_without_replacement(rng, tasks, size);
    std::vector<std::size_t> sorted(chosen.begin(), chosen.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t task : sorted) {
      bid.tasks.push_back(static_cast<auction::TaskIndex>(task));
      bid.pos.push_back(rng.uniform(0.05, 0.4));
    }
    instance.users.push_back(std::move(bid));
  }
  return instance;
}

}  // namespace mcs::bench_shapes
