// Bounds check — the paper's approximation theorems as runtime certificates.
//
// For random instance pools, prints the realized social-cost ratio of each
// algorithm against (a) the true optimum (branch-and-bound) and (b) the
// computable lower-bound certificate of auction/bounds.hpp, next to the
// theoretical guarantee: (1+ε) for the FPTAS (Theorem 2), 2 for Min-Greedy,
// and H(γ) for the multi-task greedy (Theorem 5). Every realized ratio must
// sit below its guarantee; the certificate column shows what a platform can
// verify WITHOUT solving to optimality.
#include <iostream>

#include "auction/bounds.hpp"
#include "auction/single_task/exact.hpp"
#include "auction/single_task/fptas.hpp"
#include "auction/single_task/min_greedy.hpp"
#include "auction/multi_task/exact.hpp"
#include "auction/multi_task/greedy.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace mcs;
  constexpr int kInstances = 30;

  // --- single task --------------------------------------------------------
  common::RunningStats fptas_vs_opt;
  common::RunningStats greedy_vs_opt;
  common::RunningStats fptas_cert;
  common::Rng rng(77);
  for (int k = 0; k < kInstances; ++k) {
    auction::SingleTaskInstance instance;
    instance.requirement_pos = rng.uniform(0.4, 0.9);
    const auto n = static_cast<std::size_t>(rng.uniform_int(15, 40));
    for (std::size_t i = 0; i < n; ++i) {
      instance.bids.push_back({rng.uniform(1.0, 10.0), rng.uniform(0.05, 0.4)});
    }
    if (!instance.is_feasible()) {
      continue;
    }
    const double optimum = auction::single_task::solve_exact(instance).allocation.total_cost;
    const auto fptas = auction::single_task::solve_fptas(instance, 0.5);
    const auto greedy = auction::single_task::solve_min_greedy(instance);
    fptas_vs_opt.add(fptas.total_cost / optimum);
    greedy_vs_opt.add(greedy.total_cost / optimum);
    fptas_cert.add(auction::certified_ratio(instance, fptas));
  }

  common::TextTable single_table("bounds check: single task (30 random instances)",
                                 {"algorithm", "mean ratio vs OPT", "max ratio vs OPT",
                                  "guarantee"});
  single_table.add_row({"FPTAS eps=0.5", common::TextTable::num(fptas_vs_opt.mean(), 4),
                        common::TextTable::num(fptas_vs_opt.max(), 4), "1.5 (Thm 2)"});
  single_table.add_row({"Min-Greedy", common::TextTable::num(greedy_vs_opt.mean(), 4),
                        common::TextTable::num(greedy_vs_opt.max(), 4), "2.0"});
  single_table.add_row({"FPTAS vs LP certificate", common::TextTable::num(fptas_cert.mean(), 4),
                        common::TextTable::num(fptas_cert.max(), 4), "(no solve needed)"});
  single_table.print(std::cout);

  // --- multi-task ----------------------------------------------------------
  common::RunningStats mt_vs_opt;
  common::RunningStats mt_cert;
  common::RunningStats mt_guarantee;
  for (int k = 0; k < kInstances; ++k) {
    auction::MultiTaskInstance instance;
    const auto t = static_cast<std::size_t>(rng.uniform_int(3, 6));
    instance.requirement_pos.assign(t, rng.uniform(0.3, 0.6));
    const auto n = static_cast<std::size_t>(rng.uniform_int(12, 20));
    for (std::size_t i = 0; i < n; ++i) {
      auction::MultiTaskUserBid bid;
      bid.cost = rng.uniform(1.0, 10.0);
      for (std::size_t j = 0; j < t; ++j) {
        if (rng.bernoulli(0.5)) {
          bid.tasks.push_back(static_cast<auction::TaskIndex>(j));
          bid.pos.push_back(rng.uniform(0.05, 0.4));
        }
      }
      if (bid.tasks.empty()) {
        bid.tasks.push_back(0);
        bid.pos.push_back(rng.uniform(0.05, 0.4));
      }
      instance.users.push_back(std::move(bid));
    }
    const auto greedy = auction::multi_task::solve_greedy(instance);
    if (!greedy.allocation.feasible) {
      continue;
    }
    const double optimum = auction::multi_task::solve_exact(instance).allocation.total_cost;
    mt_vs_opt.add(greedy.allocation.total_cost / optimum);
    mt_cert.add(auction::certified_ratio(instance, greedy.allocation));
    mt_guarantee.add(auction::harmonic_bound(instance));
  }

  common::TextTable multi_table("bounds check: multi-task greedy",
                                {"metric", "mean", "max"});
  multi_table.add_row({"ratio vs OPT", common::TextTable::num(mt_vs_opt.mean(), 4),
                       common::TextTable::num(mt_vs_opt.max(), 4)});
  multi_table.add_row({"ratio vs LP certificate", common::TextTable::num(mt_cert.mean(), 4),
                       common::TextTable::num(mt_cert.max(), 4)});
  multi_table.add_row({"H(gamma) guarantee (Thm 5)",
                       common::TextTable::num(mt_guarantee.mean(), 2),
                       common::TextTable::num(mt_guarantee.max(), 2)});
  multi_table.print(std::cout);
  std::cout << "(realized ratios sit far inside the theorems' guarantees; the LP\n"
            << " certificate gives a platform a checkable gap without exact solving)\n";
  return 0;
}
