// Strategy-proofness demonstration (Theorems 1 and 4, and the Section III-A
// VCG counter-example).
//
// For a winner and a loser in each setting we sweep the declared PoS (or
// total contribution) across a grid while the true type stays fixed, and
// print the expected utility the mechanism hands the user at each
// declaration. Truthful declaration must maximize it. The VCG column shows
// the counter-example: under a VCG-like payment the loser profits from
// inflating her PoS.
#include <iostream>

#include "bench_util.hpp"
#include "sim/metrics.hpp"
#include "sim/strategy.hpp"

int main() {
  using namespace mcs;

  // --- single task: the paper's own four-user example --------------------
  auction::SingleTaskInstance instance;
  instance.requirement_pos = 0.9;
  instance.bids = {{3.0, 0.7}, {2.0, 0.7}, {1.0, 0.5}, {4.0, 0.8}};
  const auction::MechanismConfig config{.alpha = 10.0, .single_task = {.epsilon = 0.1}};

  const auto truthful = auction::single_task::run_mechanism(instance, config);
  std::cout << "single-task truthful winners:";
  for (auction::UserId w : truthful.allocation.winners) {
    std::cout << ' ' << w;
  }
  std::cout << "  (paper's example: users 0 and 1)\n\n";

  std::vector<double> grid;
  for (double p = 0.05; p <= 0.95 + 1e-9; p += 0.05) {
    grid.push_back(p);
  }

  for (auction::UserId user : {auction::UserId{1}, auction::UserId{2}}) {
    const double true_pos = instance.bids[static_cast<std::size_t>(user)].pos;
    const auto sweep = sim::sweep_declared_pos(instance, user, grid, config);
    double truthful_utility = 0.0;
    if (truthful.allocation.contains(user)) {
      truthful_utility = truthful.reward_of(user).reward.expected_utility(true_pos);
    }
    common::TextTable table(
        "single task: user " + std::to_string(user) + " (true PoS " + bench::fmt(true_pos, 2) +
            ", truthful utility " + bench::fmt(truthful_utility, 4) + ")",
        {"declared PoS", "wins", "expected utility"});
    for (const auto& point : sweep) {
      table.add_row({bench::fmt(point.declared, 2), point.won ? "yes" : "no",
                     bench::fmt(point.expected_utility, 4)});
    }
    table.print(std::cout);
    std::cout << "truthful optimal: "
              << (sim::truthful_is_optimal(sweep, truthful_utility) ? "YES" : "NO") << "\n\n";
  }

  // The VCG counter-example: user 2 (cost 1, PoS 0.5) declares 0.9 and gets
  // selected by a cost-only VCG payment, pocketing positive utility.
  std::cout << "VCG counter-example (Section III-A): under VCG user 2 declares PoS 0.9,\n"
            << "displaces the efficient pair, and is paid more than her cost — VCG is not\n"
            << "strategy-proof in the PoS dimension (see tests/auction_vcg_test.cpp).\n\n";

  // --- multi-task sweep on a generated scenario ---------------------------
  const auto workload = bench::make_workload();
  common::Rng rng(909);
  const auto scenario = sim::build_feasible_multi_task(
      workload.users(), 10, 40, bench::multi_task_params(), rng, 30);
  if (scenario.has_value()) {
    const auction::MechanismConfig mt_config{.alpha = 10.0};
    const auto outcome = auction::multi_task::run_mechanism(scenario->instance, mt_config);
    if (outcome.allocation.feasible && !outcome.allocation.winners.empty()) {
      const auction::UserId user = outcome.allocation.winners.front();
      const double true_total =
          scenario->instance.users[static_cast<std::size_t>(user)].total_contribution();
      const double truthful_utility =
          outcome.reward_of(user).reward.expected_utility(
              scenario->instance.users[static_cast<std::size_t>(user)]
                  .any_success_probability());
      std::vector<double> q_grid;
      for (double f = 0.2; f <= 3.0 + 1e-9; f += 0.2) {
        q_grid.push_back(f * true_total);
      }
      const auto sweep =
          sim::sweep_declared_contribution(scenario->instance, user, q_grid, mt_config);
      common::TextTable table("multi-task: winner " + std::to_string(user) +
                                  " (true total contribution " + bench::fmt(true_total, 3) +
                                  ", truthful utility " + bench::fmt(truthful_utility, 4) + ")",
                              {"declared total q", "wins", "expected utility"});
      for (const auto& point : sweep) {
        table.add_row({bench::fmt(point.declared, 3), point.won ? "yes" : "no",
                       bench::fmt(point.expected_utility, 4)});
      }
      table.print(std::cout);
      std::cout << "truthful optimal: "
                << (sim::truthful_is_optimal(sweep, truthful_utility) ? "YES" : "NO") << "\n";
    }
  }
  return 0;
}
