// Fig 8 — Number of selected users vs PoS requirement (n = 100 users; 50
// tasks in the multi-task case; requirement swept over [0.5, 0.9] step 0.05).
//
// Paper: the number of recruited users grows with the requirement, and grows
// fast at high requirements because individual PoS values are low.
//
// Multi-task sweep treatment: with Fig 4's PoS profile a flat T_j = 0.9 is
// unreachable for the weakly-covered tasks, so the swept level T is applied
// as a fraction of each task's achievable PoS (requirement_j = T × 0.95 ×
// achievable_j); see EXPERIMENTS.md. The single-task sweep uses T directly.
#include <iostream>

#include "auction/single_task/fptas.hpp"
#include "auction/multi_task/greedy.hpp"
#include "bench_util.hpp"

int main() {
  using namespace mcs;

  const auto workload = bench::make_workload();
  constexpr std::size_t kUsers = 100;
  constexpr std::size_t kTasks = 50;
  constexpr std::size_t kReps = 10;
  common::Rng rng(808);

  // Fixed populations reused across the requirement sweep, so the trend is
  // the requirement's effect rather than sampling noise.
  std::vector<auction::SingleTaskInstance> single_pop;
  const auto cells = sim::popular_cells(workload.users());
  bench::repeat_feasible_single(workload, cells.front(), kUsers, bench::single_task_params(),
                                kReps, rng, [&](const sim::SingleTaskScenario& s) {
                                  single_pop.push_back(s.instance);
                                });
  std::vector<auction::MultiTaskInstance> multi_pop;
  {
    const auto params = bench::single_task_params();
    for (std::size_t k = 0; k < kReps; ++k) {
      const auto scenario = sim::build_multi_task(workload.users(), kTasks, kUsers, params, rng);
      if (scenario.has_value()) {
        multi_pop.push_back(scenario->instance);
      }
    }
  }

  common::TextTable table("Fig 8: #selected users vs PoS requirement (n=100, t=50)",
                          {"requirement T", "single-task #winners", "multi-task #winners",
                           "multi eff. req (mean)"});
  for (double t_level = 0.5; t_level <= 0.9 + 1e-9; t_level += 0.05) {
    common::RunningStats single_winners;
    for (auto instance : single_pop) {
      instance.requirement_pos = t_level;
      const auto allocation = auction::single_task::solve_fptas(instance, 0.5);
      if (allocation.feasible) {
        single_winners.add(static_cast<double>(allocation.winners.size()));
      }
    }
    common::RunningStats multi_winners;
    common::RunningStats effective;
    for (auto instance : multi_pop) {
      sim::scale_requirements_by_achievable(instance, t_level);
      for (double req : instance.requirement_pos) {
        effective.add(req);
      }
      const auto result = auction::multi_task::solve_greedy(instance);
      if (result.allocation.feasible) {
        multi_winners.add(static_cast<double>(result.allocation.winners.size()));
      }
    }
    table.add_row({bench::fmt(t_level, 2), bench::fmt_stats(single_winners),
                   bench::fmt_stats(multi_winners), bench::fmt_stats(effective)});
  }
  bench::emit(table, "fig8_users_vs_requirement");
  std::cout << "(paper: #selected users grows with the requirement, fast at high T)\n";
  return 0;
}
