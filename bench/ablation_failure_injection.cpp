// Ablation — execution failures beyond mobility (the paper's future work,
// Section VI: "more factors that cause the failure to complete the task").
//
// We inject a round-correlated outage and independent per-winner hardware
// failures on top of the mobility PoS, and measure the realized task PoS of
// the multi-task mechanism's winner sets: (a) uncompensated — the mechanism
// meets the DECLARED requirement but the injected failures push the realized
// PoS below target; (b) compensated — the platform inflates the imposed
// requirement via sim::compensated_requirement and recovers the target.
#include <iostream>

#include "auction/multi_task/greedy.hpp"
#include "bench_util.hpp"
#include "sim/failures.hpp"

int main() {
  using namespace mcs;

  const auto workload = bench::make_workload();
  constexpr double kTarget = 0.6;
  constexpr std::size_t kTasks = 10;
  constexpr std::size_t kUsers = 80;
  constexpr std::size_t kReps = 10;

  common::TextTable table(
      "failure injection: realized mean task PoS (target 0.6, n=80, t=10)",
      {"outage", "hardware", "uncompensated", "compensated", "imposed req", "extra cost %"});

  for (const auto& [outage, hardware] :
       std::vector<std::pair<double, double>>{{0.0, 0.0},
                                              {0.1, 0.0},
                                              {0.0, 0.15},
                                              {0.1, 0.15},
                                              {0.2, 0.25}}) {
    const sim::FailureModel model{.outage_prob = outage, .hardware_prob = hardware};
    const double imposed = sim::compensated_requirement(kTarget, model);

    common::RunningStats uncompensated;
    common::RunningStats compensated;
    common::RunningStats extra_cost;
    common::Rng rng(314);
    sim::ScenarioParams params;
    params.pos_requirement = kTarget;
    bench::repeat_feasible_multi(
        workload, kTasks, kUsers, params, kReps, rng, [&](const sim::MultiTaskScenario& s) {
          const auto plain = auction::multi_task::solve_greedy(s.instance);
          if (!plain.allocation.feasible) {
            return;
          }
          double realized = 0.0;
          for (std::size_t j = 0; j < s.instance.num_tasks(); ++j) {
            realized += sim::achieved_pos_with_failures(
                s.instance, plain.allocation.winners, static_cast<auction::TaskIndex>(j), model);
          }
          uncompensated.add(realized / static_cast<double>(s.instance.num_tasks()));

          auto inflated = s.instance;
          inflated.requirement_pos.assign(inflated.num_tasks(), imposed);
          const auto hardened = auction::multi_task::solve_greedy(inflated);
          if (!hardened.allocation.feasible) {
            return;  // inflated requirement can exceed the sample's capacity
          }
          realized = 0.0;
          for (std::size_t j = 0; j < inflated.num_tasks(); ++j) {
            realized += sim::achieved_pos_with_failures(
                inflated, hardened.allocation.winners, static_cast<auction::TaskIndex>(j),
                model);
          }
          compensated.add(realized / static_cast<double>(inflated.num_tasks()));
          extra_cost.add(100.0 * (hardened.allocation.total_cost /
                                      plain.allocation.total_cost -
                                  1.0));
        });

    table.add_row({bench::fmt(outage, 2), bench::fmt(hardware, 2),
                   bench::fmt_stats(uncompensated), bench::fmt_stats(compensated),
                   bench::fmt(imposed, 3), bench::fmt_stats(extra_cost)});
  }
  bench::emit(table, "ablation_failure_injection");
  std::cout << "(uncompensated PoS degrades with injected failures; inflating the imposed\n"
            << " requirement restores the target at a quantifiable recruitment premium)\n";
  return 0;
}
