// Fig 5(a) — Social Cost of the Single Task Mechanism.
//
// Paper: one randomly chosen task, user counts 20..100 (step 10); the FPTAS
// mechanism (even at ε = 0.5) tracks OPT closely and beats the Min-Greedy
// 2-approximation. Social cost drops sharply with the first extra users and
// then flattens (costs come from one distribution, so new users stop
// improving the optimum).
#include <iostream>

#include "auction/single_task/exact.hpp"
#include "auction/single_task/fptas.hpp"
#include "auction/single_task/min_greedy.hpp"
#include "auction/single_task/naive.hpp"
#include "bench_util.hpp"

int main() {
  using namespace mcs;

  const auto workload = bench::make_workload();
  const auto params = bench::single_task_params();
  const auto cells = sim::popular_cells(workload.users());
  const geo::CellId task_cell = cells.front();  // the paper's "randomly chosen
                                                // task"; we pin the most
                                                // contributor-rich cell
  constexpr std::size_t kReps = 20;

  common::TextTable table("Fig 5(a): single-task social cost vs #users",
                          {"#users", "OPT", "FPTAS eps=0.1", "FPTAS eps=0.5",
                           "FPTAS 95% CI (half)", "Min-Greedy", "Cheapest-first",
                           "instances"});
  common::Rng rng(501);
  common::Rng ci_rng(777);
  for (std::size_t n = 20; n <= 100; n += 10) {
    common::RunningStats opt;
    common::RunningStats fptas01;
    std::vector<double> fptas05_samples;
    common::RunningStats greedy;
    common::RunningStats cheapest;
    const auto produced = bench::repeat_feasible_single(
        workload, task_cell, n, params, kReps, rng, [&](const sim::SingleTaskScenario& scenario) {
          opt.add(auction::single_task::solve_exact(scenario.instance).allocation.total_cost);
          fptas01.add(auction::single_task::solve_fptas(scenario.instance, 0.1).total_cost);
          fptas05_samples.push_back(
              auction::single_task::solve_fptas(scenario.instance, 0.5).total_cost);
          greedy.add(auction::single_task::solve_min_greedy(scenario.instance).total_cost);
          cheapest.add(auction::single_task::solve_cheapest_first(scenario.instance).total_cost);
        });
    const auto ci = common::bootstrap_mean_ci(fptas05_samples, 0.95, 2000, ci_rng);
    table.add_row({std::to_string(n), bench::fmt_stats(opt), bench::fmt_stats(fptas01),
                   bench::fmt(common::mean(fptas05_samples)),
                   "±" + bench::fmt(ci.half_width()), bench::fmt_stats(greedy),
                   bench::fmt_stats(cheapest), std::to_string(produced)});
  }
  bench::emit(table, "fig5a_single_task_cost");
  std::cout << "(paper: FPTAS ≈ OPT and strictly below Min-Greedy; cost decreases in #users.\n"
            << " cheapest-first, which ignores PoS density, overpays substantially)\n";
  return 0;
}
