// Fig 7 — Achieved vs required task PoS.
//
// Paper: both mechanisms meet the PoS requirement (single-task tightly,
// multi-task with slack — winners keep contributing to already-satisfied
// tasks), while the VCG-like baselines (ST-VCG / MT-VCG), to which strategic
// users declare PoS = 1, fall short of the requirement — badly so in the
// single-task case where only the cheapest user is recruited.
#include <iostream>

#include "auction/single_task/fptas.hpp"
#include "auction/single_task/vcg.hpp"
#include "auction/multi_task/greedy.hpp"
#include "auction/multi_task/vcg.hpp"
#include "bench_util.hpp"
#include "sim/execution.hpp"
#include "sim/metrics.hpp"

int main() {
  using namespace mcs;

  const auto workload = bench::make_workload();
  const auto params = bench::single_task_params();  // T = 0.8
  common::Rng rng(707);
  common::Rng sim_rng(708);
  constexpr std::size_t kEmpiricalRuns = 2000;

  common::RunningStats st_ours;
  common::RunningStats st_ours_empirical;
  common::RunningStats st_vcg;
  const auto cells = sim::popular_cells(workload.users());
  bench::repeat_feasible_single(
      workload, cells.front(), 50, params, 20, rng, [&](const sim::SingleTaskScenario& s) {
        const auto ours = auction::single_task::solve_fptas(s.instance, 0.5);
        st_ours.add(sim::achieved_pos(s.instance, ours.winners));
        st_ours_empirical.add(
            sim::empirical_task_pos(s.instance, ours.winners, kEmpiricalRuns, sim_rng));
        const auto vcg = auction::single_task::solve_st_vcg(s.instance);
        st_vcg.add(sim::achieved_pos(s.instance, vcg.winners));
      });

  common::RunningStats mt_ours;
  common::RunningStats mt_ours_empirical;
  common::RunningStats mt_vcg;
  bench::repeat_feasible_multi(
      workload, 15, 100, params, 10, rng, [&](const sim::MultiTaskScenario& s) {
        const auto ours = auction::multi_task::solve_greedy(s.instance);
        mt_ours.add(sim::average_achieved_pos(s.instance, ours.allocation.winners));
        const auto empirical = sim::empirical_task_pos(s.instance, ours.allocation.winners,
                                                       kEmpiricalRuns / 4, sim_rng);
        mt_ours_empirical.add(common::mean(empirical));
        const auto vcg = auction::multi_task::solve_mt_vcg(s.instance);
        mt_vcg.add(sim::average_achieved_pos(s.instance, vcg.winners));
      });

  common::TextTable table("Fig 7: achieved vs required task PoS",
                          {"setting", "required", "ours (analytic)", "ours (empirical)",
                           "VCG-like"});
  table.add_row({"single task (n=50)", bench::fmt(params.pos_requirement, 2),
                 bench::fmt_stats(st_ours), bench::fmt_stats(st_ours_empirical),
                 bench::fmt_stats(st_vcg)});
  table.add_row({"multi-task (n=100, t=15)", bench::fmt(params.pos_requirement, 2),
                 bench::fmt_stats(mt_ours), bench::fmt_stats(mt_ours_empirical),
                 bench::fmt_stats(mt_vcg)});
  bench::emit(table, "fig7_task_pos");
  std::cout << "(paper: ours >= required — single tightly, multi with slack; VCG falls short,"
            << " drastically for single task)\n";
  return 0;
}
