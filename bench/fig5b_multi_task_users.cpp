// Fig 5(b) — Multi-task social cost vs number of users (Table III setting 1:
// 15 tasks, users 10..100, cost mean 15, T = 0.8).
//
// Paper: the greedy mechanism stays close to OPT; social cost decreases with
// more users (a more competitive market) and stabilizes once the market is
// saturated.
//
// Sweep construction: users are added incrementally (nested prefixes of one
// sampled population) so that every sweep point solves the same task
// requirements with a growing market. Requirements are fixed at
// min(0.8, 0.9 × PoS achievable by the first 10 users) — the paper's T = 0.8
// is unreachable for 10 users whose PoS mass lies in [0, 0.2] (Fig 4); see
// EXPERIMENTS.md.
#include <iostream>

#include "auction/multi_task/exact.hpp"
#include "auction/multi_task/greedy.hpp"
#include "bench_util.hpp"

int main() {
  using namespace mcs;

  const auto workload = bench::make_workload();
  const auto params = bench::single_task_params();  // T = 0.8, no cap yet
  constexpr std::size_t kTasks = 15;
  constexpr std::size_t kMinUsers = 10;
  constexpr std::size_t kMaxUsers = 100;
  constexpr std::size_t kReps = 10;

  // One nested population per repetition; requirements anchored on the
  // smallest prefix so every sweep point is feasible by construction.
  std::vector<auction::MultiTaskInstance> populations;
  common::RunningStats effective_requirement;
  common::Rng rng(502);
  for (std::size_t attempt = 0; attempt < kReps * 5 && populations.size() < kReps; ++attempt) {
    const auto scenario =
        sim::build_multi_task(workload.users(), kTasks, kMaxUsers, params, rng);
    if (!scenario.has_value()) {
      break;
    }
    auto anchor = sim::prefix_users(scenario->instance, kMinUsers);
    sim::cap_requirements_to_achievable(anchor, 0.9);
    if (!anchor.is_feasible()) {
      continue;  // the 0.01 requirement floor exceeded a task's achievable PoS
    }
    auto population = scenario->instance;
    population.requirement_pos = anchor.requirement_pos;
    for (double t : population.requirement_pos) {
      effective_requirement.add(t);
    }
    populations.push_back(std::move(population));
  }

  common::TextTable table("Fig 5(b): multi-task social cost vs #users (t=15)",
                          {"#users", "OPT", "Greedy (ours)", "ratio", "opt proven"});
  for (std::size_t n = kMinUsers; n <= kMaxUsers; n += 10) {
    common::RunningStats opt;
    common::RunningStats greedy;
    std::size_t proven = 0;
    for (const auto& population : populations) {
      const auto instance = sim::prefix_users(population, n);
      const auction::multi_task::ExactOptions options{.node_budget = 4'000'000};
      const auto exact = auction::multi_task::solve_exact(instance, options);
      const auto ours = auction::multi_task::solve_greedy(instance);
      opt.add(exact.allocation.total_cost);
      greedy.add(ours.allocation.total_cost);
      proven += exact.proven_optimal ? 1 : 0;
    }
    const std::string ratio =
        (opt.count() > 0 && opt.mean() > 0.0) ? bench::fmt(greedy.mean() / opt.mean(), 3) : "n/a";
    table.add_row({std::to_string(n), bench::fmt_stats(opt), bench::fmt_stats(greedy), ratio,
                   std::to_string(proven) + "/" + std::to_string(populations.size())});
  }
  bench::emit(table, "fig5b_multi_task_users");
  std::cout << "effective task requirement: mean "
            << bench::fmt(effective_requirement.mean(), 3) << " (paper nominal 0.8; see"
            << " EXPERIMENTS.md)\n"
            << "(paper: greedy ≈ OPT; social cost decreases then stabilizes with more users)\n";
  return 0;
}
