// Memory-engineering bench (ISSUE-8): quantifies the two memory-path
// optimizations against their retained baselines, on the same shapes the
// equivalence suites pin bit-identical.
//
//  1. DP kernel wall-clock — the single-task mechanism end to end (reward
//     phase dominated by Algorithm 1 frontier sweeps) and a frontier-only
//     microbench, DpKernel::kColumns vs kScalarOracle, n up to 400. The
//     outcomes are asserted bit-identical before any time is reported, so
//     the speedup is an honest same-answer comparison.
//  2. Streaming trace RSS — peak RSS (VmHWM) of "load the CSV into an AoS
//     TraceDataset, then train the fleet" vs "train straight from the
//     mmap-backed column file". VmHWM is monotone per process, so each mode
//     runs in its own subprocess (self-exec via --rss-mode); the parent
//     prepares both files from one generated trace.
//
// Usage: memory_scaling [--out FILE]                       orchestrate + JSON
//        memory_scaling --dp-only columns|oracle [N REPS]  timing loop only
//                                                          (perf-stat target;
//                                                          see scripts/
//                                                          perf_cachemiss.sh)
//        memory_scaling --rss-mode aos|mapped PATH         internal child
//
// The JSON record goes to stdout and, when --out or MCS_BENCH_JSON names a
// file, is appended there (the bench/results convention).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "auction/single_task/dp_knapsack.hpp"
#include "auction/single_task/mechanism.hpp"
#include "bench_shapes.hpp"
#include "common/rng.hpp"
#include "mobility/predictor.hpp"
#include "trace/columnfile.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"

namespace {

using namespace mcs;
using auction::DpKernel;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Peak RSS of this process in KiB from /proc/self/status, or 0 when the
/// proc interface is unavailable (non-Linux).
std::size_t vmhwm_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::size_t kb = 0;
      fields >> kb;
      return kb;
    }
  }
  return 0;
}

auction::MechanismConfig config_for(DpKernel kernel) {
  auction::MechanismConfig config;
  config.single_task.epsilon = 0.5;  // the scaling-suite default
  config.single_task.dp_kernel = kernel;
  return config;
}

/// Best-of-`reps` wall-clock of the full single-task mechanism (winner
/// determination + every critical-bid reward) under one kernel.
double best_mechanism_seconds(const auction::SingleTaskInstance& instance,
                              const auction::MechanismConfig& config, std::size_t reps) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    const auto outcome = auction::single_task::run_mechanism(instance, config);
    best = std::min(best, seconds_since(start));
    if (!outcome.allocation.feasible) {
      std::cerr << "instance must be feasible for the timing to mean anything\n";
      std::exit(1);
    }
  }
  return best;
}

/// Item list of one large Algorithm 1 sweep, shaped like an FPTAS
/// subproblem at scale: n items, scaled costs up to ~n, fractional
/// contributions against a requirement that caps late in the sweep.
std::vector<auction::single_task::KnapsackItem> frontier_items(std::size_t n,
                                                               std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<auction::single_task::KnapsackItem> items;
  items.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    items.push_back({rng.uniform(0.01, 0.5), rng.uniform_int(1, static_cast<std::int64_t>(n))});
  }
  return items;
}

/// Best-of-`reps` wall-clock of frontier-only sweeps under one kernel — the
/// exact call the probe context issues thousands of times per reward phase.
double best_frontier_seconds(const std::vector<auction::single_task::KnapsackItem>& items,
                             double requirement, DpKernel kernel, std::size_t reps) {
  double best = std::numeric_limits<double>::infinity();
  std::size_t guard = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    const auto frontier =
        auction::single_task::min_knapsack_frontier(items, requirement, {}, kernel);
    best = std::min(best, seconds_since(start));
    guard += frontier.size();
  }
  if (guard == 0) {
    std::cerr << "empty frontiers: the microbench shape is degenerate\n";
    std::exit(1);
  }
  return best;
}

int run_dp_only(const std::string& kernel_name, std::size_t n, std::size_t reps) {
  const DpKernel kernel =
      kernel_name == "oracle" ? DpKernel::kScalarOracle : DpKernel::kColumns;
  const auto instance = bench_shapes::single_task_scaling_instance(n, 21);
  const double seconds = best_mechanism_seconds(instance, config_for(kernel), reps);
  std::cout << "kernel=" << kernel_name << " n=" << n << " best_ms=" << seconds * 1e3 << "\n";
  return 0;
}

/// Child-process body of the RSS comparison: run one training pipeline and
/// report this process's high-water mark.
int run_rss_mode(const std::string& mode, const std::string& path) {
  const geo::GridMap grid(geo::shanghai_bounding_box(), 2000.0);
  const mobility::MarkovLearner learner(1.0);
  std::size_t taxis = 0;
  if (mode == "aos") {
    const auto dataset = trace::load_csv(path);
    const mobility::FleetModel fleet(dataset, grid, learner, 0.8);
    taxis = fleet.taxis().size();
  } else if (mode == "mapped") {
    const trace::MappedTraceDataset mapped(path);
    const mobility::FleetModel fleet(mapped, grid, learner, 0.8);
    taxis = fleet.taxis().size();
  } else {
    std::cerr << "unknown --rss-mode " << mode << "\n";
    return 2;
  }
  std::cout << "vmhwm_kb=" << vmhwm_kb() << " taxis=" << taxis << "\n";
  return 0;
}

/// Runs `command`, returns the vmhwm_kb= value it printed (0 on failure).
std::size_t child_vmhwm(const std::string& command) {
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) {
    return 0;
  }
  std::string output;
  char buffer[256];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    output += buffer;
  }
  const int status = ::pclose(pipe);
  const auto key = output.find("vmhwm_kb=");
  if (status != 0 || key == std::string::npos) {
    return 0;
  }
  return static_cast<std::size_t>(std::strtoull(output.c_str() + key + 9, nullptr, 10));
}

std::string self_path(const char* argv0) {
  std::error_code ec;
  const auto exe = std::filesystem::read_symlink("/proc/self/exe", ec);
  return ec ? std::string(argv0) : exe.string();
}

int run(const char* argv0, const std::string& out) {
  std::ostringstream json;
  json << "{\"bench\":\"memory_scaling\",\"epsilon\":0.5,\"seed\":21";

  // --- 1. DP kernel: end-to-end mechanism + frontier-only microbench. ---
  std::cerr << "dp kernel sweep (columns vs scalar oracle):\n";
  json << ",\"dp_kernel\":[";
  double largest_n_speedup = 0.0;
  const std::vector<std::size_t> sizes = {100, 200, 400};
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    const std::size_t n = sizes[k];
    const std::size_t reps = n >= 400 ? 2 : 3;
    const auto instance = bench_shapes::single_task_scaling_instance(n, 21);
    // Honesty check first: the kernels must agree bit for bit before their
    // times are compared (the equivalence suites pin this; re-assert here).
    const auto columns_outcome =
        auction::single_task::run_mechanism(instance, config_for(DpKernel::kColumns));
    const auto oracle_outcome =
        auction::single_task::run_mechanism(instance, config_for(DpKernel::kScalarOracle));
    if (columns_outcome.allocation.winners != oracle_outcome.allocation.winners ||
        columns_outcome.allocation.total_cost != oracle_outcome.allocation.total_cost) {
      std::cerr << "kernel outcomes diverged at n=" << n << "\n";
      return 1;
    }
    const double columns_s =
        best_mechanism_seconds(instance, config_for(DpKernel::kColumns), reps);
    const double oracle_s =
        best_mechanism_seconds(instance, config_for(DpKernel::kScalarOracle), reps);
    const auto items = frontier_items(4 * n, 21 + n);
    const double requirement = 0.05 * static_cast<double>(n);
    const double frontier_columns_s =
        best_frontier_seconds(items, requirement, DpKernel::kColumns, reps);
    const double frontier_oracle_s =
        best_frontier_seconds(items, requirement, DpKernel::kScalarOracle, reps);
    const double mech_speedup = oracle_s / columns_s;
    const double frontier_speedup = frontier_oracle_s / frontier_columns_s;
    largest_n_speedup = mech_speedup;
    std::cerr << "  n=" << n << ": mechanism " << columns_s * 1e3 << " ms vs " << oracle_s * 1e3
              << " ms (" << mech_speedup << "x), frontier " << frontier_columns_s * 1e3
              << " ms vs " << frontier_oracle_s * 1e3 << " ms (" << frontier_speedup << "x)\n";
    json << (k > 0 ? "," : "") << "{\"users\":" << n << ",\"reps\":" << reps
         << ",\"winners\":" << columns_outcome.allocation.winners.size()
         << ",\"mechanism\":{\"columns_ms\":" << columns_s * 1e3
         << ",\"scalar_oracle_ms\":" << oracle_s * 1e3 << ",\"speedup\":" << mech_speedup
         << "},\"frontier_sweep\":{\"items\":" << items.size()
         << ",\"columns_ms\":" << frontier_columns_s * 1e3
         << ",\"scalar_oracle_ms\":" << frontier_oracle_s * 1e3
         << ",\"speedup\":" << frontier_speedup << "}}";
  }
  json << "],\"outcomes\":\"bit-identical across kernels at every n\"";

  // --- 2. Streaming trace: peak RSS, one subprocess per storage mode. ---
  std::cerr << "trace RSS sweep (AoS CSV load vs mapped columns):\n";
  trace::CityConfig city_config;
  city_config.num_taxis = 400;
  city_config.num_days = 12;
  city_config.trips_per_day = 40;
  const trace::CityModel city(city_config);
  const auto dataset = trace::generate_trace(city);
  const auto tmp = std::filesystem::temp_directory_path();
  const auto csv_path = (tmp / "mcs_memory_scaling_trace.csv").string();
  const auto col_path = (tmp / "mcs_memory_scaling_trace.cols").string();
  trace::save_csv(csv_path, dataset);
  trace::write_trace_columns(dataset, col_path);

  const std::string self = self_path(argv0);
  const std::size_t aos_kb = child_vmhwm(self + " --rss-mode aos " + csv_path);
  const std::size_t mapped_kb = child_vmhwm(self + " --rss-mode mapped " + col_path);
  std::filesystem::remove(csv_path);
  std::filesystem::remove(col_path);
  if (aos_kb == 0 || mapped_kb == 0) {
    std::cerr << "  skipped (no /proc or child failed)\n";
    json << ",\"trace_rss\":\"skipped: no /proc interface\"";
  } else {
    std::cerr << "  " << dataset.size() << " events: aos " << aos_kb << " KiB vs mapped "
              << mapped_kb << " KiB peak RSS (" << static_cast<double>(aos_kb) / mapped_kb
              << "x)\n";
    json << ",\"trace_rss\":{\"events\":" << dataset.size() << ",\"taxis\":"
         << dataset.taxi_ids().size() << ",\"aos_csv_vmhwm_kb\":" << aos_kb
         << ",\"mapped_columns_vmhwm_kb\":" << mapped_kb
         << ",\"peak_rss_reduction\":" << static_cast<double>(aos_kb) / mapped_kb << "}";
  }
  json << ",\"largest_n_mechanism_speedup\":" << largest_n_speedup << "}";

  std::cout << json.str() << "\n";
  for (const std::string& path : {out, [] {
         const char* env = std::getenv("MCS_BENCH_JSON");
         return std::string(env != nullptr ? env : "");
       }()}) {
    if (path.empty()) {
      continue;
    }
    std::ofstream file(path, std::ios::app);
    file << json.str() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() >= 2 && args[0] == "--rss-mode") {
    return run_rss_mode(args[1], args.size() > 2 ? args[2] : "");
  }
  if (!args.empty() && args[0] == "--dp-only") {
    const std::string kernel = args.size() > 1 ? args[1] : "columns";
    const std::size_t n = args.size() > 2 ? std::stoull(args[2]) : 400;
    const std::size_t reps = args.size() > 3 ? std::stoull(args[3]) : 3;
    return run_dp_only(kernel, n, reps);
  }
  std::string out;
  for (std::size_t k = 0; k + 1 < args.size(); k += 2) {
    if (args[k] == "--out") {
      out = args[k + 1];
    }
  }
  return run(argv[0], out);
}
