// Online vs offline under one recruitment budget — the competitive-ratio
// study for the secretary-style online mechanism (DESIGN.md §13).
//
// Every comparison runs on IDENTICAL arrival traces: an offline
// single-task population is drawn from the shared bench workload, the
// online mechanism sees it as a seed-replayable arrival order
// (ArrivalStream::shuffled), and the offline baselines see the same
// population order-free with the same budget:
//
//   * OPT        — max_coverage_for_budget at granularity 1e-4, the
//                  budgeted-coverage DP that is exact on this cost data;
//   * FPTAS      — the same DP at granularity 0.05, the coarse-grid
//                  approximation a platform would run at scale;
//   * greedy     — offline density greedy (take arrivals by q/c until the
//                  budget is exhausted), Min-Greedy's rule in the budgeted
//                  setting.
//
// The quality metric is achieved log-contribution q = -ln(1 - PoS): ratios
// of q are budget-independent and additive over winners. Reported per
// budget level as mean offline/online ratios — the empirical competitive
// ratio — plus the online mechanism's own budget utilization (its payout
// ledger is worst-case feasible by construction, so utilization < 1
// always).
//
// MCS_BENCH_JSON=<file> appends the machine-readable record committed as
// bench/results/online_competitive.json.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <numeric>
#include <vector>

#include "auction/online/arrival.hpp"
#include "auction/online/mechanism.hpp"
#include "auction/single_task/budgeted.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"

namespace {

/// Offline density greedy under a budget: admit users by contribution
/// density until the next admission would overspend. The budgeted twin of
/// Min-Greedy's selection rule.
double greedy_budgeted_q(const mcs::auction::SingleTaskInstance& instance, double budget) {
  std::vector<mcs::auction::UserId> order(instance.num_users());
  std::iota(order.begin(), order.end(), mcs::auction::UserId{0});
  std::sort(order.begin(), order.end(), [&](mcs::auction::UserId a, mcs::auction::UserId b) {
    const double da = instance.contribution(a) / instance.bids[a].cost;
    const double db = instance.contribution(b) / instance.bids[b].cost;
    if (da != db) {
      return da > db;
    }
    return a < b;
  });
  double spent = 0.0;
  double q = 0.0;
  for (const auto user : order) {
    if (spent + instance.bids[user].cost > budget) {
      continue;
    }
    spent += instance.bids[user].cost;
    q += instance.contribution(user);
  }
  return q;
}

}  // namespace

int main() {
  using namespace mcs;
  using auction::online::ArrivalStream;

  const auto workload = bench::make_workload();
  const auto params = bench::single_task_params();
  const auto cells = sim::popular_cells(workload.users());
  const geo::CellId task_cell = cells.front();
  constexpr std::size_t kUsers = 60;
  constexpr std::size_t kReps = 12;       // populations per budget level
  constexpr std::size_t kShuffles = 4;    // arrival orders per population
  const std::vector<double> budgets = {40.0, 80.0, 160.0, 320.0};

  auction::online::OnlineConfig online_config;
  online_config.sample_fraction = 0.25;
  online_config.stages = 3;

  common::TextTable table(
      "Online competitive ratio vs offline budgeted baselines (q = -ln(1-PoS))",
      {"budget", "online q", "online PoS", "payout/B", "OPT/online", "FPTAS/online",
       "greedy/online", "traces"});

  std::string json = "{\"bench\":\"online_competitive\",\"users\":" + std::to_string(kUsers) +
                     ",\"reps\":" + std::to_string(kReps) +
                     ",\"shuffles\":" + std::to_string(kShuffles) +
                     ",\"sample_fraction\":" + bench::fmt(online_config.sample_fraction) +
                     ",\"stages\":" + std::to_string(online_config.stages) +
                     ",\"metric\":\"achieved log-contribution q\",\"results\":[";
  bool first = true;

  common::Rng rng(9001);
  for (const double budget : budgets) {
    common::RunningStats online_q;
    common::RunningStats online_pos;
    common::RunningStats utilization;
    common::RunningStats opt_ratio;
    common::RunningStats fptas_ratio;
    common::RunningStats greedy_ratio;
    std::size_t traces = 0;

    bench::repeat_feasible_single(
        workload, task_cell, kUsers, params, kReps, rng,
        [&](const sim::SingleTaskScenario& scenario) {
          const auto& instance = scenario.instance;
          const auto opt = auction::single_task::max_coverage_for_budget(instance, budget, 1e-4);
          const double opt_q = instance.contribution_of(opt.allocation.winners);
          const auto fptas =
              auction::single_task::max_coverage_for_budget(instance, budget, 0.05);
          const double fptas_q = instance.contribution_of(fptas.allocation.winners);
          const double greedy_q = greedy_budgeted_q(instance, budget);

          auto config = online_config;
          config.budget = budget;
          for (std::size_t shuffle = 0; shuffle < kShuffles; ++shuffle) {
            const auto stream =
                ArrivalStream::shuffled(instance, 7777 + traces * kShuffles + shuffle);
            const auto outcome = auction::online::run_online_mechanism(stream, config);
            if (outcome.achieved_contribution <= 0.0) {
              // A trace where the online mechanism accepted nothing has no
              // finite ratio; count it as a (rare) total loss by skipping —
              // the committed record reports how many traces survived.
              continue;
            }
            online_q.add(outcome.achieved_contribution);
            online_pos.add(outcome.achieved_pos);
            utilization.add(outcome.worst_case_payout / budget);
            opt_ratio.add(opt_q / outcome.achieved_contribution);
            fptas_ratio.add(fptas_q / outcome.achieved_contribution);
            greedy_ratio.add(greedy_q / outcome.achieved_contribution);
          }
          ++traces;
        });

    table.add_row({bench::fmt(budget, 0), bench::fmt_stats(online_q), bench::fmt_stats(online_pos),
                   bench::fmt_stats(utilization), bench::fmt_stats(opt_ratio),
                   bench::fmt_stats(fptas_ratio), bench::fmt_stats(greedy_ratio),
                   std::to_string(online_q.count()) + "/" + std::to_string(traces * kShuffles)});

    json += std::string(first ? "" : ",") + "{\"budget\":" + bench::fmt(budget, 0) +
            ",\"traces\":" + std::to_string(traces * kShuffles) +
            ",\"traces_with_accepts\":" + std::to_string(online_q.count()) +
            ",\"online\":{\"mean_q\":" + bench::fmt(online_q.mean(), 4) +
            ",\"mean_pos\":" + bench::fmt(online_pos.mean(), 4) +
            ",\"mean_budget_utilization\":" + bench::fmt(utilization.mean(), 4) +
            "},\"competitive_ratio\":{\"opt_over_online\":" + bench::fmt(opt_ratio.mean(), 4) +
            ",\"fptas_over_online\":" + bench::fmt(fptas_ratio.mean(), 4) +
            ",\"greedy_over_online\":" + bench::fmt(greedy_ratio.mean(), 4) + "}}";
    first = false;
  }
  json += "]}";

  bench::emit(table, "online_competitive");
  std::cout << "(the online mechanism rejects its sample phase by design, so ratios > 1 are\n"
            << " expected; they shrink as the budget grows and the accept phase dominates)\n";

  if (const char* path = std::getenv("MCS_BENCH_JSON"); path != nullptr && *path != '\0') {
    std::ofstream out(path, std::ios::app);
    out << json << "\n";
    std::cout << "[json appended to " << path << "]\n";
  }
  return 0;
}
