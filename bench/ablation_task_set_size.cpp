// Ablation — the tasks-per-user range (Table II fixes it at [10, 20]).
//
// Task-set size controls how much of each user's predicted mobility mass the
// platform can harness: larger sets overlap more tasks (easier coverage,
// more competition per task) but represent users willing to serve more
// locations. This bench sweeps the range on the multi-task workload and
// reports feasibility, social cost, and winner counts at the paper's T = 0.8
// anchored per the Fig 5(b) treatment.
#include <iostream>

#include "auction/multi_task/greedy.hpp"
#include "bench_util.hpp"

int main() {
  using namespace mcs;

  constexpr std::size_t kTasks = 15;
  constexpr std::size_t kUsers = 40;
  constexpr std::size_t kReps = 15;

  common::TextTable table(
      "Ablation: tasks-per-user range (n=40, t=15, requirement anchored at 0.9x achievable)",
      {"tasks/user", "mean tasks per bid", "feasible", "social cost", "#winners"});
  for (const auto& [lo, hi] : std::vector<std::pair<std::size_t, std::size_t>>{
           {3, 6}, {6, 12}, {10, 20}, {15, 30}}) {
    sim::WorkloadConfig workload_config = sim::default_bench_workload();
    workload_config.users.min_task_set = lo;
    workload_config.users.max_task_set = hi;
    const sim::Workload workload(workload_config);

    sim::ScenarioParams params;
    params.requirement_cap_fraction = 0.9;
    common::Rng rng(606);
    common::RunningStats bid_size;
    common::RunningStats cost;
    common::RunningStats winners;
    std::size_t feasible = 0;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      const auto scenario =
          sim::build_multi_task(workload.users(), kTasks, kUsers, params, rng);
      if (!scenario.has_value() || !scenario->instance.is_feasible()) {
        continue;
      }
      ++feasible;
      for (const auto& user : scenario->instance.users) {
        bid_size.add(static_cast<double>(user.tasks.size()));
      }
      const auto result = auction::multi_task::solve_greedy(scenario->instance);
      if (result.allocation.feasible) {
        cost.add(result.allocation.total_cost);
        winners.add(static_cast<double>(result.allocation.winners.size()));
      }
    }
    table.add_row({std::to_string(lo) + "-" + std::to_string(hi), bench::fmt_stats(bid_size),
                   std::to_string(feasible) + "/" + std::to_string(kReps),
                   bench::fmt_stats(cost), bench::fmt_stats(winners)});
  }
  bench::emit(table, "ablation_task_set_size");
  std::cout << "(small task sets cost feasibility — users' bids miss the posted tasks;\n"
            << " beyond ~[6,12] the effect saturates because a user's bid is capped by her\n"
            << " territory overlap with the tasks, not by her declared willingness. social\n"
            << " costs are muted across rows since requirements anchor to what each\n"
            << " population can achieve)\n";
  return 0;
}
